"""Tiny ASCII plotting helpers for terminal-rendered figures.

No plotting dependency is available offline, so the figure renderers and
examples use these block-character sparklines and bar charts to convey
the *shape* of a series — which is all the reproduction claims anyway.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

_BLOCKS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """Render a series as a one-line block-character sparkline.

    Values are min-max normalized; the series is resampled to ``width``
    points by bucket-averaging when longer.
    """
    if not values:
        return ""
    series: List[float] = list(values)
    if len(series) > width:
        bucket = len(series) / width
        series = [
            sum(series[int(i * bucket) : max(int(i * bucket) + 1, int((i + 1) * bucket))])
            / max(1, len(series[int(i * bucket) : max(int(i * bucket) + 1, int((i + 1) * bucket))]))
            for i in range(width)
        ]
    low = min(series)
    high = max(series)
    span = high - low
    if span <= 0:
        return _BLOCKS[3] * len(series)
    return "".join(
        _BLOCKS[min(len(_BLOCKS) - 1, int((v - low) / span * (len(_BLOCKS) - 1)))]
        for v in series
    )


def hbar_chart(
    values: Dict[str, float], width: int = 40, unit: str = ""
) -> str:
    """Render labelled horizontal bars, scaled to the maximum value."""
    if not values:
        return ""
    peak = max(values.values())
    label_width = max(len(label) for label in values)
    lines = []
    for label, value in values.items():
        bar = "█" * max(1, int(width * value / peak)) if peak > 0 else ""
        lines.append(f"{label:>{label_width}} {bar} {value:g}{unit}")
    return "\n".join(lines)


def timeline_panel(
    timelines: Dict[str, Sequence[float]], width: int = 60
) -> str:
    """One sparkline per strategy over a shared scale (Fig. 8 style)."""
    if not timelines:
        return ""
    all_values = [v for series in timelines.values() for v in series]
    if not all_values:
        return ""
    low, high = min(all_values), max(all_values)
    span = high - low
    label_width = max(len(label) for label in timelines)
    lines = []
    for label, series in timelines.items():
        if span <= 0:
            spark = _BLOCKS[3] * min(width, len(series))
        else:
            resampled = list(series)
            if len(resampled) > width:
                bucket = len(resampled) / width
                resampled = [
                    resampled[int(i * bucket)] for i in range(width)
                ]
            spark = "".join(
                _BLOCKS[
                    min(
                        len(_BLOCKS) - 1,
                        int((v - low) / span * (len(_BLOCKS) - 1)),
                    )
                ]
                for v in resampled
            )
        mean = sum(series) / len(series) if series else 0.0
        lines.append(f"{label:>{label_width}} {spark} (mean {mean:.0f})")
    return "\n".join(lines)
