"""Pause-time percentiles, matching Figure 5's x-axis.

The paper reports percentiles 50, 90, 99, 99.9, 99.99, 99.999 plus the
worst observable pause.  Percentiles use the nearest-rank method, which
is what pause-time SLAs quote.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

#: The percentiles of the paper's Figure 5.
PAPER_PERCENTILES = (50.0, 90.0, 99.0, 99.9, 99.99, 99.999)


def percentile(values: Sequence[float], pct: float) -> float:
    """Nearest-rank percentile; 0.0 for an empty sequence."""
    if not 0.0 < pct <= 100.0:
        raise ValueError(f"percentile must be in (0, 100], got {pct}")
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, math.ceil(pct / 100.0 * len(ordered)))
    return ordered[rank - 1]


def percentile_row(values: Sequence[float]) -> List[float]:
    """The Figure 5 series for one strategy: paper percentiles + max."""
    row = [percentile(values, pct) for pct in PAPER_PERCENTILES]
    row.append(max(values) if values else 0.0)
    return row


def percentile_table(
    series: Dict[str, Sequence[float]], title: str = "pause times (ms)"
) -> str:
    """Render one Figure 5 panel as a text table.

    ``series`` maps strategy name (G1, NG2C, POLM2) to pause durations.
    """
    headers = [f"P{str(p).rstrip('0').rstrip('.')}" for p in PAPER_PERCENTILES]
    headers.append("max")
    lines = [title]
    name_width = max((len(name) for name in series), default=8)
    header_cells = " ".join(f"{h:>10}" for h in headers)
    lines.append(f"{'':{name_width}} {header_cells}")
    for name, values in series.items():
        row = percentile_row(values)
        cells = " ".join(f"{v:>10.2f}" for v in row)
        lines.append(f"{name:{name_width}} {cells}")
    return "\n".join(lines)
