"""Client-observed operation latency and SLA compliance.

The paper's motivation (§1) is not GC pauses per se but their effect on
request latency: "credit-card fraud detection or targeted website
advertisement systems … can easily fail to comply with Service Level
Agreements due to long GC cycles (during which the application is
stopped)".  This module computes that client-side view from a
:class:`~repro.core.pipeline.PhaseResult`: an operation in flight when a
stop-the-world pause begins observes its base service time *plus* the
pause; every other operation observes the base time.

The distribution is assembled analytically (ops are uniform in mutator
time, pauses are point events), which keeps it exact and free.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Sequence, TYPE_CHECKING

from repro.metrics.percentiles import percentile

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.pipeline import PhaseResult


@dataclasses.dataclass
class LatencyProfile:
    """Client-observed latency distribution for one run."""

    strategy: str
    workload: str
    total_ops: int
    base_latency_ms: float
    #: Latencies of the ops that absorbed a pause (base + pause), ms.
    impacted_latencies_ms: List[float]

    @property
    def impacted_ops(self) -> int:
        return len(self.impacted_latencies_ms)

    def percentile_ms(self, pct: float) -> float:
        """Nearest-rank percentile over the full op population."""
        if self.total_ops == 0:
            return 0.0
        clean_ops = self.total_ops - self.impacted_ops
        rank = max(1, -(-pct * self.total_ops // 100))  # ceil
        if rank <= clean_ops:
            return self.base_latency_ms
        ordered = sorted(self.impacted_latencies_ms)
        index = int(rank - clean_ops - 1)
        index = min(index, len(ordered) - 1)
        return self.base_latency_ms + ordered[index]

    def worst_ms(self) -> float:
        if not self.impacted_latencies_ms:
            return self.base_latency_ms
        return self.base_latency_ms + max(self.impacted_latencies_ms)

    def sla_violations(self, sla_ms: float) -> int:
        """Operations whose observed latency exceeded the SLA."""
        count = 0
        if self.base_latency_ms > sla_ms:
            return self.total_ops
        for latency in self.impacted_latencies_ms:
            if self.base_latency_ms + latency > sla_ms:
                count += 1
        return count

    def sla_compliance(self, sla_ms: float) -> float:
        """Fraction of operations meeting the SLA."""
        if self.total_ops == 0:
            return 1.0
        return 1.0 - self.sla_violations(sla_ms) / self.total_ops


def latency_profile(result: "PhaseResult") -> LatencyProfile:
    """Derive the client-observed latency profile from a phase result.

    Each recorded pause delays exactly the operation in flight when it
    hit (single-server model, one op at a time); the remaining ops see
    the base service time.
    """
    if result.duration_ms <= 0 or result.ops_completed <= 0:
        return LatencyProfile(
            strategy=result.strategy,
            workload=result.workload,
            total_ops=0,
            base_latency_ms=0.0,
            impacted_latencies_ms=[],
        )
    total_pause_ms = sum(p.duration_ms for p in result.pauses)
    mutator_ms = max(1e-9, result.duration_ms - total_pause_ms)
    base_latency_ms = mutator_ms / result.ops_completed
    impacted = [p.duration_ms for p in result.pauses]
    return LatencyProfile(
        strategy=result.strategy,
        workload=result.workload,
        total_ops=result.ops_completed,
        base_latency_ms=base_latency_ms,
        impacted_latencies_ms=impacted,
    )


def sla_table(
    profiles: Sequence[LatencyProfile],
    sla_ms: float,
    percentiles: Sequence[float] = (99.0, 99.9, 99.99),
) -> str:
    """Render an SLA-compliance comparison across strategies."""
    lines = [
        f"client-observed latency, SLA = {sla_ms:g} ms",
        f"{'strategy':>10} {'ops':>9} "
        + " ".join(f"P{p:g}".rjust(9) for p in percentiles)
        + f" {'worst':>9} {'SLA ok':>8}",
    ]
    for profile in profiles:
        cells = " ".join(
            f"{profile.percentile_ms(p):>9.2f}" for p in percentiles
        )
        lines.append(
            f"{profile.strategy:>10} {profile.total_ops:>9} {cells} "
            f"{profile.worst_ms():>9.2f} "
            f"{profile.sla_compliance(sla_ms):>8.4%}"
        )
    return "\n".join(lines)
