"""Measurement and reporting: percentiles, histograms, throughput, memory."""

from repro.metrics.histogram import PauseHistogram, histogram_table
from repro.metrics.latency import LatencyProfile, latency_profile, sla_table
from repro.metrics.memory import normalized_memory_table
from repro.metrics.percentiles import (
    PAPER_PERCENTILES,
    percentile,
    percentile_row,
    percentile_table,
)
from repro.metrics.throughput import normalized_throughput, throughput_table

__all__ = [
    "LatencyProfile",
    "PAPER_PERCENTILES",
    "PauseHistogram",
    "latency_profile",
    "sla_table",
    "histogram_table",
    "normalized_memory_table",
    "normalized_throughput",
    "percentile",
    "percentile_row",
    "percentile_table",
    "throughput_table",
]
