"""Max-memory-usage metrics (Figure 9)."""

from __future__ import annotations

from typing import Dict


def normalized_memory(
    peak_bytes: Dict[str, int], baseline: str = "g1"
) -> Dict[str, float]:
    """Normalize each strategy's max memory usage to the baseline."""
    if baseline not in peak_bytes:
        raise KeyError(f"baseline {baseline!r} missing from results")
    base = peak_bytes[baseline]
    if base <= 0:
        raise ValueError("baseline memory must be positive")
    return {name: value / base for name, value in peak_bytes.items()}


def normalized_memory_table(
    normalized: Dict[str, Dict[str, float]],
    title: str = "max memory usage normalized to G1",
) -> str:
    """Render Figure 9: rows = workloads, columns = strategies."""
    strategies: list = []
    for row in normalized.values():
        for name in row:
            if name not in strategies:
                strategies.append(name)
    workload_width = max((len(name) for name in normalized), default=10)
    lines = [title]
    lines.append(
        f"{'':{workload_width}} " + " ".join(f"{s:>8}" for s in strategies)
    )
    for workload, row in normalized.items():
        cells = " ".join(
            f"{row.get(s, float('nan')):>8.3f}" for s in strategies
        )
        lines.append(f"{workload:{workload_width}} {cells}")
    return "\n".join(lines)
