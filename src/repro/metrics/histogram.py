"""Pause-duration interval histograms (Figure 6).

Figure 6 plots "the number of application pauses that occur in each pause
time interval"; fewer pauses in the right-hand (long) intervals is
better.  Intervals are geometric, starting at 1 ms.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

#: Default interval edges in ms: [0,1), [1,2), [2,4) … [512, inf).
DEFAULT_EDGES_MS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0)


class PauseHistogram:
    """Counts pauses per duration interval."""

    def __init__(self, edges_ms: Sequence[float] = DEFAULT_EDGES_MS) -> None:
        if list(edges_ms) != sorted(edges_ms):
            raise ValueError("histogram edges must be sorted ascending")
        if not edges_ms:
            raise ValueError("at least one edge is required")
        self.edges_ms = tuple(edges_ms)
        self.counts = [0] * (len(self.edges_ms) + 1)

    def add(self, duration_ms: float) -> None:
        for i, edge in enumerate(self.edges_ms):
            if duration_ms < edge:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def add_all(self, durations_ms: Sequence[float]) -> "PauseHistogram":
        for duration in durations_ms:
            self.add(duration)
        return self

    def labels(self) -> List[str]:
        labels = [f"<{self.edges_ms[0]:g}"]
        for low, high in zip(self.edges_ms, self.edges_ms[1:]):
            labels.append(f"{low:g}-{high:g}")
        labels.append(f">={self.edges_ms[-1]:g}")
        return labels

    def intervals(self) -> List[Tuple[str, int]]:
        return list(zip(self.labels(), self.counts))

    @property
    def total(self) -> int:
        return sum(self.counts)

    def long_pause_count(self, threshold_ms: float) -> int:
        """Pauses at or above ``threshold_ms`` (the "bad right tail")."""
        count = 0
        for i, edge in enumerate(self.edges_ms):
            if edge > threshold_ms:
                count += self.counts[i]
        count += self.counts[-1]
        # Intervals straddling the threshold are counted conservatively:
        # an interval is included once its lower edge reaches the threshold.
        return count


def histogram_table(
    series: Dict[str, Sequence[float]],
    edges_ms: Sequence[float] = DEFAULT_EDGES_MS,
    title: str = "pauses per duration interval (ms)",
) -> str:
    """Render one Figure 6 panel: rows = strategies, columns = intervals."""
    histograms = {
        name: PauseHistogram(edges_ms).add_all(durations)
        for name, durations in series.items()
    }
    labels = PauseHistogram(edges_ms).labels()
    name_width = max((len(name) for name in series), default=8)
    lines = [title]
    lines.append(
        f"{'':{name_width}} " + " ".join(f"{label:>9}" for label in labels)
    )
    for name, hist in histograms.items():
        cells = " ".join(f"{count:>9d}" for count in hist.counts)
        lines.append(f"{name:{name_width}} {cells}")
    return "\n".join(lines)
