"""Full evaluation report: every table and figure in one text document.

Used by ``python -m repro evaluate`` and by EXPERIMENTS.md regeneration.
"""

from __future__ import annotations

from repro.experiments import fig3_fig4, fig5, fig6, fig7, fig8, fig9, table1
from repro.experiments.runner import ExperimentRunner


def full_report(
    runner: ExperimentRunner,
    include_snapshots: bool = True,
    snapshot_duration_ms: float = 25_000.0,
) -> str:
    """Regenerate Table 1 and Figures 3-9 as one report."""
    seeds = runner.settings.seed_list
    sections = []
    sections.append(
        "Support: every cell runs "
        f"{runner.settings.profiling_ms:g} ms profiling / "
        f"{runner.settings.production_ms:g} ms production (virtual) per "
        f"seed; seeds: {', '.join(str(s) for s in seeds)} "
        f"({len(seeds)} seed(s) pooled per figure)."
    )
    sections.append(table1.render(table1.run(runner)))
    if include_snapshots:
        comparisons = fig3_fig4.run(duration_ms=snapshot_duration_ms)
        sections.append(fig3_fig4.render(comparisons))
    sections.append(fig5.render(fig5.run(runner)))
    sections.append(fig6.render(fig6.run(runner)))
    sections.append(fig7.render(fig7.run(runner), seeds=len(seeds)))
    sections.append(fig8.render(fig8.run(runner)))
    sections.append(fig9.render(fig9.run(runner, include_c4=True)))
    divider = "\n\n" + "=" * 78 + "\n\n"
    return divider.join(sections)
