"""Throughput metrics (Figures 7 and 8)."""

from __future__ import annotations

from typing import Dict, List, Sequence


def normalized_throughput(
    ops_per_second: Dict[str, float], baseline: str = "g1"
) -> Dict[str, float]:
    """Normalize each strategy's throughput to the baseline (Fig. 7).

    A value above 1.0 means the strategy outperforms G1.
    """
    if baseline not in ops_per_second:
        raise KeyError(f"baseline {baseline!r} missing from results")
    base = ops_per_second[baseline]
    if base <= 0:
        raise ValueError("baseline throughput must be positive")
    return {name: value / base for name, value in ops_per_second.items()}


def throughput_table(
    normalized: Dict[str, Dict[str, float]],
    title: str = "throughput normalized to G1",
) -> str:
    """Render Figure 7: rows = workloads, columns = strategies."""
    strategies: List[str] = []
    for row in normalized.values():
        for name in row:
            if name not in strategies:
                strategies.append(name)
    workload_width = max((len(name) for name in normalized), default=10)
    lines = [title]
    lines.append(
        f"{'':{workload_width}} " + " ".join(f"{s:>8}" for s in strategies)
    )
    for workload, row in normalized.items():
        cells = " ".join(
            f"{row.get(s, float('nan')):>8.3f}" for s in strategies
        )
        lines.append(f"{workload:{workload_width}} {cells}")
    return "\n".join(lines)


def timeline_summary(timeline: Sequence[float]) -> Dict[str, float]:
    """Mean/min/max of a per-second ops timeline (Fig. 8 sanity stats)."""
    if not timeline:
        return {"mean": 0.0, "min": 0.0, "max": 0.0}
    return {
        "mean": sum(timeline) / len(timeline),
        "min": min(timeline),
        "max": max(timeline),
    }
