"""POLM2 reproduction: automatic profiling for object lifetime-aware memory management.

This package reproduces the system described in:

    Rodrigo Bruno and Paulo Ferreira.
    "POLM2: Automatic Profiling for Object Lifetime-Aware Memory Management
    for HotSpot Big Data Applications".  Middleware '17.

Because CPython has no generational, pretenuring garbage collector, the
reproduction is built on a simulated managed runtime: a region-based heap
(:mod:`repro.heap`), a method-level code model with load-time agents
(:mod:`repro.runtime`), stop-the-world copying collectors — a G1-like
baseline and the NG2C pretenuring collector (:mod:`repro.gc`) — and a
CRIU-like incremental snapshot engine (:mod:`repro.snapshot`).

POLM2 itself lives in :mod:`repro.core`: the Recorder, Dumper, Analyzer
(bucket survival estimation plus the STTree conflict-resolution algorithm),
and the Instrumenter, orchestrated by :class:`repro.core.pipeline.POLM2Pipeline`.

Quickstart::

    from repro import POLM2Pipeline, make_workload

    pipeline = POLM2Pipeline(workload_factory=lambda: make_workload("cassandra-wi"))
    profile = pipeline.run_profiling_phase(duration_ms=30_000)
    result = pipeline.run_production_phase(profile, duration_ms=60_000)
    print(result.pause_report())
"""

from repro.config import SimConfig
from repro.core.analyzer import Analyzer
from repro.core.instrumenter import Instrumenter
from repro.core.pipeline import POLM2Pipeline, PhaseResult
from repro.core.profile import AllocationProfile
from repro.core.profilesource import ProfileSource, profile_source, resolve_profile
from repro.core.profilestore import ProfileStore
from repro.core.recorder import Recorder
from repro.core.stages import IncrementalAnalyzer, ProfileBuilder
from repro.core.sttree import STTree
from repro.errors import ReproError
from repro.gc.c4 import C4Collector
from repro.gc.g1 import G1Collector
from repro.gc.ng2c import NG2CCollector
from repro.runtime.events import VMAgent
from repro.runtime.vm import VM
from repro.strategies import (
    StrategySpec,
    get_strategy,
    register_strategy,
    strategy_names,
)
from repro.workloads import make_workload, WORKLOAD_NAMES

__version__ = "1.0.0"

__all__ = [
    "AllocationProfile",
    "Analyzer",
    "C4Collector",
    "G1Collector",
    "IncrementalAnalyzer",
    "Instrumenter",
    "NG2CCollector",
    "PhaseResult",
    "POLM2Pipeline",
    "ProfileBuilder",
    "ProfileSource",
    "ProfileStore",
    "Recorder",
    "ReproError",
    "STTree",
    "SimConfig",
    "StrategySpec",
    "VM",
    "VMAgent",
    "WORKLOAD_NAMES",
    "get_strategy",
    "make_workload",
    "profile_source",
    "register_strategy",
    "resolve_profile",
    "strategy_names",
    "__version__",
]
