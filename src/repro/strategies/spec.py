"""The declarative strategy registry.

A *strategy* is everything needed to run a workload under one memory-
management configuration: which collector to build, which agents to
attach, and whether an :class:`~repro.core.profile.AllocationProfile` is
required first.  Strategies are declared as :class:`StrategySpec` values
and registered by name; the pipeline, the experiment runner, and the CLI
all resolve them through :func:`get_strategy`, so registering a new
strategy requires zero edits to ``core/pipeline.py`` or
``experiments/runner.py``.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Sequence, TYPE_CHECKING

from repro.errors import ReproError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.config import SimConfig
    from repro.core.profile import AllocationProfile
    from repro.gc.base import GenerationalCollector
    from repro.runtime.vm import VM
    from repro.workloads.base import Workload


@dataclasses.dataclass(frozen=True)
class StrategyContext:
    """Everything a strategy's agent builder may consult.

    Built by the pipeline after the VM and collector exist but before
    any class loads, so agents attach exactly when a ``-javaagent``
    would be present.
    """

    vm: "VM"
    workload: "Workload"
    collector: "GenerationalCollector"
    config: "SimConfig"
    profile: Optional["AllocationProfile"] = None


def _no_agents(ctx: StrategyContext) -> Sequence:
    return ()


@dataclasses.dataclass(frozen=True)
class StrategySpec:
    """One named memory-management strategy.

    ``collector_factory``
        Zero-argument callable producing a fresh collector per run.
    ``needs_profile``
        True when the strategy consumes an allocation profile.  Profiles
        are produced by the :class:`~repro.core.stages.ProfileBuilder`
        entry point (the pipeline's streaming profiling phase, the
        offline ``analyze_recording`` replay, or a saved profile file —
        all the same stage pipeline underneath).
    ``build_agents``
        ``(StrategyContext) -> agents`` — the agents to attach via
        ``vm.attach_agent`` before classes load.  May raise
        :class:`~repro.errors.ReproError` (e.g. a workload with no
        manual NG2C annotations).
    """

    name: str
    collector_factory: Callable[[], "GenerationalCollector"]
    needs_profile: bool = False
    build_agents: Callable[[StrategyContext], Sequence] = _no_agents
    description: str = ""


_REGISTRY: Dict[str, StrategySpec] = {}


def register_strategy(spec: StrategySpec, replace: bool = False) -> StrategySpec:
    """Register ``spec`` under its name; raises on duplicates.

    Returns the spec so the call can be used as an expression.
    """
    if not replace and spec.name in _REGISTRY:
        raise ReproError(f"strategy {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def unregister_strategy(name: str) -> None:
    """Remove a strategy (tests registering throwaway strategies)."""
    if name not in _REGISTRY:
        raise ReproError(f"strategy {name!r} is not registered")
    del _REGISTRY[name]


def get_strategy(name: str) -> StrategySpec:
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ReproError(
            f"unknown strategy {name!r} (registered: {known})"
        ) from None


def strategy_names() -> List[str]:
    """All registered strategy names, in registration order."""
    return list(_REGISTRY)
