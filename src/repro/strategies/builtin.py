"""The built-in strategies (the paper's §5 evaluation matrix).

Importing this module registers every built-in strategy; the package
``__init__`` does so, so ``from repro.strategies import get_strategy``
always sees them.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.instrumenter import Instrumenter
from repro.errors import ReproError
from repro.gc.binary import BinaryPretenuringCollector
from repro.gc.c4 import C4Collector
from repro.gc.g1 import G1Collector
from repro.gc.ng2c import NG2CCollector
from repro.strategies.agents import GenerationRotationAgent
from repro.strategies.spec import StrategyContext, StrategySpec, register_strategy


def _manual_ng2c_agents(ctx: StrategyContext) -> Sequence:
    """The paper's "NG2C" bars: hand-written annotations + rotation."""
    manual = ctx.workload.manual_ng2c()
    if manual is None:
        raise ReproError(
            f"workload {ctx.workload.name!r} has no manual NG2C strategy"
        )
    agents = [Instrumenter(manual.as_profile(ctx.workload.name))]
    if manual.rotate_generation_on_flush:
        agents.append(
            GenerationRotationAgent(ctx.collector, manual.rotating_index)
        )
    return agents


def _polm2_agents(ctx: StrategyContext) -> Sequence:
    """Production phase: only the Instrumenter, applying the profile."""
    return [Instrumenter(ctx.profile)]


register_strategy(
    StrategySpec(
        name="g1",
        collector_factory=G1Collector,
        description="plain G1 (the paper's primary baseline)",
    )
)

register_strategy(
    StrategySpec(
        name="ng2c",
        collector_factory=NG2CCollector,
        build_agents=_manual_ng2c_agents,
        description="NG2C with the workload's hand-written annotations",
    )
)

register_strategy(
    StrategySpec(
        name="ng2c-unannotated",
        collector_factory=NG2CCollector,
        description="NG2C with no annotations (behaves like G1; ablation)",
    )
)

register_strategy(
    StrategySpec(
        name="c4",
        collector_factory=C4Collector,
        description="the C4 concurrent-compaction model",
    )
)

register_strategy(
    StrategySpec(
        name="polm2",
        collector_factory=NG2CCollector,
        needs_profile=True,
        build_agents=_polm2_agents,
        description="POLM2: profile-driven Instrumenter over NG2C",
    )
)

register_strategy(
    StrategySpec(
        name="polm2-binary",
        collector_factory=BinaryPretenuringCollector,
        needs_profile=True,
        build_agents=_polm2_agents,
        description=(
            "POLM2 over a Memento-style single-tenured-space collector "
            "(the GC-independence ablation, paper §4.5)"
        ),
    )
)
