"""Declarative strategy registry + reusable VM agents."""

from repro.strategies import builtin as _builtin  # noqa: F401  (registers)
from repro.strategies.agents import GenerationRotationAgent, TelemetryAgent
from repro.strategies.spec import (
    StrategyContext,
    StrategySpec,
    get_strategy,
    register_strategy,
    strategy_names,
    unregister_strategy,
)

# Profile resolution travels with the strategies: a needs_profile
# strategy's profile can come from a file, a store, or a running
# ``repro serve`` — whatever the deployment names in a URI.
from repro.core.profilesource import (  # noqa: E402
    ProfileSource,
    profile_source,
    resolve_profile,
)

__all__ = [
    "GenerationRotationAgent",
    "ProfileSource",
    "StrategyContext",
    "StrategySpec",
    "TelemetryAgent",
    "get_strategy",
    "profile_source",
    "register_strategy",
    "resolve_profile",
    "strategy_names",
    "unregister_strategy",
]
