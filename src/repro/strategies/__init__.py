"""Declarative strategy registry + reusable VM agents."""

from repro.strategies import builtin as _builtin  # noqa: F401  (registers)
from repro.strategies.agents import GenerationRotationAgent, TelemetryAgent
from repro.strategies.spec import (
    StrategyContext,
    StrategySpec,
    get_strategy,
    register_strategy,
    strategy_names,
    unregister_strategy,
)

__all__ = [
    "GenerationRotationAgent",
    "StrategyContext",
    "StrategySpec",
    "TelemetryAgent",
    "get_strategy",
    "register_strategy",
    "strategy_names",
    "unregister_strategy",
]
