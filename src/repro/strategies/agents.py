"""Small reusable VM agents built on the event bus.

These are the "dividend" agents of the event-layer refactor: observers
that need no special wiring in the pipeline, just ``vm.attach_agent``.
"""

from __future__ import annotations

from typing import Dict, TYPE_CHECKING

from repro.runtime.events import VMAgent

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.gc.base import GenerationalCollector
    from repro.runtime.events import (
        ClassLoadEvent,
        GCEndEvent,
        SafepointEvent,
        SnapshotPointEvent,
    )


class TelemetryAgent(VMAgent):
    """Counts bus traffic; counters land in ``PhaseResult.telemetry``."""

    def __init__(self) -> None:
        self.classes_loaded = 0
        self.allocations_seen = 0
        self.safepoints = 0
        self.gc_pauses = 0
        self.snapshot_points = 0

    def on_class_load(self, event: "ClassLoadEvent") -> None:
        self.classes_loaded += 1

    def on_allocation(self, obj, site, trace) -> None:
        self.allocations_seen += 1

    def on_allocation_batch(self, event) -> None:
        self.allocations_seen += event.count

    def on_safepoint(self, event: "SafepointEvent") -> None:
        self.safepoints += 1

    def on_gc_end(self, event: "GCEndEvent") -> None:
        self.gc_pauses += 1

    def on_snapshot_point(self, event: "SnapshotPointEvent") -> None:
        self.snapshot_points += 1

    def telemetry(self) -> Dict[str, int]:
        return {
            "classes_loaded": self.classes_loaded,
            "allocations_seen": self.allocations_seen,
            "safepoints": self.safepoints,
            "gc_pauses": self.gc_pauses,
            "snapshot_points": self.snapshot_points,
        }


class GenerationRotationAgent(VMAgent):
    """Rotates an NG2C generation at every ``flush`` safepoint.

    Replaces the manual-NG2C ``workload.flush_hooks`` lambda: the paper's
    Cassandra experts call ``newGeneration()`` at each memtable flush;
    here that is an agent reacting to the workload's flush safepoint.
    """

    def __init__(
        self, collector: "GenerationalCollector", generation_index: int = 1
    ) -> None:
        self.collector = collector
        self.generation_index = generation_index
        self.generations_rotated = 0

    def on_safepoint(self, event: "SafepointEvent") -> None:
        if event.kind != "flush":
            return
        self.collector.rotate_generation(self.generation_index)
        self.generations_rotated += 1

    def telemetry(self) -> Dict[str, int]:
        return {"generations_rotated": self.generations_rotated}
