"""The simulated heap: address space, generations, tracing, evacuation."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.config import PAGE_SIZE, REGION_SIZE, YOUNG_GEN, SimConfig
from repro.core.idset import IdSet
from repro.errors import OutOfMemoryError, UnknownGenerationError
from repro.heap.evacuation import EvacuationPlan
from repro.heap.objects import HeapObject, reserve_identity_hashes
from repro.heap.page import PageTable
from repro.heap.region import Region
from repro.heap.space import Generation


class HeapStats:
    """Point-in-time heap statistics."""

    __slots__ = (
        "used_bytes",
        "committed_bytes",
        "free_regions",
        "object_count",
        "per_generation",
    )

    def __init__(
        self,
        used_bytes: int,
        committed_bytes: int,
        free_regions: int,
        object_count: int,
        per_generation: Dict[int, int],
    ) -> None:
        self.used_bytes = used_bytes
        self.committed_bytes = committed_bytes
        self.free_regions = free_regions
        self.object_count = object_count
        self.per_generation = per_generation


class SimHeap:
    """A region-based heap with a page table and named generations.

    The heap provides *mechanics* only — allocation, reference writes with
    store barriers (dirty-page marking), reachability tracing, evacuation,
    and page-advice marking.  Collection *policy* lives in :mod:`repro.gc`.
    """

    def __init__(self, config: Optional[SimConfig] = None) -> None:
        self.config = config or SimConfig()
        self.region_size = REGION_SIZE
        self.page_size = PAGE_SIZE
        num_regions = self.config.heap_bytes // self.region_size
        if num_regions < 4:
            raise ValueError("heap too small: needs at least 4 regions")
        self._regions = [
            Region(i, i * self.region_size, self.region_size)
            for i in range(num_regions)
        ]
        self._free_regions: List[Region] = list(reversed(self._regions))
        #: Humongous objects (larger than a region): object id -> the
        #: contiguous regions backing it.  As in G1, humongous objects
        #: are never moved; their regions are reclaimed wholesale when
        #: the object dies.
        self._humongous: Dict[int, List[Region]] = {}
        #: Reference-write listeners ``(parent, child_or_None)`` — used by
        #: exact lifetime tracers that must observe every pointer update
        #: (Merlin-style).  Empty in normal operation.
        self.ref_write_listeners: List = []
        #: The old->young remembered set: tenured objects known (possibly
        #: stale) to reference young objects, maintained by the write
        #: barrier.  Keyed by parent object id.  Consumed by collectors
        #: running with ``config.use_remembered_sets``.
        self.old_to_young_remset: Dict[int, HeapObject] = {}
        self.page_table = PageTable(self.config.heap_bytes, self.page_size)
        self.generations: Dict[int, Generation] = {}
        self._next_gen_id = 0
        #: Monotonic counters for accounting / experiments.
        self.total_allocated_bytes = 0
        self.total_allocated_objects = 0
        self.peak_committed_bytes = 0
        #: Current mark epoch.  ``obj.mark_epoch == heap.mark_epoch`` is the
        #: liveness test after a trace; every trace (full or partial) bumps
        #: the epoch so stale marks from earlier cycles can never read as
        #: live.  See docs/architecture.md, "Hot paths and invariants".
        self.mark_epoch = 0
        #: Trace-effort counters: how many full-heap and partial
        #: (remembered-set) traces have run.  Tests use these to assert the
        #: Recorder performs at most one full trace per snapshot.
        self.full_trace_count = 0
        self.partial_trace_count = 0
        # The young generation always exists (generation zero).
        self.new_generation("young")

    # -- generations ------------------------------------------------------------

    def new_generation(self, name: Optional[str] = None) -> Generation:
        """Create a generation (NG2C's ``System.newGeneration``)."""
        gen_id = self._next_gen_id
        self._next_gen_id += 1
        gen = Generation(gen_id, name or f"gen{gen_id}", self._claim_free_region)
        self.generations[gen_id] = gen
        return gen

    def generation(self, gen_id: int) -> Generation:
        try:
            return self.generations[gen_id]
        except KeyError:
            raise UnknownGenerationError(f"no generation with id {gen_id}") from None

    def retire_generation(self, gen_id: int) -> None:
        """Drop an empty dynamic generation (never the young generation)."""
        if gen_id == YOUNG_GEN:
            raise UnknownGenerationError("the young generation cannot be retired")
        gen = self.generation(gen_id)
        for region in gen.release_all_regions():
            self.free_region(region)
        gen.retired = True
        del self.generations[gen_id]

    @property
    def young(self) -> Generation:
        return self.generations[YOUNG_GEN]

    # -- region pool --------------------------------------------------------------

    def _claim_free_region(self) -> Optional[Region]:
        if not self._free_regions:
            return None
        region = self._free_regions.pop()
        committed = self.committed_bytes
        if committed > self.peak_committed_bytes:
            self.peak_committed_bytes = committed
        return region

    def free_region(self, region: Region) -> None:
        """Reset a region and return it to the free pool.

        Objects still listed in the region (wholesale reclamation of dead
        regions / cohorts / humongous runs) are removed from the page
        occupancy counters here; evacuation untracks per object instead and
        hands over an already-emptied region.
        """
        if region.objects:
            # One bulk occupancy pass over the offset column (the last
            # object's end covers humongous spans that exceed region.top).
            count = len(region.objects)
            self.page_table.adjust_occupancy_run(
                region.base,
                region._offsets,
                0,
                count,
                region._offsets[count - 1] + region._sizes[count - 1],
                -1,
            )
        region.reset()
        self._free_regions.append(region)

    @property
    def free_region_count(self) -> int:
        return len(self._free_regions)

    @property
    def committed_bytes(self) -> int:
        return (len(self._regions) - len(self._free_regions)) * self.region_size

    @property
    def used_bytes(self) -> int:
        return (
            sum(gen.used_bytes for gen in self.generations.values())
            + self.humongous_bytes
        )

    def stats(self) -> HeapStats:
        return HeapStats(
            used_bytes=self.used_bytes,
            committed_bytes=self.committed_bytes,
            free_regions=len(self._free_regions),
            object_count=sum(g.object_count for g in self.generations.values()),
            per_generation={
                gid: gen.used_bytes for gid, gen in self.generations.items()
            },
        )

    # -- allocation ---------------------------------------------------------------

    def allocate(
        self,
        size: int,
        gen_id: int = YOUNG_GEN,
        class_id: int = 0,
        site_id: int = 0,
        trace_id: int = 0,
        birth_cycle: int = 0,
        refs: Sequence[HeapObject] = (),
    ) -> HeapObject:
        """Allocate an object of ``size`` bytes into generation ``gen_id``.

        The newly written memory is marked dirty in the page table, exactly
        as the MMU would after the store of the object body.
        """
        gen = self.generation(gen_id)
        obj = HeapObject(
            size=size,
            class_id=class_id,
            site_id=site_id,
            trace_id=trace_id,
            birth_cycle=birth_cycle,
        )
        if size > self.region_size:
            address = self._allocate_humongous(obj, gen_id)
        else:
            address = gen.allocate(obj)
        self.page_table.mark_written_range(address, size)
        self.page_table.track_object(address, size)
        if refs and gen_id != YOUNG_GEN:
            # A pretenured object born pointing at young children is an
            # old->young edge the write barrier would otherwise miss.
            if any(child.gen_id == YOUNG_GEN for child in refs):
                self.old_to_young_remset[obj.object_id] = obj
        if refs:
            obj._replace_refs(refs)
        self.total_allocated_bytes += size
        self.total_allocated_objects += 1
        return obj

    def allocate_batch(
        self,
        sizes,
        starts,
        start: int,
        stop: int,
        gen_id: int = YOUNG_GEN,
        site_id: int = 0,
        trace_id: int = 0,
        birth_cycle: int = 0,
        materialize: bool = False,
    ) -> Tuple[int, Optional[List[HeapObject]]]:
        """Bulk-allocate batch objects ``[start, stop)`` into ``gen_id``.

        The columnar fast path behind :meth:`allocate`: one consecutive
        identity-hash block is reserved for the run, the generation
        extends its region columns chunk-wise, and no :class:`HeapObject`
        is boxed unless ``materialize`` asks for views (which then carry
        the given ``trace_id``/``birth_cycle``, exactly as scalar
        allocation would have stamped them).  Objects must each fit in a
        region (the caller routes humongous sizes through the scalar
        path).  Returns ``(first_object_id, views_or_None)``.
        """
        gen = self.generation(gen_id)
        count = stop - start
        first_id = reserve_identity_hashes(count)
        chunks = gen.allocate_batch(
            self.page_table, first_id - start, sizes, starts, start, stop,
            site_id,
        )
        total = starts[stop - 1] + sizes[stop - 1] - starts[start]
        self.total_allocated_bytes += total
        self.total_allocated_objects += count
        views: Optional[List[HeapObject]] = None
        if materialize:
            views = []
            append = views.append
            for region, base_slot, a, b in chunks:
                view_at = region.view_at
                for slot in range(base_slot, base_slot + (b - a)):
                    view = view_at(slot)
                    view.trace_id = trace_id
                    view.birth_cycle = birth_cycle
                    append(view)
        return first_id, views

    # -- humongous objects -----------------------------------------------------------

    def _allocate_humongous(self, obj: HeapObject, gen_id: int) -> int:
        """Place an over-region-size object into contiguous free regions.

        Mirrors G1's humongous allocation: the object starts at the base
        of the first region of a contiguous free run and is never moved.
        """
        needed = (obj.size + self.region_size - 1) // self.region_size
        run = self._find_contiguous_free(needed)
        if run is None:
            raise OutOfMemoryError(
                f"no {needed} contiguous free regions for a "
                f"{obj.size}-byte humongous object"
            )
        for region in run:
            self._free_regions.remove(region)
            region.gen_id = gen_id
            region.top = region.size  # fully claimed by the object
        obj.address = run[0].base
        obj.gen_id = gen_id
        run[0].adopt_humongous(obj)
        self._humongous[obj.object_id] = run
        committed = self.committed_bytes
        if committed > self.peak_committed_bytes:
            self.peak_committed_bytes = committed
        return obj.address

    def _find_contiguous_free(self, count: int) -> Optional[List[Region]]:
        free_indices = sorted(region.index for region in self._free_regions)
        by_index = {region.index: region for region in self._free_regions}
        run_start = None
        run_length = 0
        previous = None
        for index in free_indices:
            if previous is None or index != previous + 1:
                run_start = index
                run_length = 1
            else:
                run_length += 1
            previous = index
            if run_length >= count:
                start = run_start + run_length - count
                return [by_index[i] for i in range(start, start + count)]
        return None

    @property
    def humongous_count(self) -> int:
        return len(self._humongous)

    @property
    def humongous_bytes(self) -> int:
        regions = sum(len(run) for run in self._humongous.values())
        return regions * self.region_size

    def is_humongous(self, obj: HeapObject) -> bool:
        return obj.object_id in self._humongous

    def reclaim_dead_humongous(
        self, live_ids, only_young: bool = False
    ) -> Tuple[int, int]:
        """Free the regions of humongous objects no longer reachable.

        ``live_ids`` is either a ``Set[int]`` of live object ids or an
        ``int`` mark epoch (an object is live iff ``obj.mark_epoch`` equals
        it) — collectors on the fast path pass the epoch of their latest
        trace.

        Returns ``(objects_reclaimed, bytes_freed)``.  Collectors call
        this during their collections (G1 reclaims dead humongous
        objects eagerly at every young pause since 8u40).  With
        ``only_young`` (remembered-set collections, whose live set covers
        only the young generation) tenured humongous objects are left
        alone.
        """
        use_epoch = isinstance(live_ids, int)
        reclaimed = 0
        freed_bytes = 0
        for object_id in list(self._humongous):
            run = self._humongous[object_id]
            first = run[0].objects[0] if run[0].objects else None
            if use_epoch:
                if first is not None and first.mark_epoch == live_ids:
                    continue
            elif object_id in live_ids:
                continue
            if only_young and (first is None or first.gen_id != YOUNG_GEN):
                continue
            for region in self._humongous.pop(object_id):
                freed_bytes += region.size
                self.free_region(region)
            reclaimed += 1
        return reclaimed, freed_bytes

    # -- reference mutation (store barriers) ---------------------------------------

    def write_ref(self, parent: HeapObject, child: HeapObject) -> None:
        """Add ``parent -> child``; dirties the parent's pages."""
        parent._append_ref(child)
        self._dirty_object(parent)
        if parent.gen_id != YOUNG_GEN and child.gen_id == YOUNG_GEN:
            self.old_to_young_remset[parent.object_id] = parent
        if self.ref_write_listeners:
            for listener in self.ref_write_listeners:
                listener(parent, child)

    def remove_ref(self, parent: HeapObject, child: HeapObject) -> None:
        """Drop one ``parent -> child`` edge; dirties the parent's pages."""
        parent._remove_ref(child)
        self._dirty_object(parent)
        if self.ref_write_listeners:
            for listener in self.ref_write_listeners:
                listener(parent, None)

    def replace_refs(self, parent: HeapObject, children: Iterable[HeapObject]) -> None:
        """Replace all outgoing edges of ``parent``; dirties its pages."""
        parent._replace_refs(children)
        self._dirty_object(parent)
        if parent.gen_id != YOUNG_GEN and any(
            child.gen_id == YOUNG_GEN for child in parent._refs
        ):
            self.old_to_young_remset[parent.object_id] = parent
        if self.ref_write_listeners:
            for listener in self.ref_write_listeners:
                listener(parent, None)

    def clear_refs(self, parent: HeapObject) -> None:
        self.replace_refs(parent, ())

    def _dirty_object(self, obj: HeapObject) -> None:
        if obj.address >= 0:
            self.page_table.mark_dirty_range(obj.address, obj.size)

    # -- tracing --------------------------------------------------------------------

    def new_mark_epoch(self, partial: bool = False) -> int:
        """Advance and return the mark epoch for a fresh trace.

        Every trace — full-heap or partial — must call this first, so
        marks from prior cycles can never be mistaken for current ones.
        """
        self.mark_epoch += 1
        if partial:
            self.partial_trace_count += 1
        else:
            self.full_trace_count += 1
        return self.mark_epoch

    def trace_live(self, roots: Iterable[HeapObject]) -> List[HeapObject]:
        """Return every object reachable from ``roots`` (iterative DFS).

        Liveness is recorded as a mark epoch on each object instead of in
        a per-cycle visited set: marking is one int store, the membership
        test one int compare, and no set is ever built or hashed.  Children
        already marked are elided at push time; the ones that slip through
        (pushed twice before their first pop) are dropped at pop time, so
        the visit order — and hence the returned list — is identical to the
        historical visited-set DFS.
        """
        epoch = self.new_mark_epoch()
        live: List[HeapObject] = []
        append = live.append
        stack: List[HeapObject] = [r for r in roots if r is not None]
        pop = stack.pop
        push = stack.append
        while stack:
            obj = pop()
            if obj.mark_epoch == epoch:
                continue
            obj.mark_epoch = epoch
            append(obj)
            for child in obj._refs:
                if child.mark_epoch != epoch:
                    push(child)
        return live

    # -- evacuation -------------------------------------------------------------------

    def evacuate(
        self,
        regions: Sequence[Region],
        live,
        source_gen: Generation,
        destination_for,
    ) -> Tuple[int, int, int]:
        """Copy live objects out of ``regions`` and reclaim the regions.

        Args:
            regions: collection-set regions (must belong to ``source_gen``).
            live: an ``int`` mark epoch from the collector's latest trace
                (an object survives iff ``obj.mark_epoch`` equals it), an
                :class:`~repro.core.idset.IdSet`, or a ``Set[int]`` of
                reachable object ids.
            source_gen: generation owning the regions.
            destination_for: an :class:`~repro.heap.evacuation.EvacuationPlan`
                (the vectorized path every shipped collector uses) or a
                legacy per-object callable ``obj -> Generation``.

        Returns:
            ``(survivor_bytes, promoted_bytes, scanned_objects)`` where
            promoted bytes are those copied into a *different* generation.
        """
        if isinstance(destination_for, EvacuationPlan):
            return self._evacuate_columnar(
                regions, live, source_gen, destination_for
            )
        return self._evacuate_objects(regions, live, source_gen, destination_for)

    def _evacuate_columnar(
        self,
        regions: Sequence[Region],
        live,
        source_gen: Generation,
        plan: EvacuationPlan,
    ) -> Tuple[int, int, int]:
        """Run-at-a-time evacuation over the region columns.

        Per source region: one bulk occupancy subtraction, one columnar
        mark pass collapsing liveness into position runs, a plan split
        into maximal same-destination sub-runs (lane-arithmetic aging for
        tenuring plans), and a column-slice copy per placed chunk.  The
        observable results — addresses, page bits, occupancy counters,
        remembered-set insertions, byte accounting — are identical to the
        historical per-object loop, object for object.
        """
        survivor_bytes = 0
        promoted_bytes = 0
        scanned = 0
        page_table = self.page_table
        sync_ages = plan.sync_ages
        remset = self.old_to_young_remset
        for region in regions:
            source_gen.release_region(region)
        for region in regions:
            count = len(region.objects)
            scanned += count
            if count == 0:
                self.free_region(region)
                continue
            # Every scanned copy disappears (survivors move, the rest die):
            # one bulk occupancy pass replaces per-object untracking.
            page_table.adjust_occupancy_run(
                region.base, region._offsets, 0, count, region.top, -1
            )
            source_gen_id = region.gen_id
            for start, stop, dest in plan.split(region, region.live_runs(live)):
                placed = dest.place_slice(
                    page_table, region, start, stop, sync_ages=sync_ages
                )
                dest_gen_id = dest.gen_id
                if dest_gen_id != source_gen_id:
                    promoted_bytes += placed
                else:
                    survivor_bytes += placed
                if dest_gen_id != YOUNG_GEN:
                    for obj in region.objects[start:stop]:
                        if obj is None:
                            # Lazy batch placeholder: never materialized,
                            # so it cannot hold outgoing references.
                            continue
                        for child in obj._refs:
                            if child.gen_id == YOUNG_GEN:
                                # Promotion created an old->young edge.
                                remset[obj.object_id] = obj
                                break
            # Occupancy already handed over; don't untrack again on free.
            region.wipe_contents()
            self.free_region(region)
        return survivor_bytes, promoted_bytes, scanned

    def _evacuate_objects(
        self,
        regions: Sequence[Region],
        live,
        source_gen: Generation,
        destination_for,
    ) -> Tuple[int, int, int]:
        """Legacy per-object evacuation (callable destination policies)."""
        use_epoch = isinstance(live, int)
        survivor_bytes = 0
        promoted_bytes = 0
        scanned = 0
        page_table = self.page_table
        for region in regions:
            source_gen.release_region(region)
        for region in regions:
            for obj in region.objects:
                scanned += 1
                # The old copy disappears whether or not the object
                # survives; untrack before allocation rewrites the address.
                page_table.untrack_object(obj.address, obj.size)
                if use_epoch:
                    if obj.mark_epoch != live:
                        continue
                elif obj.object_id not in live:
                    continue
                dest = destination_for(obj)
                address = dest.allocate(obj)
                page_table.mark_written_range(address, obj.size)
                page_table.track_object(address, obj.size)
                if dest.gen_id != region.gen_id:
                    promoted_bytes += obj.size
                else:
                    survivor_bytes += obj.size
                if dest.gen_id != YOUNG_GEN and any(
                    child.gen_id == YOUNG_GEN for child in obj._refs
                ):
                    # Promotion created an old->young edge.
                    self.old_to_young_remset[obj.object_id] = obj
            # Occupancy already handed over; don't untrack again on free.
            region.wipe_contents()
            self.free_region(region)
        return survivor_bytes, promoted_bytes, scanned

    # -- region queries ----------------------------------------------------------------

    def region_of_address(self, address: int) -> Region:
        if address < 0 or address >= len(self._regions) * self.region_size:
            raise OutOfMemoryError(f"address {address:#x} outside the heap")
        return self._regions[address // self.region_size]

    def live_bytes_by_region(
        self, live_objects: Iterable[HeapObject]
    ) -> Dict[int, int]:
        """Map region index -> bytes of live data it holds."""
        per_region: Dict[int, int] = {}
        region_size = self.region_size
        for obj in live_objects:
            if obj.address < 0:
                continue
            index = obj.address // region_size
            per_region[index] = per_region.get(index, 0) + obj.size
        return per_region

    # -- invariant verification ---------------------------------------------------------

    def verify(self) -> None:
        """Check structural invariants; raises ``AssertionError`` on breakage.

        Used by property tests and available for debugging (like HotSpot's
        ``-XX:+VerifyBeforeGC``).  Checks: every region is either free or
        owned by exactly one generation (or a humongous run); bump
        pointers match object extents; generation byte accounting matches
        region contents; no two objects overlap.
        """
        owned = {}
        for gen in self.generations.values():
            for region in gen.regions:
                assert region.gen_id == gen.gen_id, (
                    f"region {region.index} tagged gen {region.gen_id} but "
                    f"owned by gen {gen.gen_id}"
                )
                assert region.index not in owned, (
                    f"region {region.index} owned twice"
                )
                owned[region.index] = gen.gen_id
        for run in self._humongous.values():
            for region in run:
                assert region.index not in owned, (
                    f"humongous region {region.index} also owned by a gen"
                )
                owned[region.index] = "humongous"
        for region in self._free_regions:
            assert region.index not in owned, (
                f"free region {region.index} also owned"
            )
            assert region.top == 0, f"free region {region.index} not reset"
        for gen in self.generations.values():
            actual = sum(r.used_bytes for r in gen.regions)
            assert gen.used_bytes == actual, (
                f"gen {gen.name}: accounted {gen.used_bytes} != {actual}"
            )
            for region in gen.regions:
                extent = sum(region._sizes)
                assert extent == region.top, (
                    f"region {region.index}: objects span {extent} bytes "
                    f"but bump pointer is {region.top}"
                )
                cursor = 0
                for slot in range(len(region._offsets)):
                    assert region._offsets[slot] == cursor, (
                        f"region {region.index} slot {slot}: offset "
                        f"{region._offsets[slot]}, expected {cursor}"
                    )
                    cursor += region._sizes[slot]
                self._verify_region_columns(region)
        for region in self._free_regions:
            assert not region.objects and len(region._ids) == 0, (
                f"free region {region.index} still holds column data"
            )
        # The incrementally maintained page occupancy counters must agree
        # with a from-scratch recount of every object present in the heap
        # (live or dead — occupancy is presence, not reachability).
        expected = [0] * self.page_table.num_pages
        page_size = self.page_size
        for region in self._regions:
            base = region.base
            offsets = region._offsets
            region_sizes = region._sizes
            for slot in range(len(offsets)):
                address = base + offsets[slot]
                first = address // page_size
                last = (address + region_sizes[slot] - 1) // page_size
                for page in range(first, last + 1):
                    expected[page] += 1
        actual_occupancy = self.page_table.occupancy_snapshot()
        assert actual_occupancy == expected, (
            "page occupancy counters drifted from object placement: "
            + str(
                [
                    (page, expected[page], actual_occupancy[page])
                    for page in range(len(expected))
                    if expected[page] != actual_occupancy[page]
                ][:10]
            )
        )

    def _verify_region_columns(self, region: Region) -> None:
        """Columns and views must describe the same objects slot for slot."""
        count = len(region.objects)
        for column in (
            region._ids,
            region._sizes,
            region._sites,
            region._offsets,
            region._ages,
        ):
            assert len(column) == count, (
                f"region {region.index}: column length {len(column)} != "
                f"{count} objects"
            )
        ids = region._ids
        expected_breaks = [
            slot
            for slot in range(1, count)
            if ids[slot] != ids[slot - 1] + 1
        ]
        assert list(region._id_breaks) == expected_breaks, (
            f"region {region.index}: id-break index "
            f"{list(region._id_breaks)} != recomputed {expected_breaks}"
        )
        base = region.base
        gen_id = region.gen_id
        for slot, obj in enumerate(region.objects):
            if obj is None:
                # Lazy batch placeholder: the columns alone describe it.
                continue
            assert obj._region is region and obj._slot == slot, (
                f"object {obj.object_id} view points at "
                f"({obj._region and obj._region.index}, {obj._slot}), "
                f"expected ({region.index}, {slot})"
            )
            assert (
                region._ids[slot] == obj.object_id
                and region._sizes[slot] == obj.size
                and region._sites[slot] == obj.site_id
                and region._ages[slot] == obj.age
                and base + region._offsets[slot] == obj.address
            ), f"region {region.index} slot {slot}: column/view mismatch"
            assert obj.gen_id == gen_id, (
                f"object {obj.object_id} tagged gen {obj.gen_id} inside "
                f"a gen-{gen_id} region"
            )

    # -- page advice (paper §3.2 / §4.2) --------------------------------------------

    def mark_unused_pages_no_need(
        self,
        live_objects: Iterable[HeapObject],
        live_ids: Optional[IdSet] = None,
    ) -> int:
        """Set the no-need bit on every page holding no live object.

        This models the NG2C modification that POLM2's Recorder invokes
        before each snapshot: walk the heap, madvise away pages with no
        reachable data so CRIU skips them.  Returns the number of pages
        marked.

        Pages of regions that were just evacuated and freed are advised
        away too: they are still dirty from their old contents but hold
        nothing reachable.  Note liveness here is *reachability*, not page
        occupancy — a page can be fully occupied by dead-but-not-yet
        -reclaimed objects and still be advised away — so the sweep takes
        the live set, not the occupancy counters.

        The sweep rides the columnar kernels: per region, one
        :meth:`Region.live_runs` pass, then one page-span slice store per
        *run* of live objects (objects tile contiguously, so a run's page
        span is the union of its objects' spans).  Humongous objects are
        handled off the ``_humongous`` index.  Callers that already hold
        the live set as an :class:`IdSet` pass it via ``live_ids`` to
        skip rebuilding it.
        """
        table = self.page_table
        needed = bytearray(table.num_pages)
        page_size = self.page_size
        if live_ids is None:
            live_ids = IdSet(obj.object_id for obj in live_objects)
        for gen in self.generations.values():
            for region in gen.regions:
                if not region.objects:
                    continue
                base = region.base
                offsets = region._offsets
                count = len(offsets)
                top = region.top
                for a, b in region.live_runs(live_ids):
                    first = (base + offsets[a]) // page_size
                    end = base + (top if b == count else offsets[b])
                    last = (end - 1) // page_size
                    if first == last:
                        needed[first] = 1
                    else:
                        needed[first : last + 1] = b"\x01" * (last + 1 - first)
        for object_id, run in self._humongous.items():
            if object_id in live_ids:
                obj = run[0].objects[0]
                first = obj.address // page_size
                last = (obj.address + obj.size - 1) // page_size
                needed[first : last + 1] = b"\x01" * (last + 1 - first)
        return table.rewrite_no_need(needed)
