"""Evacuation plans: destination policies the columnar engine can vectorize.

The historical evacuation API took a per-object callable
(``destination_for(obj) -> Generation``), which forces the engine back to
one Python call per survivor.  A plan expresses the same policy over
*position runs* of a region's columns, so the engine can split each live
run into maximal same-destination sub-runs and move every sub-run as one
column-slice copy.  ``SimHeap.evacuate`` accepts either form; the shipped
collectors all pass plans.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from repro.heap.region import Region
from repro.heap.space import Generation

#: A maximal same-destination sub-run: positions [start, stop) -> where.
SubRun = Tuple[int, int, Generation]


class EvacuationPlan:
    """Base class: maps live position runs to destination generations."""

    #: Whether the engine must sync view ages from the age column after a
    #: copy (True only for plans that mutate ages).
    sync_ages = False

    def split(
        self, region: Region, runs: List[Tuple[int, int]]
    ) -> Iterator[SubRun]:
        raise NotImplementedError


class FixedDestination(EvacuationPlan):
    """Every survivor goes to one generation (mixed, full, compaction)."""

    __slots__ = ("generation",)

    def __init__(self, generation: Generation) -> None:
        self.generation = generation

    def split(
        self, region: Region, runs: List[Tuple[int, int]]
    ) -> Iterator[SubRun]:
        generation = self.generation
        for start, stop in runs:
            yield start, stop, generation


class SurvivorTenuring(EvacuationPlan):
    """Young-collection policy: every survivor ages by one collection and
    is promoted once its age reaches the tenuring threshold.

    The age bump and the threshold compare run as lane arithmetic over the
    packed age column (:meth:`Region.age_up_and_split`); eden regions —
    where every lane comes out below the threshold — stay a single
    young-bound sub-run.
    """

    sync_ages = True

    __slots__ = ("young", "old", "threshold")

    def __init__(self, young: Generation, old: Generation, threshold: int) -> None:
        self.young = young
        self.old = old
        self.threshold = threshold

    def split(
        self, region: Region, runs: List[Tuple[int, int]]
    ) -> Iterator[SubRun]:
        young = self.young
        old = self.old
        threshold = self.threshold
        for start, stop in runs:
            for a, b, promote in region.age_up_and_split(start, stop, threshold):
                yield a, b, old if promote else young
