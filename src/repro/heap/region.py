"""Heap regions: fixed-size, bump-allocated slices of the address space.

Both G1 and NG2C organize the heap as equal-sized regions; a generation is
a set of regions.  Evacuation copies live objects out of a region and
returns the whole region to the free list — which is exactly why
pretenuring pays off: when objects with the same lifetime share regions,
entire regions die together and are reclaimed *without copying anything*.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import RegionFullError
from repro.heap.objects import HeapObject


class Region:
    """A fixed-size region with a bump pointer."""

    __slots__ = ("index", "base", "size", "top", "gen_id", "objects")

    def __init__(self, index: int, base: int, size: int) -> None:
        self.index = index
        self.base = base
        self.size = size
        self.top = 0
        self.gen_id: Optional[int] = None
        self.objects: List[HeapObject] = []

    # -- allocation -----------------------------------------------------------

    def has_room(self, size: int) -> bool:
        return self.top + size <= self.size

    def bump_allocate(self, obj: HeapObject) -> int:
        """Place ``obj`` at the bump pointer and return its address."""
        if not self.has_room(obj.size):
            raise RegionFullError(
                f"region {self.index}: {obj.size} bytes requested, "
                f"{self.size - self.top} free"
            )
        address = self.base + self.top
        self.top += obj.size
        obj.address = address
        self.objects.append(obj)
        return address

    # -- accounting -----------------------------------------------------------

    @property
    def used_bytes(self) -> int:
        return self.top

    @property
    def free_bytes(self) -> int:
        return self.size - self.top

    def live_bytes(self, live) -> int:
        """Bytes occupied by live objects in this region.

        ``live`` is either a ``set[int]`` of live object ids or an ``int``
        mark epoch (an object counts iff ``obj.mark_epoch`` equals it).
        """
        if isinstance(live, int):
            return sum(obj.size for obj in self.objects if obj.mark_epoch == live)
        return sum(obj.size for obj in self.objects if obj.object_id in live)

    def page_span(self, page_size: int) -> range:
        """Pages covered by the *used* part of this region."""
        if self.top == 0:
            return range(0)
        first = self.base // page_size
        last = (self.base + self.top - 1) // page_size
        return range(first, last + 1)

    def full_page_span(self, page_size: int) -> range:
        """Pages covered by the whole region, used or not."""
        first = self.base // page_size
        last = (self.base + self.size - 1) // page_size
        return range(first, last + 1)

    # -- lifecycle ------------------------------------------------------------

    def reset(self) -> None:
        """Return the region to the free pool (contents become garbage)."""
        self.top = 0
        self.gen_id = None
        self.objects.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Region(index={self.index}, gen={self.gen_id}, "
            f"used={self.used_bytes}/{self.size}, objs={len(self.objects)})"
        )
