"""Heap regions: fixed-size, bump-allocated slices of the address space.

Both G1 and NG2C organize the heap as equal-sized regions; a generation is
a set of regions.  Evacuation copies live objects out of a region and
returns the whole region to the free list — which is exactly why
pretenuring pays off: when objects with the same lifetime share regions,
entire regions die together and are reclaimed *without copying anything*.

Columnar storage
----------------

A region stores its objects struct-of-arrays: parallel ``array('q')``
columns hold object id, size, allocation-site id, start offset, and age,
and ``objects`` keeps the matching :class:`HeapObject` views.  Two facts
make the layout compact: a region's generation is uniform (``gen_id`` is
one scalar, not a column), and bump allocation tiles ``[0, top)`` without
gaps, so the offset column is a prefix sum and ``base + offset`` *is* the
address column.  The epoch-mark column (``_marks``) is materialized per
collection by :meth:`live_flags` and collapsed to position runs, which is
what lets the collector kernels work in contiguous-slice units:

* marking — one bulk column<->IdSet membership pass (big-int bit windows)
  or one epoch comparison sweep, producing a byte mask whose runs are
  found with C-level ``find``;
* ``live_bytes`` — a masked column sum: per live run, one subtraction of
  prefix offsets;
* aging / promotion selection — one vectorized pass over the age column
  using 64-bit lane arithmetic on the packed big int;
* evacuation — :meth:`absorb_slice` copies column slices between regions
  and rebases offsets with a single lane add.

Views and columns are kept in lockstep by every mutation path; dead views
keep their last placement values when a region's columns are discarded
(see :mod:`repro.heap.objects`).
"""

from __future__ import annotations

import warnings
from array import array
from bisect import bisect_left, bisect_right
from typing import List, Optional, Tuple

from repro.core.idset import IdSet
from repro.errors import RegionFullError
from repro.heap.objects import HeapObject

#: One 64-bit little-endian lane holding the value 1; repeated to build
#: the "all lanes = 1" constant for n-lane arithmetic.
_ONE_LANE = b"\x01" + b"\x00" * 7


def lane_ones(count: int) -> int:
    """The n-lane constant 0x0001_0001...: value 1 in every 64-bit lane."""
    return int.from_bytes(_ONE_LANE * count, "little")


def _pack_lanes(values: array, start: int, stop: int) -> int:
    """Pack ``values[start:stop]`` into one big int, 64 bits per lane."""
    return int.from_bytes(values[start:stop].tobytes(), "little")


def _unpack_lanes(packed: int, count: int) -> array:
    """Inverse of :func:`_pack_lanes` for ``count`` lanes."""
    out = array("q")
    out.frombytes(packed.to_bytes(count * 8, "little"))
    return out


def _flags_to_bounds(flags) -> Tuple[List[int], List[int]]:
    """Collapse a 0/1 byte mask into parallel run start/stop lists.

    Kept as two flat lists (not tuples) so callers can feed them straight
    into ``map``/``sum`` without per-run unpacking.
    """
    starts: List[int] = []
    stops: List[int] = []
    append_start = starts.append
    append_stop = stops.append
    find = flags.find
    n = len(flags)
    i = find(1)
    while i >= 0:
        append_start(i)
        j = find(0, i + 1)
        if j < 0:
            append_stop(n)
            break
        append_stop(j)
        i = find(1, j + 1)
    return starts, stops


def _flags_to_runs(flags) -> List[Tuple[int, int]]:
    """Collapse a 0/1 byte mask into half-open ``(start, stop)`` runs."""
    runs: List[Tuple[int, int]] = []
    append = runs.append
    find = flags.find
    n = len(flags)
    i = find(1)
    while i >= 0:
        j = find(0, i + 1)
        if j < 0:
            append((i, n))
            break
        append((i, j))
        i = find(1, j + 1)
    return runs


#: Maps the ASCII digits of a binary string to 0/1 flag bytes.
_BITCHAR_TO_FLAG = bytes(
    1 if value == 0x31 else 0 for value in range(256)
)


def _mask_to_byteflags(mask: int, count: int) -> bytes:
    """Expand a ``count``-bit membership mask to one flag byte per bit.

    Every step is a C-level pass (binary formatting, zero padding,
    reversal, translation), so the expansion is O(count) with no Python
    per-bit work — the trick that keeps mask handling cheaper than one
    set probe per object.
    """
    return (
        format(mask, "b").zfill(count)[::-1].encode("ascii")
        .translate(_BITCHAR_TO_FLAG)
    )


class Region:
    """A fixed-size region with a bump pointer and columnar object storage."""

    __slots__ = (
        "index",
        "base",
        "size",
        "top",
        "gen_id",
        "objects",
        "_ids",
        "_sizes",
        "_sites",
        "_offsets",
        "_ages",
        "_marks",
        "_id_breaks",
    )

    def __init__(self, index: int, base: int, size: int) -> None:
        self.index = index
        self.base = base
        self.size = size
        self.top = 0
        self.gen_id: Optional[int] = None
        #: Lazy object views, parallel to the columns below.  Batch
        #: allocation leaves ``None`` placeholders (garbage-from-birth
        #: objects that nothing can reach); :meth:`view_at` materializes
        #: a view on demand.
        self.objects: List[Optional[HeapObject]] = []
        self._ids = array("q")
        self._sizes = array("q")
        self._sites = array("q")
        self._offsets = array("q")
        self._ages = array("q")
        #: Epoch-mark column: the most recently materialized liveness mask
        #: (one byte per object), kept for inspection by tests/benchmarks.
        self._marks = bytearray()
        #: Sorted slots i (0 < i < n) where ``ids[i] != ids[i-1] + 1``.
        #: Maintained incrementally on every append, so block discovery in
        #: :meth:`_id_blocks` is O(breaks) — no repacking of the column.
        self._id_breaks = array("q")

    # -- column access (read-only by convention) --------------------------------

    @property
    def id_column(self) -> array:
        return self._ids

    @property
    def size_column(self) -> array:
        return self._sizes

    @property
    def site_column(self) -> array:
        return self._sites

    @property
    def offset_column(self) -> array:
        return self._offsets

    @property
    def age_column(self) -> array:
        return self._ages

    @property
    def mark_column(self) -> bytearray:
        return self._marks

    # -- allocation -----------------------------------------------------------

    def has_room(self, size: int) -> bool:
        return self.top + size <= self.size

    def bump_allocate(self, obj: HeapObject) -> int:
        """Place ``obj`` at the bump pointer and return its address."""
        top = self.top
        if top + obj.size > self.size:
            raise RegionFullError(
                f"region {self.index}: {obj.size} bytes requested, "
                f"{self.size - top} free"
            )
        address = self.base + top
        self.top = top + obj.size
        obj.address = address
        obj._region = self
        obj._slot = len(self.objects)
        ids = self._ids
        if ids and obj.object_id != ids[-1] + 1:
            self._id_breaks.append(len(ids))
        self._ids.append(obj.object_id)
        self._sizes.append(obj.size)
        self._sites.append(obj.site_id)
        self._offsets.append(top)
        self._ages.append(obj._age)
        self.objects.append(obj)
        return address

    def append_batch(
        self,
        first_id: int,
        sizes: array,
        starts: array,
        start: int,
        stop: int,
        site_id: int,
    ) -> Tuple[int, int, int]:
        """Bulk-append batch objects ``[start, stop)`` at the bump pointer.

        ``sizes`` and ``starts`` are the whole batch's size column and its
        exclusive prefix sums (``starts[i]`` = bytes before object ``i``);
        ids are consecutive from ``first_id``.  Columns are extended with
        C-level slice/range operations and the offset slice is rebased
        with one lane add, exactly like :meth:`absorb_slice`.  Object
        views are **not** built: ``None`` placeholders are appended and
        :meth:`view_at` materializes a view on demand.  Returns
        ``(dest_top, span_bytes, base_slot)``; the caller handles page
        accounting and generation bookkeeping.
        """
        count = stop - start
        dest_top = self.top
        if stop < len(starts):
            span = starts[stop] - starts[start]
        else:
            span = starts[stop - 1] + sizes[stop - 1] - starts[start]
        if dest_top + span > self.size:
            raise RegionFullError(
                f"region {self.index}: {span} bytes requested, "
                f"{self.size - dest_top} free"
            )
        delta = dest_top - starts[start]
        if delta == 0:
            rebased = starts[start:stop]
        else:
            packed = _pack_lanes(starts, start, stop)
            if delta > 0:
                packed += delta * lane_ones(count)
            else:
                packed -= (-delta) * lane_ones(count)
            rebased = _unpack_lanes(packed, count)
        base_slot = len(self.objects)
        ids = self._ids
        if ids and first_id + start != ids[-1] + 1:
            self._id_breaks.append(base_slot)
        ids.extend(array("q", range(first_id + start, first_id + stop)))
        self._sizes.extend(sizes[start:stop])
        self._sites.extend(array("q", (site_id,)) * count)
        self._ages.extend(array("q", bytes(8 * count)))
        self._offsets.extend(rebased)
        self.objects.extend([None] * count)
        self.top = dest_top + span
        return dest_top, span, base_slot

    def view_at(self, slot: int) -> HeapObject:
        """The view for ``slot``, materializing a lazy placeholder.

        Batch-allocated slots hold ``None`` until someone needs the boxed
        object; the rebuilt view reuses the column-recorded identity hash
        (no fresh id is drawn) and is wired back into ``objects`` so the
        view/column lockstep invariant holds from then on.
        """
        view = self.objects[slot]
        if view is None:
            view = HeapObject.from_columns(
                object_id=self._ids[slot],
                size=self._sizes[slot],
                site_id=self._sites[slot],
                age=self._ages[slot],
                gen_id=self.gen_id if self.gen_id is not None else -1,
                address=self.base + self._offsets[slot],
            )
            view._region = self
            view._slot = slot
            self.objects[slot] = view
        return view

    def adopt_humongous(self, obj: HeapObject) -> None:
        """Register an over-region-size object whose run starts here.

        The heap has already claimed the backing regions and set ``top``;
        the object occupies ``[base, base + size)`` and only the run's
        first region carries its columns (a single lane).
        """
        obj._region = self
        obj._slot = len(self.objects)
        ids = self._ids
        if ids and obj.object_id != ids[-1] + 1:
            self._id_breaks.append(len(ids))
        self._ids.append(obj.object_id)
        self._sizes.append(obj.size)
        self._sites.append(obj.site_id)
        self._offsets.append(0)
        self._ages.append(obj._age)
        self.objects.append(obj)

    # -- accounting -----------------------------------------------------------

    @property
    def used_bytes(self) -> int:
        return self.top

    @property
    def free_bytes(self) -> int:
        return self.size - self.top

    # -- columnar liveness kernels ---------------------------------------------

    def live_flags(self, live) -> bytearray:
        """Materialize the epoch-mark column: one byte per object, 1 = live.

        ``live`` is an ``int`` mark epoch, an :class:`IdSet`, or a plain
        ``set``/``frozenset`` of object ids.
        """
        if isinstance(live, int):
            # Lazy batch placeholders (None) were garbage from birth and
            # can never be epoch-marked.
            flags = bytearray(
                1 if o is not None and o.mark_epoch == live else 0
                for o in self.objects
            )
        elif isinstance(live, IdSet):
            flags = bytearray(len(self._ids))
            for start, stop in self._id_blocks():
                count = stop - start
                mask = live.extract_mask(self._ids[start], count)
                if mask == 0:
                    continue
                if mask == (1 << count) - 1:
                    flags[start:stop] = b"\x01" * count
                else:
                    flags[start:stop] = _mask_to_byteflags(mask, count)
        else:
            flags = bytearray(
                1 if oid in live else 0 for oid in self._ids
            )
        self._marks = flags
        return flags

    def live_runs(self, live) -> List[Tuple[int, int]]:
        """Half-open position runs of live objects, in column order."""
        return _flags_to_runs(self.live_flags(live))

    def _id_blocks(self) -> List[Tuple[int, int]]:
        """Maximal runs of *consecutive* ids in the id column.

        The break positions are maintained incrementally by every append
        path (:meth:`bump_allocate`, :meth:`adopt_humongous`,
        :meth:`absorb_slice`), so this is O(breaks) with no per-call scan
        of the column — on allocation-order columns ids are consecutive
        for whole regions at a time and the break list is tiny.
        """
        n = len(self._ids)
        if n == 0:
            return []
        breaks = self._id_breaks
        if not breaks:
            return [(0, n)]
        blocks: List[Tuple[int, int]] = []
        start = 0
        for stop in breaks:
            blocks.append((start, stop))
            start = stop
        blocks.append((start, n))
        return blocks

    def run_bytes(self, start: int, stop: int) -> int:
        """Bytes spanned by objects ``[start, stop)`` (contiguous tiling)."""
        if start >= stop:
            return 0
        offsets = self._offsets
        end = self.top if stop == len(offsets) else offsets[stop]
        return end - offsets[start]

    def live_bytes(self, live) -> int:
        """Bytes occupied by live objects in this region.

        ``live`` is an ``int`` mark epoch (an object counts iff
        ``obj.mark_epoch`` equals it), an :class:`IdSet`, or a plain
        ``set``/``frozenset`` of live object ids.  All forms funnel
        through the columnar mark column and a run-sum over the offset
        prefix sums; any other ``live`` type falls back to the deprecated
        per-object scan.
        """
        if not isinstance(live, (int, IdSet, set, frozenset)):
            warnings.warn(
                "per-object live_bytes fallback is deprecated; pass a mark "
                "epoch, an IdSet, or a set of object ids",
                DeprecationWarning,
                stacklevel=2,
            )
            return sum(obj.size for obj in self.objects if obj.object_id in live)
        starts, stops = _flags_to_bounds(self.live_flags(live))
        if not starts:
            return 0
        offsets = self._offsets
        get = offsets.__getitem__
        # Run spans sum telescopically: sum(offsets[stop]) - sum(offsets
        # [start]), with the open tail clamped to ``top`` — both sums are
        # C-level map reductions, no per-run Python arithmetic.
        total = -sum(map(get, starts))
        if stops[-1] == len(offsets):
            return total + self.top + sum(map(get, stops[:-1]))
        return total + sum(map(get, stops))

    # -- vectorized aging (tenuring input) ---------------------------------------

    def age_up_and_split(
        self, start: int, stop: int, threshold: int
    ) -> List[Tuple[int, int, bool]]:
        """Increment ages of objects ``[start, stop)`` and split by tenuring.

        One lane-add bumps every age in the run; one biased lane compare
        computes ``age >= threshold`` per lane without unpacking.  Returns
        maximal sub-runs ``(a, b, promote)`` in column order.  The column
        is written back; view ages are synced by the evacuation fixup.
        """
        count = stop - start
        if count <= 0:
            return []
        if not 0 < threshold <= (1 << 62):
            # Degenerate thresholds (never used by the shipped collectors)
            # take the scalar path rather than risking lane carries.
            ages = self._ages
            out: List[Tuple[int, int, bool]] = []
            for i in range(start, stop):
                ages[i] += 1
                promote = ages[i] >= threshold
                if out and out[-1][2] == promote:
                    out[-1] = (out[-1][0], i + 1, promote)
                else:
                    out.append((i, i + 1, promote))
            return out
        ones = lane_ones(count)
        packed = _pack_lanes(self._ages, start, stop) + ones
        self._ages[start:stop] = _unpack_lanes(packed, count)
        msb = ones << 63
        mask = (packed + ((1 << 63) - threshold) * ones) & msb
        if mask == 0:
            return [(start, stop, False)]
        if mask == msb:
            return [(start, stop, True)]
        # Mixed run: lane verdicts are the high byte of each lane.
        verdicts = mask.to_bytes(count * 8, "little")[7::8]
        out = []
        run_start = start
        current = verdicts[0]
        for i in range(1, count):
            if verdicts[i] != current:
                out.append((run_start, start + i, current != 0))
                run_start = start + i
                current = verdicts[i]
        out.append((run_start, stop, current != 0))
        return out

    # -- columnar evacuation ------------------------------------------------------

    def absorb_slice(
        self, src: "Region", start: int, stop: int
    ) -> Tuple[int, int, int, array, List[HeapObject]]:
        """Bulk-copy objects ``src[start:stop)`` onto this region's tail.

        Columns move as C-level slice copies; offsets are rebased with a
        single lane add/subtract (no inter-lane carry: offsets fit well
        under 2^63 and every source offset is >= the rebase delta when it
        is negative).  Returns ``(dest_top, span_bytes, base_slot,
        rebased_offsets, moved_views)``; the caller fixes up views, page
        accounting, and generation bookkeeping.
        """
        count = stop - start
        dest_top = self.top
        src_offsets = src._offsets
        span = src.run_bytes(start, stop)
        if dest_top + span > self.size:
            raise RegionFullError(
                f"region {self.index}: {span} bytes requested, "
                f"{self.size - dest_top} free"
            )
        delta = dest_top - src_offsets[start]
        if delta == 0:
            rebased = src_offsets[start:stop]
        else:
            packed = _pack_lanes(src_offsets, start, stop)
            if delta > 0:
                packed += delta * lane_ones(count)
            else:
                packed -= (-delta) * lane_ones(count)
            rebased = _unpack_lanes(packed, count)
        base_slot = len(self.objects)
        ids = self._ids
        if ids and src._ids[start] != ids[-1] + 1:
            self._id_breaks.append(base_slot)
        src_breaks = src._id_breaks
        lo = bisect_right(src_breaks, start)
        hi = bisect_left(src_breaks, stop)
        if lo < hi:
            shift = base_slot - start
            self._id_breaks.extend(k + shift for k in src_breaks[lo:hi])
        self._ids.extend(src._ids[start:stop])
        self._sizes.extend(src._sizes[start:stop])
        self._sites.extend(src._sites[start:stop])
        self._ages.extend(src._ages[start:stop])
        self._offsets.extend(rebased)
        views = src.objects[start:stop]
        self.objects.extend(views)
        self.top = dest_top + span
        return dest_top, span, base_slot, rebased, views

    # -- page spans ----------------------------------------------------------------

    def page_span(self, page_size: int) -> range:
        """Pages covered by the *used* part of this region."""
        if self.top == 0:
            return range(0)
        first = self.base // page_size
        last = (self.base + self.top - 1) // page_size
        return range(first, last + 1)

    def full_page_span(self, page_size: int) -> range:
        """Pages covered by the whole region, used or not."""
        first = self.base // page_size
        last = (self.base + self.size - 1) // page_size
        return range(first, last + 1)

    # -- lifecycle ------------------------------------------------------------

    def wipe_contents(self) -> None:
        """Discard columns and views (contents became garbage or moved).

        Views still attached here are detached so a later mutation on a
        dead view can never write into a recycled region's columns;
        evacuated survivors already point at their destination region and
        are left alone.
        """
        for view in self.objects:
            if view is not None and view._region is self:
                view._region = None
                view._slot = -1
        del self.objects[:]
        del self._ids[:]
        del self._sizes[:]
        del self._sites[:]
        del self._offsets[:]
        del self._ages[:]
        del self._marks[:]
        del self._id_breaks[:]

    def reset(self) -> None:
        """Return the region to the free pool (contents become garbage)."""
        self.wipe_contents()
        self.top = 0
        self.gen_id = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Region(index={self.index}, gen={self.gen_id}, "
            f"used={self.used_bytes}/{self.size}, objs={len(self.objects)})"
        )
