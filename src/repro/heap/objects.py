"""Heap objects and their headers.

A :class:`HeapObject` models a Java object as the GC and the profiler see
it: a header (identity hash code, class id, age) plus a payload size and
outgoing references.  Workload *semantics* (keys, postings, vertex values)
live in plain Python attached elsewhere; the simulated heap only cares
about sizes, references, and placement.

Since the columnar heap storage landed, a ``HeapObject`` is a *view*: the
region holding it mirrors identity, size, site, placement offset, and age
in parallel ``array('q')`` columns (see :mod:`repro.heap.region`), and the
collector inner loops run over those columns instead of these boxed
records.  The view keeps plain attributes for the mutator-facing hot
paths — tracing reads ``mark_epoch``/``_refs``, write barriers read
``gen_id`` — and the heap keeps view and column in lockstep at every
placement.  Dead views are simply left behind with their last-written
placement fields (the columns of a reclaimed region are discarded), which
preserves the historical stale-read semantics floating garbage relies on.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List

#: Size in bytes of an object header (mark word + class word on HotSpot).
HEADER_BYTES = 16

_next_identity_hash = 1


def next_identity_hash() -> int:
    """Return a fresh, never-reused identity hash code.

    HotSpot computes identity hashes lazily and stores them in the object
    header so they survive moves; modelling them as a monotonic counter
    preserves the property the Analyzer relies on (paper §4.3): the id of
    an object is stable across promotion and compaction.
    """
    global _next_identity_hash
    value = _next_identity_hash
    _next_identity_hash = value + 1
    return value


def reserve_identity_hashes(count: int) -> int:
    """Reserve ``count`` consecutive identity hashes; returns the first.

    The batched allocation front-end assigns ids to a whole homogeneous
    batch at once; drawing them as one block keeps the id sequence
    identical to ``count`` scalar allocations (consecutive, in allocation
    order), which the recorder streams and golden digests depend on.
    """
    global _next_identity_hash
    first = _next_identity_hash
    _next_identity_hash = first + count
    return first


class HeapObject:
    """A simulated heap object.

    Attributes:
        object_id: Stable identity hash code, assigned at allocation and
            preserved across moves (stored in the header).
        class_id: Interned class identifier (see the runtime's code model).
        size: Total size in bytes, header included.
        site_id: Allocation-site id (0 when allocated outside any site).
        trace_id: Stack-trace id at allocation (0 when unknown).
        gen_id: Id of the generation currently holding the object.
        address: Current virtual address; changes when the object moves.
        age: Number of young collections survived (G1 tenuring input).
            A write-through property: when the object is attached to a
            region, assignments also land in the region's age column, so
            vectorized tenuring passes and per-object mutations agree.
        birth_cycle: GC cycle count at allocation time.
        mark_epoch: Heap mark epoch at which this object was last found
            reachable.  ``obj.mark_epoch == heap.mark_epoch`` means "marked
            live by the most recent trace"; marking is one int store and the
            liveness test one int compare, so no per-cycle visited set is
            ever allocated (see docs/architecture.md, "Hot paths").
    """

    __slots__ = (
        "object_id",
        "class_id",
        "size",
        "site_id",
        "trace_id",
        "gen_id",
        "address",
        "_age",
        "birth_cycle",
        "mark_epoch",
        "_refs",
        # Columnar-view backpointers: the region whose columns mirror this
        # object and the object's lane index there (-1 when detached).
        "_region",
        "_slot",
    )

    def __init__(
        self,
        size: int,
        class_id: int = 0,
        site_id: int = 0,
        trace_id: int = 0,
        birth_cycle: int = 0,
    ) -> None:
        if size < HEADER_BYTES:
            raise ValueError(
                f"object size {size} smaller than header ({HEADER_BYTES} bytes)"
            )
        self.object_id = next_identity_hash()
        self.class_id = class_id
        self.size = size
        self.site_id = site_id
        self.trace_id = trace_id
        self.gen_id = -1
        self.address = -1
        self._age = 0
        self.birth_cycle = birth_cycle
        self.mark_epoch = 0
        self._refs: List[HeapObject] = []
        self._region = None
        self._slot = -1

    @classmethod
    def from_columns(
        cls,
        object_id: int,
        size: int,
        site_id: int,
        age: int,
        gen_id: int,
        address: int,
    ) -> "HeapObject":
        """Materialize a view for a lazily allocated slot.

        Batch allocation without refs or roots leaves ``None`` placeholders
        in ``Region.objects`` (the object is garbage from birth, so nothing
        can reach it); this constructor rebuilds a view from the region
        columns *without* drawing a fresh identity hash.  ``trace_id`` and
        ``birth_cycle`` are not column-mirrored and come back as 0.
        """
        view = cls.__new__(cls)
        view.object_id = object_id
        view.class_id = 0
        view.size = size
        view.site_id = site_id
        view.trace_id = 0
        view.gen_id = gen_id
        view.address = address
        view._age = age
        view.birth_cycle = 0
        view.mark_epoch = 0
        view._refs = []
        view._region = None
        view._slot = -1
        return view

    @property
    def age(self) -> int:
        return self._age

    @age.setter
    def age(self, value: int) -> None:
        self._age = value
        region = self._region
        if region is not None:
            region._ages[self._slot] = value

    @property
    def refs(self) -> List["HeapObject"]:
        """Outgoing references (read-only view by convention).

        Mutate through :meth:`repro.heap.heap.SimHeap.write_ref` /
        :meth:`~repro.heap.heap.SimHeap.remove_ref` so that the pages
        holding the object are marked dirty, as a real store barrier would.
        """
        return self._refs

    def iter_refs(self) -> Iterator["HeapObject"]:
        return iter(self._refs)

    def _append_ref(self, target: "HeapObject") -> None:
        self._refs.append(target)

    def _remove_ref(self, target: "HeapObject") -> None:
        self._refs.remove(target)

    def _replace_refs(self, targets: Iterable["HeapObject"]) -> None:
        self._refs = list(targets)

    def page_span(self, page_size: int) -> range:
        """Indices of the pages this object occupies at its current address."""
        if self.address < 0:
            return range(0)
        first = self.address // page_size
        last = (self.address + self.size - 1) // page_size
        return range(first, last + 1)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"HeapObject(id={self.object_id}, size={self.size}, "
            f"gen={self.gen_id}, addr={self.address}, age={self.age})"
        )


def total_bytes(objects: Iterable[HeapObject]) -> int:
    """Sum of object sizes — convenience for live-byte accounting."""
    return sum(obj.size for obj in objects)


class ObjectHeaderReader:
    """Reads identity hash codes out of object headers.

    Models the Analyzer-side header walk of paper §4.3: ids recorded by the
    Recorder are matched against snapshot contents *by reading each object
    header*, never by address (addresses change when objects move).
    """

    @staticmethod
    def identity_hash(obj: HeapObject) -> int:
        return obj.object_id

    @staticmethod
    def read_all(objects: Iterable[HeapObject]) -> List[int]:
        return [obj.object_id for obj in objects]


def reset_identity_hashes() -> None:
    """Restart the identity-hash counter at 1 (fresh-process state).

    Each pipeline phase run calls this before building its VM so a cell
    computed mid-process is byte-identical to one computed in a fresh
    worker process — the sweep scheduler's cross-mode parity contract.
    Also used by tests to keep id expectations readable.
    """
    global _next_identity_hash
    _next_identity_hash = 1


# Backwards-compatible alias (the parity harness predates the rename).
_reset_identity_hashes = reset_identity_hashes
