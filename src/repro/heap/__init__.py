"""Simulated region-based heap: pages, regions, generations, objects.

This subpackage stands in for the HotSpot heap.  It models exactly the
state POLM2's mechanisms depend on:

* objects with headers carrying a *stable identity hash code* (the id the
  Recorder logs and the Analyzer matches against snapshots, paper §4.3);
* fixed-size virtual pages with kernel-style *dirty* and *no-need* bits
  (what CRIU's incremental checkpoints and the madvise optimization in
  paper §4.2 consult);
* regions grouped into generations, with bump-pointer allocation —
  the substrate both G1-like and NG2C-like collectors evacuate.
"""

from repro.heap.heap import SimHeap
from repro.heap.objects import HeapObject
from repro.heap.page import PageTable
from repro.heap.region import Region
from repro.heap.space import Generation

__all__ = ["Generation", "HeapObject", "PageTable", "Region", "SimHeap"]
