"""Generations: named sets of regions with a current allocation region."""

from __future__ import annotations

from bisect import bisect_right
from typing import Callable, Iterator, List, Optional, Tuple

from repro.errors import OutOfMemoryError
from repro.heap.objects import HeapObject
from repro.heap.region import Region

#: Callable that hands out a free region, or None when the heap is full.
RegionSource = Callable[[], Optional[Region]]


class Generation:
    """A generation is a growable set of regions sharing a lifetime class.

    NG2C creates these dynamically (``System.newGeneration``); G1 has
    exactly two (young and old).  Allocation bumps into the current
    region and claims a fresh region from the heap's free pool when the
    current one fills up.
    """

    def __init__(self, gen_id: int, name: str, region_source: RegionSource) -> None:
        self.gen_id = gen_id
        self.name = name
        self._region_source = region_source
        self.regions: List[Region] = []
        self._alloc_region: Optional[Region] = None
        self._used_bytes = 0
        #: Set True once the generation is retired (NG2C drops empty
        #: dynamic generations after collection).
        self.retired = False

    # -- allocation -----------------------------------------------------------

    def allocate(self, obj: HeapObject) -> int:
        """Place ``obj`` into this generation; returns its address.

        Raises:
            OutOfMemoryError: no current region has room and the heap has
                no free regions left.
        """
        region = self._alloc_region
        if region is None or not region.has_room(obj.size):
            region = self._claim_region(obj.size)
        address = region.bump_allocate(obj)
        obj.gen_id = self.gen_id
        self._used_bytes += obj.size
        return address

    def _claim_region(self, needed: int) -> Region:
        region = self._region_source()
        if region is None:
            raise OutOfMemoryError(
                f"generation {self.name!r}: no free regions for {needed}-byte allocation"
            )
        if needed > region.size:
            raise OutOfMemoryError(
                f"object of {needed} bytes exceeds region size {region.size}"
            )
        region.gen_id = self.gen_id
        self.regions.append(region)
        self._alloc_region = region
        return region

    def bump_room(self) -> int:
        """Free bytes left in the current allocation region (0 if none)."""
        region = self._alloc_region
        return region.free_bytes if region is not None else 0

    def allocate_batch(
        self,
        page_table,
        id_base: int,
        sizes,
        starts,
        start: int,
        stop: int,
        site_id: int,
    ) -> List[Tuple[Region, int, int, int]]:
        """Bulk-allocate batch objects ``[start, stop)`` into this generation.

        ``sizes``/``starts`` are the whole batch's size column and its
        exclusive prefix sums; the object at batch index ``i`` gets
        identity hash ``id_base + i``.  The chunking mirrors
        :meth:`place_slice` — and therefore per-object bump allocation —
        exactly: fill the current region with the longest prefix that fits
        (one bisect over the prefix sums), claim a fresh region precisely
        where the scalar path would, repeat.  Page dirtying and occupancy
        are updated once per chunk.  Returns ``(region, base_slot,
        chunk_start, chunk_stop)`` per chunk so the caller can materialize
        views on demand.
        """
        chunks: List[Tuple[Region, int, int, int]] = []
        p = start
        while p < stop:
            region = self._alloc_region
            if region is None or not region.has_room(sizes[p]):
                region = self._claim_region(sizes[p])
            limit = starts[p] + (region.size - region.top)
            j = bisect_right(starts, limit, p + 1, stop)
            if j == stop and starts[stop - 1] + sizes[stop - 1] <= limit:
                q = stop
            else:
                q = j - 1
            dest_top, span, base_slot = region.append_batch(
                id_base, sizes, starts, p, q, site_id
            )
            base = region.base
            page_table.mark_written_range(base + dest_top, span)
            page_table.adjust_occupancy_run(
                base, region._offsets, base_slot, base_slot + (q - p),
                region.top, 1,
            )
            self._used_bytes += span
            chunks.append((region, base_slot, p, q))
            p = q
        return chunks

    def place_slice(
        self,
        page_table,
        src: Region,
        start: int,
        stop: int,
        sync_ages: bool = False,
    ) -> int:
        """Bulk-copy ``src`` objects ``[start, stop)`` into this generation.

        The columnar evacuation placement: fills the current allocation
        region with the longest prefix of the slice that fits (one bisect
        over the source offset prefix sums), claims a fresh region exactly
        where per-object bump allocation would have, and moves each chunk
        as a column-slice copy.  Page dirtying and occupancy are updated
        once per chunk; view placement fields are fixed up in one pass.
        Returns the bytes placed.
        """
        offsets = src._offsets
        sizes = src._sizes
        gen_id = self.gen_id
        placed = 0
        p = start
        while p < stop:
            region = self._alloc_region
            if region is None or not region.has_room(sizes[p]):
                region = self._claim_region(sizes[p])
            # Largest q with every object in [p, q) ending within the free
            # space: ends are the next starts (gap-free tiling), so one
            # bisect over the offsets finds the capacity split.
            limit = offsets[p] + (region.size - region.top)
            j = bisect_right(offsets, limit, p + 1, stop)
            if j == stop and offsets[stop - 1] + sizes[stop - 1] <= limit:
                q = stop
            else:
                q = j - 1
            dest_top, span, base_slot, rebased, views = region.absorb_slice(
                src, p, q
            )
            dbase = region.base
            page_table.mark_written_range(dbase + dest_top, span)
            page_table.adjust_occupancy_run(
                dbase, region._offsets, base_slot, base_slot + (q - p),
                region.top, 1,
            )
            slot = base_slot
            # Lazy batch placeholders (None) move as pure column state;
            # a later view_at materializes from the destination columns.
            if sync_ages:
                for view, off, age in zip(
                    views, rebased, region._ages[base_slot:]
                ):
                    if view is not None:
                        view._region = region
                        view._slot = slot
                        view.address = dbase + off
                        view.gen_id = gen_id
                        view._age = age
                    slot += 1
            else:
                for view, off in zip(views, rebased):
                    if view is not None:
                        view._region = region
                        view._slot = slot
                        view.address = dbase + off
                        view.gen_id = gen_id
                    slot += 1
            self._used_bytes += span
            placed += span
            p = q
        return placed

    # -- accounting -----------------------------------------------------------

    @property
    def used_bytes(self) -> int:
        return self._used_bytes

    @property
    def committed_bytes(self) -> int:
        return sum(region.size for region in self.regions)

    @property
    def object_count(self) -> int:
        return sum(len(region.objects) for region in self.regions)

    def iter_objects(self) -> Iterator[HeapObject]:
        for region in self.regions:
            yield from region.objects

    # -- region management ------------------------------------------------------

    def release_region(self, region: Region) -> None:
        """Detach a region (after evacuation); caller returns it to the pool."""
        self.regions.remove(region)
        self._used_bytes -= region.used_bytes
        if self._alloc_region is region:
            self._alloc_region = None

    def release_all_regions(self) -> List[Region]:
        """Detach every region (whole-generation reclamation)."""
        released = list(self.regions)
        self.regions.clear()
        self._alloc_region = None
        self._used_bytes = 0
        return released

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Generation(id={self.gen_id}, name={self.name!r}, "
            f"regions={len(self.regions)}, used={self.used_bytes})"
        )
