"""Virtual page table with dirty and no-need bits.

CRIU's incremental checkpoints (paper §4.2) rely on two kernel page-table
bits:

* the **dirty** bit — set by the MMU whenever a page is written, cleared by
  CRIU at each snapshot, so the next snapshot includes only pages written
  since the previous one;
* the **no-need** bit — set through ``madvise`` by POLM2's Recorder on every
  page that contains no live objects, so the Dumper can skip them.

This module models both bits over a flat virtual address space.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List

from repro.config import PAGE_SIZE
from repro.errors import InvalidAddressError

_DIRTY = 0x1
_NO_NEED = 0x2


class PageTable:
    """Tracks per-page dirty / no-need flags for a linear address space."""

    def __init__(self, address_space_bytes: int, page_size: int = PAGE_SIZE) -> None:
        if address_space_bytes <= 0:
            raise ValueError("address space must be positive")
        if page_size <= 0:
            raise ValueError("page size must be positive")
        self.page_size = page_size
        self.num_pages = (address_space_bytes + page_size - 1) // page_size
        self._flags = bytearray(self.num_pages)

    # -- address helpers ----------------------------------------------------

    def page_index(self, address: int) -> int:
        if not 0 <= address < self.num_pages * self.page_size:
            raise InvalidAddressError(f"address {address:#x} outside address space")
        return address // self.page_size

    def pages_for_range(self, address: int, length: int) -> range:
        """Page indices spanned by ``length`` bytes starting at ``address``."""
        if length <= 0:
            return range(0)
        first = self.page_index(address)
        last = self.page_index(address + length - 1)
        return range(first, last + 1)

    # -- dirty bit (written-since-last-snapshot) ----------------------------

    def mark_dirty_range(self, address: int, length: int) -> None:
        """Record a write of ``length`` bytes at ``address`` (store barrier)."""
        if length <= 0:
            return
        # Hot path: inline the page arithmetic (no bounds re-validation —
        # addresses come from the allocator, which already checked them).
        flags = self._flags
        page_size = self.page_size
        first = address // page_size
        last = (address + length - 1) // page_size
        for page in range(first, last + 1):
            flags[page] |= _DIRTY

    def mark_written_range(self, address: int, length: int) -> None:
        """A fresh write: dirty the pages and clear any stale no-need advice
        in a single pass (allocation / evacuation fast path)."""
        if length <= 0:
            return
        flags = self._flags
        page_size = self.page_size
        first = address // page_size
        last = (address + length - 1) // page_size
        for page in range(first, last + 1):
            flags[page] = (flags[page] | _DIRTY) & ~_NO_NEED

    def mark_dirty_pages(self, pages: Iterable[int]) -> None:
        for page in pages:
            self._flags[page] |= _DIRTY

    def is_dirty(self, page: int) -> bool:
        return bool(self._flags[page] & _DIRTY)

    def dirty_pages(self) -> List[int]:
        flags = self._flags
        return [i for i in range(self.num_pages) if flags[i] & _DIRTY]

    def clear_dirty(self) -> int:
        """Clear every dirty bit (CRIU does this at snapshot time).

        Returns the number of pages that were dirty.
        """
        count = 0
        flags = self._flags
        for i in range(self.num_pages):
            if flags[i] & _DIRTY:
                flags[i] &= ~_DIRTY
                count += 1
        return count

    # -- no-need bit (madvise MADV_FREE-style) -------------------------------

    def set_no_need(self, pages: Iterable[int]) -> None:
        for page in pages:
            self._flags[page] |= _NO_NEED

    def clear_no_need(self, pages: Iterable[int]) -> None:
        for page in pages:
            self._flags[page] &= ~_NO_NEED

    def clear_all_no_need(self) -> None:
        for i in range(self.num_pages):
            self._flags[i] &= ~_NO_NEED

    def is_no_need(self, page: int) -> bool:
        return bool(self._flags[page] & _NO_NEED)

    def no_need_pages(self) -> List[int]:
        flags = self._flags
        return [i for i in range(self.num_pages) if flags[i] & _NO_NEED]

    # -- snapshot support -----------------------------------------------------

    def snapshot_candidate_pages(self) -> List[int]:
        """Pages CRIU would include: dirty and not marked no-need."""
        flags = self._flags
        return [
            i
            for i in range(self.num_pages)
            if (flags[i] & _DIRTY) and not (flags[i] & _NO_NEED)
        ]

    def counts(self) -> "PageCounts":
        dirty = no_need = both = 0
        for flag in self._flags:
            if flag & _DIRTY:
                dirty += 1
            if flag & _NO_NEED:
                no_need += 1
            if (flag & _DIRTY) and (flag & _NO_NEED):
                both += 1
        return PageCounts(
            total=self.num_pages, dirty=dirty, no_need=no_need, dirty_and_no_need=both
        )

    def iter_pages(self) -> Iterator[int]:
        return iter(range(self.num_pages))


class PageCounts:
    """Aggregate page-table statistics."""

    __slots__ = ("total", "dirty", "no_need", "dirty_and_no_need")

    def __init__(self, total: int, dirty: int, no_need: int, dirty_and_no_need: int):
        self.total = total
        self.dirty = dirty
        self.no_need = no_need
        self.dirty_and_no_need = dirty_and_no_need

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PageCounts(total={self.total}, dirty={self.dirty}, "
            f"no_need={self.no_need}, both={self.dirty_and_no_need})"
        )
