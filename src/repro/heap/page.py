"""Virtual page table with dirty and no-need bits.

CRIU's incremental checkpoints (paper §4.2) rely on two kernel page-table
bits:

* the **dirty** bit — set by the MMU whenever a page is written, cleared by
  CRIU at each snapshot, so the next snapshot includes only pages written
  since the previous one;
* the **no-need** bit — set through ``madvise`` by POLM2's Recorder on every
  page that contains no live objects, so the Dumper can skip them.

This module models both bits over a flat virtual address space.  The flag
array is a ``bytearray`` so whole-table operations (clearing dirty bits at
a checkpoint, rewriting no-need advice before one) run as C-level
``bytes.translate`` / big-int bitwise passes instead of Python loops —
these run once per snapshot and used to dominate snapshot overhead.

The table additionally keeps a per-page **object occupancy counter**,
maintained incrementally by the heap at allocation, evacuation, and region
reclamation.  A page with zero occupancy holds no object at all (live or
dead); the counters make page-emptiness queries O(1) and give the
invariant checks in :meth:`repro.heap.heap.SimHeap.verify` something to
validate the incremental bookkeeping against.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from typing import Iterable, Iterator, List

from repro.config import PAGE_SIZE
from repro.errors import InvalidAddressError

_DIRTY = 0x1
_NO_NEED = 0x2

#: translate() tables for whole-array flag rewrites.  Flag bytes only ever
#: hold combinations of the two bits above, but the tables cover all 256
#: values so stray state can never corrupt a bulk pass.
_CLEAR_DIRTY_TABLE = bytes(value & ~_DIRTY for value in range(256))
_CLEAR_NO_NEED_TABLE = bytes(value & ~_NO_NEED for value in range(256))
#: Maps a "page is needed" byte (0 = no live data) to the advice bit.
_NEEDED_TO_NO_NEED = bytes(
    _NO_NEED if value == 0 else 0 for value in range(256)
)


class PageTable:
    """Tracks per-page dirty / no-need flags for a linear address space."""

    def __init__(self, address_space_bytes: int, page_size: int = PAGE_SIZE) -> None:
        if address_space_bytes <= 0:
            raise ValueError("address space must be positive")
        if page_size <= 0:
            raise ValueError("page size must be positive")
        self.page_size = page_size
        self.num_pages = (address_space_bytes + page_size - 1) // page_size
        self._flags = bytearray(self.num_pages)
        #: Objects (live or dead, headers included) overlapping each page.
        self._occupancy = array("q", bytes(8 * self.num_pages))

    # -- address helpers ----------------------------------------------------

    def page_index(self, address: int) -> int:
        if not 0 <= address < self.num_pages * self.page_size:
            raise InvalidAddressError(f"address {address:#x} outside address space")
        return address // self.page_size

    def pages_for_range(self, address: int, length: int) -> range:
        """Page indices spanned by ``length`` bytes starting at ``address``."""
        if length <= 0:
            return range(0)
        first = self.page_index(address)
        last = self.page_index(address + length - 1)
        return range(first, last + 1)

    # -- dirty bit (written-since-last-snapshot) ----------------------------

    def mark_dirty_range(self, address: int, length: int) -> None:
        """Record a write of ``length`` bytes at ``address`` (store barrier)."""
        if length <= 0:
            return
        # Hot path: inline the page arithmetic (no bounds re-validation —
        # addresses come from the allocator, which already checked them).
        flags = self._flags
        page_size = self.page_size
        first = address // page_size
        last = (address + length - 1) // page_size
        for page in range(first, last + 1):
            flags[page] |= _DIRTY

    def mark_written_range(self, address: int, length: int) -> None:
        """A fresh write: dirty the pages and clear any stale no-need advice
        in a single pass (allocation / evacuation fast path)."""
        if length <= 0:
            return
        flags = self._flags
        page_size = self.page_size
        first = address // page_size
        last = (address + length - 1) // page_size
        for page in range(first, last + 1):
            flags[page] = (flags[page] | _DIRTY) & ~_NO_NEED

    def mark_dirty_pages(self, pages: Iterable[int]) -> None:
        for page in pages:
            self._flags[page] |= _DIRTY

    def is_dirty(self, page: int) -> bool:
        return bool(self._flags[page] & _DIRTY)

    def dirty_pages(self) -> List[int]:
        return [i for i, f in enumerate(self._flags) if f & _DIRTY]

    def clear_dirty(self) -> int:
        """Clear every dirty bit (CRIU does this at snapshot time).

        Returns the number of pages that were dirty.  Flag bytes only hold
        the two modelled bits, so the count is two C-level byte counts and
        the clear is one ``translate`` pass.
        """
        flags = self._flags
        count = flags.count(_DIRTY) + flags.count(_DIRTY | _NO_NEED)
        if count:
            flags[:] = flags.translate(_CLEAR_DIRTY_TABLE)
        return count

    # -- no-need bit (madvise MADV_FREE-style) -------------------------------

    def set_no_need(self, pages: Iterable[int]) -> None:
        for page in pages:
            self._flags[page] |= _NO_NEED

    def clear_no_need(self, pages: Iterable[int]) -> None:
        for page in pages:
            self._flags[page] &= ~_NO_NEED

    def clear_all_no_need(self) -> None:
        self._flags[:] = self._flags.translate(_CLEAR_NO_NEED_TABLE)

    def is_no_need(self, page: int) -> bool:
        return bool(self._flags[page] & _NO_NEED)

    def no_need_pages(self) -> List[int]:
        return [i for i, f in enumerate(self._flags) if f & _NO_NEED]

    def rewrite_no_need(self, needed: bytearray) -> int:
        """Replace all no-need advice from a per-page "needed" byte map.

        ``needed[i] != 0`` means page ``i`` holds live data.  Every other
        page gets the no-need bit; pages with live data get it cleared —
        exactly the clear-then-remark sequence the Recorder performs before
        each snapshot, collapsed into two ``translate`` passes and one
        big-int OR.  Returns the number of pages marked no-need.
        """
        if len(needed) != self.num_pages:
            raise ValueError(
                f"needed map covers {len(needed)} pages, table has {self.num_pages}"
            )
        cleared = self._flags.translate(_CLEAR_NO_NEED_TABLE)
        advice = needed.translate(_NEEDED_TO_NO_NEED)
        merged = int.from_bytes(cleared, "little") | int.from_bytes(advice, "little")
        self._flags[:] = merged.to_bytes(self.num_pages, "little")
        return needed.count(0)

    # -- object occupancy (incremental page liveness) -------------------------

    def track_object(self, address: int, length: int) -> None:
        """Count an object placed at ``address`` on every page it overlaps."""
        if length <= 0:
            return
        occupancy = self._occupancy
        page_size = self.page_size
        first = address // page_size
        last = (address + length - 1) // page_size
        for page in range(first, last + 1):
            occupancy[page] += 1

    def untrack_object(self, address: int, length: int) -> None:
        """Remove an object's count (death, evacuation, region reclaim)."""
        if length <= 0:
            return
        occupancy = self._occupancy
        page_size = self.page_size
        first = address // page_size
        last = (address + length - 1) // page_size
        for page in range(first, last + 1):
            occupancy[page] -= 1

    def adjust_occupancy_run(
        self,
        base: int,
        offsets,
        lo: int,
        hi: int,
        end_offset: int,
        delta: int,
    ) -> None:
        """Bulk occupancy update for a contiguous run of objects.

        The run's objects start at ``base + offsets[lo:hi]`` (ascending,
        gap-free prefix sums — the columnar region layout) and tile the
        span up to ``base + end_offset``.  Equivalent to calling
        :meth:`track_object`/:meth:`untrack_object` once per object with
        ``delta`` of +1/-1, but does two bisects per touched page instead
        of one Python call per object: a page's overlap count is the
        number of run starts inside it, plus one when an earlier run
        object straddles its left edge.
        """
        if hi <= lo or delta == 0:
            return
        occupancy = self._occupancy
        page_size = self.page_size
        span_start = base + offsets[lo]
        span_end = base + end_offset
        first = span_start // page_size
        last = (span_end - 1) // page_size
        for page in range(first, last + 1):
            page_lo = page * page_size - base
            page_hi = page_lo + page_size
            s_lo = bisect_left(offsets, page_lo, lo, hi)
            s_hi = bisect_left(offsets, page_hi, lo, hi)
            count = s_hi - s_lo
            # The run object straddling this page's left edge (tiling
            # means at most one, and only when it starts strictly before
            # the page and the page starts inside the span).
            if s_lo > lo and (
                offsets[s_lo] if s_lo < hi else end_offset
            ) > page_lo:
                count += 1
            if count:
                occupancy[page] += delta * count

    def occupancy(self, page: int) -> int:
        return self._occupancy[page]

    def occupied_pages(self) -> List[int]:
        return [i for i, count in enumerate(self._occupancy) if count]

    def occupancy_snapshot(self) -> List[int]:
        """A copy of the per-page counters (for invariant verification)."""
        return list(self._occupancy)

    # -- snapshot support -----------------------------------------------------

    def snapshot_candidate_pages(self) -> List[int]:
        """Pages CRIU would include: dirty and not marked no-need."""
        return [
            i
            for i, f in enumerate(self._flags)
            if (f & _DIRTY) and not (f & _NO_NEED)
        ]

    def snapshot_candidate_count(self) -> int:
        """Number of dirty-and-not-no-need pages (checkpoint hot path).

        Flag bytes only hold the two modelled bits, so candidates are
        exactly the bytes equal to ``_DIRTY`` — one C-level count.
        """
        return self._flags.count(_DIRTY)

    def counts(self) -> "PageCounts":
        flags = self._flags
        both = flags.count(_DIRTY | _NO_NEED)
        dirty = flags.count(_DIRTY) + both
        no_need = flags.count(_NO_NEED) + both
        return PageCounts(
            total=self.num_pages, dirty=dirty, no_need=no_need, dirty_and_no_need=both
        )

    def iter_pages(self) -> Iterator[int]:
        return iter(range(self.num_pages))


class PageCounts:
    """Aggregate page-table statistics."""

    __slots__ = ("total", "dirty", "no_need", "dirty_and_no_need")

    def __init__(self, total: int, dirty: int, no_need: int, dirty_and_no_need: int):
        self.total = total
        self.dirty = dirty
        self.no_need = no_need
        self.dirty_and_no_need = dirty_and_no_need

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PageCounts(total={self.total}, dirty={self.dirty}, "
            f"no_need={self.no_need}, both={self.dirty_and_no_need})"
        )
