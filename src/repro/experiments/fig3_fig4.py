"""Figures 3 & 4: snapshot time and size, Dumper (CRIU) normalized to jmap.

The experiment attaches a *shadow* jmap dumper to a profiling run: after
the Recorder's own CRIU snapshot, the same live set is dumped the way
``jmap -dump:live`` would (full heap walk, per-object serialization) and
its hypothetical cost recorded without charging the virtual clock.  The
first 20 snapshot pairs per workload form the figures.

Paper result: >90 % time reduction and ≈60 % size reduction for all
workloads.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List

from repro.config import SimConfig
from repro.core.dumper import Dumper
from repro.core.recorder import Recorder
from repro.gc.ng2c import NG2CCollector
from repro.runtime.vm import VM
from repro.snapshot.jmap import JmapDumper
from repro.snapshot.snapshot import Snapshot
from repro.workloads import WORKLOAD_NAMES, make_workload

#: Number of snapshot pairs plotted per workload (as in the paper).
SNAPSHOTS_PLOTTED = 20


@dataclasses.dataclass
class SnapshotComparison:
    """Per-workload CRIU vs jmap series."""

    workload: str
    criu: List[Snapshot]
    jmap: List[Snapshot]

    def time_ratio_series(self) -> List[float]:
        """Per-snapshot Dumper time normalized to jmap (Figure 3)."""
        return [
            c.duration_us / j.duration_us
            for c, j in zip(self.criu, self.jmap)
            if j.duration_us > 0
        ]

    def size_ratio_series(self) -> List[float]:
        """Per-snapshot Dumper size normalized to jmap (Figure 4)."""
        return [
            c.size_bytes / j.size_bytes
            for c, j in zip(self.criu, self.jmap)
            if j.size_bytes > 0
        ]

    def mean_time_ratio(self) -> float:
        series = self.time_ratio_series()
        return sum(series) / len(series) if series else 0.0

    def mean_size_ratio(self) -> float:
        series = self.size_ratio_series()
        return sum(series) / len(series) if series else 0.0


def run_workload(
    workload_name: str,
    duration_ms: float = 30_000.0,
    seed: int = 42,
    max_snapshots: int = SNAPSHOTS_PLOTTED,
) -> SnapshotComparison:
    """Profile one workload with both snapshot engines attached."""
    workload = make_workload(workload_name, seed=seed)
    collector = NG2CCollector()
    vm = VM(SimConfig(seed=seed), collector=collector)
    recorder = Recorder()
    dumper = Dumper(vm)
    recorder.attach(vm, dumper)

    jmap = JmapDumper(vm.config.costs)
    shadow: List[Snapshot] = []

    def shadow_jmap(pause) -> None:
        # Runs after the Recorder's listener (registration order), so the
        # CRIU snapshot for this cycle already exists; dump the same live
        # set the jmap way, without advancing the clock.
        if len(shadow) < len(dumper.store):
            shadow.append(
                jmap.dump(vm.heap, collector.last_live_objects, vm.clock.now_ms)
            )

    collector.add_cycle_listener(shadow_jmap)
    for model in workload.class_models():
        vm.classloader.load(model)
    workload.setup(vm)
    while vm.clock.now_ms < duration_ms and len(shadow) < max_snapshots:
        workload.tick()
    workload.teardown()
    criu_snaps = dumper.store.snapshots[:max_snapshots]
    return SnapshotComparison(
        workload=workload_name,
        criu=criu_snaps,
        jmap=shadow[: len(criu_snaps)],
    )


def run(
    workloads=WORKLOAD_NAMES,
    duration_ms: float = 30_000.0,
    seed: int = 42,
) -> Dict[str, SnapshotComparison]:
    return {
        name: run_workload(name, duration_ms=duration_ms, seed=seed)
        for name in workloads
    }


def render(results: Dict[str, SnapshotComparison]) -> str:
    lines = [
        "Figures 3 & 4: memory snapshots, Dumper normalized to jmap",
        f"{'workload':>14} {'time ratio':>12} {'size ratio':>12} "
        f"{'time cut %':>12} {'size cut %':>12}",
    ]
    for name, comparison in results.items():
        t = comparison.mean_time_ratio()
        s = comparison.mean_size_ratio()
        lines.append(
            f"{name:>14} {t:>12.3f} {s:>12.3f} "
            f"{100 * (1 - t):>11.1f}% {100 * (1 - s):>11.1f}%"
        )
    lines.append("(paper: time reduced >90%, size reduced ~60%, all workloads)")
    return "\n".join(lines)
