"""Experiment drivers: one module per table/figure of the paper's §5.

All pause/throughput/memory figures share the same (workload × strategy)
result matrix, computed once per process by
:class:`repro.experiments.runner.ExperimentRunner` and cached.  The
fleet-scale sweep engine — sharded work-stealing scheduling over the
(workload × strategy × seed × heap-config) space, streaming cell
results, pluggable cache backends — lives in
:mod:`repro.experiments.matrix`.
"""

from repro.experiments.matrix import (
    CacheBackend,
    CellKey,
    CellResult,
    DirCacheBackend,
    SqliteCacheBackend,
    SweepSpec,
    pooled_pause_percentiles,
    run_sweep,
)
from repro.experiments.runner import ExperimentRunner, ExperimentSettings

__all__ = [
    "CacheBackend",
    "CellKey",
    "CellResult",
    "DirCacheBackend",
    "ExperimentRunner",
    "ExperimentSettings",
    "SqliteCacheBackend",
    "SweepSpec",
    "pooled_pause_percentiles",
    "run_sweep",
]
