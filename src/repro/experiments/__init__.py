"""Experiment drivers: one module per table/figure of the paper's §5.

All pause/throughput/memory figures share the same (workload × strategy)
result matrix, computed once per process by
:class:`repro.experiments.runner.ExperimentRunner` and cached.
"""

from repro.experiments.runner import ExperimentRunner, ExperimentSettings

__all__ = ["ExperimentRunner", "ExperimentSettings"]
