"""Fleet-scale experiment matrix: sharded scheduling over a pluggable cache.

The paper's evaluation is a (workload × strategy) grid; statistically
honest tail-latency claims need a (workload × strategy × seed ×
heap-config) *sweep* — hundreds of seeds, thousands of cells.  This
module is the machinery that makes such a sweep practical:

* :class:`CellKey` — one cell of the sweep space, addressable by a
  stable string id that carries workload, strategy, seed, and named
  heap configuration.
* :class:`CacheBackend` — the keyed result store a sweep lands in.
  :class:`DirCacheBackend` keeps the original one-JSON-file-per-cell
  layout; :class:`SqliteCacheBackend` packs a whole sweep into a single
  WAL-mode database file that several runner processes can share, so a
  killed sweep resumes from exactly the cells already committed.
* :func:`run_sweep` — a **sharded work-stealing scheduler** over the
  sweep's per-cell dependency DAG.  Cells are sharded across worker
  slots; a slot that drains its shard steals from the fullest one, so a
  straggler cell never idles the rest of the fleet.  A POLM2 production
  cell unblocks the moment *its* (workload, seed, heap) profiling cell
  lands — there is no global profiling barrier (``mode="wave"`` keeps
  the old barrier semantics for benchmarking the difference).  Results
  **stream back incrementally** as :class:`CellResult` values with live
  progress (cells done/total, cells/sec, ETA); nothing accumulates
  behind an end-of-matrix barrier.
* :func:`pooled_pause_percentiles` — multi-seed aggregation: pause
  samples pooled across seeds with the seed/sample support counts kept
  alongside, so every figure can say how much data backs its tail.

Every cell is deterministic in (workload, strategy, seed, heap-config,
durations) — virtual clock, fixed seed — so serial, sharded, and wave
schedules produce byte-identical cells, and a cache hit is
indistinguishable from a recompute.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import hashlib
import json
import os
import sqlite3
import time
import uuid
import warnings
import zlib
from collections import deque
from typing import (
    Callable,
    Deque,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.config import SimConfig
from repro.core.pipeline import POLM2Pipeline, PhaseResult
from repro.core.profile import AllocationProfile
from repro.errors import ReproError
from repro.strategies import get_strategy
from repro.workloads import make_workload

#: Cache-format version; bump on incompatible PhaseResult layout changes.
#: v4: cells carry seed + heap-config in their key (multi-seed sweeps);
#: older formats live in unkeyed/other-keyed storage and are never read.
CACHE_FORMAT = "matrix-cache-v4"

#: The pseudo-strategy key the profiling phase is cached under.
PROFILING_KEY = "polm2-profiling"

#: Scheduler modes accepted by :func:`run_sweep`.
SCHEDULER_MODES = ("sharded", "wave", "serial")

#: Named heap configurations a sweep can range over.  Values are
#: :class:`SimConfig` field overrides applied to the base config; the
#: names ride in each cell's key, so two heap configs never collide in
#: the cache.  The defaults model the paper's 64 MiB / 6 MiB shape;
#: the variants stress the young:total ratio the paper holds fixed.
HEAP_CONFIGS: Dict[str, Dict[str, int]] = {
    "default": {},
    "tight-young": {"young_bytes": 3 * 1024 * 1024},
    "roomy-young": {"young_bytes": 12 * 1024 * 1024},
    "big-heap": {
        "heap_bytes": 128 * 1024 * 1024,
        "young_bytes": 12 * 1024 * 1024,
    },
}


def heap_config(name: str, base: Optional[SimConfig] = None) -> SimConfig:
    """Resolve a named heap configuration against ``base``."""
    try:
        overrides = HEAP_CONFIGS[name]
    except KeyError:
        known = ", ".join(sorted(HEAP_CONFIGS))
        raise ReproError(
            f"unknown heap config {name!r} (known: {known})"
        ) from None
    config = base if base is not None else SimConfig()
    if not overrides:
        return config
    return dataclasses.replace(config, **overrides)


def parse_seeds(raw: str) -> Tuple[int, ...]:
    """Parse a seed spec: ``"7"``, ``"0-7"`` (inclusive), or ``"1,3,5"``."""
    seeds: List[int] = []
    try:
        for part in raw.split(","):
            part = part.strip()
            if not part:
                continue
            if "-" in part.lstrip("-")[0:]:  # allow negative singletons
                lo_raw, _, hi_raw = part.partition("-")
                if lo_raw and hi_raw:
                    lo, hi = int(lo_raw), int(hi_raw)
                    if hi < lo:
                        raise ReproError(
                            f"seed range {part!r} is empty (end < start)"
                        )
                    seeds.extend(range(lo, hi + 1))
                    continue
            seeds.append(int(part))
    except ValueError:
        raise ReproError(
            f"unparseable seed spec {raw!r} (expected N, N-M, or N,M,...)"
        ) from None
    if not seeds:
        raise ReproError(f"seed spec {raw!r} names no seeds")
    # Preserve order, drop duplicates.
    return tuple(dict.fromkeys(seeds))


# -- cell identity ---------------------------------------------------------------


@dataclasses.dataclass(frozen=True, order=True)
class CellKey:
    """One cell of the sweep space."""

    workload: str
    strategy: str
    seed: int
    heap: str = "default"

    @property
    def cell_id(self) -> str:
        """Stable storage id: ``workload__strategy__s<seed>__heap``."""
        return f"{self.workload}__{self.strategy}__s{self.seed}__{self.heap}"

    @classmethod
    def from_cell_id(cls, cell_id: str) -> "CellKey":
        parts = cell_id.split("__")
        if len(parts) != 4 or not parts[2].startswith("s"):
            raise ReproError(f"malformed cell id {cell_id!r}")
        try:
            seed = int(parts[2][1:])
        except ValueError:
            raise ReproError(f"malformed cell id {cell_id!r}") from None
        return cls(workload=parts[0], strategy=parts[1], seed=seed, heap=parts[3])

    @property
    def is_profiling(self) -> bool:
        return self.strategy == PROFILING_KEY

    def profiling_key(self) -> "CellKey":
        """The profiling cell this cell's profile comes from."""
        return dataclasses.replace(self, strategy=PROFILING_KEY)

    def config(self) -> SimConfig:
        """The fully resolved simulation config for this cell."""
        return heap_config(self.heap, base=SimConfig(seed=self.seed))


# -- code-version fingerprint ----------------------------------------------------

_code_version_cache: Optional[str] = None


def code_version() -> str:
    """Content hash over every ``repro`` source file (cached per process).

    Part of the result-cache key: editing any module invalidates every
    cached cell, which is what makes the cache safe to leave on.
    """
    global _code_version_cache
    if _code_version_cache is None:
        import repro

        digest = hashlib.sha256()
        package_root = os.path.dirname(os.path.abspath(repro.__file__))
        for dirpath, dirnames, filenames in sorted(os.walk(package_root)):
            dirnames.sort()
            for filename in sorted(filenames):
                if not filename.endswith(".py"):
                    continue
                path = os.path.join(dirpath, filename)
                digest.update(os.path.relpath(path, package_root).encode())
                with open(path, "rb") as handle:
                    digest.update(handle.read())
        _code_version_cache = digest.hexdigest()
    return _code_version_cache


def sweep_cache_key(
    config: SimConfig, profiling_ms: float, production_ms: float
) -> str:
    """The storage key shared by every cell of one sweep.

    Hashes the cache format, the package code version, the *base*
    simulation config (seed excluded — it rides in each cell's id, as
    does the heap-config name), and the phase durations.  Anything that
    could change a result changes the key; performance knobs never do.
    """
    fingerprint = config.fingerprint()
    fingerprint.pop("seed", None)
    payload = json.dumps(
        {
            "format": CACHE_FORMAT,
            "code": code_version(),
            "config": fingerprint,
            "profiling_ms": profiling_ms,
            "production_ms": production_ms,
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:20]


# -- cache backends --------------------------------------------------------------


class CacheBackend:
    """Keyed store of :class:`PhaseResult` cells (the backend protocol).

    Implementations provide :meth:`load` / :meth:`store` on
    :class:`CellKey`; :meth:`flush` commits any buffered writes (the
    scheduler calls it as each computed cell lands, so a killed sweep
    resumes from every cell it streamed) and :meth:`close` releases
    resources.  Corrupt cells are recoverable — warn once
    naming the offending cell, return ``None``, recompute — while
    permission problems raise :class:`~repro.errors.ReproError`:
    recomputing around an unreadable store would silently fork the
    sweep's storage.
    """

    def load(self, key: CellKey) -> Optional[PhaseResult]:
        raise NotImplementedError

    def store(self, key: CellKey, result: PhaseResult) -> None:
        raise NotImplementedError

    def cell_ids(self) -> List[str]:
        raise NotImplementedError

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass

    def __enter__(self) -> "CacheBackend":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- shared corrupt-cell handling ------------------------------------------

    def _init_warned(self) -> None:
        self._warned: set = set()

    def _warn_corrupt(self, where: str, why: str) -> None:
        if where in self._warned:
            return
        self._warned.add(where)
        warnings.warn(
            f"cache cell {where} is corrupt ({why}); recomputing it",
            stacklevel=4,
        )

    @staticmethod
    def _decode(payload: Dict) -> Optional[PhaseResult]:
        try:
            return PhaseResult.from_dict(payload)
        except (KeyError, TypeError, ValueError):
            return None


#: Name of the per-key-dir marker file recording the cache format.
_FORMAT_MARKER = "FORMAT.json"


class DirCacheBackend(CacheBackend):
    """One JSON file per cell: ``<root>/<sweep-key>/<cell_id>.json``.

    The default backend, unchanged layout from the original
    ``MatrixCache`` apart from the cell ids now carrying seed and
    heap-config.  Writes are atomic: each runner writes to a
    per-process unique temp name (pid + random suffix) and
    ``os.replace``\\ s it in, so two concurrent runners storing the same
    cell can never clobber each other mid-rename — last writer wins
    with an intact file either way.
    """

    def __init__(self, root: str, cache_key: str) -> None:
        self.root = root
        self.key = cache_key
        self.dir = os.path.join(root, cache_key)
        self._init_warned()
        self._note_stale_formats()

    def _path(self, key: CellKey) -> str:
        return os.path.join(self.dir, f"{key.cell_id}.json")

    def _tmp_path(self, path: str) -> str:
        return f"{path}.{os.getpid()}.{uuid.uuid4().hex[:8]}.tmp"

    def load(self, key: CellKey) -> Optional[PhaseResult]:
        path = self._path(key)
        try:
            with open(path) as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            return None
        except PermissionError as exc:
            raise ReproError(f"cache cell {path} is unreadable: {exc}") from exc
        except ValueError:
            self._warn_corrupt(path, "unparseable JSON")
            return None
        except OSError:
            self._warn_corrupt(path, "unreadable cell file")
            return None
        result = self._decode(payload)
        if result is None:
            self._warn_corrupt(path, "foreign or corrupt cell payload")
        return result

    def store(self, key: CellKey, result: PhaseResult) -> None:
        os.makedirs(self.dir, exist_ok=True)
        self._write_format_marker()
        path = self._path(key)
        tmp = self._tmp_path(path)
        with open(tmp, "w") as handle:
            json.dump(result.to_dict(), handle)
        os.replace(tmp, path)

    def cell_ids(self) -> List[str]:
        try:
            names = os.listdir(self.dir)
        except OSError:
            return []
        return sorted(
            name[: -len(".json")]
            for name in names
            if name.endswith(".json") and name != _FORMAT_MARKER
        )

    def _write_format_marker(self) -> None:
        marker = os.path.join(self.dir, _FORMAT_MARKER)
        if not os.path.exists(marker):
            tmp = self._tmp_path(marker)
            with open(tmp, "w") as handle:
                json.dump({"format": CACHE_FORMAT}, handle)
            os.replace(tmp, marker)

    def _note_stale_formats(self) -> None:
        """One-line note when the cache root holds pre-v4 key dirs.

        Older formats hash to different sweep keys, so they are never
        *read* — but silently leaving them to rot hides why a sweep
        recomputes everything after an upgrade.
        """
        try:
            entries = os.listdir(self.root)
        except OSError:
            return
        stale = []
        for name in entries:
            subdir = os.path.join(self.root, name)
            if name == self.key or not os.path.isdir(subdir):
                continue
            marker = os.path.join(subdir, _FORMAT_MARKER)
            try:
                with open(marker) as handle:
                    fmt = json.load(handle).get("format", "unknown")
            except (OSError, ValueError):
                if not any(
                    entry.endswith(".json") for entry in os.listdir(subdir)
                ):
                    continue
                fmt = "pre-v4"
            if fmt != CACHE_FORMAT:
                stale.append(f"{name} ({fmt})")
        if stale:
            warnings.warn(
                f"cache root {self.root} holds stale-format cell dirs "
                f"[{', '.join(sorted(stale))}]; current format is "
                f"{CACHE_FORMAT} — they are ignored and safe to delete"
            )


class SqliteCacheBackend(CacheBackend):
    """A whole sweep in one WAL-mode sqlite file.

    ``sqlite:///sweep.db`` puts every cell in a single shareable file:
    WAL journaling plus a generous busy timeout make concurrent runner
    processes on the same database safe (each commits small batches;
    ``INSERT OR REPLACE`` keyed on (sweep key, cell id) makes duplicate
    computation idempotent).  Writes are batched — buffered in memory
    and committed one transaction per :meth:`flush` (the scheduler
    flushes as each computed cell lands, so its durability unit is one
    cell) or whenever the buffer reaches ``BATCH`` cells, whichever
    comes first — bulk writers outside the scheduler still amortize
    their commits.
    """

    BATCH = 32

    def __init__(self, path: str, cache_key: str) -> None:
        self.path = path
        self.key = cache_key
        self._pending: Dict[str, str] = {}
        self._init_warned()
        parent = os.path.dirname(os.path.abspath(path))
        try:
            os.makedirs(parent, exist_ok=True)
            self._conn = sqlite3.connect(path, timeout=60.0)
        except (sqlite3.OperationalError, OSError) as exc:
            raise ReproError(
                f"cannot open sqlite cache {path}: {exc}"
            ) from exc
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        with self._conn:
            self._conn.execute(
                "CREATE TABLE IF NOT EXISTS cells ("
                " cache_key TEXT NOT NULL,"
                " cell_id TEXT NOT NULL,"
                " format TEXT NOT NULL,"
                " payload TEXT NOT NULL,"
                " PRIMARY KEY (cache_key, cell_id))"
            )
        self._note_stale_formats()

    def load(self, key: CellKey) -> Optional[PhaseResult]:
        raw = self._pending.get(key.cell_id)
        if raw is None:
            try:
                row = self._conn.execute(
                    "SELECT payload FROM cells"
                    " WHERE cache_key = ? AND cell_id = ?",
                    (self.key, key.cell_id),
                ).fetchone()
            except sqlite3.Error as exc:
                raise ReproError(
                    f"sqlite cache {self.path} is unreadable: {exc}"
                ) from exc
            if row is None:
                return None
            raw = row[0]
        where = f"{self.path}:{key.cell_id}"
        try:
            payload = json.loads(raw)
        except ValueError:
            self._warn_corrupt(where, "unparseable JSON")
            return None
        result = self._decode(payload)
        if result is None:
            self._warn_corrupt(where, "foreign or corrupt cell payload")
        return result

    def store(self, key: CellKey, result: PhaseResult) -> None:
        self._pending[key.cell_id] = json.dumps(result.to_dict())
        if len(self._pending) >= self.BATCH:
            self.flush()

    def flush(self) -> None:
        if not self._pending:
            return
        rows = [
            (self.key, cell_id, CACHE_FORMAT, payload)
            for cell_id, payload in self._pending.items()
        ]
        try:
            with self._conn:
                self._conn.executemany(
                    "INSERT OR REPLACE INTO cells"
                    " (cache_key, cell_id, format, payload)"
                    " VALUES (?, ?, ?, ?)",
                    rows,
                )
        except sqlite3.Error as exc:
            raise ReproError(
                f"sqlite cache {self.path} rejected a write: {exc}"
            ) from exc
        self._pending.clear()

    def cell_ids(self) -> List[str]:
        rows = self._conn.execute(
            "SELECT cell_id FROM cells WHERE cache_key = ?", (self.key,)
        ).fetchall()
        ids = {row[0] for row in rows}
        ids.update(self._pending)
        return sorted(ids)

    def close(self) -> None:
        self.flush()
        self._conn.close()

    def _note_stale_formats(self) -> None:
        try:
            rows = self._conn.execute(
                "SELECT DISTINCT format FROM cells WHERE format != ?",
                (CACHE_FORMAT,),
            ).fetchall()
        except sqlite3.Error:
            return
        if rows:
            stale = ", ".join(sorted(row[0] for row in rows))
            warnings.warn(
                f"sqlite cache {self.path} holds stale-format cells "
                f"[{stale}]; current format is {CACHE_FORMAT} — they are "
                "ignored and safe to delete"
            )


def backend_from_spec(spec: str, cache_key: str) -> CacheBackend:
    """Open a backend from a spec string.

    ``sqlite:///PATH`` selects :class:`SqliteCacheBackend`,
    ``dir:///PATH`` (or a bare path) :class:`DirCacheBackend`.
    """
    if spec.startswith("sqlite:///"):
        return SqliteCacheBackend(spec[len("sqlite:///") :], cache_key)
    if spec.startswith("dir:///"):
        return DirCacheBackend(spec[len("dir:///") :], cache_key)
    if "://" in spec:
        raise ReproError(
            f"unknown cache backend {spec!r} "
            "(supported: dir:///PATH, sqlite:///PATH.db, or a bare directory)"
        )
    return DirCacheBackend(spec, cache_key)


# -- the sweep space -------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class SweepSpec:
    """The (workload × strategy × seed × heap-config) grid to run."""

    workloads: Tuple[str, ...]
    strategies: Tuple[str, ...]
    seeds: Tuple[int, ...] = (42,)
    heap_configs: Tuple[str, ...] = ("default",)

    def __post_init__(self) -> None:
        for heap in self.heap_configs:
            heap_config(heap)  # raises ReproError on unknown names
        if not (self.workloads and self.strategies and self.seeds):
            raise ReproError("a sweep needs ≥1 workload, strategy, and seed")

    def production_cells(self) -> List[CellKey]:
        """Every production cell, in deterministic sweep order."""
        return [
            CellKey(workload=w, strategy=s, seed=seed, heap=heap)
            for heap in self.heap_configs
            for seed in self.seeds
            for w in self.workloads
            for s in self.strategies
        ]

    @property
    def size(self) -> int:
        return (
            len(self.workloads)
            * len(self.strategies)
            * len(self.seeds)
            * len(self.heap_configs)
        )


# -- streaming results -----------------------------------------------------------


@dataclasses.dataclass
class SweepProgress:
    """Live progress attached to every streamed cell."""

    done: int
    total: int
    elapsed_s: float

    @property
    def cells_per_sec(self) -> float:
        if self.elapsed_s <= 0:
            return 0.0
        return self.done / self.elapsed_s

    @property
    def eta_s(self) -> float:
        rate = self.cells_per_sec
        if rate <= 0:
            return 0.0
        return (self.total - self.done) / rate


@dataclasses.dataclass
class CellResult:
    """One cell landing: streamed by :func:`run_sweep` as it completes."""

    key: CellKey
    result: PhaseResult
    cached: bool
    progress: SweepProgress


# -- worker-process entry points -------------------------------------------------
# Module-level so ProcessPoolExecutor can pickle them.  Each worker
# builds a fresh pipeline from primitive arguments; the virtual clock
# makes every cell bit-deterministic, so worker results are identical
# to what the serial path computes in-process.


def _cell_pipeline(workload: str, seed: int, heap: str) -> POLM2Pipeline:
    config = heap_config(heap, base=SimConfig(seed=seed))
    return POLM2Pipeline(
        workload_factory=lambda w=workload, s=seed: make_workload(w, seed=s),
        config=config,
    )


def _run_profiling_cell(
    workload: str, seed: int, heap: str, profiling_ms: float
) -> PhaseResult:
    keep: List[PhaseResult] = []
    _cell_pipeline(workload, seed, heap).run_profiling_phase(
        duration_ms=profiling_ms, keep_result=keep
    )
    return keep[0]


def _run_production_cell(
    workload: str,
    strategy: str,
    seed: int,
    heap: str,
    production_ms: float,
    profile_json: Optional[str],
) -> PhaseResult:
    """Resolve ``strategy`` through the registry and run one cell.

    Workers see only strategies registered at import time (the built-ins
    plus anything a ``repro.strategies``-importing plugin registers);
    strategies registered dynamically in the parent process require the
    serial scheduler.
    """
    pipe = _cell_pipeline(workload, seed, heap)
    profile = (
        AllocationProfile.from_json(profile_json)
        if profile_json is not None
        else None
    )
    return pipe.run(strategy, duration_ms=production_ms, profile=profile)


# -- the sharded work-stealing scheduler ----------------------------------------


class _ShardedScheduler:
    """Shards ready cells across worker slots and steals for stragglers.

    The parent process owns one deque per worker slot.  A slot that
    finishes a cell pulls the next from its own shard head; a dry slot
    steals from the tail of the fullest shard.  Cells are sharded by a
    stable hash of their id, so the initial placement is deterministic;
    stealing then rebalances whatever reality does to the schedule.
    """

    def __init__(self, nshards: int) -> None:
        self.shards: List[Deque[CellKey]] = [deque() for _ in range(nshards)]

    def shard_of(self, key: CellKey) -> int:
        return zlib.crc32(key.cell_id.encode()) % len(self.shards)

    def push(self, key: CellKey) -> None:
        self.shards[self.shard_of(key)].append(key)

    def pop_for(self, slot: int) -> Optional[CellKey]:
        own = self.shards[slot]
        if own:
            return own.popleft()
        victim = max(self.shards, key=len)
        if victim:
            return victim.pop()  # steal from the tail: coldest work
        return None

    def __len__(self) -> int:
        return sum(len(shard) for shard in self.shards)


def run_sweep(
    spec: SweepSpec,
    *,
    profiling_ms: float = 30_000.0,
    production_ms: float = 60_000.0,
    backend: Optional[CacheBackend] = None,
    jobs: int = 1,
    mode: str = "sharded",
    preloaded: Optional[Mapping[CellKey, PhaseResult]] = None,
    profile_source: Optional[str] = None,
    clock: Callable[[], float] = time.perf_counter,
) -> Iterator[CellResult]:
    """Run every cell of ``spec``, streaming results as they land.

    Cache hits (from ``backend`` and ``preloaded``) stream first; live
    cells follow as workers complete them.  Profiling cells are
    scheduled only for production cells that actually need computing —
    a cached POLM2 cell never forces its profiling phase — and appear
    in the stream (and the done/total counts) like any other cell.

    ``profile_source`` points profile-consuming production cells at an
    external profile instead of a swept profiling cell: a profile URI
    (``http://``, ``store://``, ``file://``) with an optional
    ``{workload}`` placeholder, e.g.
    ``http://host:port/profiles/{workload}/latest`` against a running
    ``repro serve``.  Profiling cells are then skipped entirely, and the
    sourced production cells bypass the cache both ways — their inputs
    live outside the cache key, so neither a stale hit nor a poisoned
    store is possible.

    ``mode="sharded"`` (the default) uses the work-stealing scheduler
    with the per-cell DAG; ``mode="wave"`` inserts the legacy global
    barrier between the profiling and production waves (kept for
    benchmarking scheduler overhead); ``mode="serial"`` — or ``jobs=1``
    — runs in-process in deterministic sweep order.  All three produce
    byte-identical cells.
    """
    if mode not in SCHEDULER_MODES:
        raise ReproError(
            f"unknown scheduler mode {mode!r} (known: {', '.join(SCHEDULER_MODES)})"
        )
    if jobs < 1:
        raise ReproError(f"jobs must be >= 1, got {jobs}")
    preloaded = dict(preloaded or {})
    start = clock()

    sourced_profiles: Dict[str, str] = {}
    if profile_source is not None:
        from repro.core.profilesource import profile_source as parse_source

        for workload in sorted(
            {
                key.workload
                for key in spec.production_cells()
                if get_strategy(key.strategy).needs_profile
            }
        ):
            uri = profile_source.replace("{workload}", workload)
            sourced_profiles[workload] = (
                parse_source(uri).resolve().to_json()
            )

    def lookup(key: CellKey) -> Optional[PhaseResult]:
        hit = preloaded.get(key)
        if hit is None and backend is not None:
            hit = backend.load(key)
        if hit is None:
            return None
        if key.is_profiling and hit.profile is None:
            return None  # foreign/corrupt profiling cell: recompute
        return hit

    # -- cache probe: production first, then only the profiling cells
    # some uncached production cell still needs.
    production = spec.production_cells()
    hits: List[Tuple[CellKey, PhaseResult]] = []
    pending: List[CellKey] = []
    sourced_keys = set()
    for key in production:
        if (
            sourced_profiles
            and get_strategy(key.strategy).needs_profile
        ):
            # Externally-sourced cells bypass the cache: the served
            # profile is not part of the cache key.
            sourced_keys.add(key)
            pending.append(key)
            continue
        found = lookup(key)
        if found is not None:
            hits.append((key, found))
        else:
            pending.append(key)
    needed_profiling: List[CellKey] = []
    profiles: Dict[CellKey, str] = {}  # profiling cell -> profile JSON
    blocked: Dict[CellKey, List[CellKey]] = {}
    for key in pending:
        if not get_strategy(key.strategy).needs_profile:
            continue
        prof_key = key.profiling_key()
        if key in sourced_keys:
            # The profile comes from the service, not a profiling cell.
            profiles[prof_key] = sourced_profiles[key.workload]
            continue
        if prof_key not in blocked:
            blocked[prof_key] = []
            needed_profiling.append(prof_key)
        blocked[prof_key].append(key)
    pending_profiling: List[CellKey] = []
    for prof_key in needed_profiling:
        found = lookup(prof_key)
        if found is not None:
            hits.append((prof_key, found))
            profiles[prof_key] = found.profile.to_json()
            del blocked[prof_key]
        else:
            pending_profiling.append(prof_key)

    total = len(production) + len(needed_profiling)
    done = 0

    def emit(key: CellKey, result: PhaseResult, cached: bool) -> CellResult:
        nonlocal done
        done += 1
        return CellResult(
            key=key,
            result=result,
            cached=cached,
            progress=SweepProgress(
                done=done, total=total, elapsed_s=clock() - start
            ),
        )

    def computed(key: CellKey, result: PhaseResult) -> CellResult:
        if backend is not None and key not in sourced_keys:
            # Store *and* commit before the cell is reported done: a
            # killed sweep must resume from every cell it streamed.
            backend.store(key, result)
            backend.flush()
        if key.is_profiling:
            profiles[key] = result.profile.to_json()
        return emit(key, result, cached=False)

    try:
        for key, result in hits:
            yield emit(key, result, cached=True)
        if not pending and not pending_profiling:
            return

        if jobs == 1 or mode == "serial":
            # Deterministic sweep order; each needed profiling cell runs
            # immediately before its first dependent.
            profiled = set(profiles)
            for key in pending:
                prof_key = key.profiling_key()
                if (
                    get_strategy(key.strategy).needs_profile
                    and prof_key not in profiled
                ):
                    yield computed(
                        prof_key,
                        _run_profiling_cell(
                            key.workload, key.seed, key.heap, profiling_ms
                        ),
                    )
                    profiled.add(prof_key)
                profile_json = (
                    profiles.get(prof_key)
                    if get_strategy(key.strategy).needs_profile
                    else None
                )
                yield computed(
                    key,
                    _run_production_cell(
                        key.workload,
                        key.strategy,
                        key.seed,
                        key.heap,
                        production_ms,
                        profile_json,
                    ),
                )
            return

        yield from _run_sweep_pool(
            pending,
            pending_profiling,
            blocked,
            profiles,
            computed,
            profiling_ms=profiling_ms,
            production_ms=production_ms,
            backend=backend,
            jobs=jobs,
            barrier=(mode == "wave"),
        )
    finally:
        if backend is not None:
            backend.flush()


def _run_sweep_pool(
    pending: Sequence[CellKey],
    pending_profiling: Sequence[CellKey],
    blocked: Dict[CellKey, List[CellKey]],
    profiles: Dict[CellKey, str],
    computed: Callable[[CellKey, PhaseResult], CellResult],
    *,
    profiling_ms: float,
    production_ms: float,
    backend: Optional[CacheBackend],
    jobs: int,
    barrier: bool,
) -> Iterator[CellResult]:
    """The parallel scheduler body shared by sharded and wave modes."""
    scheduler = _ShardedScheduler(jobs)
    deferred_production: List[CellKey] = []
    blocked_cells = {dep for deps in blocked.values() for dep in deps}
    for key in pending_profiling:
        scheduler.push(key)
    for key in pending:
        if barrier and pending_profiling:
            # Wave mode: *no* production cell starts before every
            # profiling cell has landed — the global two-wave barrier.
            deferred_production.append(key)
        elif key in blocked_cells:
            pass  # the DAG releases it when its profiling cell lands
        else:
            scheduler.push(key)

    with concurrent.futures.ProcessPoolExecutor(max_workers=jobs) as pool:
        in_flight: Dict[concurrent.futures.Future, Tuple[CellKey, int]] = {}
        profiling_left = len(pending_profiling)

        def submit(key: CellKey, slot: int) -> None:
            if key.is_profiling:
                future = pool.submit(
                    _run_profiling_cell,
                    key.workload,
                    key.seed,
                    key.heap,
                    profiling_ms,
                )
            else:
                profile_json = (
                    profiles.get(key.profiling_key())
                    if get_strategy(key.strategy).needs_profile
                    else None
                )
                future = pool.submit(
                    _run_production_cell,
                    key.workload,
                    key.strategy,
                    key.seed,
                    key.heap,
                    production_ms,
                    profile_json,
                )
            in_flight[future] = (key, slot)

        def fill(free_slots: List[int]) -> None:
            while free_slots:
                slot = free_slots[-1]
                key = scheduler.pop_for(slot)
                if key is None:
                    break
                free_slots.pop()
                submit(key, slot)

        fill(list(range(jobs)))
        while in_flight:
            completed, _ = concurrent.futures.wait(
                in_flight, return_when=concurrent.futures.FIRST_COMPLETED
            )
            free_slots: List[int] = []
            for future in completed:
                key, slot = in_flight.pop(future)
                free_slots.append(slot)
                result = future.result()
                yield computed(key, result)
                if key.is_profiling:
                    profiling_left -= 1
                    for dependent in blocked.pop(key, []):
                        if not barrier:
                            scheduler.push(dependent)
                    if barrier and profiling_left == 0:
                        # Wave barrier: release every production cell at
                        # once, only now that all profiles exist.
                        for dependent in deferred_production:
                            scheduler.push(dependent)
                        deferred_production = []
            fill(free_slots)


# -- multi-seed aggregation ------------------------------------------------------


@dataclasses.dataclass
class PooledSeries:
    """Pause samples for one (workload, strategy) pooled across seeds."""

    workload: str
    strategy: str
    durations_ms: List[float]
    seeds: int

    @property
    def samples(self) -> int:
        return len(self.durations_ms)

    @property
    def row(self) -> List[float]:
        from repro.metrics.percentiles import percentile_row

        return percentile_row(self.durations_ms)

    @property
    def support(self) -> str:
        return f"{self.samples} pauses / {self.seeds} seed(s)"


def pooled_pause_percentiles(
    cells: Mapping[CellKey, PhaseResult],
    strategies: Optional[Sequence[str]] = None,
) -> Dict[str, Dict[str, PooledSeries]]:
    """Pool pause samples across seeds (and heap configs) per cell group.

    Returns ``{workload: {STRATEGY: PooledSeries}}``; each series keeps
    its seed and sample count so figures can report the support behind
    every percentile claim.
    """
    grouped: Dict[Tuple[str, str], Tuple[List[float], set]] = {}
    for key, result in cells.items():
        if key.is_profiling:
            continue
        if strategies is not None and key.strategy not in strategies:
            continue
        durations, seeds = grouped.setdefault(
            (key.workload, key.strategy), ([], set())
        )
        durations.extend(result.pause_durations_ms())
        seeds.add(key.seed)
    pooled: Dict[str, Dict[str, PooledSeries]] = {}
    for (workload, strategy), (durations, seeds) in sorted(grouped.items()):
        pooled.setdefault(workload, {})[strategy.upper()] = PooledSeries(
            workload=workload,
            strategy=strategy,
            durations_ms=durations,
            seeds=len(seeds),
        )
    return pooled
