"""Table 1: application profiling metrics, POLM2 vs NG2C-manual.

Paper columns, per workload:

* ``# Instrumented Alloc Sites`` — POLM2 / NG2C (e.g. Cassandra-WI 11/11,
  Lucene 2/8);
* ``# Used Generations`` — POLM2 / NG2C (Cassandra 4/N — manual NG2C
  creates one generation per memtable flush);
* ``# Conflicts Encountered`` — POLM2 / NG2C.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro.experiments.runner import ExperimentRunner, default_runner
from repro.workloads import WORKLOAD_NAMES, make_workload

#: The values the paper reports, for side-by-side comparison.
PAPER_TABLE1 = {
    "cassandra-wi": ("11/11", "4/N", "2/2"),
    "cassandra-wr": ("11/11", "4/N", "2/2"),
    "cassandra-ri": ("10/11", "4/N", "3/2"),
    "lucene": ("2/8", "2/2", "2/0"),
    "graphchi-cc": ("9/9", "2/2", "1/0"),
    "graphchi-pr": ("9/9", "2/2", "1/0"),
}


@dataclasses.dataclass
class Table1Row:
    workload: str
    polm2_sites: int
    ng2c_sites: int
    polm2_generations: int
    ng2c_generations: str  # "N" when the manual strategy rotates
    polm2_conflicts: int
    ng2c_conflicts: int

    def cells(self) -> List[str]:
        return [
            f"{self.polm2_sites}/{self.ng2c_sites}",
            f"{self.polm2_generations}/{self.ng2c_generations}",
            f"{self.polm2_conflicts}/{self.ng2c_conflicts}",
        ]


def build_row(runner: ExperimentRunner, workload: str) -> Table1Row:
    profile = runner.profile(workload)
    manual = make_workload(workload, seed=runner.settings.seed).manual_ng2c()
    manual_sites = len({d.location for d in manual.alloc_directives})
    if manual.rotate_generation_on_flush:
        manual_gens = "N"
    else:
        gens = {
            d.target_generation
            for d in manual.call_directives
            if d.target_generation >= 1
        }
        gens.update(
            d.pre_set_gen
            for d in manual.alloc_directives
            if d.pre_set_gen is not None and d.pre_set_gen >= 1
        )
        manual_gens = str(len(gens) + 1)
    return Table1Row(
        workload=workload,
        polm2_sites=profile.instrumented_site_count,
        ng2c_sites=manual_sites,
        polm2_generations=profile.generations_used,
        ng2c_generations=manual_gens,
        polm2_conflicts=profile.conflicts_detected,
        ng2c_conflicts=manual.conflicts_handled,
    )


def run(runner: Optional[ExperimentRunner] = None) -> Dict[str, Table1Row]:
    runner = runner or default_runner()
    return {w: build_row(runner, w) for w in WORKLOAD_NAMES}


def render(rows: Dict[str, Table1Row], include_paper: bool = True) -> str:
    headers = ["workload", "alloc sites", "generations", "conflicts"]
    if include_paper:
        headers += ["paper: sites", "gens", "conflicts"]
    lines = ["Table 1: Application Profiling Metrics (POLM2/NG2C)"]
    lines.append(" ".join(f"{h:>14}" for h in headers))
    for workload, row in rows.items():
        cells = row.cells()
        if include_paper:
            cells += list(PAPER_TABLE1.get(workload, ("?", "?", "?")))
        lines.append(
            f"{workload:>14} " + " ".join(f"{c:>14}" for c in cells)
        )
    return "\n".join(lines)
