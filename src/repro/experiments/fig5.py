"""Figure 5 (a-f): pause-time percentiles per workload.

One panel per workload; each panel has the G1 / NG2C / POLM2 series over
percentiles 50 … 99.999 plus the worst observable pause.  The paper's
headline: POLM2 cuts the worst observable pause vs G1 by 55 / 67 / 78 %
(Cassandra WI/WR/RI) and 58 / 78 / 80 % (Lucene, GraphChi CC, PR), while
matching or beating manual NG2C (beating it on Cassandra-RI and Lucene,
where the hand annotations were misplaced).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from repro.experiments.runner import ExperimentRunner, default_runner
from repro.metrics.percentiles import percentile_row
from repro.workloads import WORKLOAD_NAMES

#: Worst-pause reduction vs G1 the paper reports per workload.
PAPER_WORST_REDUCTION = {
    "cassandra-wi": 0.55,
    "cassandra-wr": 0.67,
    "cassandra-ri": 0.78,
    "lucene": 0.58,
    "graphchi-cc": 0.78,
    "graphchi-pr": 0.80,
}


@dataclasses.dataclass
class Fig5Panel:
    workload: str
    #: strategy -> [P50, P90, P99, P99.9, P99.99, P99.999, max] (ms).
    series: Dict[str, List[float]]
    #: strategy -> (seeds, pause samples) backing the series; pause
    #: samples are pooled across every seed of the runner's settings.
    support: Optional[Dict[str, Tuple[int, int]]] = None

    def worst(self, strategy: str) -> float:
        return self.series[strategy][-1]

    def worst_reduction_vs_g1(self, strategy: str = "POLM2") -> float:
        g1 = self.worst("G1")
        if g1 <= 0:
            return 0.0
        return 1.0 - self.worst(strategy) / g1


def run(runner: Optional[ExperimentRunner] = None) -> Dict[str, Fig5Panel]:
    runner = runner or default_runner()
    panels: Dict[str, Fig5Panel] = {}
    seeds = len(runner.settings.seed_list)
    for workload in WORKLOAD_NAMES:
        durations = runner.pause_series(workload)
        panels[workload] = Fig5Panel(
            workload=workload,
            series={name: percentile_row(vals) for name, vals in durations.items()},
            support={
                name: (seeds, len(vals)) for name, vals in durations.items()
            },
        )
    return panels


def render(panels: Dict[str, Fig5Panel]) -> str:
    parts = ["Figure 5: Pause Time Percentiles (ms)"]
    for workload, panel in panels.items():
        raw = {
            name: values for name, values in panel.series.items()
        }
        headers = ["P50", "P90", "P99", "P99.9", "P99.99", "P99.999", "max"]
        lines = [f"--- {workload} ---"]
        lines.append("      " + " ".join(f"{h:>9}" for h in headers))
        for name, row in raw.items():
            lines.append(
                f"{name:>5} " + " ".join(f"{v:>9.2f}" for v in row)
            )
        reduction = panel.worst_reduction_vs_g1()
        paper = PAPER_WORST_REDUCTION.get(workload, 0.0)
        lines.append(
            f"worst-pause reduction vs G1: measured {reduction:.0%} "
            f"(paper: {paper:.0%})"
        )
        if panel.support:
            lines.append(
                "support: "
                + ", ".join(
                    f"{name} n={samples} ({seeds} seed(s))"
                    for name, (seeds, samples) in panel.support.items()
                )
            )
        parts.append("\n".join(lines))
    return "\n\n".join(parts)
