"""Object-lifetime demographics: the paper's motivation, measured.

§1/§2 of the paper argue that big-data platforms "violate the widely
accepted assumption that most objects die young" (the weak generational
hypothesis, Ungar 1984; demographics in Jones & Ryder 2008): they hold
massive volumes of *middle to long-lived* objects, which is why
2-generation collectors pay en-masse promotion and compaction.

This experiment measures exactly that: per workload, the fraction of
allocated objects surviving at least k GC cycles, compared against a
control workload that *does* obey the hypothesis (pure request/response:
every allocation dies within its request).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Sequence

from repro.config import SimConfig
from repro.core.dumper import Dumper
from repro.core.recorder import Recorder
from repro.gc.ng2c import NG2CCollector
from repro.runtime.code import ClassModel
from repro.runtime.vm import VM
from repro.workloads import make_workload
from repro.workloads.base import Workload

#: Survival thresholds (GC cycles) reported per workload.
SURVIVAL_THRESHOLDS = (1, 2, 4, 8)


class RequestResponseControl(Workload):
    """A weak-generational-hypothesis-compliant control workload.

    Pure request/response: every operation allocates scratch that dies
    when the request completes.  Nothing is retained, so essentially no
    object should survive even one collection.
    """

    name = "control-request-response"

    def __init__(self, seed: int = 42, ops_per_tick: int = 64) -> None:
        super().__init__()
        self.ops_per_tick = ops_per_tick

    def class_models(self) -> List[ClassModel]:
        service = ClassModel("control.Service")
        handle = service.add_method("handle")
        handle.add_alloc_site(10, "Request", 256)
        handle.add_alloc_site(11, "Response", 384)
        handle.add_alloc_site(12, "Scratch", 192)
        return [service]

    def setup(self, vm) -> None:
        self.vm = vm
        self.thread = vm.new_thread("handler")

    def tick(self) -> int:
        with self.thread.entry("control.Service", "handle"):
            for _ in range(self.ops_per_tick):
                self.thread.alloc(10, keep=False)
                self.thread.alloc(11, keep=False)
                self.thread.alloc(12, keep=False)
                self.vm.tick_op()
        return self.ops_per_tick


@dataclasses.dataclass
class DemographicsRow:
    """Survival fractions for one workload."""

    workload: str
    objects_observed: int
    #: threshold -> fraction of objects surviving >= threshold cycles.
    survival: Dict[int, float]

    @property
    def middle_lived_fraction(self) -> float:
        """Objects surviving >= 2 cycles — the population G1 churns on."""
        return self.survival.get(2, 0.0)


def measure_workload(
    workload_name: str,
    duration_ms: float = 15_000.0,
    seed: int = 42,
    workload: Workload = None,
) -> DemographicsRow:
    """Profile one workload and fold its survival distribution."""
    workload = workload or make_workload(workload_name, seed=seed)
    collector = NG2CCollector()
    vm = VM(SimConfig(seed=seed), collector=collector)
    recorder = Recorder()
    dumper = Dumper(vm)
    recorder.attach(vm, dumper)
    for model in workload.class_models():
        vm.classloader.load(model)
    workload.setup(vm)
    while vm.clock.now_ms < duration_ms:
        workload.tick()
    workload.teardown()

    from repro.core.analyzer import Analyzer

    analyzer = Analyzer(recorder.records, dumper.store.snapshots, min_samples=1)
    counts = analyzer.survival_counts()
    cutoff = analyzer._id_cutoff()
    observed = 0
    survivors = {threshold: 0 for threshold in SURVIVAL_THRESHOLDS}
    for object_id in recorder.records.recorded_object_ids():
        if cutoff is not None and object_id > cutoff:
            continue
        observed += 1
        survived = counts.get(object_id, 0)
        for threshold in SURVIVAL_THRESHOLDS:
            if survived >= threshold:
                survivors[threshold] += 1
    survival = {
        threshold: (survivors[threshold] / observed if observed else 0.0)
        for threshold in SURVIVAL_THRESHOLDS
    }
    return DemographicsRow(
        workload=workload.name, objects_observed=observed, survival=survival
    )


def run(
    workloads: Sequence[str] = ("cassandra-wi", "lucene", "graphchi-pr"),
    duration_ms: float = 15_000.0,
    seed: int = 42,
) -> Dict[str, DemographicsRow]:
    rows = {
        "control": measure_workload(
            "control",
            duration_ms=duration_ms,
            seed=seed,
            workload=RequestResponseControl(seed=seed),
        )
    }
    for name in workloads:
        rows[name] = measure_workload(name, duration_ms=duration_ms, seed=seed)
    return rows


def render(rows: Dict[str, DemographicsRow]) -> str:
    lines = [
        "Object lifetime demographics: fraction of objects surviving >= k "
        "GC cycles",
        f"{'workload':>26} {'observed':>9} "
        + " ".join(f">={t:>2}cyc" for t in SURVIVAL_THRESHOLDS),
    ]
    for name, row in rows.items():
        cells = " ".join(
            f"{row.survival[t]:>6.1%}" for t in SURVIVAL_THRESHOLDS
        )
        lines.append(f"{name:>26} {row.objects_observed:>9} {cells}")
    lines.append(
        "(the paper's premise: big-data platforms hold far more middle/"
        "long-lived objects than the weak generational hypothesis assumes)"
    )
    return "\n".join(lines)
