"""Shared experiment runner: the (workload × strategy) result matrix.

Figures 5-9 all consume the same 6 workloads × {G1, NG2C-manual, POLM2,
C4} runs; Table 1 consumes the profiling phases.  The runner executes
each cell once and caches it, so regenerating every figure costs one pass
over the matrix.

The heavy lifting lives in :mod:`repro.experiments.matrix` — the
fleet-scale sweep engine: a sharded work-stealing scheduler over the
(workload × strategy × seed × heap-config) space with a per-cell
profiling→production dependency DAG, streaming cell results, and a
pluggable :class:`~repro.experiments.matrix.CacheBackend` (JSON dir by
default, single-file WAL sqlite via ``--cache-backend
sqlite:///sweep.db`` / ``REPRO_CACHE_BACKEND``).  This module keeps the
figure-facing conveniences on top:

* **in-memory memoization** — each cell is computed once per runner;
* **on-disk result cache** — keyed by a hash of the
  :class:`SimConfig` fingerprint, the experiment settings, and a
  content hash of the ``repro`` package sources, so re-running figures
  after a restart is near-free and any code or config change
  invalidates stale results;
* **multi-seed pooling** — with ``ExperimentSettings.seeds`` set (env
  ``REPRO_SEEDS``, e.g. ``0-7`` or ``1,3,5``), ``pause_series`` pools
  pause samples across every seed and ``series_support`` reports the
  seed/sample counts figures print alongside their percentiles.

Durations honour two environment variables so CI can run quick smoke
passes: ``REPRO_PROFILE_MS`` and ``REPRO_PRODUCTION_MS`` (virtual
milliseconds); ``REPRO_JOBS``, ``REPRO_CACHE_DIR``, ``REPRO_SEEDS``,
and ``REPRO_CACHE_BACKEND`` configure the parallel, cached, and
multi-seed paths the same way.
"""

from __future__ import annotations

import dataclasses
import os
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.config import SimConfig
from repro.core.pipeline import POLM2Pipeline, PhaseResult
from repro.core.profile import AllocationProfile
from repro.errors import ReproError
from repro.experiments.matrix import (
    CACHE_FORMAT,
    PROFILING_KEY,
    CacheBackend,
    CellKey,
    CellResult,
    DirCacheBackend,
    SweepSpec,
    backend_from_spec,
    code_version,
    heap_config,
    parse_seeds,
    run_sweep,
    sweep_cache_key,
)
from repro.strategies import get_strategy
from repro.workloads import WORKLOAD_NAMES, make_workload

__all__ = [
    "CACHE_FORMAT",
    "PROFILING_KEY",
    "STRATEGIES",
    "PAUSE_STRATEGIES",
    "ExperimentRunner",
    "ExperimentSettings",
    "MatrixCache",
    "code_version",
    "default_runner",
    "reset_default_runner",
]

#: Strategy keys as plotted in the paper.
STRATEGIES = ("g1", "ng2c", "polm2", "c4")

#: Strategies shown in pause-time figures (C4 is omitted there: all of
#: its pauses are below 10 ms, paper §5).
PAUSE_STRATEGIES = ("g1", "ng2c", "polm2")


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name)
    if raw is None or raw == "":
        return default
    try:
        return int(raw)
    except ValueError:
        raise ReproError(
            f"environment variable {name} must be an integer, got {raw!r}"
        ) from None


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name)
    if raw is None or raw == "":
        return default
    try:
        return float(raw)
    except ValueError:
        raise ReproError(
            f"environment variable {name} must be a number, got {raw!r}"
        ) from None


@dataclasses.dataclass
class ExperimentSettings:
    """Durations, seeds, and performance knobs for a full experiment pass.

    ``jobs``, ``cache_dir``, and ``cache_backend`` affect only *how
    fast* results are produced, never their values, so they are
    excluded from the on-disk cache key.
    """

    profiling_ms: float = 30_000.0
    production_ms: float = 60_000.0
    seed: int = 42
    #: Seeds a multi-seed sweep ranges over (None = just ``seed``).
    seeds: Optional[Tuple[int, ...]] = None
    #: Worker processes for ``full_matrix`` / ``sweep`` (1 = serial).
    jobs: int = 1
    #: Directory of the on-disk result cache (None disables it).
    cache_dir: Optional[str] = None
    #: Cache backend spec (``dir:///PATH`` or ``sqlite:///PATH.db``);
    #: overrides ``cache_dir`` when set.
    cache_backend: Optional[str] = None
    #: Profile URI template (``{workload}`` substituted) pointing
    #: profile-consuming sweep cells at an external profile — e.g.
    #: ``http://host:port/profiles/{workload}/latest`` against a running
    #: ``repro serve`` — instead of sweeping profiling cells locally.
    profile_source: Optional[str] = None

    @classmethod
    def from_env(cls) -> "ExperimentSettings":
        """Build settings from ``REPRO_*`` env vars.

        Raises :class:`~repro.errors.ReproError` (not a bare
        ``ValueError``) on unparseable values so the CLI can report them
        as one-line errors.
        """
        raw_seeds = os.environ.get("REPRO_SEEDS") or None
        return cls(
            profiling_ms=_env_float("REPRO_PROFILE_MS", 30_000.0),
            production_ms=_env_float("REPRO_PRODUCTION_MS", 60_000.0),
            seed=_env_int("REPRO_SEED", 42),
            seeds=parse_seeds(raw_seeds) if raw_seeds else None,
            jobs=_env_int("REPRO_JOBS", 1),
            cache_dir=os.environ.get("REPRO_CACHE_DIR") or None,
            cache_backend=os.environ.get("REPRO_CACHE_BACKEND") or None,
            profile_source=os.environ.get("REPRO_PROFILE_SOURCE") or None,
        )

    @property
    def seed_list(self) -> Tuple[int, ...]:
        """The seeds a sweep ranges over (``seeds`` or just ``seed``)."""
        return self.seeds if self.seeds else (self.seed,)

    def open_backend(self, config: SimConfig) -> Optional[CacheBackend]:
        """Open the configured cache backend (None when caching is off)."""
        key = sweep_cache_key(config, self.profiling_ms, self.production_ms)
        if self.cache_backend:
            return backend_from_spec(self.cache_backend, key)
        if self.cache_dir:
            return DirCacheBackend(self.cache_dir, key)
        return None


class MatrixCache(DirCacheBackend):
    """The legacy (workload, strategy) view of the JSON-dir backend.

    Kept for compatibility: cells are addressed by (workload, strategy)
    at the settings' single seed and the default heap config.  New code
    should use a :class:`~repro.experiments.matrix.CacheBackend` with
    full :class:`~repro.experiments.matrix.CellKey` addressing.
    """

    def __init__(
        self, root: str, config: SimConfig, settings: ExperimentSettings
    ) -> None:
        self.seed = settings.seed
        super().__init__(
            root,
            sweep_cache_key(
                config, settings.profiling_ms, settings.production_ms
            ),
        )

    def _cell_key(self, workload: str, strategy: str) -> CellKey:
        return CellKey(workload=workload, strategy=strategy, seed=self.seed)

    def load(self, workload: str, strategy: str) -> Optional[PhaseResult]:  # type: ignore[override]
        return super().load(self._cell_key(workload, strategy))

    def store(self, workload: str, strategy: str, result: PhaseResult) -> None:  # type: ignore[override]
        super().store(self._cell_key(workload, strategy), result)


# -- worker-process entry points (re-exported; implementations live in
# matrix.py so the sweep engine and the runner share one code path) ------------
from repro.experiments.matrix import (  # noqa: E402
    _run_production_cell,
    _run_profiling_cell,
)


def _worker_pipeline(workload: str, seed: int) -> POLM2Pipeline:
    return POLM2Pipeline(
        workload_factory=lambda w=workload, s=seed: make_workload(w, seed=s),
        config=SimConfig(seed=seed),
    )


class ExperimentRunner:
    """Runs and caches every (workload, strategy[, seed, heap]) cell."""

    def __init__(self, settings: Optional[ExperimentSettings] = None) -> None:
        self.settings = settings or ExperimentSettings.from_env()
        self._pipelines: Dict[Tuple[str, int, str], POLM2Pipeline] = {}
        self._profiles: Dict[Tuple[str, int, str], AllocationProfile] = {}
        self._profiling_results: Dict[Tuple[str, int, str], PhaseResult] = {}
        self._cells: Dict[CellKey, PhaseResult] = {}
        self._backend: Optional[CacheBackend] = self.settings.open_backend(
            SimConfig(seed=self.settings.seed)
        )

    # -- legacy single-seed view (what the figure modules consume) ---------------

    @property
    def _results(self) -> Dict[Tuple[str, str], PhaseResult]:
        """(workload, strategy) view of the default-seed production cells."""
        seed = self.settings.seed
        return {
            (key.workload, key.strategy): result
            for key, result in self._cells.items()
            if key.seed == seed
            and key.heap == "default"
            and not key.is_profiling
        }

    # -- building blocks ---------------------------------------------------------

    def pipeline(
        self, workload: str, seed: Optional[int] = None, heap: str = "default"
    ) -> POLM2Pipeline:
        seed = self.settings.seed if seed is None else seed
        cache_key = (workload, seed, heap)
        pipe = self._pipelines.get(cache_key)
        if pipe is None:
            pipe = POLM2Pipeline(
                workload_factory=lambda w=workload, s=seed: make_workload(
                    w, seed=s
                ),
                config=heap_config(heap, base=SimConfig(seed=seed)),
            )
            self._pipelines[cache_key] = pipe
        return pipe

    def _adopt_profiling_result(
        self,
        workload: str,
        cell: PhaseResult,
        seed: Optional[int] = None,
        heap: str = "default",
    ) -> None:
        seed = self.settings.seed if seed is None else seed
        self._profiling_results[(workload, seed, heap)] = cell
        if cell.profile is not None:
            self._profiles[(workload, seed, heap)] = cell.profile

    def profile(
        self, workload: str, seed: Optional[int] = None, heap: str = "default"
    ) -> AllocationProfile:
        """The POLM2 allocation profile for a workload (cached)."""
        seed = self.settings.seed if seed is None else seed
        prof = self._profiles.get((workload, seed, heap))
        if prof is None:
            key = CellKey(workload, PROFILING_KEY, seed, heap)
            cell = self._cache_load_key(key)
            if cell is not None and cell.profile is None:
                cell = None  # foreign/corrupt cell: recompute
            if cell is None:
                keep: List[PhaseResult] = []
                self.pipeline(workload, seed, heap).run_profiling_phase(
                    duration_ms=self.settings.profiling_ms, keep_result=keep
                )
                cell = keep[0]
                self._cache_store_key(key, cell)
            self._adopt_profiling_result(workload, cell, seed, heap)
            prof = self._profiles[(workload, seed, heap)]
        return prof

    def profiling_result(self, workload: str) -> PhaseResult:
        """The PhaseResult of the profiling run (snapshots included)."""
        self.profile(workload)
        return self._profiling_results[
            (workload, self.settings.seed, "default")
        ]

    # -- the on-disk cache --------------------------------------------------------

    def _cache_load_key(self, key: CellKey) -> Optional[PhaseResult]:
        if self._backend is None:
            return None
        return self._backend.load(key)

    def _cache_store_key(self, key: CellKey, cell: PhaseResult) -> None:
        if self._backend is not None:
            self._backend.store(key, cell)
            self._backend.flush()

    def _cache_load(self, workload: str, strategy: str) -> Optional[PhaseResult]:
        return self._cache_load_key(
            CellKey(workload, strategy, self.settings.seed)
        )

    def _cache_store(
        self, workload: str, strategy: str, cell: PhaseResult
    ) -> None:
        self._cache_store_key(
            CellKey(workload, strategy, self.settings.seed), cell
        )

    def cell(
        self,
        workload: str,
        strategy: str,
        seed: Optional[int] = None,
        heap: str = "default",
    ) -> PhaseResult:
        """One production cell of the sweep space (cached).

        Lookup order: in-memory, then the cache backend, then compute.
        A cache hit for a ``polm2`` cell never forces the profiling
        phase — the cached cell already embeds the profile it ran with.
        """
        seed = self.settings.seed if seed is None else seed
        key = CellKey(workload, strategy, seed, heap)
        result = self._cells.get(key)
        if result is None:
            result = self._cache_load_key(key)
        if result is None:
            spec = get_strategy(strategy)
            result = self.pipeline(workload, seed, heap).run(
                spec,
                duration_ms=self.settings.production_ms,
                profile=(
                    self.profile(workload, seed, heap)
                    if spec.needs_profile
                    else None
                ),
            )
            self._cache_store_key(key, result)
        self._cells[key] = result
        return result

    def result(self, workload: str, strategy: str) -> PhaseResult:
        """One production cell at the default seed and heap config."""
        return self.cell(workload, strategy)

    # -- bulk access ----------------------------------------------------------------

    def pause_series(
        self,
        workload: str,
        strategies: Sequence[str] = PAUSE_STRATEGIES,
    ) -> Dict[str, List[float]]:
        """Pause durations per strategy for one Figure 5/6 panel.

        With multi-seed settings (``seeds`` / ``REPRO_SEEDS``) the
        samples of every seed are pooled per strategy —
        :meth:`series_support` reports how many seeds and samples back
        each series.  Reuses cached cells (memory or disk); restricting
        ``strategies`` to baselines never touches the profiling phase,
        and a cached ``polm2`` cell is served without recomputing its
        profile.
        """
        series: Dict[str, List[float]] = {}
        for strategy in strategies:
            pooled: List[float] = []
            for seed in self.settings.seed_list:
                pooled.extend(
                    self.cell(workload, strategy, seed).pause_durations_ms()
                )
            series[strategy.upper()] = pooled
        return series

    def series_support(
        self,
        workload: str,
        strategies: Sequence[str] = PAUSE_STRATEGIES,
    ) -> Dict[str, Tuple[int, int]]:
        """Per strategy: (seeds, pause samples) behind ``pause_series``."""
        series = self.pause_series(workload, strategies)
        seeds = len(self.settings.seed_list)
        return {name: (seeds, len(vals)) for name, vals in series.items()}

    def full_matrix(
        self,
        workloads: Sequence[str] = WORKLOAD_NAMES,
        strategies: Sequence[str] = STRATEGIES,
        jobs: Optional[int] = None,
    ) -> Dict[Tuple[str, str], PhaseResult]:
        """Force-run every cell; returns {(workload, strategy): result}.

        ``jobs`` > 1 executes independent cells through the sharded
        work-stealing scheduler (the default comes from
        ``settings.jobs`` / ``REPRO_JOBS``).  Results are identical to
        the serial pass: every cell is deterministic in (workload,
        strategy, seed, heap config, durations).
        """
        jobs = self.settings.jobs if jobs is None else jobs
        if jobs > 1:
            for _ in self.sweep(
                workloads=workloads,
                strategies=strategies,
                seeds=(self.settings.seed,),
                jobs=jobs,
            ):
                pass
        else:
            for workload in workloads:
                for strategy in strategies:
                    self.result(workload, strategy)
        seed = self.settings.seed
        return {
            (workload, strategy): self._cells[
                CellKey(workload, strategy, seed)
            ]
            for workload in workloads
            for strategy in strategies
        }

    # -- the fleet-scale sweep ----------------------------------------------------

    def sweep(
        self,
        workloads: Sequence[str] = WORKLOAD_NAMES,
        strategies: Sequence[str] = STRATEGIES,
        seeds: Optional[Sequence[int]] = None,
        heap_configs: Sequence[str] = ("default",),
        jobs: Optional[int] = None,
        mode: str = "sharded",
    ) -> Iterator[CellResult]:
        """Stream the (workload × strategy × seed × heap-config) sweep.

        Yields :class:`~repro.experiments.matrix.CellResult` values as
        cells land (cache hits first), with live progress attached.
        Completed cells are adopted into the runner's in-memory store,
        so the figure modules aggregate from warm results afterwards.
        """
        spec = SweepSpec(
            workloads=tuple(workloads),
            strategies=tuple(strategies),
            seeds=tuple(seeds) if seeds is not None else self.settings.seed_list,
            heap_configs=tuple(heap_configs),
        )
        preloaded = dict(self._cells)
        for (workload, seed, heap), cell in self._profiling_results.items():
            preloaded[CellKey(workload, PROFILING_KEY, seed, heap)] = cell
        for item in run_sweep(
            spec,
            profiling_ms=self.settings.profiling_ms,
            production_ms=self.settings.production_ms,
            backend=self._backend,
            jobs=self.settings.jobs if jobs is None else jobs,
            mode=mode,
            preloaded=preloaded,
            profile_source=self.settings.profile_source,
        ):
            key = item.key
            if key.is_profiling:
                self._adopt_profiling_result(
                    key.workload, item.result, key.seed, key.heap
                )
            else:
                self._cells[key] = item.result
            yield item


_default_runner: Optional[ExperimentRunner] = None


def default_runner() -> ExperimentRunner:
    """Process-wide shared runner (the figure modules all use this)."""
    global _default_runner
    if _default_runner is None:
        _default_runner = ExperimentRunner()
    return _default_runner


def reset_default_runner() -> None:
    """Drop the shared runner so the next ``default_runner()`` call
    rebuilds it from the environment.

    Tests that monkeypatch ``REPRO_*`` env vars must call this (the
    shared conftest does) or a runner created earlier would keep serving
    results computed under stale :class:`ExperimentSettings`.
    """
    global _default_runner
    _default_runner = None
