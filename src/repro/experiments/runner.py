"""Shared experiment runner: the (workload × strategy) result matrix.

Figures 5-9 all consume the same 6 workloads × {G1, NG2C-manual, POLM2,
C4} runs; Table 1 consumes the profiling phases.  The runner executes
each cell once and caches it, so regenerating every figure costs one pass
over the matrix.

Three performance layers sit on top of the straightforward serial pass:

* **in-memory memoization** — each cell is computed once per runner
  (unchanged from the original design);
* **on-disk result cache** — JSON under ``.repro_cache/`` keyed by a
  hash of the :class:`SimConfig` fingerprint, the experiment settings,
  and a content hash of the ``repro`` package sources, so re-running
  figures after a restart is near-free and any code or config change
  invalidates stale results;
* **parallel execution** — ``full_matrix(jobs=N)`` (or ``REPRO_JOBS``)
  farms independent cells out to a ``ProcessPoolExecutor``: baseline
  cells and profiling phases run concurrently in a first wave, and each
  workload's POLM2 production cell is dispatched the moment its
  profiling phase lands.  Every cell is deterministic (virtual clock,
  fixed seed), so parallel results are identical to serial ones.

Durations honour two environment variables so CI can run quick smoke
passes: ``REPRO_PROFILE_MS`` and ``REPRO_PRODUCTION_MS`` (virtual
milliseconds); ``REPRO_JOBS`` and ``REPRO_CACHE_DIR`` configure the
parallel and cached paths the same way.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import hashlib
import json
import os
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import SimConfig
from repro.core.pipeline import POLM2Pipeline, PhaseResult
from repro.core.profile import AllocationProfile
from repro.errors import ReproError
from repro.strategies import get_strategy
from repro.workloads import WORKLOAD_NAMES, make_workload

#: Strategy keys as plotted in the paper.
STRATEGIES = ("g1", "ng2c", "polm2", "c4")

#: Strategies shown in pause-time figures (C4 is omitted there: all of
#: its pauses are below 10 ms, paper §5).
PAUSE_STRATEGIES = ("g1", "ng2c", "polm2")

#: Cache-format version; bump on incompatible PhaseResult layout changes.
#: v2: profiles embed the versioned STTree IR (polm2-profile-v2).
#: v3: snapshot id sets ride the compact IdSet kernel / binary columnar
#: store (polm2-snapshots-v2) — stale v2 cells must not mix with them.
CACHE_FORMAT = "matrix-cache-v3"

#: The pseudo-strategy key the profiling phase is cached under.
PROFILING_KEY = "polm2-profiling"


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name)
    if raw is None or raw == "":
        return default
    try:
        return int(raw)
    except ValueError:
        raise ReproError(
            f"environment variable {name} must be an integer, got {raw!r}"
        ) from None


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name)
    if raw is None or raw == "":
        return default
    try:
        return float(raw)
    except ValueError:
        raise ReproError(
            f"environment variable {name} must be a number, got {raw!r}"
        ) from None


@dataclasses.dataclass
class ExperimentSettings:
    """Durations, seed, and performance knobs for a full experiment pass.

    ``jobs`` and ``cache_dir`` affect only *how fast* results are
    produced, never their values, so they are excluded from the on-disk
    cache key.
    """

    profiling_ms: float = 30_000.0
    production_ms: float = 60_000.0
    seed: int = 42
    #: Worker processes for ``full_matrix`` (1 = serial).
    jobs: int = 1
    #: Directory of the on-disk result cache (None disables it).
    cache_dir: Optional[str] = None

    @classmethod
    def from_env(cls) -> "ExperimentSettings":
        """Build settings from ``REPRO_*`` env vars.

        Raises :class:`~repro.errors.ReproError` (not a bare
        ``ValueError``) on unparseable values so the CLI can report them
        as one-line errors.
        """
        return cls(
            profiling_ms=_env_float("REPRO_PROFILE_MS", 30_000.0),
            production_ms=_env_float("REPRO_PRODUCTION_MS", 60_000.0),
            seed=_env_int("REPRO_SEED", 42),
            jobs=_env_int("REPRO_JOBS", 1),
            cache_dir=os.environ.get("REPRO_CACHE_DIR") or None,
        )


# -- code-version fingerprint ---------------------------------------------------

_code_version_cache: Optional[str] = None


def code_version() -> str:
    """Content hash over every ``repro`` source file (cached per process).

    Part of the result-cache key: editing any module invalidates every
    cached cell, which is what makes the cache safe to leave on.
    """
    global _code_version_cache
    if _code_version_cache is None:
        import repro

        digest = hashlib.sha256()
        package_root = os.path.dirname(os.path.abspath(repro.__file__))
        for dirpath, dirnames, filenames in sorted(os.walk(package_root)):
            dirnames.sort()
            for filename in sorted(filenames):
                if not filename.endswith(".py"):
                    continue
                path = os.path.join(dirpath, filename)
                digest.update(os.path.relpath(path, package_root).encode())
                with open(path, "rb") as handle:
                    digest.update(handle.read())
        _code_version_cache = digest.hexdigest()
    return _code_version_cache


class MatrixCache:
    """On-disk JSON cache of :class:`PhaseResult` cells.

    Layout: ``<root>/<key>/<workload>__<strategy>.json`` where ``key``
    hashes the simulation config, the experiment durations/seed, the
    cache format, and the package code version.  Cells from stale code
    or different settings simply live under a different key directory,
    so no explicit invalidation pass is ever needed.
    """

    def __init__(
        self, root: str, config: SimConfig, settings: ExperimentSettings
    ) -> None:
        payload = json.dumps(
            {
                "format": CACHE_FORMAT,
                "code": code_version(),
                "config": config.fingerprint(),
                "profiling_ms": settings.profiling_ms,
                "production_ms": settings.production_ms,
                "seed": settings.seed,
            },
            sort_keys=True,
        )
        self.key = hashlib.sha256(payload.encode()).hexdigest()[:20]
        self.dir = os.path.join(root, self.key)

    def _path(self, workload: str, strategy: str) -> str:
        return os.path.join(self.dir, f"{workload}__{strategy}.json")

    def load(self, workload: str, strategy: str) -> Optional[PhaseResult]:
        path = self._path(workload, strategy)
        try:
            with open(path) as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            return None
        try:
            return PhaseResult.from_dict(payload)
        except (KeyError, TypeError, ValueError):
            return None  # corrupt/foreign cell: recompute

    def store(self, workload: str, strategy: str, result: PhaseResult) -> None:
        os.makedirs(self.dir, exist_ok=True)
        path = self._path(workload, strategy)
        tmp = path + ".tmp"
        with open(tmp, "w") as handle:
            json.dump(result.to_dict(), handle)
        os.replace(tmp, path)


# -- worker-process entry points ------------------------------------------------
# Module-level so ProcessPoolExecutor can pickle them.  Each worker
# builds a fresh pipeline from primitive arguments; the virtual clock
# makes every cell bit-deterministic, so worker results are identical
# to what the serial path computes in-process.


def _worker_pipeline(workload: str, seed: int) -> POLM2Pipeline:
    return POLM2Pipeline(
        workload_factory=lambda w=workload, s=seed: make_workload(w, seed=s),
        config=SimConfig(seed=seed),
    )


def _run_profiling_cell(
    workload: str, seed: int, profiling_ms: float
) -> PhaseResult:
    keep: List[PhaseResult] = []
    _worker_pipeline(workload, seed).run_profiling_phase(
        duration_ms=profiling_ms, keep_result=keep
    )
    return keep[0]


def _run_production_cell(
    workload: str,
    strategy: str,
    seed: int,
    production_ms: float,
    profile_json: Optional[str],
) -> PhaseResult:
    """Resolve ``strategy`` through the registry and run one cell.

    Workers see only strategies registered at import time (the built-ins
    plus anything a ``repro.strategies``-importing plugin registers);
    strategies registered dynamically in the parent process require the
    serial path (``jobs=1``).
    """
    pipe = _worker_pipeline(workload, seed)
    profile = (
        AllocationProfile.from_json(profile_json)
        if profile_json is not None
        else None
    )
    return pipe.run(strategy, duration_ms=production_ms, profile=profile)


class ExperimentRunner:
    """Runs and caches every (workload, strategy) cell."""

    def __init__(self, settings: Optional[ExperimentSettings] = None) -> None:
        self.settings = settings or ExperimentSettings.from_env()
        self._pipelines: Dict[str, POLM2Pipeline] = {}
        self._profiles: Dict[str, AllocationProfile] = {}
        self._profiling_results: Dict[str, PhaseResult] = {}
        self._results: Dict[Tuple[str, str], PhaseResult] = {}
        self._cache: Optional[MatrixCache] = None
        if self.settings.cache_dir:
            self._cache = MatrixCache(
                self.settings.cache_dir,
                SimConfig(seed=self.settings.seed),
                self.settings,
            )

    # -- building blocks ---------------------------------------------------------

    def pipeline(self, workload: str) -> POLM2Pipeline:
        pipe = self._pipelines.get(workload)
        if pipe is None:
            seed = self.settings.seed
            pipe = POLM2Pipeline(
                workload_factory=lambda w=workload, s=seed: make_workload(w, seed=s),
                config=SimConfig(seed=seed),
            )
            self._pipelines[workload] = pipe
        return pipe

    def _adopt_profiling_result(self, workload: str, cell: PhaseResult) -> None:
        self._profiling_results[workload] = cell
        if cell.profile is not None:
            self._profiles[workload] = cell.profile

    def profile(self, workload: str) -> AllocationProfile:
        """The POLM2 allocation profile for a workload (cached)."""
        prof = self._profiles.get(workload)
        if prof is None:
            cell = self._cache_load(workload, PROFILING_KEY)
            if cell is not None and cell.profile is None:
                cell = None  # foreign/corrupt cell: recompute
            if cell is None:
                keep: List[PhaseResult] = []
                self.pipeline(workload).run_profiling_phase(
                    duration_ms=self.settings.profiling_ms, keep_result=keep
                )
                cell = keep[0]
                self._cache_store(workload, PROFILING_KEY, cell)
            self._adopt_profiling_result(workload, cell)
            prof = self._profiles[workload]
        return prof

    def profiling_result(self, workload: str) -> PhaseResult:
        """The PhaseResult of the profiling run (snapshots included)."""
        self.profile(workload)
        return self._profiling_results[workload]

    # -- the on-disk cache --------------------------------------------------------

    def _cache_load(self, workload: str, strategy: str) -> Optional[PhaseResult]:
        if self._cache is None:
            return None
        return self._cache.load(workload, strategy)

    def _cache_store(
        self, workload: str, strategy: str, cell: PhaseResult
    ) -> None:
        if self._cache is not None:
            self._cache.store(workload, strategy, cell)

    def result(self, workload: str, strategy: str) -> PhaseResult:
        """One production-phase cell of the matrix (cached).

        Lookup order: in-memory, then the on-disk cache, then compute.
        A disk hit for a ``polm2`` cell never forces the profiling phase
        — the cached cell already embeds the profile it was run with.
        """
        key = (workload, strategy)
        cell = self._results.get(key)
        if cell is None:
            cell = self._cache_load(workload, strategy)
        if cell is None:
            pipe = self.pipeline(workload)
            spec = get_strategy(strategy)
            cell = pipe.run(
                spec,
                duration_ms=self.settings.production_ms,
                profile=self.profile(workload) if spec.needs_profile else None,
            )
            self._cache_store(workload, strategy, cell)
        self._results[key] = cell
        return cell

    # -- bulk access ----------------------------------------------------------------

    def pause_series(
        self,
        workload: str,
        strategies: Sequence[str] = PAUSE_STRATEGIES,
    ) -> Dict[str, List[float]]:
        """Pause durations per strategy for one Figure 5/6 panel.

        Reuses cached cells (memory or disk); restricting ``strategies``
        to baselines never touches the profiling phase, and a cached
        ``polm2`` cell is served without recomputing its profile.
        """
        return {
            strategy.upper(): self.result(workload, strategy).pause_durations_ms()
            for strategy in strategies
        }

    def full_matrix(
        self,
        workloads: Sequence[str] = WORKLOAD_NAMES,
        strategies: Sequence[str] = STRATEGIES,
        jobs: Optional[int] = None,
    ) -> Dict[Tuple[str, str], PhaseResult]:
        """Force-run every cell; returns {(workload, strategy): result}.

        ``jobs`` > 1 executes independent cells in a process pool (the
        default comes from ``settings.jobs`` / ``REPRO_JOBS``).  Results
        are identical to the serial pass: every cell is deterministic in
        (workload, strategy, seed, durations).
        """
        jobs = self.settings.jobs if jobs is None else jobs
        if jobs > 1:
            self._run_matrix_parallel(workloads, strategies, jobs)
        else:
            for workload in workloads:
                for strategy in strategies:
                    self.result(workload, strategy)
        return {
            (workload, strategy): self._results[(workload, strategy)]
            for workload in workloads
            for strategy in strategies
        }

    # -- parallel execution ----------------------------------------------------------

    def _run_matrix_parallel(
        self, workloads: Sequence[str], strategies: Sequence[str], jobs: int
    ) -> None:
        """Fill ``self._results`` for the requested block using workers.

        Wave structure: profile-free cells and profiling phases are
        submitted immediately; every profile-consuming cell of a workload
        (``needs_profile`` per its :class:`StrategySpec`) is submitted as
        soon as that workload's profiling phase lands (profiles are
        shipped to dependent workers as JSON, computed once per
        workload).
        """
        settings = self.settings
        pending: List[Tuple[str, str]] = []
        needs_profile: List[str] = []
        #: workload -> profile-consuming strategies waiting on its profile.
        deferred: Dict[str, List[str]] = {}
        for workload in workloads:
            for strategy in strategies:
                key = (workload, strategy)
                if key in self._results:
                    continue
                cell = self._cache_load(workload, strategy)
                if cell is not None:
                    self._results[key] = cell
                    continue
                pending.append(key)
                if (
                    get_strategy(strategy).needs_profile
                    and workload not in self._profiles
                ):
                    if workload not in needs_profile:
                        cached = self._cache_load(workload, PROFILING_KEY)
                        if cached is not None and cached.profile is not None:
                            self._adopt_profiling_result(workload, cached)
                        else:
                            needs_profile.append(workload)
                    if workload in needs_profile:
                        deferred.setdefault(workload, []).append(strategy)
        if not pending:
            return

        with concurrent.futures.ProcessPoolExecutor(max_workers=jobs) as pool:
            futures: Dict[concurrent.futures.Future, Tuple[str, str]] = {}
            for workload in needs_profile:
                future = pool.submit(
                    _run_profiling_cell,
                    workload,
                    settings.seed,
                    settings.profiling_ms,
                )
                futures[future] = (workload, PROFILING_KEY)
            for workload, strategy in pending:
                if strategy in deferred.get(workload, ()):
                    continue  # dispatched once the profiling cell lands
                profile_json = (
                    self._profiles[workload].to_json()
                    if get_strategy(strategy).needs_profile
                    else None
                )
                future = pool.submit(
                    _run_production_cell,
                    workload,
                    strategy,
                    settings.seed,
                    settings.production_ms,
                    profile_json,
                )
                futures[future] = (workload, strategy)

            while futures:
                done, _ = concurrent.futures.wait(
                    futures,
                    return_when=concurrent.futures.FIRST_COMPLETED,
                )
                for future in done:
                    workload, strategy = futures.pop(future)
                    cell = future.result()
                    if strategy == PROFILING_KEY:
                        self._adopt_profiling_result(workload, cell)
                        self._cache_store(workload, PROFILING_KEY, cell)
                        profile_json = self._profiles[workload].to_json()
                        for dep_strategy in deferred.pop(workload, []):
                            dependent = pool.submit(
                                _run_production_cell,
                                workload,
                                dep_strategy,
                                settings.seed,
                                settings.production_ms,
                                profile_json,
                            )
                            futures[dependent] = (workload, dep_strategy)
                    else:
                        self._results[(workload, strategy)] = cell
                        self._cache_store(workload, strategy, cell)


_default_runner: Optional[ExperimentRunner] = None


def default_runner() -> ExperimentRunner:
    """Process-wide shared runner (the figure modules all use this)."""
    global _default_runner
    if _default_runner is None:
        _default_runner = ExperimentRunner()
    return _default_runner


def reset_default_runner() -> None:
    """Drop the shared runner so the next ``default_runner()`` call
    rebuilds it from the environment.

    Tests that monkeypatch ``REPRO_*`` env vars must call this (the
    shared conftest does) or a runner created earlier would keep serving
    results computed under stale :class:`ExperimentSettings`.
    """
    global _default_runner
    _default_runner = None
