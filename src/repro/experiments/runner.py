"""Shared experiment runner: the (workload × strategy) result matrix.

Figures 5-9 all consume the same 6 workloads × {G1, NG2C-manual, POLM2,
C4} runs; Table 1 consumes the profiling phases.  The runner executes
each cell once and caches it, so regenerating every figure costs one pass
over the matrix.

Durations honour two environment variables so CI can run quick smoke
passes: ``REPRO_PROFILE_MS`` and ``REPRO_PRODUCTION_MS`` (virtual
milliseconds).
"""

from __future__ import annotations

import dataclasses
import os
from typing import Dict, List, Optional, Tuple

from repro.config import SimConfig
from repro.core.pipeline import POLM2Pipeline, PhaseResult
from repro.core.profile import AllocationProfile
from repro.workloads import WORKLOAD_NAMES, make_workload

#: Strategy keys as plotted in the paper.
STRATEGIES = ("g1", "ng2c", "polm2", "c4")

#: Strategies shown in pause-time figures (C4 is omitted there: all of
#: its pauses are below 10 ms, paper §5).
PAUSE_STRATEGIES = ("g1", "ng2c", "polm2")


@dataclasses.dataclass
class ExperimentSettings:
    """Durations and seed for a full experiment pass."""

    profiling_ms: float = 30_000.0
    production_ms: float = 60_000.0
    seed: int = 42

    @classmethod
    def from_env(cls) -> "ExperimentSettings":
        return cls(
            profiling_ms=float(os.environ.get("REPRO_PROFILE_MS", 30_000)),
            production_ms=float(os.environ.get("REPRO_PRODUCTION_MS", 60_000)),
            seed=int(os.environ.get("REPRO_SEED", 42)),
        )


class ExperimentRunner:
    """Runs and caches every (workload, strategy) cell."""

    def __init__(self, settings: Optional[ExperimentSettings] = None) -> None:
        self.settings = settings or ExperimentSettings.from_env()
        self._pipelines: Dict[str, POLM2Pipeline] = {}
        self._profiles: Dict[str, AllocationProfile] = {}
        self._profiling_results: Dict[str, PhaseResult] = {}
        self._results: Dict[Tuple[str, str], PhaseResult] = {}

    # -- building blocks ---------------------------------------------------------

    def pipeline(self, workload: str) -> POLM2Pipeline:
        pipe = self._pipelines.get(workload)
        if pipe is None:
            seed = self.settings.seed
            pipe = POLM2Pipeline(
                workload_factory=lambda w=workload, s=seed: make_workload(w, seed=s),
                config=SimConfig(seed=seed),
            )
            self._pipelines[workload] = pipe
        return pipe

    def profile(self, workload: str) -> AllocationProfile:
        """The POLM2 allocation profile for a workload (cached)."""
        prof = self._profiles.get(workload)
        if prof is None:
            keep: List[PhaseResult] = []
            prof = self.pipeline(workload).run_profiling_phase(
                duration_ms=self.settings.profiling_ms, keep_result=keep
            )
            self._profiles[workload] = prof
            self._profiling_results[workload] = keep[0]
        return prof

    def profiling_result(self, workload: str) -> PhaseResult:
        """The PhaseResult of the profiling run (snapshots included)."""
        self.profile(workload)
        return self._profiling_results[workload]

    def result(self, workload: str, strategy: str) -> PhaseResult:
        """One production-phase cell of the matrix (cached)."""
        key = (workload, strategy)
        cell = self._results.get(key)
        if cell is None:
            pipe = self.pipeline(workload)
            if strategy == "polm2":
                cell = pipe.run_production_phase(
                    self.profile(workload),
                    duration_ms=self.settings.production_ms,
                )
            else:
                cell = pipe.run_baseline(
                    strategy, duration_ms=self.settings.production_ms
                )
            self._results[key] = cell
        return cell

    # -- bulk access ----------------------------------------------------------------

    def pause_series(self, workload: str) -> Dict[str, List[float]]:
        """Pause durations per strategy for one Figure 5/6 panel."""
        return {
            strategy.upper(): self.result(workload, strategy).pause_durations_ms()
            for strategy in PAUSE_STRATEGIES
        }

    def full_matrix(self, workloads=WORKLOAD_NAMES, strategies=STRATEGIES):
        """Force-run every cell; returns {(workload, strategy): result}."""
        for workload in workloads:
            for strategy in strategies:
                self.result(workload, strategy)
        return dict(self._results)


_default_runner: Optional[ExperimentRunner] = None


def default_runner() -> ExperimentRunner:
    """Process-wide shared runner (the figure modules all use this)."""
    global _default_runner
    if _default_runner is None:
        _default_runner = ExperimentRunner()
    return _default_runner
