"""Profiler overhead comparison (the paper's §6.1 argument, quantified).

Runs the same workload three ways for a fixed amount of *work* (ticks):

* unprofiled (NG2C, no agents) — the baseline;
* POLM2's profiling phase (Recorder + incremental CRIU Dumper);
* exact lifetime tracing (Merlin / Elephant Tracks style).

The overhead factor is the ratio of virtual elapsed time to the baseline
for the same tick count.  Related work reports Merlin at up to 300x and
Resurrector at 3-40x; POLM2's design goal is an overhead low enough that
the profiling phase can run against realistic load.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

from repro.config import SimConfig
from repro.core.dumper import Dumper
from repro.core.exact_tracer import ExactLifetimeTracer
from repro.core.profile import AllocationProfile
from repro.core.recorder import Recorder
from repro.gc.ng2c import NG2CCollector
from repro.runtime.vm import VM
from repro.workloads import make_workload


@dataclasses.dataclass
class OverheadResult:
    """Virtual elapsed time per profiling strategy for identical work."""

    workload: str
    ticks: int
    baseline_ms: float
    polm2_ms: float
    exact_ms: float
    polm2_profile: Optional[AllocationProfile] = None
    exact_profile: Optional[AllocationProfile] = None

    @property
    def polm2_overhead(self) -> float:
        return self.polm2_ms / self.baseline_ms

    @property
    def exact_overhead(self) -> float:
        return self.exact_ms / self.baseline_ms

    def render(self) -> str:
        lines = [
            f"Profiler overhead, {self.workload}, {self.ticks} ticks of work",
            f"  unprofiled:          {self.baseline_ms:10.1f} virtual ms (1.00x)",
            f"  POLM2 (Recorder+CRIU): {self.polm2_ms:8.1f} virtual ms "
            f"({self.polm2_overhead:.2f}x)",
            f"  exact tracer (Merlin-style): {self.exact_ms:.1f} virtual ms "
            f"({self.exact_overhead:.2f}x)",
            "  (related work: Merlin up to 300x, Resurrector 3-40x)",
        ]
        return "\n".join(lines)


def _run(workload_name: str, seed: int, ticks: int, profiler: str):
    workload = make_workload(workload_name, seed=seed)
    collector = NG2CCollector()
    vm = VM(SimConfig(seed=seed), collector=collector)
    agent = None
    if profiler == "polm2":
        agent = Recorder()
        agent.attach(vm, Dumper(vm))
    elif profiler == "exact":
        agent = ExactLifetimeTracer()
        agent.attach(vm)
    for model in workload.class_models():
        vm.classloader.load(model)
    workload.setup(vm)
    for _ in range(ticks):
        workload.tick()
    workload.teardown()
    return vm.clock.now_ms, agent


def run(
    workload: str = "cassandra-wi",
    ticks: int = 1500,
    seed: int = 42,
    build_profiles: bool = False,
) -> OverheadResult:
    baseline_ms, _ = _run(workload, seed, ticks, profiler="none")
    polm2_ms, recorder = _run(workload, seed, ticks, profiler="polm2")
    exact_ms, tracer = _run(workload, seed, ticks, profiler="exact")
    result = OverheadResult(
        workload=workload,
        ticks=ticks,
        baseline_ms=baseline_ms,
        polm2_ms=polm2_ms,
        exact_ms=exact_ms,
    )
    if build_profiles:
        from repro.core.analyzer import Analyzer

        # recorder was attached with a Dumper; rebuild the analyzer input.
        result.exact_profile = tracer.build_profile(workload=workload)
    return result
