"""Figure 6 (a-f): number of pauses per duration interval.

Complements Figure 5: percentiles can hide the distribution, so the paper
also plots pause *counts* per duration interval — "the less pauses to the
right, the better".  The reproduction asserts the same property: POLM2
and NG2C place far fewer pauses in the long intervals than G1, across
every workload, not just at the tail.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Tuple

from repro.experiments.runner import ExperimentRunner, default_runner
from repro.metrics.histogram import DEFAULT_EDGES_MS, PauseHistogram
from repro.workloads import WORKLOAD_NAMES


@dataclasses.dataclass
class Fig6Panel:
    workload: str
    histograms: Dict[str, PauseHistogram]
    #: strategy -> (seeds, pause samples) pooled into each histogram.
    support: Optional[Dict[str, Tuple[int, int]]] = None

    def long_pauses(self, strategy: str, threshold_ms: float = 32.0) -> int:
        return self.histograms[strategy].long_pause_count(threshold_ms)


def run(runner: Optional[ExperimentRunner] = None) -> Dict[str, Fig6Panel]:
    runner = runner or default_runner()
    panels: Dict[str, Fig6Panel] = {}
    seeds = len(runner.settings.seed_list)
    for workload in WORKLOAD_NAMES:
        series = runner.pause_series(workload)
        panels[workload] = Fig6Panel(
            workload=workload,
            histograms={
                name: PauseHistogram(DEFAULT_EDGES_MS).add_all(vals)
                for name, vals in series.items()
            },
            support={
                name: (seeds, len(vals)) for name, vals in series.items()
            },
        )
    return panels


def render(panels: Dict[str, Fig6Panel]) -> str:
    parts = ["Figure 6: Number of Application Pauses Per Duration Interval (ms)"]
    for workload, panel in panels.items():
        labels = next(iter(panel.histograms.values())).labels()
        lines = [f"--- {workload} ---"]
        lines.append("      " + " ".join(f"{label:>9}" for label in labels))
        for name, hist in panel.histograms.items():
            lines.append(
                f"{name:>5} " + " ".join(f"{c:>9d}" for c in hist.counts)
            )
        if panel.support:
            lines.append(
                "support: "
                + ", ".join(
                    f"{name} n={samples} ({seeds} seed(s))"
                    for name, (seeds, samples) in panel.support.items()
                )
            )
        parts.append("\n".join(lines))
    return "\n\n".join(parts)
