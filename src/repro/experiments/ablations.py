"""Ablation experiments for POLM2's design choices.

Three ablations quantify the mechanisms DESIGN.md calls out:

1. **push-up** (§4.4) — place a ``setGeneration`` bracket around every
   annotated allocation instead of hoisting uniform subtrees' generations
   to ancestor call sites.  Metric: executed ``setGeneration`` calls (the
   API-call overhead the optimization exists to remove).
2. **no-STTree** (§3.3) — a naive profile that gives every allocation
   site its traffic-weighted majority generation, ignoring per-path
   conflicts.  Conflicting sites (e.g. Cassandra's ``Util.cloneRow``)
   then mis-tenure one of their populations.
3. **no-madvise** (§4.2) — snapshots without the no-need page marking,
   quantifying how much of the Dumper's win over jmap comes from
   skipping dead pages vs from incrementality.
"""

from __future__ import annotations

import collections
import dataclasses
from typing import Dict, List

from repro.config import SimConfig
from repro.core.analyzer import Analyzer
from repro.core.dumper import Dumper
from repro.core.pipeline import POLM2Pipeline, PhaseResult
from repro.core.profile import AllocationProfile, AllocDirective
from repro.core.recorder import Recorder
from repro.gc.ng2c import NG2CCollector
from repro.runtime.vm import VM
from repro.workloads import make_workload


@dataclasses.dataclass
class PushUpAblation:
    """setGeneration call counts with and without the push-up hoisting."""

    workload: str
    calls_with_push_up: int
    calls_without_push_up: int
    pauses_with_ms: float
    pauses_without_ms: float

    @property
    def call_reduction(self) -> float:
        if self.calls_without_push_up == 0:
            return 0.0
        return 1.0 - self.calls_with_push_up / self.calls_without_push_up


def run_push_up_ablation(
    workload: str = "cassandra-wi",
    profiling_ms: float = 20_000.0,
    production_ms: float = 30_000.0,
    seed: int = 42,
) -> PushUpAblation:
    results: Dict[bool, PhaseResult] = {}
    for push_up in (True, False):
        pipeline = POLM2Pipeline(
            workload_factory=lambda w=workload, s=seed: make_workload(w, seed=s),
            config=SimConfig(seed=seed),
        )
        profile = pipeline.run_profiling_phase(
            duration_ms=profiling_ms, push_up=push_up
        )
        results[push_up] = pipeline.run(
            "polm2", duration_ms=production_ms, profile=profile
        )
    return PushUpAblation(
        workload=workload,
        calls_with_push_up=results[True].set_generation_calls,
        calls_without_push_up=results[False].set_generation_calls,
        pauses_with_ms=max(results[True].pause_durations_ms() or [0.0]),
        pauses_without_ms=max(results[False].pause_durations_ms() or [0.0]),
    )


@dataclasses.dataclass
class STTreeAblation:
    """POLM2 with the STTree vs a naive per-site majority profile."""

    workload: str
    sttree_worst_ms: float
    naive_worst_ms: float
    sttree_total_ms: float
    naive_total_ms: float


def build_naive_profile(
    records, snapshots, workload: str, max_generations: int = 16
) -> AllocationProfile:
    """Per-site majority-vote profile: no conflict detection, every
    annotated site carries an inline generation bracket."""
    analyzer = Analyzer(records, snapshots, max_generations=max_generations)
    estimates = analyzer.estimate_generations()
    votes: Dict[tuple, collections.Counter] = collections.defaultdict(
        collections.Counter
    )
    for trace_id, gen in estimates.items():
        site = records.traces[trace_id][-1]
        votes[site][gen] += len(records.streams[trace_id])
    alloc_directives: List[AllocDirective] = []
    for site, counter in sorted(votes.items()):
        gen = counter.most_common(1)[0][0]
        if gen >= 1:
            alloc_directives.append(
                AllocDirective(
                    class_name=site[0],
                    method_name=site[1],
                    line=site[2],
                    pre_set_gen=gen,
                )
            )
    return AllocationProfile(
        workload=f"{workload}-naive",
        alloc_directives=alloc_directives,
        call_directives=[],
        metadata={"naive": True},
    )


def run_sttree_ablation(
    workload: str = "cassandra-ri",
    profiling_ms: float = 20_000.0,
    production_ms: float = 30_000.0,
    seed: int = 42,
) -> STTreeAblation:
    # One profiling run feeds both profiles.
    wl = make_workload(workload, seed=seed)
    collector = NG2CCollector()
    vm = VM(SimConfig(seed=seed), collector=collector)
    recorder = Recorder()
    dumper = Dumper(vm)
    recorder.attach(vm, dumper)
    for model in wl.class_models():
        vm.classloader.load(model)
    wl.setup(vm)
    while vm.clock.now_ms < profiling_ms:
        wl.tick()
    wl.teardown()
    analyzer = Analyzer(recorder.records, dumper.store.snapshots)
    sttree_profile = analyzer.build_profile(workload=workload)
    naive_profile = build_naive_profile(
        recorder.records, dumper.store.snapshots, workload
    )

    def production(profile: AllocationProfile) -> PhaseResult:
        pipeline = POLM2Pipeline(
            workload_factory=lambda w=workload, s=seed: make_workload(w, seed=s),
            config=SimConfig(seed=seed),
        )
        return pipeline.run("polm2", duration_ms=production_ms, profile=profile)

    with_tree = production(sttree_profile)
    naive = production(naive_profile)
    return STTreeAblation(
        workload=workload,
        sttree_worst_ms=max(with_tree.pause_durations_ms() or [0.0]),
        naive_worst_ms=max(naive.pause_durations_ms() or [0.0]),
        sttree_total_ms=sum(with_tree.pause_durations_ms()),
        naive_total_ms=sum(naive.pause_durations_ms()),
    )


@dataclasses.dataclass
class BinaryPretenuringAblation:
    """NG2C's N generations vs a Memento-style single tenured space.

    Both runs use the *same* POLM2 profile; only the collector changes.
    The binary collector co-locates every pretenured cohort in one space,
    so cohorts with different lifetimes interleave and dying data must be
    compacted out — the co-location cost the paper's §6.1 attributes to
    single-tenured-space pretenuring designs.
    """

    workload: str
    ng2c_worst_ms: float
    binary_worst_ms: float
    ng2c_total_ms: float
    binary_total_ms: float


def run_binary_pretenuring_ablation(
    workload: str = "cassandra-wi",
    profiling_ms: float = 20_000.0,
    production_ms: float = 30_000.0,
    seed: int = 42,
) -> BinaryPretenuringAblation:
    # Both cells resolve through the strategy registry: ``polm2-binary``
    # is a registered first-class strategy (collector swapped, same
    # agents), not a special-cased pipeline call.
    pipeline = POLM2Pipeline(
        workload_factory=lambda w=workload, s=seed: make_workload(w, seed=s),
        config=SimConfig(seed=seed),
    )
    profile = pipeline.run_profiling_phase(duration_ms=profiling_ms)
    ng2c = pipeline.run("polm2", duration_ms=production_ms, profile=profile)
    binary = pipeline.run(
        "polm2-binary", duration_ms=production_ms, profile=profile
    )
    return BinaryPretenuringAblation(
        workload=workload,
        ng2c_worst_ms=max(ng2c.pause_durations_ms() or [0.0]),
        binary_worst_ms=max(binary.pause_durations_ms() or [0.0]),
        ng2c_total_ms=sum(ng2c.pause_durations_ms()),
        binary_total_ms=sum(binary.pause_durations_ms()),
    )


@dataclasses.dataclass
class PauseGoalAblation:
    """Can G1's pause-time goal substitute for lifetime-aware placement?

    HotSpot's answer to long pauses is -XX:MaxGCPauseMillis: shrink the
    young generation until pauses fit the goal.  The ablation shows why
    the paper's approach is different in kind: the goal merely slices the
    same copying work into more, smaller pauses (total GC time stays or
    grows), while POLM2 removes the copying itself.
    """

    workload: str
    goal_ms: float
    g1_worst_ms: float
    g1_total_ms: float
    g1_pauses: int
    g1_goal_worst_ms: float
    g1_goal_total_ms: float
    g1_goal_pauses: int
    polm2_worst_ms: float
    polm2_total_ms: float
    polm2_pauses: int


def run_pause_goal_ablation(
    workload: str = "cassandra-wi",
    goal_ms: float = 30.0,
    profiling_ms: float = 20_000.0,
    production_ms: float = 30_000.0,
    seed: int = 42,
) -> PauseGoalAblation:
    plain = POLM2Pipeline(
        workload_factory=lambda w=workload, s=seed: make_workload(w, seed=s),
        config=SimConfig(seed=seed),
    )
    goal_pipeline = POLM2Pipeline(
        workload_factory=lambda w=workload, s=seed: make_workload(w, seed=s),
        config=SimConfig(seed=seed, pause_goal_ms=goal_ms),
    )
    g1 = plain.run("g1", duration_ms=production_ms)
    g1_goal = goal_pipeline.run("g1", duration_ms=production_ms)
    profile = plain.run_profiling_phase(duration_ms=profiling_ms)
    polm2 = plain.run("polm2", duration_ms=production_ms, profile=profile)
    return PauseGoalAblation(
        workload=workload,
        goal_ms=goal_ms,
        g1_worst_ms=max(g1.pause_durations_ms() or [0.0]),
        g1_total_ms=sum(g1.pause_durations_ms()),
        g1_pauses=len(g1.pauses),
        g1_goal_worst_ms=max(g1_goal.pause_durations_ms() or [0.0]),
        g1_goal_total_ms=sum(g1_goal.pause_durations_ms()),
        g1_goal_pauses=len(g1_goal.pauses),
        polm2_worst_ms=max(polm2.pause_durations_ms() or [0.0]),
        polm2_total_ms=sum(polm2.pause_durations_ms()),
        polm2_pauses=len(polm2.pauses),
    )


@dataclasses.dataclass
class RemsetAblation:
    """Precise whole-heap tracing vs write-barrier remembered sets.

    With remembered sets (G1's real mechanism) young collections stop
    scanning the whole heap, at the price of conservatism: dead tenured
    parents keep young children alive until full liveness is
    re-established.  The ablation measures both sides on the same
    workload: pause behaviour and the peak-memory cost of the floating
    garbage.
    """

    workload: str
    precise_worst_ms: float
    remset_worst_ms: float
    precise_total_ms: float
    remset_total_ms: float
    precise_peak_bytes: int
    remset_peak_bytes: int


def run_remset_ablation(
    workload: str = "cassandra-wi",
    profiling_ms: float = 15_000.0,
    production_ms: float = 25_000.0,
    seed: int = 42,
) -> RemsetAblation:
    # Measured under G1: without pretenuring, the young generation holds
    # the middle-lived traffic, so the old->young remembered set is
    # actually exercised (POLM2 pretenures that data away, making the
    # two liveness modes nearly indistinguishable).
    results = {}
    for remsets in (False, True):
        pipeline = POLM2Pipeline(
            workload_factory=lambda w=workload, s=seed: make_workload(w, seed=s),
            config=SimConfig(seed=seed, use_remembered_sets=remsets),
        )
        results[remsets] = pipeline.run("g1", duration_ms=production_ms)
    precise, remset = results[False], results[True]
    return RemsetAblation(
        workload=workload,
        precise_worst_ms=max(precise.pause_durations_ms() or [0.0]),
        remset_worst_ms=max(remset.pause_durations_ms() or [0.0]),
        precise_total_ms=sum(precise.pause_durations_ms()),
        remset_total_ms=sum(remset.pause_durations_ms()),
        precise_peak_bytes=precise.peak_memory_bytes,
        remset_peak_bytes=remset.peak_memory_bytes,
    )


@dataclasses.dataclass
class MadviseAblation:
    """Snapshot sizes with and without no-need page marking."""

    workload: str
    bytes_with_madvise: int
    bytes_without_madvise: int

    @property
    def size_reduction(self) -> float:
        if self.bytes_without_madvise == 0:
            return 0.0
        return 1.0 - self.bytes_with_madvise / self.bytes_without_madvise


def run_madvise_ablation(
    workload: str = "cassandra-wi",
    duration_ms: float = 20_000.0,
    seed: int = 42,
) -> MadviseAblation:
    totals: Dict[bool, int] = {}
    for mark in (True, False):
        wl = make_workload(workload, seed=seed)
        collector = NG2CCollector()
        vm = VM(SimConfig(seed=seed), collector=collector)
        recorder = Recorder(mark_no_need=mark)
        dumper = Dumper(vm)
        recorder.attach(vm, dumper)
        for model in wl.class_models():
            vm.classloader.load(model)
        wl.setup(vm)
        while vm.clock.now_ms < duration_ms:
            wl.tick()
        wl.teardown()
        totals[mark] = dumper.store.total_bytes()
    return MadviseAblation(
        workload=workload,
        bytes_with_madvise=totals[True],
        bytes_without_madvise=totals[False],
    )
