"""Figure 9: max memory usage normalized to G1.

Paper: G1, NG2C, and POLM2 use very similar maximum memory — lifetime-
aware placement costs no footprint and fragmentation from many
generations is negligible.  C4 is omitted because it pre-reserves the
whole heap ("results for C4 would be close to 2 for Cassandra"); the
reproduction reports it explicitly for that comparison.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.experiments.runner import ExperimentRunner, default_runner
from repro.metrics.memory import normalized_memory, normalized_memory_table
from repro.workloads import WORKLOAD_NAMES

#: Strategies plotted in the paper's Figure 9 (no C4).
MEMORY_STRATEGIES = ("g1", "ng2c", "polm2")


def run(
    runner: Optional[ExperimentRunner] = None, include_c4: bool = False
) -> Dict[str, Dict[str, float]]:
    runner = runner or default_runner()
    strategies = MEMORY_STRATEGIES + (("c4",) if include_c4 else ())
    normalized: Dict[str, Dict[str, float]] = {}
    for workload in WORKLOAD_NAMES:
        raw = {
            strategy: runner.result(workload, strategy).peak_memory_bytes
            for strategy in strategies
        }
        normalized[workload] = normalized_memory(raw, baseline="g1")
    return normalized


def render(normalized: Dict[str, Dict[str, float]]) -> str:
    table = normalized_memory_table(
        normalized, title="Figure 9: Max memory usage normalized to G1"
    )
    return table + (
        "\n(paper: G1/NG2C/POLM2 approximately equal; C4 pre-reserves the "
        "whole heap, ~2x on Cassandra)"
    )
