"""Figure 7: application throughput normalized to G1.

Paper: POLM2 improves Cassandra throughput by 1 / 11 / 18 % (WI/WR/RI),
loses ≤5 % on Lucene and GraphChi, matches NG2C everywhere, and C4 is
the slowest collector (its read/write barriers tax the mutator).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.experiments.runner import (
    ExperimentRunner,
    STRATEGIES,
    default_runner,
)
from repro.metrics.throughput import normalized_throughput, throughput_table
from repro.workloads import WORKLOAD_NAMES


def run(runner: Optional[ExperimentRunner] = None) -> Dict[str, Dict[str, float]]:
    """Per workload: strategy -> throughput normalized to G1.

    With multi-seed settings each strategy's throughput is the mean over
    every seed's run (normalized against the same-seed-pooled G1 mean).
    """
    runner = runner or default_runner()
    seeds = runner.settings.seed_list
    normalized: Dict[str, Dict[str, float]] = {}
    for workload in WORKLOAD_NAMES:
        raw = {
            strategy: sum(
                runner.cell(workload, strategy, seed).throughput_ops_s
                for seed in seeds
            )
            / len(seeds)
            for strategy in STRATEGIES
        }
        normalized[workload] = normalized_throughput(raw, baseline="g1")
    return normalized


def render(
    normalized: Dict[str, Dict[str, float]], seeds: Optional[int] = None
) -> str:
    table = throughput_table(
        normalized, title="Figure 7: Application throughput normalized to G1"
    )
    support = (
        f"\n(support: throughput is the mean of {seeds} seed(s) per cell)"
        if seeds is not None
        else ""
    )
    return table + (
        "\n(paper: POLM2 +1/+11/+18% on Cassandra WI/WR/RI, ~-1..-5% on "
        "Lucene/GraphChi; C4 slowest)"
    ) + support
