"""Figure 8 (a-c): Cassandra throughput timelines (transactions/second).

The paper samples ten minutes of transactions/second for each Cassandra
mix under G1, NG2C, POLM2, and C4, showing that the first three track
each other while C4 runs visibly lower.  The reproduction samples the
virtual-time ops/s timeline captured during the Figure 5/7 runs.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro.experiments.runner import ExperimentRunner, STRATEGIES, default_runner
from repro.metrics.throughput import timeline_summary

CASSANDRA_WORKLOADS = ("cassandra-wi", "cassandra-wr", "cassandra-ri")


@dataclasses.dataclass
class Fig8Panel:
    workload: str
    #: strategy -> per-virtual-second ops/s samples.
    timelines: Dict[str, List[float]]

    def mean(self, strategy: str) -> float:
        return timeline_summary(self.timelines[strategy])["mean"]


def run(runner: Optional[ExperimentRunner] = None) -> Dict[str, Fig8Panel]:
    runner = runner or default_runner()
    panels: Dict[str, Fig8Panel] = {}
    for workload in CASSANDRA_WORKLOADS:
        panels[workload] = Fig8Panel(
            workload=workload,
            timelines={
                strategy: runner.result(workload, strategy).throughput_timeline
                for strategy in STRATEGIES
            },
        )
    return panels


def render(panels: Dict[str, Fig8Panel]) -> str:
    parts = ["Figure 8: Cassandra throughput (tx/s), per-second samples"]
    for workload, panel in panels.items():
        lines = [f"--- {workload} ---"]
        for strategy, timeline in panel.timelines.items():
            stats = timeline_summary(timeline)
            spark = " ".join(f"{v:.0f}" for v in timeline[:12])
            lines.append(
                f"{strategy:>6}: mean={stats['mean']:8.1f} "
                f"min={stats['min']:8.1f} max={stats['max']:8.1f}  "
                f"first-12s: {spark}"
            )
        parts.append("\n".join(lines))
    parts.append(
        "(paper: G1/NG2C/POLM2 timelines approximately equal; C4 lower)"
    )
    return "\n\n".join(parts)
