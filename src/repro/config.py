"""Central configuration for the simulated runtime, collectors, and workloads.

The paper's testbed (Intel Xeon E5505, 16 GB RAM, 12 GB heap, 2 GB young
generation, 30-minute runs) is scaled down to laptop size.  The *ratios*
that drive GC behaviour are preserved:

* young generation is a small fraction of the heap (paper: 1/6),
* the workload working set nearly fills the heap,
* middle-lived data (memtables, index segments, graph batches) dominates.

All durations are virtual milliseconds/microseconds maintained by
:class:`repro.runtime.clock.VirtualClock`; no wall-clock time is involved,
which keeps every experiment deterministic and host-independent.
"""

from __future__ import annotations

import dataclasses
import os
from typing import Optional

from repro.errors import ReproError


def resolve_object_scale(explicit: Optional[int] = None) -> int:
    """Resolve the scenario object-count multiplier.

    An explicit value (the ``--object-scale`` CLI flag, a harness
    argument) wins; otherwise ``$REPRO_OBJECT_SCALE`` applies; default 1.
    Scaling multiplies heap/young sizes and run duration together, so a
    run allocates ~scale× the objects while keeping the heap-pressure
    ratios — and therefore the GC behaviour per byte — unchanged.
    """
    if explicit is None:
        raw = os.environ.get("REPRO_OBJECT_SCALE", "").strip()
        if not raw:
            return 1
        try:
            explicit = int(raw)
        except ValueError:
            raise ReproError(
                f"REPRO_OBJECT_SCALE must be an integer, got {raw!r}"
            ) from None
    try:
        scale = int(explicit)
    except (TypeError, ValueError):
        raise ReproError(
            f"object scale must be an integer, got {explicit!r}"
        ) from None
    if scale < 1:
        raise ReproError(f"object scale must be >= 1, got {scale}")
    return scale


# --- fixed layout constants (not per-run tunables) -------------------------

#: Virtual page size in bytes, mirroring the 4 KiB kernel pages whose dirty
#: and "no-need" (madvise) bits CRIU consults.
PAGE_SIZE = 4096

#: Region size in bytes.  G1 on a 12 GB heap uses 4 MiB regions; at our
#: scaled heap we keep regions small enough that a generation spans many.
REGION_SIZE = 64 * 1024

#: Generation id of the young generation (all collectors allocate here by
#: default; NG2C calls this "generation zero").
YOUNG_GEN = 0

#: Generation id of the old generation in 2-generational collectors (G1).
OLD_GEN = 1


@dataclasses.dataclass
class CostModel:
    """Virtual-time cost model for GC pauses, mutator work, and snapshots.

    Durations are expressed in virtual microseconds.  The constants are
    calibrated so that a G1 young collection that promotes a full memtable
    lands in the hundreds of milliseconds (as in the paper's Figure 5)
    while an NG2C young collection with correct pretenuring stays in the
    tens of milliseconds.  Only *ratios* between strategies matter; they
    emerge from bytes actually scanned/copied, not from scripted numbers.
    """

    #: Fixed per-pause overhead (root scanning, safepoint, termination).
    pause_fixed_us: float = 1000.0

    #: Cost of examining one live object in the collection set.
    scan_obj_us: float = 0.30

    #: Cost of evacuating (copying) one KiB of live data.
    copy_kib_us: float = 6.0

    #: Extra cost per KiB when the copy crosses generations (promotion
    #: touches remembered sets and card tables).
    promote_kib_us: float = 3.0

    #: Cost per KiB of compacting old regions during mixed collections.
    compact_kib_us: float = 9.0

    #: Card-table / remembered-set scanning during any stop-the-world
    #: young collection, per KiB of *tenured* (non-young) heap.  This is
    #: the pause floor every generational STW collector pays regardless
    #: of how little it copies — the reason NG2C/POLM2 pauses are tens of
    #: milliseconds rather than zero in the paper's Figure 5.
    card_scan_kib_us: float = 0.45

    #: Cost of updating one incoming reference after an object moves.
    remset_ref_us: float = 0.08

    #: Mutator cost of one workload operation (before collector taxes).
    #: ~150 µs/op yields the few-thousands ops/s the paper's platforms
    #: sustain per node and keeps the GC share of total time realistic.
    op_base_us: float = 150.0

    #: Mutator throughput tax imposed by C4's read/write barriers
    #: (multiplier on op cost; C4 is the slowest collector in Fig. 7).
    c4_barrier_tax: float = 1.45

    #: Mutator cost per KiB of *pretenured* allocation.  Allocating into
    #: an arbitrary generation bypasses the TLAB fast path (NG2C allocates
    #: into shared region buffers with heavier synchronization).  For
    #: block-oriented workloads that pretenure tens of MiB per second
    #: (GraphChi) this is why G1 keeps a small throughput lead in the
    #: paper's Figure 7 despite its far longer pauses.
    pretenure_alloc_kib_us: float = 10.0

    #: Recorder: mutator cost of logging one allocation (stack-trace hash
    #: plus object id append); present only during the profiling phase.
    record_log_us: float = 0.8

    #: Exact lifetime tracing (the Merlin / Elephant Tracks approach the
    #: paper's §6.1 contrasts with): cost of logging one allocation with
    #: its timestamp, of processing one reference update (Merlin
    #: timestamps objects when they lose incoming references), and of
    #: re-processing one live object per GC cycle.  These are why exact
    #: tracers slow applications 3-300x while POLM2's snapshot-based
    #: profiling stays lightweight.
    #: The constants land the modelled tracer in Resurrector's 3-40x
    #: band; a faithful Merlin (per-allocation-granularity death times)
    #: would be far worse still.
    exact_log_us: float = 20.0
    exact_ref_update_us: float = 25.0
    exact_trace_obj_us: float = 25.0

    #: Snapshot engine: cost per KiB written to a CRIU image.
    criu_write_kib_us: float = 30.0

    #: Snapshot engine: fixed checkpoint overhead (freeze, page-map walk).
    criu_fixed_us: float = 12_000.0

    #: jmap baseline: cost per live object visited during the heap walk
    #: (jmap serializes object-by-object, far slower than page copies).
    jmap_obj_us: float = 6.0

    #: jmap baseline: cost per KiB serialized into the .hprof dump.
    jmap_write_kib_us: float = 330.0

    #: jmap baseline: fixed attach + full-heap walk setup overhead.
    jmap_fixed_us: float = 150_000.0


@dataclasses.dataclass
class SimConfig:
    """Top-level knobs for a simulated run.

    The defaults model the paper's setup at roughly 1/200 scale: a 64 MiB
    heap with an 8 MiB young generation (paper: 12 GiB / 2 GiB), keeping
    the ~1:6-8 young:total ratio that shapes the paper's GC behaviour while
    staying fast enough for pure-Python simulation.
    """

    #: Total simulated heap size in bytes.
    heap_bytes: int = 64 * 1024 * 1024

    #: Young-generation target size in bytes.  A young collection is
    #: triggered when young occupancy reaches this threshold.
    young_bytes: int = 6 * 1024 * 1024

    #: Number of young collections an object must survive before G1
    #: promotes it to the old generation.  HotSpot's default adaptive
    #: policy collapses to a very low effective threshold on big-data
    #: heaps (survivor space overflows every cycle), so the model uses 2.
    tenure_threshold: int = 2

    #: Old-generation occupancy fraction that triggers a mixed collection.
    mixed_trigger_occupancy: float = 0.50

    #: NG2C: occupancy fraction at which a non-young generation is collected.
    gen_trigger_occupancy: float = 0.75

    #: Maximum number of dynamic generations NG2C will keep live at once.
    max_generations: int = 16

    #: Optional G1 pause-time goal in ms (HotSpot's -XX:MaxGCPauseMillis).
    #: When set, G1 adaptively shrinks/grows its young generation to
    #: chase the goal.  None disables the adaptive policy (fixed sizing,
    #: as enforced in the paper's evaluation setup, §5.1).
    pause_goal_ms: Optional[float] = None

    #: Use write-barrier-maintained remembered sets for young collections
    #: (G1's real mechanism) instead of whole-heap tracing.  Remembered
    #: sets are *conservative*: a dead tenured object still listed as
    #: referencing the young generation keeps its young children alive
    #: (floating garbage) until a mixed/full collection re-establishes
    #: precise liveness.  Off by default so headline experiments use
    #: precise liveness; the remset ablation quantifies the difference.
    use_remembered_sets: bool = False

    #: Deterministic seed for every stochastic component.
    seed: int = 42

    #: Cost model used to charge virtual time.
    costs: CostModel = dataclasses.field(default_factory=CostModel)

    def __post_init__(self) -> None:
        if self.heap_bytes <= 0:
            raise ValueError("heap_bytes must be positive")
        if not 0 < self.young_bytes < self.heap_bytes:
            raise ValueError("young_bytes must be in (0, heap_bytes)")
        if self.tenure_threshold < 1:
            raise ValueError("tenure_threshold must be >= 1")
        if not 0.0 < self.mixed_trigger_occupancy <= 1.0:
            raise ValueError("mixed_trigger_occupancy must be in (0, 1]")
        if not 0.0 < self.gen_trigger_occupancy <= 1.0:
            raise ValueError("gen_trigger_occupancy must be in (0, 1]")
        if self.max_generations < 2:
            raise ValueError("max_generations must be >= 2")
        if self.pause_goal_ms is not None and self.pause_goal_ms <= 0:
            raise ValueError("pause_goal_ms must be positive when set")

    def fingerprint(self) -> dict:
        """JSON-safe payload of every knob (cost model included).

        The experiment runner hashes this into its on-disk result-cache
        key, so any configuration change — even a single cost constant —
        invalidates previously cached cells.
        """
        return dataclasses.asdict(self)

    def scaled(self, factor: int) -> "SimConfig":
        """This configuration with heap and young sizes ×``factor``.

        Paired with a ×``factor`` run duration, the workload allocates
        ~``factor``× the objects under identical pressure ratios — the
        ``--object-scale`` knob used for columnar-kernel scaling runs.
        """
        if factor < 1:
            raise ValueError(f"scale factor must be >= 1, got {factor}")
        if factor == 1:
            return self
        return dataclasses.replace(
            self,
            heap_bytes=self.heap_bytes * factor,
            young_bytes=self.young_bytes * factor,
        )

    @classmethod
    def small(cls, **overrides) -> "SimConfig":
        """A small configuration for unit tests: 8 MiB heap, 1 MiB young."""
        params = {
            "heap_bytes": 8 * 1024 * 1024,
            "young_bytes": 1 * 1024 * 1024,
        }
        params.update(overrides)
        return cls(**params)
