"""Offline profiling workflow: record to disk, analyze later (§3.2/§3.3).

The paper's deployment shape: the Recorder runs attached to the profiled
JVM and continuously writes object-id streams to disk (stack traces are
flushed once, at the end); the Dumper leaves CRIU image directories; the
Analyzer is a *separate* process that reads both afterwards.  This module
provides exactly that separation over the simulated runtime:

* :func:`record_to_dir` — run the profiling phase and leave a recording
  directory (``traces.json`` + per-trace id streams + ``snapshots.jsonl``
  + ``meta.json``);
* :func:`analyze_recording` — build an
  :class:`~repro.core.profile.AllocationProfile` from such a directory,
  with no VM or workload required, by replaying it through the same
  streaming stage pipeline (:mod:`repro.core.stages`) the in-VM
  profiler runs.
"""

from __future__ import annotations

import json
import os
from typing import Optional

from repro.config import SimConfig
from repro.core.dumper import Dumper
from repro.core.profile import AllocationProfile
from repro.core.recorder import Recorder
from repro.core.stages import (
    META_FILE,
    RECORDING_SCHEMA_VERSION,
    SNAPSHOTS_FILE,
    ProfileBuilder,
    RecordingDirSource,
)
from repro.gc.ng2c import NG2CCollector
from repro.runtime.vm import VM
from repro.workloads import make_workload

__all__ = [
    "META_FILE",
    "RECORDING_SCHEMA_VERSION",
    "SNAPSHOTS_FILE",
    "analyze_recording",
    "record_to_dir",
]


def record_to_dir(
    workload_name: str,
    output_dir: str,
    duration_ms: float = 30_000.0,
    seed: int = 42,
    snapshot_every: int = 1,
    config: Optional[SimConfig] = None,
) -> str:
    """Run the profiling phase and persist the raw recording.

    Returns ``output_dir``.  The directory is self-describing: a later
    :func:`analyze_recording` needs nothing else.
    """
    workload = make_workload(workload_name, seed=seed)
    collector = NG2CCollector()
    vm = VM(config or SimConfig(seed=seed), collector=collector)
    recorder = Recorder(snapshot_every=snapshot_every)
    dumper = Dumper(vm)
    recorder.attach(vm, dumper)
    for model in workload.class_models():
        vm.classloader.load(model)
    workload.setup(vm)
    while vm.clock.now_ms < duration_ms:
        workload.tick()
    workload.teardown()

    os.makedirs(output_dir, exist_ok=True)
    recorder.records.flush_to_dir(output_dir)
    dumper.store.save(os.path.join(output_dir, SNAPSHOTS_FILE))
    with open(os.path.join(output_dir, META_FILE), "w") as handle:
        json.dump(
            {
                "schema_version": RECORDING_SCHEMA_VERSION,
                "workload": workload_name,
                "seed": seed,
                "duration_ms": duration_ms,
                "snapshot_every": snapshot_every,
                "max_generations": vm.config.max_generations,
                "allocations_recorded": recorder.records.total_allocations,
                "snapshots_taken": len(dumper.store),
            },
            handle,
            indent=2,
        )
    return output_dir


def analyze_recording(
    recording_dir: str,
    push_up: bool = True,
    max_generations: Optional[int] = None,
) -> AllocationProfile:
    """Stream an on-disk recording directory through the analysis stages.

    This is the same :class:`~repro.core.stages.ProfileBuilder` code path
    the in-VM streaming profiler uses, driven by a
    :class:`~repro.core.stages.RecordingDirSource` instead of live
    snapshot-point events.  Missing or corrupt recording files raise
    :class:`~repro.errors.ProfileFormatError` naming the offending path
    and the expected recording schema version.
    """
    source = RecordingDirSource(recording_dir)
    builder = ProfileBuilder(
        max_generations=max_generations or source.max_generations,
        push_up=push_up,
    )
    builder.run(source)
    return builder.build(workload=source.workload)
