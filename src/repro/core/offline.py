"""Offline profiling workflow: record to disk, analyze later (§3.2/§3.3).

The paper's deployment shape: the Recorder runs attached to the profiled
JVM and continuously writes object-id streams to disk (stack traces are
flushed once, at the end); the Dumper leaves CRIU image directories; the
Analyzer is a *separate* process that reads both afterwards.  This module
provides exactly that separation over the simulated runtime:

* :func:`record_to_dir` — run the profiling phase and leave a recording
  directory (``traces.json`` + per-trace id streams + ``snapshots.jsonl``
  + ``meta.json``);
* :func:`analyze_recording` — build an
  :class:`~repro.core.profile.AllocationProfile` from such a directory,
  with no VM or workload required, by replaying it through the same
  streaming stage pipeline (:mod:`repro.core.stages`) the in-VM
  profiler runs.
"""

from __future__ import annotations

import json
import os
from typing import Optional

from repro.config import SimConfig
from repro.core.dumper import Dumper
from repro.core.profile import AllocationProfile
from repro.core.recorder import Recorder
from repro.core.stages import (
    META_FILE,
    RECORDING_SCHEMA_VERSION,
    SNAPSHOTS_BIN_FILE,
    SNAPSHOTS_FILE,
    ProfileBuilder,
    RecordingDirSource,
)
from repro.errors import ReproError
from repro.gc.ng2c import NG2CCollector
from repro.runtime.vm import VM
from repro.snapshot.snapshot import SNAPSHOT_FORMATS
from repro.workloads import make_workload

__all__ = [
    "META_FILE",
    "RECORDING_SCHEMA_VERSION",
    "SNAPSHOTS_BIN_FILE",
    "SNAPSHOTS_FILE",
    "analyze_recording",
    "record_to_dir",
    "resolve_snapshot_format",
]

#: Environment override for the on-disk snapshot format.
SNAPSHOT_FORMAT_ENV = "REPRO_SNAPSHOT_FORMAT"


def resolve_snapshot_format(value: Optional[str] = None) -> str:
    """Pick the snapshot store format: argument, env, or the default.

    Precedence: an explicit ``value`` (e.g. a CLI flag), then the
    ``REPRO_SNAPSHOT_FORMAT`` environment variable, then ``"binary"``.
    Anything outside :data:`~repro.snapshot.snapshot.SNAPSHOT_FORMATS`
    raises :class:`~repro.errors.ReproError` naming the offender.
    """
    chosen = value or os.environ.get(SNAPSHOT_FORMAT_ENV) or "binary"
    if chosen not in SNAPSHOT_FORMATS:
        source = "snapshot format" if value else f"${SNAPSHOT_FORMAT_ENV}"
        raise ReproError(
            f"invalid {source} {chosen!r}; choose one of "
            f"{', '.join(SNAPSHOT_FORMATS)}"
        )
    return chosen


def record_to_dir(
    workload_name: str,
    output_dir: str,
    duration_ms: float = 30_000.0,
    seed: int = 42,
    snapshot_every: int = 1,
    config: Optional[SimConfig] = None,
    snapshot_format: Optional[str] = None,
) -> str:
    """Run the profiling phase and persist the raw recording.

    Returns ``output_dir``.  The directory is self-describing: a later
    :func:`analyze_recording` needs nothing else.  ``snapshot_format``
    picks the snapshot store layout (binary columnar by default, see
    :func:`resolve_snapshot_format`); the choice is stamped into
    ``meta.json``.
    """
    snapshot_format = resolve_snapshot_format(snapshot_format)
    workload = make_workload(workload_name, seed=seed)
    collector = NG2CCollector()
    vm = VM(config or SimConfig(seed=seed), collector=collector)
    recorder = Recorder(snapshot_every=snapshot_every)
    dumper = Dumper(vm)
    recorder.attach(vm, dumper)
    for model in workload.class_models():
        vm.classloader.load(model)
    workload.setup(vm)
    while vm.clock.now_ms < duration_ms:
        workload.tick()
    workload.teardown()

    os.makedirs(output_dir, exist_ok=True)
    recorder.records.flush_to_dir(output_dir)
    snapshots_file = (
        SNAPSHOTS_BIN_FILE if snapshot_format == "binary" else SNAPSHOTS_FILE
    )
    dumper.store.save(
        os.path.join(output_dir, snapshots_file), format=snapshot_format
    )
    with open(os.path.join(output_dir, META_FILE), "w") as handle:
        json.dump(
            {
                "schema_version": RECORDING_SCHEMA_VERSION,
                "workload": workload_name,
                "seed": seed,
                "duration_ms": duration_ms,
                "snapshot_every": snapshot_every,
                "snapshot_format": snapshot_format,
                "max_generations": vm.config.max_generations,
                "allocations_recorded": recorder.records.total_allocations,
                "snapshots_taken": len(dumper.store),
            },
            handle,
            indent=2,
        )
    return output_dir


def analyze_recording(
    recording_dir: str,
    push_up: bool = True,
    max_generations: Optional[int] = None,
) -> AllocationProfile:
    """Stream an on-disk recording directory through the analysis stages.

    This is the same :class:`~repro.core.stages.ProfileBuilder` code path
    the in-VM streaming profiler uses, driven by a
    :class:`~repro.core.stages.RecordingDirSource` instead of live
    snapshot-point events.  Missing or corrupt recording files raise
    :class:`~repro.errors.ProfileFormatError` naming the offending path
    and the expected recording schema version.
    """
    source = RecordingDirSource(recording_dir)
    builder = ProfileBuilder(
        max_generations=max_generations or source.max_generations,
        push_up=push_up,
    )
    builder.run(source)
    return builder.build(workload=source.workload)
