"""Offline profiling workflow: record to disk, analyze later (§3.2/§3.3).

The paper's deployment shape: the Recorder runs attached to the profiled
JVM and continuously writes object-id streams to disk (stack traces are
flushed once, at the end); the Dumper leaves CRIU image directories; the
Analyzer is a *separate* process that reads both afterwards.  This module
provides exactly that separation over the simulated runtime:

* :func:`record_to_dir` — run the profiling phase and leave a recording
  directory (``traces.json`` + per-trace id streams + ``snapshots.jsonl``
  + ``meta.json``);
* :func:`analyze_recording` — build an
  :class:`~repro.core.profile.AllocationProfile` from such a directory,
  with no VM or workload required.
"""

from __future__ import annotations

import json
import os
from typing import Optional

from repro.config import SimConfig
from repro.core.analyzer import Analyzer
from repro.core.dumper import Dumper
from repro.core.profile import AllocationProfile
from repro.core.recorder import AllocationRecords, Recorder
from repro.errors import ProfileFormatError
from repro.gc.ng2c import NG2CCollector
from repro.runtime.vm import VM
from repro.snapshot.snapshot import SnapshotStore
from repro.workloads import make_workload

SNAPSHOTS_FILE = "snapshots.jsonl"
META_FILE = "meta.json"


def record_to_dir(
    workload_name: str,
    output_dir: str,
    duration_ms: float = 30_000.0,
    seed: int = 42,
    snapshot_every: int = 1,
    config: Optional[SimConfig] = None,
) -> str:
    """Run the profiling phase and persist the raw recording.

    Returns ``output_dir``.  The directory is self-describing: a later
    :func:`analyze_recording` needs nothing else.
    """
    workload = make_workload(workload_name, seed=seed)
    collector = NG2CCollector()
    vm = VM(config or SimConfig(seed=seed), collector=collector)
    recorder = Recorder(snapshot_every=snapshot_every)
    dumper = Dumper(vm)
    recorder.attach(vm, dumper)
    for model in workload.class_models():
        vm.classloader.load(model)
    workload.setup(vm)
    while vm.clock.now_ms < duration_ms:
        workload.tick()
    workload.teardown()

    os.makedirs(output_dir, exist_ok=True)
    recorder.records.flush_to_dir(output_dir)
    dumper.store.save(os.path.join(output_dir, SNAPSHOTS_FILE))
    with open(os.path.join(output_dir, META_FILE), "w") as handle:
        json.dump(
            {
                "workload": workload_name,
                "seed": seed,
                "duration_ms": duration_ms,
                "snapshot_every": snapshot_every,
                "max_generations": vm.config.max_generations,
                "allocations_recorded": recorder.records.total_allocations,
                "snapshots_taken": len(dumper.store),
            },
            handle,
            indent=2,
        )
    return output_dir


def analyze_recording(
    recording_dir: str,
    push_up: bool = True,
    max_generations: Optional[int] = None,
) -> AllocationProfile:
    """Run the Analyzer over an on-disk recording directory."""
    meta_path = os.path.join(recording_dir, META_FILE)
    try:
        with open(meta_path) as handle:
            meta = json.load(handle)
    except (OSError, ValueError) as exc:
        raise ProfileFormatError(
            f"not a recording directory (no readable {META_FILE}): {exc}"
        ) from exc
    records = AllocationRecords.load_from_dir(recording_dir)
    store = SnapshotStore.load(os.path.join(recording_dir, SNAPSHOTS_FILE))
    analyzer = Analyzer(
        records,
        store.snapshots,
        max_generations=max_generations or int(meta.get("max_generations", 16)),
    )
    return analyzer.build_profile(
        workload=meta.get("workload", "unknown"), push_up=push_up
    )
