"""Two-phase orchestration: profiling then production (paper §3.5).

:class:`POLM2Pipeline` wires the components end-to-end:

* **profiling phase** — a fresh VM with NG2C (whose modified heap walk
  supports the no-need marking), the Recorder, the Dumper, and a
  streaming :class:`~repro.core.stages.LiveVMSource` attached; the
  incremental analysis stages digest each snapshot as it is taken and
  the :class:`~repro.core.stages.ProfileBuilder` flattens the result
  into an :class:`AllocationProfile`;
* **production phase** — a fresh VM with NG2C and only the Instrumenter
  attached, applying the profile at class-load time;
* **baselines** — the same workload under plain G1, plain NG2C with the
  hand-written annotations (the paper's "NG2C" bars), or C4.

Each phase returns a :class:`PhaseResult` carrying pauses, throughput
samples, and memory, which the experiment drivers aggregate into the
paper's tables and figures.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Callable, Dict, List, Optional, Union

from repro.config import SimConfig
from repro.core.dumper import Dumper
from repro.core.profile import AllocationProfile
from repro.core.profilesource import ProfileSource, resolve_profile
from repro.core.recorder import Recorder
from repro.core.stages import LiveVMSource, ProfileBuilder
from repro.errors import ReproError
from repro.gc.base import GenerationalCollector
from repro.gc.events import GCPause
from repro.gc.ng2c import NG2CCollector
from repro.heap.objects import reset_identity_hashes
from repro.runtime.vm import VM
from repro.snapshot.snapshot import SnapshotStore
from repro.strategies.agents import TelemetryAgent
from repro.strategies.builtin import _polm2_agents
from repro.strategies.spec import StrategyContext, StrategySpec, get_strategy
from repro.workloads.base import Workload

#: Factory producing a fresh workload instance per phase (phases must not
#: share mutable state, just as the paper restarts the application).
WorkloadFactory = Callable[[], Workload]

#: Throughput sampling period for timeline plots (Fig. 8), virtual ms.
THROUGHPUT_SAMPLE_MS = 1000.0


@dataclasses.dataclass
class PhaseResult:
    """Everything measured while running one workload under one strategy."""

    strategy: str
    workload: str
    collector_name: str
    duration_ms: float
    ops_completed: int
    pauses: List[GCPause]
    peak_memory_bytes: int
    set_generation_calls: int
    #: ops/s sampled each virtual second (Fig. 8 timelines).
    throughput_timeline: List[float]
    snapshots: Optional[SnapshotStore] = None
    profile: Optional[AllocationProfile] = None
    #: Merged per-agent counters from every attached agent's
    #: ``telemetry()`` (allocations logged, snapshots taken, ...).
    telemetry: Optional[Dict[str, int]] = None

    @property
    def throughput_ops_s(self) -> float:
        if self.duration_ms <= 0:
            return 0.0
        return self.ops_completed / (self.duration_ms / 1000.0)

    def pause_durations_ms(self) -> List[float]:
        return [p.duration_ms for p in self.pauses]

    def pause_report(self) -> str:
        from repro.metrics.percentiles import percentile_table

        return percentile_table(
            {self.strategy: self.pause_durations_ms()},
            title=f"{self.workload} pause times (ms)",
        )

    # -- serialization (the experiment runner's on-disk result cache) -----------
    # JSON keeps floats via repr round-tripping, so load(save(r)) is
    # value-identical to r — the cache parity tests rely on this.

    def to_dict(self) -> Dict:
        return {
            "strategy": self.strategy,
            "workload": self.workload,
            "collector_name": self.collector_name,
            "duration_ms": self.duration_ms,
            "ops_completed": self.ops_completed,
            "pauses": [dataclasses.asdict(p) for p in self.pauses],
            "peak_memory_bytes": self.peak_memory_bytes,
            "set_generation_calls": self.set_generation_calls,
            "throughput_timeline": list(self.throughput_timeline),
            "snapshots": (
                None
                if self.snapshots is None
                else [s.to_dict() for s in self.snapshots]
            ),
            "profile": (
                None
                if self.profile is None
                else json.loads(self.profile.to_json())
            ),
            "telemetry": self.telemetry,
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "PhaseResult":
        from repro.snapshot.snapshot import Snapshot

        snapshots = None
        if payload.get("snapshots") is not None:
            snapshots = SnapshotStore()
            previous: Optional[Snapshot] = None
            for snap_payload in payload["snapshots"]:
                snapshot = Snapshot.from_dict(snap_payload, predecessor=previous)
                snapshots.append(snapshot)
                previous = snapshot
        profile = None
        if payload.get("profile") is not None:
            profile = AllocationProfile.from_json(json.dumps(payload["profile"]))
        return cls(
            strategy=payload["strategy"],
            workload=payload["workload"],
            collector_name=payload["collector_name"],
            duration_ms=float(payload["duration_ms"]),
            ops_completed=int(payload["ops_completed"]),
            pauses=[GCPause(**p) for p in payload["pauses"]],
            peak_memory_bytes=int(payload["peak_memory_bytes"]),
            set_generation_calls=int(payload["set_generation_calls"]),
            throughput_timeline=[float(v) for v in payload["throughput_timeline"]],
            snapshots=snapshots,
            profile=profile,
            telemetry=payload.get("telemetry"),
        )


class POLM2Pipeline:
    """Profiling-phase + production-phase driver for one workload."""

    def __init__(
        self,
        workload_factory: WorkloadFactory,
        config: Optional[SimConfig] = None,
        snapshot_every: int = 1,
    ) -> None:
        self.workload_factory = workload_factory
        self.config = config or SimConfig()
        self.snapshot_every = snapshot_every

    # -- shared driver ---------------------------------------------------------------

    def _drive(
        self,
        vm: VM,
        workload: Workload,
        duration_ms: float,
    ) -> List[float]:
        """Load classes, set up, and tick until the virtual deadline.

        Returns the per-second throughput timeline.
        """
        workload.vm = vm
        for model in workload.class_models():
            vm.classloader.load(model)
        workload.setup(vm)
        timeline: List[float] = []
        window_start_ms = vm.clock.now_ms
        window_ops = 0
        deadline = duration_ms
        while vm.clock.now_ms < deadline:
            window_ops += workload.tick()
            now = vm.clock.now_ms
            while now - window_start_ms >= THROUGHPUT_SAMPLE_MS:
                timeline.append(window_ops / (THROUGHPUT_SAMPLE_MS / 1000.0))
                window_ops = 0
                window_start_ms += THROUGHPUT_SAMPLE_MS
        workload.teardown()
        return timeline

    def _result(
        self,
        strategy: str,
        workload: Workload,
        vm: VM,
        collector: GenerationalCollector,
        timeline: List[float],
        snapshots: Optional[SnapshotStore] = None,
        profile: Optional[AllocationProfile] = None,
        telemetry: Optional[Dict[str, int]] = None,
    ) -> PhaseResult:
        peak = vm.heap.peak_committed_bytes
        if getattr(collector, "pre_reserves_memory", False):
            peak = vm.config.heap_bytes
        return PhaseResult(
            strategy=strategy,
            workload=workload.name,
            collector_name=collector.name,
            duration_ms=vm.clock.now_ms,
            ops_completed=vm.ops_completed,
            pauses=collector.pauses,
            peak_memory_bytes=peak,
            set_generation_calls=vm.set_generation_calls,
            throughput_timeline=timeline,
            snapshots=snapshots,
            profile=profile,
            telemetry=telemetry,
        )

    @staticmethod
    def _merged_telemetry(agents: List) -> Dict[str, int]:
        telemetry: Dict[str, int] = {}
        for agent in agents:
            collect = getattr(agent, "telemetry", None)
            if callable(collect):
                telemetry.update(collect())
        return telemetry

    # -- generic strategy driver --------------------------------------------------------

    def run(
        self,
        strategy: Union[str, StrategySpec],
        duration_ms: float = 60_000.0,
        profile: Optional[
            Union[AllocationProfile, str, "ProfileSource"]
        ] = None,
        label: Optional[str] = None,
    ) -> PhaseResult:
        """Run the workload under one registered (or ad-hoc) strategy.

        ``strategy`` is a registry name or a :class:`StrategySpec`.
        Strategies with ``needs_profile`` require ``profile`` — an
        :class:`AllocationProfile`, a
        :class:`~repro.core.profilesource.ProfileSource`, or a URI/path
        string (``file://``, ``store://``, ``http://``) resolved through
        :func:`~repro.core.profilesource.resolve_profile`, so a
        production VM can point straight at a running profile service.
        ``label`` overrides the strategy name recorded in the result.
        """
        spec = (
            strategy
            if isinstance(strategy, StrategySpec)
            else get_strategy(strategy)
        )
        if spec.needs_profile and profile is None:
            raise ReproError(
                f"strategy {spec.name!r} needs an allocation profile; "
                "run a profiling phase first or pass a saved profile"
            )
        if profile is not None and not isinstance(profile, AllocationProfile):
            profile = resolve_profile(profile)
        # Fresh-process id state: a cell computed here is byte-identical
        # to the same cell computed in a pool worker.
        reset_identity_hashes()
        workload = self.workload_factory()
        collector = spec.collector_factory()
        vm = VM(self.config, collector=collector)
        context = StrategyContext(
            vm=vm,
            workload=workload,
            collector=collector,
            config=self.config,
            profile=profile if spec.needs_profile else None,
        )
        agents = list(spec.build_agents(context))
        agents.append(TelemetryAgent())
        for agent in agents:
            vm.attach_agent(agent)
        timeline = self._drive(vm, workload, duration_ms)
        return self._result(
            label or spec.name,
            workload,
            vm,
            collector,
            timeline,
            profile=profile if spec.needs_profile else None,
            telemetry=self._merged_telemetry(agents),
        )

    # -- profiling phase ---------------------------------------------------------------

    def run_profiling_phase(
        self,
        duration_ms: float = 30_000.0,
        push_up: bool = True,
        keep_result: Optional[list] = None,
    ) -> AllocationProfile:
        """Run the workload with the streaming profiler attached; return
        the allocation profile.

        Analysis happens *during* the run: a
        :class:`~repro.core.stages.LiveVMSource` feeds every snapshot
        into the :class:`~repro.core.stages.ProfileBuilder`'s incremental
        stages at the snapshot-point event, so no end-of-run batch pass
        over the snapshot sequence is needed.

        ``keep_result`` (optional, a list) receives the profiling-run
        :class:`PhaseResult` — used by the snapshot experiments.
        """
        reset_identity_hashes()
        workload = self.workload_factory()
        collector = NG2CCollector()
        vm = VM(self.config, collector=collector)
        recorder = Recorder(snapshot_every=self.snapshot_every)
        dumper = Dumper()
        recorder.dumper = dumper
        builder = ProfileBuilder(
            max_generations=self.config.max_generations, push_up=push_up
        )
        source = LiveVMSource(builder, recorder, dumper)
        agents = [recorder, dumper, source, TelemetryAgent()]
        for agent in agents:
            vm.attach_agent(agent)
        timeline = self._drive(vm, workload, duration_ms)
        source.flush()
        profile = builder.build(workload=workload.name)
        if keep_result is not None:
            keep_result.append(
                self._result(
                    "polm2-profiling",
                    workload,
                    vm,
                    collector,
                    timeline,
                    snapshots=dumper.store,
                    profile=profile,
                    telemetry=self._merged_telemetry(agents),
                )
            )
        return profile

    # -- production phase -----------------------------------------------------------------

    def run_production_phase(
        self,
        profile: AllocationProfile,
        duration_ms: float = 60_000.0,
        collector_factory: Callable[[], GenerationalCollector] = NG2CCollector,
        strategy: str = "polm2",
    ) -> PhaseResult:
        """Run the workload with the profile instrumented in.

        ``collector_factory`` defaults to NG2C but accepts any collector
        implementing the pretenuring API (paper §4.5: POLM2 is
        GC-independent) — e.g.
        :class:`repro.gc.binary.BinaryPretenuringCollector` for the
        Memento-style single-tenured-space ablation.  Prefer registering
        a :class:`~repro.strategies.StrategySpec` and calling
        :meth:`run`; this shim builds an ad-hoc spec.
        """
        spec = StrategySpec(
            name=strategy,
            collector_factory=collector_factory,
            needs_profile=True,
            build_agents=_polm2_agents,
        )
        return self.run(spec, duration_ms=duration_ms, profile=profile)

    # -- baselines ------------------------------------------------------------------------

    def run_baseline(
        self, strategy: str, duration_ms: float = 60_000.0
    ) -> PhaseResult:
        """Run one of the paper's baselines: ``g1``, ``ng2c``, or ``c4``.

        ``ng2c`` means NG2C with the workload's *manual* annotations (the
        paper's "NG2C" bars); plain unannotated NG2C behaves like G1 and
        is available as ``ng2c-unannotated`` for ablations.  Resolves
        through the strategy registry (:meth:`run`).
        """
        return self.run(strategy, duration_ms=duration_ms)
