"""An exact object-lifetime tracer, Merlin / Elephant Tracks style.

The paper's §6.1 surveys profilers that compute *exact* lifetimes —
Merlin (Hertz et al.) timestamps objects as they lose incoming references
and replays death order; Elephant Tracks extends it; Resurrector trades
precision for speed.  Their cost is prohibitive: "up to 300 times slower"
(Merlin), "3 to 40 times slowdown" (Resurrector) — which is exactly why
POLM2 estimates lifetimes from periodic incremental snapshots instead.

:class:`ExactLifetimeTracer` implements the exact approach over the
simulated runtime so the trade-off is measurable here too:

* every allocation is logged with its birth cycle (like the Recorder);
* every reference update is observed (Merlin's timestamp propagation) —
  a per-pointer-write mutator tax the Recorder never pays;
* at every GC cycle the tracer re-processes the reachable set to assign
  exact death cycles to objects that became unreachable.

Its output is profile-compatible: :meth:`build_profile` produces an
:class:`~repro.core.profile.AllocationProfile` from exact lifetimes, so
the profile-quality-vs-overhead comparison is apples to apples.
"""

from __future__ import annotations

from array import array
from typing import Dict, Optional, TYPE_CHECKING

from repro.core.analyzer import survival_to_generation
from repro.core.idset import EMPTY_IDSET, IdSet
from repro.core.profile import AllocationProfile
from repro.core.recorder import AllocationRecords
from repro.core.sttree import STTree
from repro.runtime.code import AllocSite, ClassModel
from repro.runtime.events import GCEndEvent, VMAgent

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.heap.objects import HeapObject
    from repro.runtime.vm import VM


class ExactLifetimeTracer(VMAgent):
    """Exact lifetime profiler: precise, and proportionally expensive."""

    def __init__(self, min_samples: int = 8) -> None:
        self.records = AllocationRecords()
        self.min_samples = min_samples
        #: object id -> GC cycle at allocation.
        self.birth_cycle: Dict[int, int] = {}
        #: object id -> GC cycle at which death was observed.
        self.death_cycle: Dict[int, int] = {}
        self.vm: Optional["VM"] = None
        #: ids seen alive, as a compact kernel; allocations between GCs
        #: buffer in ``_pending`` (cheap C appends) and fold in at GC end.
        self._recorded_live: IdSet = EMPTY_IDSET
        self._pending: array = array("q")
        self.instrumented_site_count = 0
        #: Totals for the overhead accounting.
        self.ref_updates_observed = 0
        self.objects_reprocessed = 0

    # -- agent lifecycle -----------------------------------------------------------

    def on_attach(self, vm: "VM") -> None:
        self.vm = vm
        # Reference-write observation is a heap-level seam (Merlin's
        # per-pointer-write tax), not a VM event — wired here directly.
        vm.heap.ref_write_listeners.append(self._on_ref_update)

    def on_detach(self, vm: "VM") -> None:
        vm.heap.ref_write_listeners.remove(self._on_ref_update)
        self.vm = None

    def attach(self, vm: "VM") -> None:
        """Legacy seam: register through ``vm.attach_agent``."""
        vm.attach_agent(self)

    def telemetry(self) -> Dict[str, int]:
        return {
            "allocations_logged": self.records.total_allocations,
            "ref_updates_observed": self.ref_updates_observed,
            "objects_reprocessed": self.objects_reprocessed,
        }

    # -- ClassFileTransformer ---------------------------------------------------------

    def transform(self, class_model: ClassModel) -> ClassModel:
        for site in class_model.iter_alloc_sites():
            site.record_hook = True
            self.instrumented_site_count += 1
        return class_model

    # -- hooks -------------------------------------------------------------------------

    def on_allocation(
        self, obj: "HeapObject", site: AllocSite, trace: tuple
    ) -> None:
        self.records.log(trace, obj.object_id)
        cycle = self.vm.collector.cycles if self.vm.collector else 0
        self.birth_cycle[obj.object_id] = cycle
        self._pending.append(obj.object_id)
        self.vm.clock.advance_us(self.vm.config.costs.exact_log_us)

    def on_allocation_batch(self, event) -> None:
        """Batch logging: one stream extend, per-object clock charges.

        The tracer keeps ``heap.ref_write_listeners`` populated, so any
        batch carrying ``link_from`` already fell back to the scalar path
        in the VM — this only ever sees plain allocation runs.
        """
        trace_id = self.records.intern_trace(event.trace)
        first = event.first_object_id
        ids = array("q", range(first, first + event.count))
        self.records.streams[trace_id].extend(ids)
        cycle = self.vm.collector.cycles if self.vm.collector else 0
        birth = self.birth_cycle
        advance = self.vm.clock.advance_us
        cost = self.vm.config.costs.exact_log_us
        for object_id in ids:
            birth[object_id] = cycle
            advance(cost)
        self._pending.extend(ids)

    def _on_ref_update(self, parent: "HeapObject", child) -> None:
        # Merlin: every pointer store/clear updates the timestamp of the
        # objects that may have just lost their last incoming reference.
        self.ref_updates_observed += 1
        self.vm.clock.advance_us(self.vm.config.costs.exact_ref_update_us)

    def on_gc_end(self, event: GCEndEvent) -> None:
        pause = event.pause
        collector = self.vm.collector
        live_ids = IdSet(
            obj.object_id for obj in collector.last_live_objects
        )
        # Re-process the reachable set (trace replay) — charged per object.
        self.objects_reprocessed += len(live_ids)
        self.vm.clock.advance_us(
            self.vm.config.costs.exact_trace_obj_us * len(live_ids)
        )
        recorded = self._recorded_live
        if self._pending:
            recorded = recorded | IdSet(self._pending)
            del self._pending[:]
        died = recorded - live_ids
        for object_id in died.to_list():
            self.death_cycle[object_id] = pause.cycle
        self._recorded_live = recorded & live_ids

    # -- results --------------------------------------------------------------------------

    def exact_lifetime_cycles(self, object_id: int) -> Optional[int]:
        """Cycles survived, or None while the object still lives."""
        death = self.death_cycle.get(object_id)
        if death is None:
            return None
        return max(0, death - 1 - self.birth_cycle.get(object_id, 0))

    def build_profile(
        self, workload: str = "unknown", push_up: bool = True
    ) -> AllocationProfile:
        """Derive an allocation profile from *exact* lifetimes.

        Still-live objects count with their lifetime so far — exactly what
        an exact tracer knows at analysis time.
        """
        current_cycle = self.vm.collector.cycles if self.vm else 0
        tree = STTree()
        max_generations = self.vm.config.max_generations if self.vm else 16
        for trace_id, stream in self.records.streams.items():
            if len(stream) < self.min_samples:
                continue
            votes: Dict[int, int] = {}
            for object_id in stream:
                lifetime = self.exact_lifetime_cycles(object_id)
                if lifetime is None:
                    lifetime = max(
                        0, current_cycle - self.birth_cycle.get(object_id, 0)
                    )
                gen = survival_to_generation(lifetime, max_generations)
                votes[gen] = votes.get(gen, 0) + 1
            best = max(votes.values())
            gen = min(g for g, count in votes.items() if count == best)
            tree.insert(self.records.traces[trace_id], gen, len(stream))
        return AllocationProfile.from_sttree(
            tree,
            workload=workload,
            push_up=push_up,
            metadata={
                "profiler": "exact-tracer",
                "ref_updates_observed": self.ref_updates_observed,
                "objects_reprocessed": self.objects_reprocessed,
            },
        )
