"""POLM2 itself: Recorder, Dumper, Analyzer (+ STTree), Instrumenter.

The four components of the paper's Figure 1, plus the two-phase
orchestration of §3.5:

* profiling phase — :class:`~repro.core.recorder.Recorder` logs every
  allocation (stack trace + identity hash) and triggers the
  :class:`~repro.core.dumper.Dumper` after each GC cycle; the
  :class:`~repro.core.analyzer.Analyzer` buckets object survival per
  allocation stack trace and the :class:`~repro.core.sttree.STTree`
  resolves same-site/different-lifetime conflicts, producing an
  :class:`~repro.core.profile.AllocationProfile`;
* production phase — the :class:`~repro.core.instrumenter.Instrumenter`
  rewrites classes at load time so NG2C pretenures according to the
  profile.
"""

from repro.core.analyzer import Analyzer
from repro.core.dumper import Dumper
from repro.core.idset import EMPTY_IDSET, IdSet
from repro.core.instrumenter import Instrumenter
from repro.core.pipeline import POLM2Pipeline, PhaseResult
from repro.core.profile import AllocationProfile, AllocDirective, CallDirective
from repro.core.profilestore import ProfileStore
from repro.core.recorder import AllocationRecords, Recorder
from repro.core.stages import (
    IncrementalAnalyzer,
    LiveVMSource,
    ProfileBuilder,
    ProfileStage,
    RecordingDirSource,
)
from repro.core.sttree import STTree

__all__ = [
    "AllocDirective",
    "AllocationProfile",
    "AllocationRecords",
    "Analyzer",
    "CallDirective",
    "Dumper",
    "EMPTY_IDSET",
    "IdSet",
    "IncrementalAnalyzer",
    "Instrumenter",
    "LiveVMSource",
    "POLM2Pipeline",
    "PhaseResult",
    "ProfileBuilder",
    "ProfileStage",
    "ProfileStore",
    "Recorder",
    "RecordingDirSource",
    "STTree",
]
