"""Compact, immutable id-set kernel for snapshot algebra.

POLM2's Analyzer is dominated by set algebra over per-GC-cycle heap
snapshots (paper §3.3): matching recorded object ids against snapshot id
sequences means intersecting, subtracting, and unioning sets of 64-bit
identity hash codes, over and over.  Boxed-int ``frozenset``s pay ~60
bytes and one hash probe per element for that; this module replaces them
with a roaring-style two-level structure:

* the id space is split into 2^16-wide **chunks** keyed by ``id >> 16``;
* a chunk holding few ids is a **sparse run**: a sorted ``array('q')``
  of absolute ids (8 bytes each, C-backed);
* a dense chunk is a **bitmap block**: a Python ``int`` over the chunk's
  65 536 bit positions, so intersection/difference/union collapse to
  single big-int bitwise operations (one C pass over 8 KiB, not one
  hash probe per element).

Identity hashes in the simulated runtime are monotonically assigned, so
snapshot live-sets are dense ranges — exactly the shape bitmap blocks
compress ~60x and intersect orders of magnitude faster than frozensets.

Serialization (:meth:`IdSet.to_bytes`) keeps the same hybrid: sparse
chunks are varint-delta encoded (sorted low bits, gap-coded, 1-3 bytes
per id), bitmap blocks are dumped as raw little-endian bytes so decoding
is a single C ``int.from_bytes`` — the payload the binary columnar
snapshot store (``snapshots.bin``) embeds per id column.
"""

from __future__ import annotations

import sys
from array import array
from bisect import bisect_left
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

#: Chunk geometry: ids are grouped by their high bits (``id >> 16``).
CHUNK_BITS = 16
CHUNK_SPAN = 1 << CHUNK_BITS
CHUNK_MASK = CHUNK_SPAN - 1
BITMAP_BYTES = CHUNK_SPAN // 8

#: A chunk holding more than this many ids is stored as a bitmap block.
#: 512/65536 ≈ 0.8 % density: below it a sorted run is smaller and its
#: Python-level per-element work is bounded; above it the big-int bitmap
#: wins on both bytes (≤ 16 B/id, usually ≪) and set-algebra speed.
SPARSE_MAX = 512

#: bit positions set in each byte value, for bitmap expansion.
_BYTE_BITS: Tuple[Tuple[int, ...], ...] = tuple(
    tuple(bit for bit in range(8) if value >> bit & 1) for value in range(256)
)


def _zigzag(n: int) -> int:
    """Map a signed int to an unsigned one (0, -1, 1, -2 -> 0, 1, 2, 3)."""
    return n << 1 if n >= 0 else ((-n) << 1) - 1


def _unzigzag(z: int) -> int:
    return z >> 1 if not z & 1 else -((z + 1) >> 1)


def _write_uvarint(buf: bytearray, n: int) -> None:
    while n > 0x7F:
        buf.append((n & 0x7F) | 0x80)
        n >>= 7
    buf.append(n)


def _read_uvarint(view: bytes, offset: int) -> Tuple[int, int]:
    """Decode one LEB128 varint; returns (value, next offset)."""
    result = 0
    shift = 0
    end = len(view)
    while True:
        if offset >= end:
            raise ValueError("truncated varint")
        byte = view[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7


def _bitmap_from_lows(lows: Iterable[int]) -> int:
    bits = bytearray(BITMAP_BYTES)
    for low in lows:
        bits[low >> 3] |= 1 << (low & 7)
    return int.from_bytes(bits, "little")


def _bitmap_to_run(key: int, bitmap: int) -> array:
    """Expand a bitmap block into a sorted absolute-id run."""
    base = key << CHUNK_BITS
    out: List[int] = []
    append = out.append
    raw = bitmap.to_bytes(BITMAP_BYTES, "little")
    for index, byte in enumerate(raw):
        if byte:
            origin = base + (index << 3)
            for bit in _BYTE_BITS[byte]:
                append(origin + bit)
    return array("q", out)


class IdSet:
    """An immutable set of 64-bit object ids, chunked roaring-style.

    Construction accepts any iterable of ints — unsorted, with
    duplicates — and canonicalizes: each 2^16-wide chunk is stored as a
    sorted ``array('q')`` run when it holds ≤ ``SPARSE_MAX`` ids and as
    a big-int bitmap block otherwise, so two IdSets with equal content
    always have identical internal form (equality is a dict compare).

    Set algebra (``&``, ``|``, ``-``) returns new IdSets and accepts
    plain sets/frozensets on the right (coerced).  Iteration yields ids
    in ascending order.  Instances must never be mutated after
    construction — snapshots, cohorts, and caches share them freely.
    """

    __slots__ = ("_chunks", "_len", "_hash")

    def __init__(self, ids: Iterable[int] = ()) -> None:
        chunks: Dict[int, object] = {}
        total = 0
        values = sorted(set(ids))
        n = len(values)
        i = 0
        while i < n:
            key = values[i] >> CHUNK_BITS
            limit = (key + 1) << CHUNK_BITS
            j = i
            while j < n and values[j] < limit:
                j += 1
            chunks[key] = self._make_container(values[i:j])
            total += j - i
            i = j
        self._chunks = chunks
        self._len = total
        self._hash: Optional[int] = None

    # -- construction helpers -------------------------------------------------------

    @staticmethod
    def _make_container(values: List[int]):
        """Canonical container for one chunk's sorted absolute ids."""
        if len(values) <= SPARSE_MAX:
            return array("q", values)
        return _bitmap_from_lows(v & CHUNK_MASK for v in values)

    @classmethod
    def _from_chunks(cls, chunks: Dict[int, object], total: int) -> "IdSet":
        result = cls.__new__(cls)
        result._chunks = chunks
        result._len = total
        result._hash = None
        return result

    @classmethod
    def coerce(cls, ids) -> "IdSet":
        """Return ``ids`` itself when already an IdSet, else build one."""
        if isinstance(ids, cls):
            return ids
        return cls(ids)

    @classmethod
    def union_all(cls, sets: Iterable["IdSet"]) -> "IdSet":
        result = EMPTY_IDSET
        for other in sets:
            result = result | other
        return result

    # -- basic protocol ---------------------------------------------------------------

    def __len__(self) -> int:
        return self._len

    def __bool__(self) -> bool:
        return self._len > 0

    def __contains__(self, value: int) -> bool:
        container = self._chunks.get(value >> CHUNK_BITS)
        if container is None:
            return False
        if isinstance(container, array):
            index = bisect_left(container, value)
            return index < len(container) and container[index] == value
        return bool(container >> (value & CHUNK_MASK) & 1)

    def __iter__(self) -> Iterator[int]:
        for key in sorted(self._chunks):
            container = self._chunks[key]
            if isinstance(container, array):
                yield from container
            else:
                yield from _bitmap_to_run(key, container)

    def to_list(self) -> List[int]:
        """All ids, ascending, materialized with C-backed bulk copies."""
        out: List[int] = []
        for key in sorted(self._chunks):
            container = self._chunks[key]
            if isinstance(container, array):
                out.extend(container.tolist())
            else:
                out.extend(_bitmap_to_run(key, container).tolist())
        return out

    def max(self) -> int:
        """Largest id, O(chunks); raises ValueError when empty."""
        if not self._len:
            raise ValueError("max() of an empty IdSet")
        key = max(self._chunks)
        container = self._chunks[key]
        if isinstance(container, array):
            return container[-1]
        return (key << CHUNK_BITS) + container.bit_length() - 1

    @property
    def nbytes(self) -> int:
        """Approximate resident bytes (containers + chunk index)."""
        total = sys.getsizeof(self._chunks)
        for container in self._chunks.values():
            total += sys.getsizeof(container)
        return total

    def __eq__(self, other: object) -> bool:
        if isinstance(other, IdSet):
            return self._len == other._len and self._chunks == other._chunks
        if isinstance(other, (set, frozenset)):
            return self._len == len(other) and all(v in self for v in other)
        return NotImplemented

    def __hash__(self) -> int:
        # Matches hash(frozenset(...)) so an IdSet that compares equal to
        # a frozenset also hashes equal (rarely exercised; cached).
        if self._hash is None:
            self._hash = hash(frozenset(self.to_list()))
        return self._hash

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        preview = self.to_list()[:6]
        suffix = ", ..." if self._len > 6 else ""
        return f"IdSet({preview}{suffix} len={self._len})"

    def extract_mask(self, start: int, count: int) -> int:
        """Membership bitmask for the ``count`` consecutive ids from ``start``.

        Bit ``i`` of the result is set iff ``start + i in self``.  This is
        the bulk column<->IdSet membership kernel behind columnar marking
        (:meth:`repro.heap.region.Region.live_runs`): for a region whose id
        column is a consecutive block — the common case under monotonic
        identity hashes and allocation-order placement — one call replaces
        one hash probe per object.  Bitmap chunks answer with a shifted
        big-int window; sparse chunks contribute a bisected sub-run.
        """
        if count <= 0:
            return 0
        result = 0
        end = start + count
        for key in range(start >> CHUNK_BITS, (end - 1 >> CHUNK_BITS) + 1):
            container = self._chunks.get(key)
            if container is None:
                continue
            chunk_base = key << CHUNK_BITS
            lo = max(start, chunk_base)
            hi = min(end, chunk_base + CHUNK_SPAN)
            if isinstance(container, array):
                i = bisect_left(container, lo)
                j = bisect_left(container, hi)
                for k in range(i, j):
                    result |= 1 << (container[k] - start)
            else:
                window = (container >> (lo - chunk_base)) & (
                    (1 << (hi - lo)) - 1
                )
                result |= window << (lo - start)
        return result

    def isdisjoint(self, other: "IdSet") -> bool:
        other = IdSet.coerce(other)
        small, large = (
            (self, other) if len(self._chunks) <= len(other._chunks) else (other, self)
        )
        for key, ca in small._chunks.items():
            cb = large._chunks.get(key)
            if cb is None:
                continue
            if self._chunk_intersects(ca, cb):
                return False
        return True

    @staticmethod
    def _chunk_intersects(ca, cb) -> bool:
        a_is_run = isinstance(ca, array)
        b_is_run = isinstance(cb, array)
        if not a_is_run and not b_is_run:
            return bool(ca & cb)
        if a_is_run and b_is_run:
            probe = frozenset(cb)
            return any(v in probe for v in ca)
        run, raw = (ca, cb) if a_is_run else (cb, ca)
        raw_bytes = raw.to_bytes(BITMAP_BYTES, "little")
        return any(
            raw_bytes[(v & CHUNK_MASK) >> 3] >> ((v & CHUNK_MASK) & 7) & 1
            for v in run
        )

    # -- set algebra ------------------------------------------------------------------

    def _store(self, chunks: Dict[int, object], key: int, values: List[int]) -> int:
        """Store a sparse result (absolute ids, sorted) if non-empty."""
        if values:
            chunks[key] = array("q", values)
            return len(values)
        return 0

    def __and__(self, other) -> "IdSet":
        if not isinstance(other, IdSet):
            if not isinstance(other, (set, frozenset)):
                return NotImplemented
            other = IdSet(other)
        a, b = self._chunks, other._chunks
        if len(b) < len(a):
            a, b = b, a
        chunks: Dict[int, object] = {}
        total = 0
        for key, ca in a.items():
            cb = b.get(key)
            if cb is None:
                continue
            a_is_run = isinstance(ca, array)
            b_is_run = isinstance(cb, array)
            if not a_is_run and not b_is_run:
                bitmap = ca & cb
                if bitmap:
                    count = bitmap.bit_count()
                    if count <= SPARSE_MAX:
                        chunks[key] = _bitmap_to_run(key, bitmap)
                    else:
                        chunks[key] = bitmap
                    total += count
                continue
            if a_is_run and b_is_run:
                small, large = (ca, cb) if len(ca) <= len(cb) else (cb, ca)
                probe = frozenset(small)
                total += self._store(
                    chunks, key, [v for v in large if v in probe]
                )
                continue
            run, raw = (ca, cb) if a_is_run else (cb, ca)
            raw_bytes = raw.to_bytes(BITMAP_BYTES, "little")
            total += self._store(
                chunks,
                key,
                [
                    v
                    for v in run
                    if raw_bytes[(v & CHUNK_MASK) >> 3] >> ((v & CHUNK_MASK) & 7) & 1
                ],
            )
        return IdSet._from_chunks(chunks, total)

    __rand__ = __and__

    def __or__(self, other) -> "IdSet":
        if not isinstance(other, IdSet):
            if not isinstance(other, (set, frozenset)):
                return NotImplemented
            other = IdSet(other)
        if not other._len:
            return self
        if not self._len:
            return other
        chunks: Dict[int, object] = {}
        total = 0
        for key in self._chunks.keys() | other._chunks.keys():
            ca = self._chunks.get(key)
            cb = other._chunks.get(key)
            if ca is None or cb is None:
                container = ca if cb is None else cb
                chunks[key] = container
                total += (
                    len(container)
                    if isinstance(container, array)
                    else container.bit_count()
                )
                continue
            a_is_run = isinstance(ca, array)
            b_is_run = isinstance(cb, array)
            if not a_is_run and not b_is_run:
                bitmap = ca | cb
                chunks[key] = bitmap
                total += bitmap.bit_count()
                continue
            if a_is_run and b_is_run:
                merged = sorted(set(ca.tolist()) | set(cb.tolist()))
                count = len(merged)
                if count <= SPARSE_MAX:
                    chunks[key] = array("q", merged)
                else:
                    chunks[key] = _bitmap_from_lows(
                        v & CHUNK_MASK for v in merged
                    )
                total += count
                continue
            run, raw = (ca, cb) if a_is_run else (cb, ca)
            bits = bytearray(raw.to_bytes(BITMAP_BYTES, "little"))
            for v in run:
                low = v & CHUNK_MASK
                bits[low >> 3] |= 1 << (low & 7)
            bitmap = int.from_bytes(bits, "little")
            chunks[key] = bitmap
            total += bitmap.bit_count()
        return IdSet._from_chunks(chunks, total)

    __ror__ = __or__

    def __sub__(self, other) -> "IdSet":
        if not isinstance(other, IdSet):
            if not isinstance(other, (set, frozenset)):
                return NotImplemented
            other = IdSet(other)
        if not other._len or not self._len:
            return self
        chunks: Dict[int, object] = {}
        total = 0
        for key, ca in self._chunks.items():
            cb = other._chunks.get(key)
            if cb is None:
                chunks[key] = ca
                total += len(ca) if isinstance(ca, array) else ca.bit_count()
                continue
            a_is_run = isinstance(ca, array)
            b_is_run = isinstance(cb, array)
            if not a_is_run and not b_is_run:
                bitmap = ca & ~cb
                if bitmap:
                    count = bitmap.bit_count()
                    if count <= SPARSE_MAX:
                        chunks[key] = _bitmap_to_run(key, bitmap)
                    else:
                        chunks[key] = bitmap
                    total += count
                continue
            if a_is_run and b_is_run:
                probe = frozenset(cb)
                total += self._store(
                    chunks, key, [v for v in ca if v not in probe]
                )
                continue
            if a_is_run:
                raw_bytes = cb.to_bytes(BITMAP_BYTES, "little")
                total += self._store(
                    chunks,
                    key,
                    [
                        v
                        for v in ca
                        if not raw_bytes[(v & CHUNK_MASK) >> 3]
                        >> ((v & CHUNK_MASK) & 7)
                        & 1
                    ],
                )
                continue
            bits = bytearray(ca.to_bytes(BITMAP_BYTES, "little"))
            for v in cb:
                low = v & CHUNK_MASK
                bits[low >> 3] &= ~(1 << (low & 7)) & 0xFF
            bitmap = int.from_bytes(bits, "little")
            if bitmap:
                count = bitmap.bit_count()
                if count <= SPARSE_MAX:
                    chunks[key] = _bitmap_to_run(key, bitmap)
                else:
                    chunks[key] = bitmap
                total += count
        return IdSet._from_chunks(chunks, total)

    intersection = __and__
    union = __or__
    difference = __sub__

    # -- (de)serialization -----------------------------------------------------------
    #
    # Layout: uvarint chunk count, then per chunk (ascending key order):
    #   key        — zigzag uvarint for the first chunk, uvarint gap after;
    #   kind byte  — 0 = sparse varint-delta run, 1 = bitmap block;
    #   sparse     — uvarint count, then the sorted low 16-bit values
    #                gap-coded (first raw, deltas ≥ 1), one uvarint each;
    #   bitmap     — uvarint byte length + the block's little-endian
    #                bytes with trailing zeros trimmed (decodes with one
    #                C ``int.from_bytes``).

    def to_bytes(self) -> bytes:
        buf = bytearray()
        _write_uvarint(buf, len(self._chunks))
        previous_key = 0
        first = True
        for key in sorted(self._chunks):
            if first:
                _write_uvarint(buf, _zigzag(key))
                first = False
            else:
                _write_uvarint(buf, key - previous_key)
            previous_key = key
            container = self._chunks[key]
            if isinstance(container, array):
                buf.append(0)
                _write_uvarint(buf, len(container))
                previous_low = 0
                first_low = True
                for value in container:
                    low = value & CHUNK_MASK
                    if first_low:
                        _write_uvarint(buf, low)
                        first_low = False
                    else:
                        _write_uvarint(buf, low - previous_low)
                    previous_low = low
            else:
                raw = container.to_bytes(
                    (container.bit_length() + 7) // 8, "little"
                )
                buf.append(1)
                _write_uvarint(buf, len(raw))
                buf += raw
        return bytes(buf)

    @classmethod
    def from_bytes(cls, payload: bytes) -> "IdSet":
        """Decode :meth:`to_bytes` output; raises ValueError when malformed."""
        chunks: Dict[int, object] = {}
        total = 0
        offset = 0
        chunk_count, offset = _read_uvarint(payload, offset)
        key = 0
        for chunk_index in range(chunk_count):
            gap, offset = _read_uvarint(payload, offset)
            key = _unzigzag(gap) if chunk_index == 0 else key + gap
            if offset >= len(payload):
                raise ValueError("truncated chunk kind byte")
            kind = payload[offset]
            offset += 1
            base = key << CHUNK_BITS
            if kind == 0:
                count, offset = _read_uvarint(payload, offset)
                if count > SPARSE_MAX:
                    raise ValueError(
                        f"sparse run of {count} ids exceeds {SPARSE_MAX}"
                    )
                low = 0
                values = array("q")
                for value_index in range(count):
                    gap, offset = _read_uvarint(payload, offset)
                    low = gap if value_index == 0 else low + gap
                    if low > CHUNK_MASK:
                        raise ValueError(f"chunk-local id {low} out of range")
                    values.append(base + low)
                if values:
                    chunks[key] = values
                    total += count
            elif kind == 1:
                length, offset = _read_uvarint(payload, offset)
                if length > BITMAP_BYTES:
                    raise ValueError(f"bitmap block of {length} bytes too large")
                if offset + length > len(payload):
                    raise ValueError("truncated bitmap block")
                bitmap = int.from_bytes(payload[offset : offset + length], "little")
                offset += length
                if bitmap:
                    count = bitmap.bit_count()
                    if count <= SPARSE_MAX:
                        chunks[key] = _bitmap_to_run(key, bitmap)
                    else:
                        chunks[key] = bitmap
                    total += count
            else:
                raise ValueError(f"unknown chunk kind {kind}")
        if offset != len(payload):
            raise ValueError(
                f"{len(payload) - offset} trailing bytes after id-set payload"
            )
        return cls._from_chunks(chunks, total)


#: The canonical empty set — immutability makes sharing safe.
EMPTY_IDSET = IdSet()
