"""The Analyzer: per-allocation-site lifetime estimation (paper §3.3).

Consumes the Recorder's allocation records and the Dumper's snapshot
sequence and runs the paper's bucket algorithm:

* every recorded object id starts in bucket zero of its stack trace;
* for each snapshot (in time order), every object id found live in the
  snapshot moves to the next bucket;
* per stack trace, the bucket where *most* objects end — the number of
  collections most of its objects survive — estimates the optimal
  generation for that trace.

Distinct survival counts are then grouped into generation indexes on
power-of-two boundaries (objects surviving 4 and 6 cycles belong
together; objects surviving 1 do not), the STTree resolves same-site
conflicts, and the result is an :class:`~repro.core.profile
.AllocationProfile`.
"""

from __future__ import annotations

import collections
import dataclasses
import warnings
from typing import Dict, Optional, Sequence

from repro.core.idset import EMPTY_IDSET, IdSet
from repro.core.profile import AllocationProfile
from repro.core.recorder import AllocationRecords
from repro.core.sttree import STTree
from repro.errors import ProfileError
from repro.snapshot.snapshot import Snapshot


@dataclasses.dataclass
class LifetimeDistribution:
    """Survival histogram for one allocation stack trace."""

    trace_id: int
    #: survival count (snapshots survived) -> number of objects.
    buckets: Dict[int, int]

    @property
    def sample_count(self) -> int:
        return sum(self.buckets.values())

    @property
    def mode_survival(self) -> int:
        """The survival count most objects reached (ties -> the smaller,
        i.e. the conservative, less-pretenured choice)."""
        if not self.buckets:
            return 0
        best_count = max(self.buckets.values())
        return min(s for s, c in self.buckets.items() if c == best_count)

    def mode_generation(self, max_generations: int) -> int:
        """The generation index most objects fall into.

        Raw survival counts are a poor voting domain: objects allocated
        steadily at a long-lived site carry survival counts spread evenly
        over [1, profile length], so no single count dominates.  Folding
        counts into log2 generation classes first makes cohorts vote
        together (ties -> the smaller index, conservative).
        """
        if not self.buckets:
            return 0
        votes: Dict[int, int] = {}
        for survival, count in self.buckets.items():
            gen = survival_to_generation(survival, max_generations)
            votes[gen] = votes.get(gen, 0) + count
        best_count = max(votes.values())
        return min(g for g, c in votes.items() if c == best_count)


def survival_to_generation(survival: int, max_generations: int) -> int:
    """Map a survival count to a generation index on log2 boundaries.

    0 -> young (0); 1 -> gen 1; 2-3 -> gen 2; 4-7 -> gen 3; 8-15 -> gen 4…
    capped at ``max_generations - 1``.  Exponential lifetime classes keep
    the number of generations small while separating short-, middle-, and
    long-lived sites — the same spacing generational aging produces.
    """
    if survival <= 0:
        return 0
    gen = 1
    boundary = 2
    while survival >= boundary:
        gen += 1
        boundary *= 2
    return min(gen, max_generations - 1)


# -- shared estimation steps ------------------------------------------------------
#
# The batch Analyzer and the streaming IncrementalAnalyzer stage
# (``repro.core.stages``) differ only in how survival counts are
# accumulated; everything from counts to the STTree is this one shared
# path, which is what makes their outputs byte-identical.


def credit_counts(counts: Dict[int, int], ids, amount: int) -> None:
    """``counts[oid] += amount`` for every id in ``ids``.

    Shared by both analyzers' cohort algebra.  Bulk-merges the common
    first-interval case with one ``dict.fromkeys`` and loops only over
    resurrections (ids already credited once).  ``ids`` may be an
    :class:`~repro.core.idset.IdSet` or any iterable of ints.
    """
    id_list = ids.to_list() if isinstance(ids, IdSet) else list(ids)
    seen = counts.keys() & id_list
    if seen:
        for object_id in seen:
            counts[object_id] += amount
        id_list = [oid for oid in id_list if oid not in seen]
    counts.update(dict.fromkeys(id_list, amount))


def lifetime_distributions(
    records: AllocationRecords,
    counts: Dict[int, int],
    cutoff: Optional[int],
) -> Dict[int, LifetimeDistribution]:
    """Fold per-id survival counts into per-trace histograms.

    Ids above ``cutoff`` (allocated after the last snapshot) carry no
    lifetime signal and are excluded.
    """
    result: Dict[int, LifetimeDistribution] = {}
    for trace_id, stream in records.streams.items():
        buckets: Dict[int, int] = collections.defaultdict(int)
        for object_id in stream:
            if cutoff is not None and object_id > cutoff:
                continue
            buckets[counts.get(object_id, 0)] += 1
        if buckets:
            result[trace_id] = LifetimeDistribution(trace_id, dict(buckets))
    return result


def estimate_trace_generations(
    distributions: Dict[int, LifetimeDistribution],
    max_generations: int,
    min_samples: int,
) -> Dict[int, int]:
    """Per-trace estimated generation (0 = leave in young)."""
    estimates: Dict[int, int] = {}
    for trace_id, dist in distributions.items():
        if dist.sample_count < min_samples:
            estimates[trace_id] = 0
        else:
            estimates[trace_id] = dist.mode_generation(max_generations)
    return estimates


def build_trace_tree(
    records: AllocationRecords, estimates: Dict[int, int]
) -> STTree:
    """Insert every estimated trace into a fresh STTree (the profile IR)."""
    tree = STTree()
    for trace_id, gen in sorted(estimates.items()):
        trace = records.traces[trace_id]
        count = len(records.streams[trace_id])
        tree.insert(trace, gen, count)
    return tree


_DEPRECATION_EMITTED = False


class Analyzer:
    """Runs the bucket algorithm and produces the allocation profile.

    Invalidation contract: the Analyzer treats ``records`` and
    ``snapshots`` as frozen once constructed.  ``survival_counts()``,
    ``distributions()``, and ``estimate_generations()`` are memoized on
    first call (``build_profile()`` and ``site_report()`` each consume
    them several times); mutating the inputs afterwards will NOT be
    reflected — construct a fresh Analyzer instead.  The memoized dicts
    are returned as-is, so callers must not mutate them either.
    """

    def __init__(
        self,
        records: AllocationRecords,
        snapshots: Sequence[Snapshot],
        max_generations: int = 16,
        min_samples: int = 8,
    ) -> None:
        global _DEPRECATION_EMITTED
        if not _DEPRECATION_EMITTED:
            _DEPRECATION_EMITTED = True
            warnings.warn(
                "the batch Analyzer is deprecated; use "
                "repro.core.stages.ProfileBuilder (streaming, bounded "
                "memory) instead — this shim will be removed next release",
                DeprecationWarning,
                stacklevel=2,
            )
        if max_generations < 2:
            raise ProfileError("max_generations must be >= 2")
        self.records = records
        self.snapshots = sorted(snapshots, key=lambda s: s.time_ms)
        self.max_generations = max_generations
        self.min_samples = min_samples
        self._survival_counts: Optional[Dict[int, int]] = None
        self._counts_raw: Optional[Dict[int, int]] = None
        self._distributions: Optional[Dict[int, LifetimeDistribution]] = None
        self._estimates: Optional[Dict[int, int]] = None
        self._recorded: Optional[set] = None
        #: max id live in the final snapshot, computed for free by the
        #: delta fast path; ``...`` means "not computed yet".
        self._final_live_max: object = ...

    # -- bucket algorithm -----------------------------------------------------------

    def _recorded_ids(self) -> set:
        if self._recorded is None:
            recorded: set = set()
            for stream in self.records.streams.values():
                recorded.update(stream)
            self._recorded = recorded
        return self._recorded

    def _has_delta_chain(self) -> bool:
        """True when the snapshots form one decodable delta chain.

        The first snapshot may be full (CRIU's initial image) or a delta
        over the empty heap; every later one must be a delta chained to
        the snapshot right before it in time order.
        """
        if not self.snapshots:
            return False
        first = self.snapshots[0]
        if first.is_delta and first.predecessor is not None:
            return False
        previous = first
        for snapshot in self.snapshots[1:]:
            if not snapshot.is_delta or snapshot.predecessor is not previous:
                return False
            previous = snapshot
        return True

    def _survival_counts_delta(self) -> Dict[int, int]:
        """Single pass over the delta chain: each id's survival count is
        the number of snapshots between its birth and its death —
        O(ids + deltas) instead of O(snapshots × live).

        Ids are tracked as per-birth-index *cohorts* — immutable
        :class:`~repro.core.idset.IdSet` kernels, so deaths are peeled
        off each cohort with one chunked-bitmap intersection per
        (snapshot, cohort) pair and counts land via bulk
        ``dict.fromkeys`` merges.  Resurrected ids (dead then born
        again) are the rare slow path.  Returns counts for *all*
        observed ids; ``survival_counts()`` narrows to recorded ones.
        """
        counts: Dict[int, int] = {}
        #: birth index -> ids born there and still alive.
        cohorts: Dict[int, IdSet] = {}
        for index, snapshot in enumerate(self.snapshots):
            if snapshot.is_delta:
                born, dead = snapshot.born_ids, snapshot.dead_ids
            else:  # the full first image: everything is newly visible
                born, dead = snapshot.live_object_ids, EMPTY_IDSET
            if dead:
                for birth in list(cohorts):
                    cohort = cohorts[birth]
                    died = cohort & dead
                    if died:
                        remaining = cohort - died
                        if remaining:
                            cohorts[birth] = remaining
                        else:
                            del cohorts[birth]
                        credit_counts(counts, died, index - birth)
            if born:
                cohorts[index] = born
        total = len(self.snapshots)
        final_live_max = None
        for birth, cohort in cohorts.items():
            cohort_max = cohort.max()
            if final_live_max is None or cohort_max > final_live_max:
                final_live_max = cohort_max
            credit_counts(counts, cohort, total - birth)
        self._final_live_max = final_live_max
        return counts

    def _survival_counts_intersection(self) -> Dict[int, int]:
        """Fallback for arbitrary (non-chained) snapshot sequences:
        per-snapshot kernel intersections against the recorded ids."""
        recorded = IdSet(self._recorded_ids())
        counts: Dict[int, int] = collections.defaultdict(int)
        for snapshot in self.snapshots:
            for object_id in (snapshot.live_object_ids & recorded).to_list():
                counts[object_id] += 1
        return dict(counts)

    def _counts_all(self) -> Dict[int, int]:
        """Memoized survival counts, possibly including unrecorded ids
        (the delta fast path does not pay for narrowing; consumers use
        ``.get(object_id, 0)`` keyed by recorded ids anyway)."""
        if self._counts_raw is None:
            if self._has_delta_chain():
                self._counts_raw = self._survival_counts_delta()
            else:
                self._counts_raw = self._survival_counts_intersection()
        return self._counts_raw

    def survival_counts(self) -> Dict[int, int]:
        """Number of snapshots each recorded object id appears live in
        (memoized; see the class invalidation contract)."""
        if self._survival_counts is None:
            counts = self._counts_all()
            recorded = self._recorded_ids()
            self._survival_counts = {
                object_id: counts[object_id]
                for object_id in recorded.intersection(counts.keys())
            }
        return self._survival_counts

    def _id_cutoff(self) -> Optional[int]:
        """Ids allocated after the last snapshot carry no lifetime signal.

        Identity hashes are monotonic in allocation order, so the largest
        id visible in the final snapshot bounds what the snapshots could
        have observed; later allocations are excluded from distributions.
        """
        if not self.snapshots:
            return None
        if self._final_live_max is not ...:
            # The delta fast path already knows the final live-set's max
            # without materializing the full set.
            return self._final_live_max  # type: ignore[return-value]
        last = self.snapshots[-1]
        if not last.live_object_ids:
            return None
        return last.live_object_ids.max()

    def distributions(self) -> Dict[int, LifetimeDistribution]:
        """Per-trace survival histograms (memoized)."""
        if self._distributions is None:
            self._distributions = lifetime_distributions(
                self.records, self._counts_all(), self._id_cutoff()
            )
        return self._distributions

    # -- generation estimation -----------------------------------------------------------

    def estimate_generations(self) -> Dict[int, int]:
        """Per-trace estimated generation index (0 = leave in young);
        memoized — ``build_profile()`` and ``site_report()`` both consume
        it without recomputing the underlying distributions."""
        if self._estimates is None:
            self._estimates = estimate_trace_generations(
                self.distributions(), self.max_generations, self.min_samples
            )
        return self._estimates

    # -- reporting ----------------------------------------------------------------------

    def site_report(self, max_sites: int = 40) -> str:
        """Human-readable per-trace lifetime distributions.

        One line per allocation stack trace (busiest first): sample count,
        the survival histogram folded into generation classes, and the
        estimated generation.  This is the "application allocation
        profile" a human would review before trusting the instrumentation.
        """
        distributions = self.distributions()
        estimates = self.estimate_generations()
        rows = sorted(
            distributions.items(),
            key=lambda item: item[1].sample_count,
            reverse=True,
        )[:max_sites]
        lines = [
            "allocation-site lifetime report "
            f"({len(distributions)} traces, {len(self.snapshots)} snapshots)",
            f"{'allocation site (innermost frame)':<52} {'samples':>8} "
            f"{'gen':>4}  survival histogram",
        ]
        for trace_id, dist in rows:
            trace = self.records.traces[trace_id]
            leaf = trace[-1]
            site = f"{leaf[0].split('.')[-1]}.{leaf[1]}:{leaf[2]}"
            if len(trace) > 1:
                caller = trace[-2]
                site += f" (via {caller[1]}:{caller[2]})"
            votes: Dict[int, int] = {}
            for survival, count in dist.buckets.items():
                gen = survival_to_generation(survival, self.max_generations)
                votes[gen] = votes.get(gen, 0) + count
            histogram = " ".join(
                f"g{gen}:{count}" for gen, count in sorted(votes.items())
            )
            lines.append(
                f"{site:<52} {dist.sample_count:>8} "
                f"{estimates.get(trace_id, 0):>4}  {histogram}"
            )
        return "\n".join(lines)

    # -- STTree + profile --------------------------------------------------------------

    def build_sttree(self) -> STTree:
        return build_trace_tree(self.records, self.estimate_generations())

    def build_profile(
        self, workload: str = "unknown", push_up: bool = True
    ) -> AllocationProfile:
        """The complete profiling-phase output."""
        return AllocationProfile.from_sttree(
            self.build_sttree(),
            workload=workload,
            push_up=push_up,
            metadata={
                "snapshots_analyzed": len(self.snapshots),
                "traces_analyzed": self.records.trace_count,
                "allocations_recorded": self.records.total_allocations,
                "push_up": push_up,
            },
        )
