"""The Analyzer: per-allocation-site lifetime estimation (paper §3.3).

Consumes the Recorder's allocation records and the Dumper's snapshot
sequence and runs the paper's bucket algorithm:

* every recorded object id starts in bucket zero of its stack trace;
* for each snapshot (in time order), every object id found live in the
  snapshot moves to the next bucket;
* per stack trace, the bucket where *most* objects end — the number of
  collections most of its objects survive — estimates the optimal
  generation for that trace.

Distinct survival counts are then grouped into generation indexes on
power-of-two boundaries (objects surviving 4 and 6 cycles belong
together; objects surviving 1 do not), the STTree resolves same-site
conflicts, and the result is an :class:`~repro.core.profile
.AllocationProfile`.
"""

from __future__ import annotations

import collections
import dataclasses
from typing import Dict, List, Optional, Sequence

from repro.core.profile import AllocationProfile, AllocDirective, CallDirective
from repro.core.recorder import AllocationRecords
from repro.core.sttree import STTree
from repro.errors import ProfileError
from repro.snapshot.snapshot import Snapshot


@dataclasses.dataclass
class LifetimeDistribution:
    """Survival histogram for one allocation stack trace."""

    trace_id: int
    #: survival count (snapshots survived) -> number of objects.
    buckets: Dict[int, int]

    @property
    def sample_count(self) -> int:
        return sum(self.buckets.values())

    @property
    def mode_survival(self) -> int:
        """The survival count most objects reached (ties -> the smaller,
        i.e. the conservative, less-pretenured choice)."""
        if not self.buckets:
            return 0
        best_count = max(self.buckets.values())
        return min(s for s, c in self.buckets.items() if c == best_count)

    def mode_generation(self, max_generations: int) -> int:
        """The generation index most objects fall into.

        Raw survival counts are a poor voting domain: objects allocated
        steadily at a long-lived site carry survival counts spread evenly
        over [1, profile length], so no single count dominates.  Folding
        counts into log2 generation classes first makes cohorts vote
        together (ties -> the smaller index, conservative).
        """
        if not self.buckets:
            return 0
        votes: Dict[int, int] = {}
        for survival, count in self.buckets.items():
            gen = survival_to_generation(survival, max_generations)
            votes[gen] = votes.get(gen, 0) + count
        best_count = max(votes.values())
        return min(g for g, c in votes.items() if c == best_count)


def survival_to_generation(survival: int, max_generations: int) -> int:
    """Map a survival count to a generation index on log2 boundaries.

    0 -> young (0); 1 -> gen 1; 2-3 -> gen 2; 4-7 -> gen 3; 8-15 -> gen 4…
    capped at ``max_generations - 1``.  Exponential lifetime classes keep
    the number of generations small while separating short-, middle-, and
    long-lived sites — the same spacing generational aging produces.
    """
    if survival <= 0:
        return 0
    gen = 1
    boundary = 2
    while survival >= boundary:
        gen += 1
        boundary *= 2
    return min(gen, max_generations - 1)


class Analyzer:
    """Runs the bucket algorithm and produces the allocation profile."""

    def __init__(
        self,
        records: AllocationRecords,
        snapshots: Sequence[Snapshot],
        max_generations: int = 16,
        min_samples: int = 8,
    ) -> None:
        if max_generations < 2:
            raise ProfileError("max_generations must be >= 2")
        self.records = records
        self.snapshots = sorted(snapshots, key=lambda s: s.time_ms)
        self.max_generations = max_generations
        self.min_samples = min_samples

    # -- bucket algorithm -----------------------------------------------------------

    def survival_counts(self) -> Dict[int, int]:
        """Number of snapshots each recorded object id appears live in."""
        recorded: set = set()
        for stream in self.records.streams.values():
            recorded.update(stream)
        counts: Dict[int, int] = collections.defaultdict(int)
        for snapshot in self.snapshots:
            for object_id in snapshot.live_object_ids & recorded:
                counts[object_id] += 1
        return counts

    def _id_cutoff(self) -> Optional[int]:
        """Ids allocated after the last snapshot carry no lifetime signal.

        Identity hashes are monotonic in allocation order, so the largest
        id visible in the final snapshot bounds what the snapshots could
        have observed; later allocations are excluded from distributions.
        """
        if not self.snapshots:
            return None
        last = self.snapshots[-1]
        if not last.live_object_ids:
            return None
        return max(last.live_object_ids)

    def distributions(self) -> Dict[int, LifetimeDistribution]:
        """Per-trace survival histograms."""
        counts = self.survival_counts()
        cutoff = self._id_cutoff()
        result: Dict[int, LifetimeDistribution] = {}
        for trace_id, stream in self.records.streams.items():
            buckets: Dict[int, int] = collections.defaultdict(int)
            for object_id in stream:
                if cutoff is not None and object_id > cutoff:
                    continue
                buckets[counts.get(object_id, 0)] += 1
            if buckets:
                result[trace_id] = LifetimeDistribution(trace_id, dict(buckets))
        return result

    # -- generation estimation -----------------------------------------------------------

    def estimate_generations(self) -> Dict[int, int]:
        """Per-trace estimated generation index (0 = leave in young)."""
        estimates: Dict[int, int] = {}
        for trace_id, dist in self.distributions().items():
            if dist.sample_count < self.min_samples:
                estimates[trace_id] = 0
                continue
            estimates[trace_id] = dist.mode_generation(self.max_generations)
        return estimates

    # -- reporting ----------------------------------------------------------------------

    def site_report(self, max_sites: int = 40) -> str:
        """Human-readable per-trace lifetime distributions.

        One line per allocation stack trace (busiest first): sample count,
        the survival histogram folded into generation classes, and the
        estimated generation.  This is the "application allocation
        profile" a human would review before trusting the instrumentation.
        """
        distributions = self.distributions()
        estimates = self.estimate_generations()
        rows = sorted(
            distributions.items(),
            key=lambda item: item[1].sample_count,
            reverse=True,
        )[:max_sites]
        lines = [
            "allocation-site lifetime report "
            f"({len(distributions)} traces, {len(self.snapshots)} snapshots)",
            f"{'allocation site (innermost frame)':<52} {'samples':>8} "
            f"{'gen':>4}  survival histogram",
        ]
        for trace_id, dist in rows:
            trace = self.records.traces[trace_id]
            leaf = trace[-1]
            site = f"{leaf[0].split('.')[-1]}.{leaf[1]}:{leaf[2]}"
            if len(trace) > 1:
                caller = trace[-2]
                site += f" (via {caller[1]}:{caller[2]})"
            votes: Dict[int, int] = {}
            for survival, count in dist.buckets.items():
                gen = survival_to_generation(survival, self.max_generations)
                votes[gen] = votes.get(gen, 0) + count
            histogram = " ".join(
                f"g{gen}:{count}" for gen, count in sorted(votes.items())
            )
            lines.append(
                f"{site:<52} {dist.sample_count:>8} "
                f"{estimates.get(trace_id, 0):>4}  {histogram}"
            )
        return "\n".join(lines)

    # -- STTree + profile --------------------------------------------------------------

    def build_sttree(self) -> STTree:
        estimates = self.estimate_generations()
        tree = STTree()
        for trace_id, gen in sorted(estimates.items()):
            trace = self.records.traces[trace_id]
            count = len(self.records.streams[trace_id])
            tree.insert(trace, gen, count)
        return tree

    def build_profile(
        self, workload: str = "unknown", push_up: bool = True
    ) -> AllocationProfile:
        """The complete profiling-phase output."""
        tree = self.build_sttree()
        plan = tree.instrumentation_plan(push_up=push_up)
        alloc_directives: List[AllocDirective] = []
        for location in sorted(plan.annotate_sites):
            alloc_directives.append(
                AllocDirective(
                    class_name=location[0],
                    method_name=location[1],
                    line=location[2],
                    pre_set_gen=plan.alloc_brackets.get(location),
                )
            )
        call_directives = [
            CallDirective(
                class_name=location[0],
                method_name=location[1],
                line=location[2],
                target_generation=gen,
            )
            for location, gen in sorted(plan.call_directives.items())
        ]
        return AllocationProfile(
            workload=workload,
            alloc_directives=alloc_directives,
            call_directives=call_directives,
            conflicts_detected=len(plan.conflicts),
            metadata={
                "snapshots_analyzed": len(self.snapshots),
                "traces_analyzed": self.records.trace_count,
                "allocations_recorded": self.records.total_allocations,
                "push_up": push_up,
            },
        )
