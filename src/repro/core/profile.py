"""Allocation profiles: the artifact connecting the two POLM2 phases.

The profiling phase emits "a file containing all the code locations that
will be instrumented and how (annotate allocation site or set current
generation)" (§3.5).  :class:`AllocationProfile` is that file: a list of
``@Gen`` annotations and ``setGeneration`` directives, serializable to
JSON so one profile per expected workload can be kept and selected at
production launch.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Dict, List, Optional, Set

from repro.core.sttree import STTree
from repro.errors import ProfileFormatError
from repro.runtime.code import CodeLocation

#: Current profile file format marker.
PROFILE_FORMAT = "polm2-profile-v2"

#: Current profile schema version.  v1 files (format marker
#: ``polm2-profile-v1``, no embedded IR) are still read; versions newer
#: than this are rejected with a one-line error.
PROFILE_SCHEMA_VERSION = 2

_PROFILE_FORMAT_V1 = "polm2-profile-v1"


@dataclasses.dataclass(frozen=True)
class AllocDirective:
    """Annotate one allocation site ``@Gen``.

    ``pre_set_gen`` additionally brackets the single allocation with
    ``setGeneration(pre_set_gen)`` / restore, for sites whose generation
    could not be hoisted to an enclosing call site.
    """

    class_name: str
    method_name: str
    line: int
    pre_set_gen: Optional[int] = None

    @property
    def location(self) -> CodeLocation:
        return (self.class_name, self.method_name, self.line)


@dataclasses.dataclass(frozen=True)
class CallDirective:
    """Bracket one call site with ``setGeneration(target_generation)``."""

    class_name: str
    method_name: str
    line: int
    target_generation: int

    @property
    def location(self) -> CodeLocation:
        return (self.class_name, self.method_name, self.line)


class AllocationProfile:
    """The output of the profiling phase / input of the production phase."""

    def __init__(
        self,
        workload: str,
        alloc_directives: List[AllocDirective],
        call_directives: List[CallDirective],
        conflicts_detected: int = 0,
        metadata: Optional[Dict[str, object]] = None,
        sttree: Optional[STTree] = None,
    ) -> None:
        self.workload = workload
        self.alloc_directives = list(alloc_directives)
        self.call_directives = list(call_directives)
        self.conflicts_detected = conflicts_detected
        self.metadata: Dict[str, object] = dict(metadata or {})
        #: The canonical profile IR this profile was flattened from, kept
        #: so the serialized file carries the full lifetime model and
        #: re-analysis tooling never has to re-derive it.  ``None`` on
        #: hand-built or v1-loaded profiles.
        self.sttree = sttree

    @classmethod
    def from_sttree(
        cls,
        tree: STTree,
        workload: str = "unknown",
        push_up: bool = True,
        metadata: Optional[Dict[str, object]] = None,
    ) -> "AllocationProfile":
        """Flatten the canonical IR into the two directive lists.

        This is the single place the STTree's instrumentation plan turns
        into ``@Gen`` / ``setGeneration`` directives; every producer
        (streaming or batch analysis, the exact tracer) routes through it.
        """
        plan = tree.instrumentation_plan(push_up=push_up)
        alloc_directives = [
            AllocDirective(
                class_name=location[0],
                method_name=location[1],
                line=location[2],
                pre_set_gen=plan.alloc_brackets.get(location),
            )
            for location in sorted(plan.annotate_sites)
        ]
        call_directives = [
            CallDirective(
                class_name=location[0],
                method_name=location[1],
                line=location[2],
                target_generation=gen,
            )
            for location, gen in sorted(plan.call_directives.items())
        ]
        return cls(
            workload=workload,
            alloc_directives=alloc_directives,
            call_directives=call_directives,
            conflicts_detected=len(plan.conflicts),
            metadata=metadata,
            sttree=tree,
        )

    # -- derived metrics (Table 1) ---------------------------------------------------

    @property
    def instrumented_site_count(self) -> int:
        return len({d.location for d in self.alloc_directives})

    @property
    def generation_indexes(self) -> Set[int]:
        """Distinct non-young generation indexes the profile uses."""
        gens: Set[int] = {
            d.target_generation
            for d in self.call_directives
            if d.target_generation >= 1
        }
        gens.update(
            d.pre_set_gen
            for d in self.alloc_directives
            if d.pre_set_gen is not None and d.pre_set_gen >= 1
        )
        return gens

    @property
    def generations_used(self) -> int:
        """Total generations including young (the paper's Table 1 count)."""
        return len(self.generation_indexes) + 1

    # -- serialization ------------------------------------------------------------------

    def to_json(self) -> str:
        ir = None
        if self.sttree is not None:
            ir = self.sttree.to_payload()
            ir["content_hash"] = self.sttree.digest()
        payload = {
            "format": PROFILE_FORMAT,
            "schema_version": PROFILE_SCHEMA_VERSION,
            "ir": ir,
            "workload": self.workload,
            "conflicts_detected": self.conflicts_detected,
            "alloc_directives": [
                {
                    "class": d.class_name,
                    "method": d.method_name,
                    "line": d.line,
                    "pre_set_gen": d.pre_set_gen,
                }
                for d in self.alloc_directives
            ],
            "call_directives": [
                {
                    "class": d.class_name,
                    "method": d.method_name,
                    "line": d.line,
                    "target_generation": d.target_generation,
                }
                for d in self.call_directives
            ],
            "metadata": self.metadata,
        }
        return json.dumps(payload, indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "AllocationProfile":
        try:
            payload = json.loads(text)
        except ValueError as exc:
            raise ProfileFormatError(f"invalid profile JSON: {exc}") from exc
        if payload.get("format") not in (PROFILE_FORMAT, _PROFILE_FORMAT_V1):
            raise ProfileFormatError(
                f"unsupported profile format: {payload.get('format')!r}"
            )
        version = payload.get("schema_version", 1)
        if not isinstance(version, int) or version < 1:
            raise ProfileFormatError(
                f"invalid profile schema_version {version!r}"
            )
        if version > PROFILE_SCHEMA_VERSION:
            raise ProfileFormatError(
                f"profile schema v{version} is newer than the supported "
                f"v{PROFILE_SCHEMA_VERSION}; upgrade repro to read it"
            )
        sttree = None
        if payload.get("ir") is not None:
            sttree = STTree.from_payload(payload["ir"])
            stored_hash = payload["ir"].get("content_hash")
            if stored_hash is not None and stored_hash != sttree.digest():
                raise ProfileFormatError(
                    "embedded STTree content hash mismatch: profile is "
                    "corrupt, truncated, or was edited by hand"
                )
        try:
            alloc = [
                AllocDirective(
                    class_name=d["class"],
                    method_name=d["method"],
                    line=int(d["line"]),
                    pre_set_gen=d.get("pre_set_gen"),
                )
                for d in payload["alloc_directives"]
            ]
            calls = [
                CallDirective(
                    class_name=d["class"],
                    method_name=d["method"],
                    line=int(d["line"]),
                    target_generation=int(d["target_generation"]),
                )
                for d in payload["call_directives"]
            ]
        except (KeyError, TypeError, ValueError) as exc:
            raise ProfileFormatError(f"malformed directive: {exc}") from exc
        return cls(
            workload=payload.get("workload", "unknown"),
            alloc_directives=alloc,
            call_directives=calls,
            conflicts_detected=int(payload.get("conflicts_detected", 0)),
            metadata=payload.get("metadata") or {},
            sttree=sttree,
        )

    def save(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_json())

    @classmethod
    def load(cls, path: str) -> "AllocationProfile":
        try:
            with open(path) as handle:
                text = handle.read()
        except OSError as exc:
            raise ProfileFormatError(
                f"cannot read profile {path!r}: {exc}"
            ) from exc
        try:
            return cls.from_json(text)
        except ProfileFormatError as exc:
            raise ProfileFormatError(f"{path}: {exc}") from exc

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AllocationProfile({self.workload!r}, "
            f"sites={self.instrumented_site_count}, "
            f"gens={self.generations_used}, conflicts={self.conflicts_detected})"
        )
