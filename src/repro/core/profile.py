"""Allocation profiles: the artifact connecting the two POLM2 phases.

The profiling phase emits "a file containing all the code locations that
will be instrumented and how (annotate allocation site or set current
generation)" (§3.5).  :class:`AllocationProfile` is that file: a list of
``@Gen`` annotations and ``setGeneration`` directives, serializable to
JSON so one profile per expected workload can be kept and selected at
production launch.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Dict, List, Optional, Set

from repro.errors import ProfileFormatError
from repro.runtime.code import CodeLocation


@dataclasses.dataclass(frozen=True)
class AllocDirective:
    """Annotate one allocation site ``@Gen``.

    ``pre_set_gen`` additionally brackets the single allocation with
    ``setGeneration(pre_set_gen)`` / restore, for sites whose generation
    could not be hoisted to an enclosing call site.
    """

    class_name: str
    method_name: str
    line: int
    pre_set_gen: Optional[int] = None

    @property
    def location(self) -> CodeLocation:
        return (self.class_name, self.method_name, self.line)


@dataclasses.dataclass(frozen=True)
class CallDirective:
    """Bracket one call site with ``setGeneration(target_generation)``."""

    class_name: str
    method_name: str
    line: int
    target_generation: int

    @property
    def location(self) -> CodeLocation:
        return (self.class_name, self.method_name, self.line)


class AllocationProfile:
    """The output of the profiling phase / input of the production phase."""

    def __init__(
        self,
        workload: str,
        alloc_directives: List[AllocDirective],
        call_directives: List[CallDirective],
        conflicts_detected: int = 0,
        metadata: Optional[Dict[str, object]] = None,
    ) -> None:
        self.workload = workload
        self.alloc_directives = list(alloc_directives)
        self.call_directives = list(call_directives)
        self.conflicts_detected = conflicts_detected
        self.metadata: Dict[str, object] = dict(metadata or {})

    # -- derived metrics (Table 1) ---------------------------------------------------

    @property
    def instrumented_site_count(self) -> int:
        return len({d.location for d in self.alloc_directives})

    @property
    def generation_indexes(self) -> Set[int]:
        """Distinct non-young generation indexes the profile uses."""
        gens: Set[int] = {
            d.target_generation
            for d in self.call_directives
            if d.target_generation >= 1
        }
        gens.update(
            d.pre_set_gen
            for d in self.alloc_directives
            if d.pre_set_gen is not None and d.pre_set_gen >= 1
        )
        return gens

    @property
    def generations_used(self) -> int:
        """Total generations including young (the paper's Table 1 count)."""
        return len(self.generation_indexes) + 1

    # -- serialization ------------------------------------------------------------------

    def to_json(self) -> str:
        payload = {
            "format": "polm2-profile-v1",
            "workload": self.workload,
            "conflicts_detected": self.conflicts_detected,
            "alloc_directives": [
                {
                    "class": d.class_name,
                    "method": d.method_name,
                    "line": d.line,
                    "pre_set_gen": d.pre_set_gen,
                }
                for d in self.alloc_directives
            ],
            "call_directives": [
                {
                    "class": d.class_name,
                    "method": d.method_name,
                    "line": d.line,
                    "target_generation": d.target_generation,
                }
                for d in self.call_directives
            ],
            "metadata": self.metadata,
        }
        return json.dumps(payload, indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "AllocationProfile":
        try:
            payload = json.loads(text)
        except ValueError as exc:
            raise ProfileFormatError(f"invalid profile JSON: {exc}") from exc
        if payload.get("format") != "polm2-profile-v1":
            raise ProfileFormatError(
                f"unsupported profile format: {payload.get('format')!r}"
            )
        try:
            alloc = [
                AllocDirective(
                    class_name=d["class"],
                    method_name=d["method"],
                    line=int(d["line"]),
                    pre_set_gen=d.get("pre_set_gen"),
                )
                for d in payload["alloc_directives"]
            ]
            calls = [
                CallDirective(
                    class_name=d["class"],
                    method_name=d["method"],
                    line=int(d["line"]),
                    target_generation=int(d["target_generation"]),
                )
                for d in payload["call_directives"]
            ]
        except (KeyError, TypeError, ValueError) as exc:
            raise ProfileFormatError(f"malformed directive: {exc}") from exc
        return cls(
            workload=payload.get("workload", "unknown"),
            alloc_directives=alloc,
            call_directives=calls,
            conflicts_detected=int(payload.get("conflicts_detected", 0)),
            metadata=payload.get("metadata") or {},
        )

    def save(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_json())

    @classmethod
    def load(cls, path: str) -> "AllocationProfile":
        try:
            with open(path) as handle:
                text = handle.read()
        except OSError as exc:
            raise ProfileFormatError(
                f"cannot read profile {path!r}: {exc}"
            ) from exc
        return cls.from_json(text)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AllocationProfile({self.workload!r}, "
            f"sites={self.instrumented_site_count}, "
            f"gens={self.generations_used}, conflicts={self.conflicts_detected})"
        )
