"""The stack-trace tree (STTree) of paper §3.3.

The Analyzer estimates a target generation per allocation *stack trace*,
but NG2C's ``@Gen`` annotation attaches to an allocation *site* (class,
method, line).  Two different call paths can end at the same site with
very different lifetimes — the paper's ``methodD`` example (Listing 1).
The STTree detects such *conflicts* and resolves them by pushing each
trace's target generation up to the nearest ancestor call site that
distinguishes the paths (Algorithm 1); it also implements §4.4's push-up
optimization, hoisting a uniform subtree's target generation to a single
ancestor ``setGeneration`` bracket so the generation is switched once per
subtree entry rather than once per allocation.

Outputs an instrumentation plan: ``@Gen`` annotations for allocation
sites, ``setGeneration`` directives for call sites, and per-allocation
brackets where no distinguishing call site exists.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import ConflictResolutionError, ProfileFormatError
from repro.runtime.code import CodeLocation

#: On-disk marker of the serialized STTree IR.
STTREE_FORMAT = "polm2-sttree"

#: Version of the canonical profile IR.  v1 is the implicit pre-IR form
#: (flat directive lists with no tree); the STTree serialization starts
#: at 2 so profile files and their embedded IR share one version number.
STTREE_SCHEMA_VERSION = 2


class STNode:
    """A node of the STTree.

    Carries the paper's 4-tuple: class name, method name, line number,
    and target generation (meaningful for leaves; intermediate nodes
    default to generation zero until a directive is placed).
    """

    __slots__ = (
        "location",
        "parent",
        "children",
        "is_leaf",
        "target_gen",
        "object_count",
    )

    def __init__(
        self,
        location: Optional[CodeLocation],
        parent: Optional["STNode"],
        is_leaf: bool = False,
    ) -> None:
        self.location = location
        self.parent = parent
        self.children: Dict[Tuple[CodeLocation, bool], STNode] = {}
        self.is_leaf = is_leaf
        self.target_gen = 0
        self.object_count = 0

    @property
    def is_root(self) -> bool:
        return self.location is None

    def child(self, location: CodeLocation, is_leaf: bool) -> Optional["STNode"]:
        return self.children.get((location, is_leaf))

    def ensure_child(self, location: CodeLocation, is_leaf: bool) -> "STNode":
        key = (location, is_leaf)
        node = self.children.get(key)
        if node is None:
            node = STNode(location, self, is_leaf)
            self.children[key] = node
        return node

    def path(self) -> List[CodeLocation]:
        """Locations from the outermost frame down to this node."""
        nodes: List[STNode] = []
        node: Optional[STNode] = self
        while node is not None and not node.is_root:
            nodes.append(node)
            node = node.parent
        return [n.location for n in reversed(nodes)]  # type: ignore[misc]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "leaf" if self.is_leaf else "call"
        return f"STNode({kind}, {self.location}, gen={self.target_gen})"


@dataclasses.dataclass(frozen=True)
class ConflictGroup:
    """Leaves sharing one allocation site but disagreeing on generation."""

    location: CodeLocation
    generations: FrozenSet[int]
    leaves: Tuple[STNode, ...]


@dataclasses.dataclass
class InstrumentationPlan:
    """What the Instrumenter must do, produced from the tree.

    Attributes:
        annotate_sites: allocation-site locations to mark ``@Gen``.
        call_directives: call-site location -> generation to set on entry.
        alloc_brackets: allocation-site location -> generation, for sites
            that need a per-allocation ``setGeneration`` bracket.
        conflicts: the conflict groups that were detected (Table 1 metric).
    """

    annotate_sites: Set[CodeLocation] = dataclasses.field(default_factory=set)
    call_directives: Dict[CodeLocation, int] = dataclasses.field(default_factory=dict)
    alloc_brackets: Dict[CodeLocation, int] = dataclasses.field(default_factory=dict)
    conflicts: List[ConflictGroup] = dataclasses.field(default_factory=list)

    @property
    def instrumented_site_count(self) -> int:
        return len(self.annotate_sites)

    @property
    def generations_used(self) -> Set[int]:
        gens: Set[int] = set(self.call_directives.values())
        gens.update(self.alloc_brackets.values())
        return gens


class STTree:
    """Builds the stack-trace tree and derives the instrumentation plan."""

    def __init__(self) -> None:
        self.root = STNode(location=None, parent=None)
        self._leaves: List[STNode] = []
        #: Dedup/join accounting of the most recent ``merge`` that
        #: produced this tree (zeros on trees built any other way).
        self.last_merge_stats: Dict[str, int] = {
            "subtrees_deduped": 0,
            "leaves_joined": 0,
            "gen_conflicts": 0,
        }

    # -- construction -------------------------------------------------------------

    def insert(
        self, trace: Sequence[CodeLocation], target_gen: int, object_count: int = 1
    ) -> STNode:
        """Insert one allocation stack trace (innermost frame last).

        The final frame becomes (or merges into) a leaf carrying the
        estimated target generation.
        """
        if not trace:
            raise ValueError("cannot insert an empty stack trace")
        if target_gen < 0:
            raise ValueError("target generation cannot be negative")
        node = self.root
        for location in trace[:-1]:
            node = node.ensure_child(location, is_leaf=False)
        existing = node.child(trace[-1], is_leaf=True)
        leaf = node.ensure_child(trace[-1], is_leaf=True)
        if existing is not None and existing.target_gen != target_gen:
            raise ConflictResolutionError(
                f"trace re-inserted with generation {target_gen} != "
                f"{existing.target_gen}: {trace}"
            )
        if existing is None:
            self._leaves.append(leaf)
        leaf.target_gen = target_gen
        leaf.object_count += object_count
        return leaf

    @classmethod
    def build(
        cls, estimates: Iterable[Tuple[Sequence[CodeLocation], int, int]]
    ) -> "STTree":
        """Build from ``(trace, target_gen, object_count)`` triples."""
        tree = cls()
        for trace, gen, count in estimates:
            tree.insert(trace, gen, count)
        return tree

    @property
    def leaves(self) -> List[STNode]:
        return list(self._leaves)

    # -- the canonical profile IR (versioned serialization) -------------------------
    #
    # The STTree is the one in-memory profile intermediate representation:
    # the Analyzer stages produce it, the Instrumenter and the profile
    # store consume it, and this payload is its canonical on-disk form.
    # Entries are (full stack path, target generation, object count)
    # triples sorted canonically, so two trees with the same leaves
    # serialize identically regardless of insertion order — which is what
    # makes ``digest()`` a content-hash id usable for byte-for-byte
    # parity checks.

    def to_payload(self) -> Dict:
        """The canonical, insertion-order-independent IR payload."""
        entries = [
            [
                [list(location) for location in leaf.path()],
                leaf.target_gen,
                leaf.object_count,
            ]
            for leaf in self._leaves
        ]
        entries.sort()
        return {
            "format": STTREE_FORMAT,
            "schema_version": STTREE_SCHEMA_VERSION,
            "entries": entries,
        }

    def digest(self) -> str:
        """Content-hash id of the serialized IR (sha256 hex)."""
        canonical = json.dumps(
            self.to_payload(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode()).hexdigest()

    def to_json(self) -> str:
        payload = self.to_payload()
        payload["content_hash"] = self.digest()
        return json.dumps(payload, indent=2, sort_keys=True)

    @classmethod
    def from_payload(cls, payload: Dict) -> "STTree":
        """Rebuild a tree from :meth:`to_payload` output.

        Raises :class:`~repro.errors.ProfileFormatError` on a foreign
        format marker, a schema version newer than this code supports,
        or malformed entries.
        """
        if not isinstance(payload, dict) or payload.get("format") != STTREE_FORMAT:
            raise ProfileFormatError(
                f"not a serialized STTree: format marker is "
                f"{payload.get('format')!r} (expected {STTREE_FORMAT!r})"
                if isinstance(payload, dict)
                else f"not a serialized STTree payload: {type(payload).__name__}"
            )
        version = payload.get("schema_version")
        if not isinstance(version, int) or version < 2:
            raise ProfileFormatError(
                f"invalid STTree schema_version {version!r} "
                f"(expected an int >= 2)"
            )
        if version > STTREE_SCHEMA_VERSION:
            raise ProfileFormatError(
                f"profile IR schema v{version} is newer than the supported "
                f"v{STTREE_SCHEMA_VERSION}; upgrade repro to read it"
            )
        tree = cls()
        try:
            for path, target_gen, object_count in payload["entries"]:
                trace = tuple(
                    (frame[0], frame[1], int(frame[2])) for frame in path
                )
                tree.insert(trace, int(target_gen), int(object_count))
        except (KeyError, TypeError, ValueError) as exc:
            raise ProfileFormatError(f"malformed STTree entry: {exc}") from exc
        return tree

    @classmethod
    def from_json(cls, text: str) -> "STTree":
        try:
            payload = json.loads(text)
        except ValueError as exc:
            raise ProfileFormatError(f"invalid STTree JSON: {exc}") from exc
        tree = cls.from_payload(payload)
        stored_hash = payload.get("content_hash")
        if stored_hash is not None and stored_hash != tree.digest():
            raise ProfileFormatError(
                "STTree content hash mismatch: file is corrupt or was "
                "edited by hand"
            )
        return tree

    # -- merging (the profile service's cross-cycle / cross-VM combine) --------------
    #
    # ``merge`` is a semilattice join over leaves keyed by their full
    # stack path.  Two trees observing the same path join their evidence
    # by taking the leaf that is maximal under the total order
    # ``(object_count, target_gen)`` — the existing survival-count rule:
    # the estimate backed by more observed objects wins, with the higher
    # generation as the deterministic tie-break.  Because the join is a
    # max under a total order it is associative, commutative, and
    # idempotent — merging a profile with itself is the identity, which
    # is what lets a crash-recovering daemon re-merge a cycle it already
    # committed without corrupting the served profile.
    #
    # Leaves present in only one input are copied through unchanged, and
    # structurally identical subtrees are detected by their content hash
    # (the same sha256 IR hashing ``digest()`` uses, applied per node) so
    # they are copied wholesale instead of walked leaf by leaf — the
    # common case when many VM instances of one workload report
    # near-identical trees.

    def merge(self, *others: "STTree") -> "STTree":
        """Combine this tree with ``others`` into a new tree.

        Returns a fresh :class:`STTree`; the inputs are not modified.
        ``last_merge_stats`` on the result records how much work the
        content-hash dedup saved.
        """
        stats = {"subtrees_deduped": 0, "leaves_joined": 0, "gen_conflicts": 0}
        result = STTree()
        self._copy_children(self.root, result, result.root)
        for other in others:
            # The hash memo is keyed by node identity, so it must not
            # outlive the trees it describes (a freed node's id can be
            # reused); scope it to the pair being merged.
            hash_memo: Dict[int, str] = {}
            target = STTree()
            self._merge_nodes(
                result.root, other.root, target, target.root, stats, hash_memo
            )
            result = target
        result.last_merge_stats = stats
        return result

    @classmethod
    def merge_all(cls, trees: Sequence["STTree"]) -> "STTree":
        """Join any number of trees (empty input: an empty tree)."""
        trees = list(trees)
        if not trees:
            return cls()
        return trees[0].merge(*trees[1:])

    @staticmethod
    def _subtree_hash(node: STNode, memo: Dict[int, str]) -> str:
        """Content hash of one subtree (same IR hashing as ``digest``)."""
        cached = memo.get(id(node))
        if cached is not None:
            return cached
        payload = [
            list(node.location) if node.location is not None else None,
            node.is_leaf,
            node.target_gen if node.is_leaf else 0,
            node.object_count if node.is_leaf else 0,
            sorted(
                STTree._subtree_hash(child, memo)
                for child in node.children.values()
            ),
        ]
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        digest = hashlib.sha256(canonical.encode()).hexdigest()
        memo[id(node)] = digest
        return digest

    def _copy_children(
        self, source: STNode, target_tree: "STTree", target: STNode
    ) -> None:
        """Deep-copy ``source``'s subtrees under ``target``."""
        for (location, is_leaf), child in source.children.items():
            copied = target.ensure_child(location, is_leaf)
            if is_leaf:
                copied.target_gen = child.target_gen
                copied.object_count = child.object_count
                target_tree._leaves.append(copied)
            else:
                self._copy_children(child, target_tree, copied)

    def _merge_nodes(
        self,
        a: STNode,
        b: STNode,
        target_tree: "STTree",
        target: STNode,
        stats: Dict[str, int],
        hash_memo: Dict[int, str],
    ) -> None:
        """Join the children of ``a`` and ``b`` under ``target``.

        Child keys are visited in sorted order: plan derivation walks
        children in insertion order, so a merged tree must be built in
        an order independent of Python's per-process hash seed.
        """
        for key in sorted(a.children.keys() | b.children.keys()):
            location, is_leaf = key
            in_a = a.children.get(key)
            in_b = b.children.get(key)
            if in_a is None or in_b is None:
                source = in_a if in_a is not None else in_b
                copied = target.ensure_child(location, is_leaf)
                if is_leaf:
                    copied.target_gen = source.target_gen
                    copied.object_count = source.object_count
                    target_tree._leaves.append(copied)
                else:
                    self._copy_children(source, target_tree, copied)
                continue
            if is_leaf:
                stats["leaves_joined"] += 1
                if in_a.target_gen != in_b.target_gen:
                    stats["gen_conflicts"] += 1
                winner = max(
                    (in_a, in_b),
                    key=lambda leaf: (leaf.object_count, leaf.target_gen),
                )
                joined = target.ensure_child(location, True)
                joined.target_gen = winner.target_gen
                joined.object_count = winner.object_count
                target_tree._leaves.append(joined)
                continue
            if self._subtree_hash(in_a, hash_memo) == self._subtree_hash(
                in_b, hash_memo
            ):
                # Identical subtrees: one wholesale copy, no join walk.
                stats["subtrees_deduped"] += 1
                copied = target.ensure_child(location, False)
                self._copy_children(in_a, target_tree, copied)
                continue
            self._merge_nodes(
                in_a, in_b, target_tree,
                target.ensure_child(location, False), stats, hash_memo,
            )

    # -- conflict detection (Algorithm 1, Detect Conflicts) -------------------------

    def detect_conflicts(self) -> List[ConflictGroup]:
        """Group leaves by allocation site; disagreeing groups conflict."""
        by_location: Dict[CodeLocation, List[STNode]] = {}
        for leaf in self._leaves:
            by_location.setdefault(leaf.location, []).append(leaf)  # type: ignore[arg-type]
        conflicts: List[ConflictGroup] = []
        for location, leaves in sorted(by_location.items()):
            gens = {leaf.target_gen for leaf in leaves}
            if len(gens) > 1:
                conflicts.append(
                    ConflictGroup(
                        location=location,
                        generations=frozenset(gens),
                        leaves=tuple(leaves),
                    )
                )
        return conflicts

    # -- conflict resolution (Algorithm 1, Solve Conflicts) ---------------------------

    def solve_conflict(
        self,
        group: ConflictGroup,
        taken: Dict[CodeLocation, int],
    ) -> Dict[STNode, STNode]:
        """Find, per conflicting leaf, the distinguishing ancestor node.

        Walks all leaves upward in lockstep; a leaf resolves as soon as its
        cursor's location differs from the cursors of every *still-pending
        leaf with a different target generation* and does not collide with
        an already-taken directive of a different generation.

        Returns a map leaf -> ancestor node where the ``setGeneration``
        directive must be placed.
        """
        cursors: Dict[STNode, STNode] = {leaf: leaf for leaf in group.leaves}
        pending: List[STNode] = list(group.leaves)
        resolution: Dict[STNode, STNode] = {}
        while pending:
            for leaf in pending:
                parent = cursors[leaf].parent
                if parent is None or parent.is_root:
                    raise ConflictResolutionError(
                        f"conflict at {group.location} cannot be resolved: "
                        f"allocation paths are identical up to the entry point"
                    )
                cursors[leaf] = parent
            still_pending: List[STNode] = []
            for leaf in pending:
                node = cursors[leaf]
                clashes = any(
                    other is not leaf
                    and other.target_gen != leaf.target_gen
                    and cursors[other].location == node.location
                    for other in pending
                )
                already = taken.get(node.location)  # type: ignore[arg-type]
                if not clashes and (already is None or already == leaf.target_gen):
                    resolution[leaf] = node
                else:
                    still_pending.append(leaf)
            pending = still_pending
        return resolution

    # -- full plan (conflict resolution + §4.4 push-up) ---------------------------------

    def instrumentation_plan(self, push_up: bool = True) -> InstrumentationPlan:
        """Derive the complete instrumentation plan.

        1. Detect conflicts and place their directives at distinguishing
           ancestors (Algorithm 1).
        2. For the remaining annotated leaves, hoist uniform subtrees'
           generations to a single ancestor directive (push-up, §4.4) — or,
           with ``push_up=False`` (the ablation), bracket every allocation
           individually.
        """
        plan = InstrumentationPlan()
        plan.conflicts = self.detect_conflicts()
        conflict_leaves: Set[int] = set()
        for group in plan.conflicts:
            resolution = self.solve_conflict(group, plan.call_directives)
            for leaf, node in resolution.items():
                conflict_leaves.add(id(leaf))
                if leaf.target_gen >= 1:
                    plan.annotate_sites.add(leaf.location)  # type: ignore[arg-type]
                if leaf.target_gen >= 0:
                    plan.call_directives[node.location] = leaf.target_gen  # type: ignore[index]

        # Annotate every remaining long-lived leaf.
        free_leaves = [
            leaf
            for leaf in self._leaves
            if id(leaf) not in conflict_leaves and leaf.target_gen >= 1
        ]
        for leaf in free_leaves:
            plan.annotate_sites.add(leaf.location)  # type: ignore[arg-type]

        if push_up:
            self._place_push_up(plan, conflict_leaves)
        else:
            for leaf in free_leaves:
                plan.alloc_brackets[leaf.location] = leaf.target_gen  # type: ignore[index]
        self._verify_and_repair(plan)
        return plan

    # -- plan verification ------------------------------------------------------------

    @staticmethod
    def _simulate(path: List[CodeLocation], plan: InstrumentationPlan) -> int:
        """Execute the instrumented semantics along one allocation path."""
        target = 0
        for location in path[:-1]:
            if location in plan.call_directives:
                target = plan.call_directives[location]
        leaf = path[-1]
        if leaf not in plan.annotate_sites:
            return 0
        if leaf in plan.alloc_brackets:
            return plan.alloc_brackets[leaf]
        return target

    def _violations(self, plan: InstrumentationPlan) -> List[STNode]:
        return [
            leaf
            for leaf in self._leaves
            if self._simulate(leaf.path(), plan) != leaf.target_gen
        ]

    def _verify_and_repair(self, plan: InstrumentationPlan) -> None:
        """Fix directive interference between unrelated paths.

        Directives are keyed by code location, and the same location can
        occur in several tree contexts: a ``setGeneration`` placed for
        one subtree then fires on every other path through that location
        — the multi-path problem of §3.3 one level above the leaves.
        Each surviving mismatch is repaired by overriding *later* on the
        affected path: a per-allocation bracket when the leaf's estimate
        is unambiguous, otherwise a directive at the deepest free call
        site past the interfering one.  Every tentative fix is validated
        by global re-simulation so a repair never breaks other paths.
        """
        gens_by_leaf_location: Dict[CodeLocation, Set[int]] = {}
        for leaf in self._leaves:
            gens_by_leaf_location.setdefault(leaf.location, set()).add(  # type: ignore[arg-type]
                leaf.target_gen
            )
        for _ in range(2 * len(self._leaves) + 1):
            violations = self._violations(plan)
            if not violations:
                return
            progressed = False
            for leaf in violations:
                path = leaf.path()
                if self._simulate(path, plan) == leaf.target_gen:
                    continue  # fixed as a side effect of an earlier repair
                if self._try_repair(leaf, path, plan, gens_by_leaf_location):
                    progressed = True
            if not progressed:
                break
        remaining = self._violations(plan)
        if remaining:
            raise ConflictResolutionError(
                f"cannot place directives satisfying every path; "
                f"{len(remaining)} allocation paths remain mis-tenured "
                f"(first: {remaining[0].path()})"
            )

    def _try_repair(
        self,
        leaf: STNode,
        path: List[CodeLocation],
        plan: InstrumentationPlan,
        gens_by_leaf_location: Dict[CodeLocation, Set[int]],
    ) -> bool:
        before = len(self._violations(plan))
        # Preferred fix: a per-allocation bracket (legal only when every
        # path into this site agrees on the generation).
        if len(gens_by_leaf_location[leaf.location]) == 1:  # type: ignore[index]
            plan.annotate_sites.add(leaf.location)  # type: ignore[arg-type]
            saved = plan.alloc_brackets.get(leaf.location)  # type: ignore[arg-type]
            plan.alloc_brackets[leaf.location] = leaf.target_gen  # type: ignore[index]
            if len(self._violations(plan)) < before:
                return True
            if saved is None:
                del plan.alloc_brackets[leaf.location]  # type: ignore[arg-type]
            else:  # pragma: no cover - defensive
                plan.alloc_brackets[leaf.location] = saved  # type: ignore[index]
        # Otherwise, override at the deepest call site not already taken.
        for location in reversed(path[:-1]):
            taken = plan.call_directives.get(location)
            if taken is not None and taken != leaf.target_gen:
                continue
            saved_directive = plan.call_directives.get(location)
            plan.call_directives[location] = leaf.target_gen
            if len(self._violations(plan)) < before:
                return True
            if saved_directive is None:
                del plan.call_directives[location]
            else:
                plan.call_directives[location] = saved_directive
        return False

    def _place_push_up(
        self, plan: InstrumentationPlan, conflict_leaves: Set[int]
    ) -> None:
        """Hoist uniform subtrees' target generations to ancestor calls."""
        gens_memo: Dict[int, Set[int]] = {}

        def gens_under(node: STNode) -> Set[int]:
            cached = gens_memo.get(id(node))
            if cached is not None:
                return cached
            if node.is_leaf:
                if id(node) in conflict_leaves or node.target_gen < 1:
                    result: Set[int] = set()
                else:
                    result = {node.target_gen}
            else:
                result = set()
                for child in node.children.values():
                    result |= gens_under(child)
            gens_memo[id(node)] = result
            return result

        def visit(node: STNode, inherited: int) -> None:
            gens = gens_under(node)
            if not gens:
                return
            if node.is_leaf:
                if node.target_gen != inherited:
                    plan.alloc_brackets[node.location] = node.target_gen  # type: ignore[index]
                return
            if len(gens) == 1:
                gen = next(iter(gens))
                taken = plan.call_directives.get(node.location)  # type: ignore[arg-type]
                if gen == inherited and taken is None:
                    return
                if taken is None:
                    plan.call_directives[node.location] = gen  # type: ignore[index]
                    return
                if taken == gen:
                    return
                # Location already carries a conflicting directive; push the
                # generation further down instead.
            for child in node.children.values():
                visit(child, inherited)

        for child in self.root.children.values():
            visit(child, 0)
