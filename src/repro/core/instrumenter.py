"""The Instrumenter: load-time application of an allocation profile (§3.4).

The production-phase agent.  Registered as a class transformer, it
rewrites each class as it loads:

* allocation sites named by the profile receive the ``@Gen`` annotation
  (and, where the profile says so, a per-allocation ``setGeneration``
  bracket);
* call sites named by the profile receive a ``setGeneration(gen)`` /
  restore bracket, switching the thread's target generation while
  execution is inside the corresponding subtree of the STTree.

At attach time the generations the profile needs are created through the
collector's ``new_generation`` (the paper: "generations ... are
automatically created at launch time").  The Instrumenter only needs the
small pretenuring API surface — paper §4.5 notes POLM2 is GC-independent;
any collector whose ``supports_pretenuring`` is true works.
"""

from __future__ import annotations

from typing import Optional, Union, TYPE_CHECKING

from repro.core.profile import AllocationProfile
from repro.core.sttree import STTree
from repro.errors import PretenuringUnsupportedError
from repro.runtime.code import ClassModel
from repro.runtime.events import VMAgent

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runtime.vm import VM


class Instrumenter(VMAgent):
    """Applies an :class:`AllocationProfile` at class-load time.

    Also accepts the canonical :class:`~repro.core.sttree.STTree` IR
    directly (flattened with the default push-up plan), so tooling that
    carries only the IR never rebuilds a profile by hand.
    """

    def __init__(self, profile: Union[AllocationProfile, STTree]) -> None:
        if isinstance(profile, STTree):
            profile = AllocationProfile.from_sttree(profile)
        self.profile = profile
        self._alloc_by_location = {d.location: d for d in profile.alloc_directives}
        self._call_by_location = {d.location: d for d in profile.call_directives}
        self.applied_alloc_sites = 0
        self.applied_call_sites = 0
        self.vm: Optional["VM"] = None

    # -- agent lifecycle ---------------------------------------------------------

    def on_attach(self, vm: "VM") -> None:
        """Validate the collector and pre-create the profile's generations.

        Raising here (no pretenuring API) happens before the VM registers
        anything, so a failed attach leaves the VM untouched.
        """
        collector = vm.collector
        if collector is None or not collector.supports_pretenuring:
            raise PretenuringUnsupportedError(
                "the Instrumenter requires a collector with a pretenuring "
                "API (NG2C); attach one before the Instrumenter"
            )
        self.vm = vm
        for index in sorted(self.profile.generation_indexes):
            collector.ensure_generation(index)

    def telemetry(self) -> dict:
        return {
            "instrumented_alloc_sites": self.applied_alloc_sites,
            "instrumented_call_sites": self.applied_call_sites,
        }

    def attach(self, vm: "VM") -> None:
        """Legacy seam: register through ``vm.attach_agent``."""
        vm.attach_agent(self)

    # -- ClassTransformer -----------------------------------------------------------

    def transform(self, class_model: ClassModel) -> ClassModel:
        for site in class_model.iter_alloc_sites():
            directive = self._alloc_by_location.get(site.location)
            if directive is not None:
                site.gen_annotated = True
                site.pre_set_gen = directive.pre_set_gen
                self.applied_alloc_sites += 1
        for call in class_model.iter_call_sites():
            directive = self._call_by_location.get(call.location)
            if directive is not None:
                call.target_generation = directive.target_generation
                self.applied_call_sites += 1
        return class_model
