"""Profile resolution for production-phase VMs: the ``--profile`` seam.

The paper's production phase reads the allocation profile from a file
the operator copied into place.  A fleet talking to the profile service
(``repro serve``) instead names *where the profile lives*:

* ``file:///path/to/profile.json`` (or a bare path) — a profile file;
* ``store:///path/to/store#cassandra-wi`` — a
  :class:`~repro.core.profilestore.ProfileStore` directory; the fragment
  selects the workload's ``latest`` pointer, or a specific object with
  ``#sha256:<hex>``;
* ``http://host:port/profiles/cassandra-wi/latest`` — the profile
  service's HTTP API (also ``/profiles/by-hash/<sha>``).

:func:`resolve_profile` turns any of these into an
:class:`~repro.core.profile.AllocationProfile`; the pipeline, the CLI,
and the experiment matrix all resolve through it, so a production VM is
pointed at a live service by changing one string.
"""

from __future__ import annotations

import urllib.error
import urllib.request
from typing import Union

from repro.core.profile import AllocationProfile
from repro.errors import ProfileError

#: Network timeout for ``http(s)://`` profile fetches, seconds.
HTTP_TIMEOUT_S = 30.0

_HASH_PREFIX = "sha256:"


class ProfileSource:
    """Something a production VM can resolve an allocation profile from."""

    def resolve(self) -> AllocationProfile:
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError


class FileProfileSource(ProfileSource):
    """A profile JSON file on disk (``file://`` or a bare path)."""

    def __init__(self, path: str) -> None:
        self.path = path

    def resolve(self) -> AllocationProfile:
        return AllocationProfile.load(self.path)

    def describe(self) -> str:
        return f"file://{self.path}"


class StoreProfileSource(ProfileSource):
    """A :class:`~repro.core.profilestore.ProfileStore` directory.

    ``selector`` is a workload name (resolved through the store's
    ``latest`` pointer, falling back to the legacy per-workload flat
    file) or ``sha256:<hex>`` naming one content-addressed object.
    """

    def __init__(self, directory: str, selector: str) -> None:
        if not selector:
            raise ProfileError(
                f"store profile URI for {directory!r} needs a "
                "'#<workload>' or '#sha256:<hex>' selector"
            )
        self.directory = directory
        self.selector = selector

    def resolve(self) -> AllocationProfile:
        from repro.core.profilestore import ProfileStore

        store = ProfileStore(self.directory)
        if self.selector.startswith(_HASH_PREFIX):
            return store.load_by_hash(self.selector[len(_HASH_PREFIX):])
        if store.latest_hash(self.selector) is not None:
            return store.load_latest(self.selector)
        return store.load(self.selector)

    def describe(self) -> str:
        return f"store://{self.directory}#{self.selector}"


class HttpProfileSource(ProfileSource):
    """A profile served over HTTP (the ``repro serve`` API)."""

    def __init__(self, url: str, timeout_s: float = HTTP_TIMEOUT_S) -> None:
        self.url = url
        self.timeout_s = timeout_s

    def resolve(self) -> AllocationProfile:
        try:
            with urllib.request.urlopen(
                self.url, timeout=self.timeout_s
            ) as response:
                text = response.read().decode("utf-8")
        except urllib.error.HTTPError as exc:
            raise ProfileError(
                f"profile service returned {exc.code} for {self.url}: "
                f"{exc.reason}"
            ) from exc
        except (urllib.error.URLError, OSError, TimeoutError) as exc:
            raise ProfileError(
                f"cannot fetch profile from {self.url}: {exc}"
            ) from exc
        return AllocationProfile.from_json(text)

    def describe(self) -> str:
        return self.url


def profile_source(uri: str) -> ProfileSource:
    """Parse a profile URI (or bare path) into a :class:`ProfileSource`."""
    if uri.startswith(("http://", "https://")):
        return HttpProfileSource(uri)
    if uri.startswith("store://"):
        rest = uri[len("store://"):]
        directory, _, selector = rest.partition("#")
        return StoreProfileSource(directory, selector)
    if uri.startswith("file://"):
        return FileProfileSource(uri[len("file://"):])
    return FileProfileSource(uri)


def resolve_profile(
    source: Union[str, ProfileSource, AllocationProfile],
) -> AllocationProfile:
    """Resolve whatever names a profile into the profile itself.

    Accepts an already-loaded :class:`AllocationProfile` (returned
    as-is), a :class:`ProfileSource`, or a URI/path string.
    """
    if isinstance(source, AllocationProfile):
        return source
    if isinstance(source, ProfileSource):
        return source.resolve()
    return profile_source(source).resolve()
