"""Streaming profile pipeline: incremental analysis stages.

The batch Analyzer (paper §3.3) holds the whole snapshot sequence and
matches every recorded id against it after the run ends — peak memory
O(ids × snapshots).  This module restructures that dataflow as a pipeline
of composable stages fed one event at a time, the shape ROLP-style
runtime profilers use:

* :class:`ProfileStage` — the stage protocol: ``on_snapshot`` per
  snapshot-point, ``on_trace_flush`` when the Recorder's streams land,
  ``finish`` to produce the stage's artifact;
* :class:`IncrementalAnalyzer` — the bucket algorithm as a stage: each
  snapshot is credited into per-birth-index cohorts on arrival and then
  dropped, so peak memory is O(live ids), not O(ids × snapshots); its
  artifact is the canonical :class:`~repro.core.sttree.STTree` IR,
  byte-identical to the batch Analyzer's (same shared estimation path);
* :class:`ProfileBuilder` — the profiling entry point: owns the stage
  list, accepts events from a source, and flattens the finished IR into
  an :class:`~repro.core.profile.AllocationProfile`;
* two sources driving the same stages: :class:`RecordingDirSource`
  replays an on-disk recording directory (the offline workflow) and
  :class:`LiveVMSource` is a VMAgent subscribing to snapshot-point
  events inside the profiled VM (the streaming workflow).
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterator, List, Optional, Protocol, Sequence, TYPE_CHECKING

from repro.core.analyzer import (
    build_trace_tree,
    credit_counts,
    estimate_trace_generations,
    lifetime_distributions,
)
from repro.core.idset import IdSet
from repro.core.profile import AllocationProfile
from repro.core.recorder import AllocationRecords
from repro.core.sttree import STTree
from repro.errors import ProfileError, ProfileFormatError
from repro.runtime.events import SnapshotPointEvent, VMAgent
from repro.snapshot.snapshot import Snapshot, SnapshotStore

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.dumper import Dumper
    from repro.core.recorder import Recorder

#: Files of a recording directory.  Kept here, next to the code that
#: replays them; ``repro.core.offline`` re-exports both for callers of
#: the historical names.  New recordings default to the binary columnar
#: ``snapshots.bin``; ``snapshots.jsonl`` stays readable as the legacy
#: format.
SNAPSHOTS_BIN_FILE = "snapshots.bin"
SNAPSHOTS_FILE = "snapshots.jsonl"
META_FILE = "meta.json"

#: Version of the recording-directory layout (``meta.json`` +
#: ``traces.json`` + ``streams.bin`` + ``snapshots.jsonl``).  Readers
#: accept this version and older; newer versions fail with a one-line
#: error instead of misparsing.
RECORDING_SCHEMA_VERSION = 1


class ProfileStage(Protocol):
    """One stage of the streaming profile pipeline.

    Stages receive each snapshot exactly once, in time order, at the
    snapshot-point event; the Recorder's allocation records when they are
    flushed (end of run for the live source, load time for the recording
    source); and produce their artifact in :meth:`finish`.
    """

    def on_snapshot(self, snapshot: Snapshot) -> None: ...

    def on_trace_flush(self, records: AllocationRecords) -> None: ...

    def finish(self) -> object: ...


class IncrementalAnalyzer:
    """The bucket algorithm as a bounded-memory streaming stage.

    Survival counting is the batch Analyzer's delta-chain cohort algebra
    applied per arriving snapshot: ids are grouped into per-birth-index
    cohorts, deaths peel off each cohort and credit the interval length.
    A snapshot that does not chain onto the previously seen one (a full
    image, or a delta from elsewhere) is synthesized into a born/dead
    pair against the union of the live cohorts — crediting interval
    lengths over those synthesized deltas sums to exactly the number of
    snapshots each id appears live in, i.e. the batch intersection
    count, so the resulting STTree is byte-identical either way.

    Memory: the stage keeps the survival counts, the live cohorts (id
    ints, no snapshot references), and the latest snapshot (for the
    chain identity check) — never more than two snapshots' id sets at
    once, and O(live ids) overall.
    """

    def __init__(self, max_generations: int = 16, min_samples: int = 8) -> None:
        if max_generations < 2:
            raise ProfileError("max_generations must be >= 2")
        self.max_generations = max_generations
        self.min_samples = min_samples
        self.records: Optional[AllocationRecords] = None
        self.snapshots_seen = 0
        self._counts: Dict[int, int] = {}
        #: birth index -> ids born there and still alive.
        self._cohorts: Dict[int, IdSet] = {}
        self._previous: Optional[Snapshot] = None
        self._tree: Optional[STTree] = None

    # -- ProfileStage ----------------------------------------------------------------

    def on_snapshot(self, snapshot: Snapshot) -> None:
        if self._tree is not None:
            raise ProfileError("IncrementalAnalyzer is already finished")
        index = self.snapshots_seen
        chained = snapshot.is_delta and snapshot.predecessor is self._previous
        if chained:
            born, dead = snapshot.born_ids, snapshot.dead_ids
        else:
            # Full image or out-of-chain delta: synthesize the delta
            # against what the cohorts say is currently live.
            live = snapshot.live_object_ids
            current = IdSet.union_all(self._cohorts.values())
            born = live - current
            dead = current - live
        if dead:
            for birth in list(self._cohorts):
                cohort = self._cohorts[birth]
                died = cohort & dead
                if died:
                    remaining = cohort - died
                    if remaining:
                        self._cohorts[birth] = remaining
                    else:
                        del self._cohorts[birth]
                    credit_counts(self._counts, died, index - birth)
        if born:
            self._cohorts[index] = born
        self._previous = snapshot
        self.snapshots_seen += 1

    def on_trace_flush(self, records: AllocationRecords) -> None:
        if self.records is not None and self.records is not records:
            raise ProfileError(
                "IncrementalAnalyzer is already bound to different "
                "allocation records"
            )
        self.records = records

    def finish(self) -> STTree:
        """Close the open cohorts and fold counts into the STTree IR."""
        if self._tree is not None:
            return self._tree
        if self.records is None:
            raise ProfileError(
                "no allocation records flushed into the stage; feed "
                "on_trace_flush() before finish()"
            )
        total = self.snapshots_seen
        cutoff = None
        for birth, cohort in self._cohorts.items():
            cohort_max = cohort.max()
            if cutoff is None or cohort_max > cutoff:
                cutoff = cohort_max
            credit_counts(self._counts, cohort, total - birth)
        self._cohorts.clear()
        self._previous = None
        distributions = lifetime_distributions(self.records, self._counts, cutoff)
        estimates = estimate_trace_generations(
            distributions, self.max_generations, self.min_samples
        )
        self._tree = build_trace_tree(self.records, estimates)
        return self._tree


class ProfileBuilder:
    """The profiling entry point: stages fed by a source, profile out.

    Both deployment shapes run through here — ``run(RecordingDirSource)``
    for batch-from-disk, or a :class:`LiveVMSource` pushing events during
    the profiling run — so there is exactly one analysis code path.
    """

    def __init__(
        self,
        max_generations: int = 16,
        min_samples: int = 8,
        push_up: bool = True,
        extra_stages: Optional[Sequence[ProfileStage]] = None,
    ) -> None:
        self.push_up = push_up
        self.analyzer = IncrementalAnalyzer(
            max_generations=max_generations, min_samples=min_samples
        )
        self.stages: List[ProfileStage] = [self.analyzer]
        if extra_stages:
            self.stages.extend(extra_stages)

    # -- event intake ----------------------------------------------------------------

    def feed_snapshot(self, snapshot: Snapshot) -> None:
        for stage in self.stages:
            stage.on_snapshot(snapshot)

    def feed_trace_flush(self, records: AllocationRecords) -> None:
        for stage in self.stages:
            stage.on_trace_flush(records)

    def run(self, source: "RecordingDirSource") -> "ProfileBuilder":
        """Pull every event out of a replayable source."""
        source.replay(self)
        return self

    # -- output ----------------------------------------------------------------------

    def build(
        self,
        workload: str = "unknown",
        metadata: Optional[Dict[str, object]] = None,
    ) -> AllocationProfile:
        """Finish the analysis stage and flatten its IR into a profile."""
        tree = self.analyzer.finish()
        records = self.analyzer.records
        assert records is not None  # finish() above guarantees it
        meta: Dict[str, object] = {
            "snapshots_analyzed": self.analyzer.snapshots_seen,
            "traces_analyzed": records.trace_count,
            "allocations_recorded": records.total_allocations,
            "push_up": self.push_up,
        }
        if metadata:
            meta.update(metadata)
        return AllocationProfile.from_sttree(
            tree, workload=workload, push_up=self.push_up, metadata=meta
        )

    @classmethod
    def from_recording(
        cls,
        recording_dir: str,
        push_up: bool = True,
        max_generations: Optional[int] = None,
    ) -> "ProfileBuilder":
        """One-call offline workflow: replay a recording directory."""
        source = RecordingDirSource(recording_dir)
        builder = cls(
            max_generations=max_generations or source.max_generations,
            push_up=push_up,
        )
        return builder.run(source)


class RecordingDirSource:
    """Replays an on-disk recording directory through a ProfileBuilder.

    Validates ``meta.json`` up front (missing, corrupt, or
    newer-than-supported recordings fail with a
    :class:`~repro.errors.ProfileFormatError` naming the offending path
    and the expected schema version) and streams ``snapshots.bin``
    (falling back to legacy ``snapshots.jsonl``) one snapshot at a
    time, so replay memory matches the live source's.
    """

    def __init__(self, recording_dir: str) -> None:
        self.recording_dir = recording_dir
        meta_path = os.path.join(recording_dir, META_FILE)
        try:
            with open(meta_path) as handle:
                meta = json.load(handle)
        except (OSError, ValueError) as exc:
            raise ProfileFormatError(
                f"{meta_path}: not a readable recording meta (expected "
                f"recording schema v{RECORDING_SCHEMA_VERSION}): {exc}"
            ) from exc
        if not isinstance(meta, dict):
            raise ProfileFormatError(
                f"{meta_path}: recording meta must be a JSON object "
                f"(expected recording schema v{RECORDING_SCHEMA_VERSION})"
            )
        version = meta.get("schema_version", 1)
        if not isinstance(version, int) or version < 1:
            raise ProfileFormatError(
                f"{meta_path}: invalid recording schema_version {version!r} "
                f"(expected an int <= {RECORDING_SCHEMA_VERSION})"
            )
        if version > RECORDING_SCHEMA_VERSION:
            raise ProfileFormatError(
                f"{meta_path}: recording schema v{version} is newer than "
                f"the supported v{RECORDING_SCHEMA_VERSION}; upgrade repro "
                "to read it"
            )
        self.meta = meta

    @property
    def workload(self) -> str:
        return str(self.meta.get("workload", "unknown"))

    @property
    def max_generations(self) -> int:
        return int(self.meta.get("max_generations", 16))

    def iter_snapshots(self) -> Iterator[Snapshot]:
        # New recordings write the binary columnar store; fall back to
        # the legacy JSON-lines file when it is absent.
        path = os.path.join(self.recording_dir, SNAPSHOTS_BIN_FILE)
        if not os.path.exists(path):
            path = os.path.join(self.recording_dir, SNAPSHOTS_FILE)
        try:
            yield from SnapshotStore.iter_file(path)
        except OSError as exc:
            raise ProfileFormatError(
                f"{path}: cannot read recording snapshots (recording "
                f"schema v{RECORDING_SCHEMA_VERSION}): {exc}"
            ) from exc
        except ValueError as exc:
            raise ProfileFormatError(
                f"{path}: corrupt snapshot line (recording schema "
                f"v{RECORDING_SCHEMA_VERSION}): {exc}"
            ) from exc

    def load_records(self) -> AllocationRecords:
        return AllocationRecords.load_from_dir(self.recording_dir)

    def replay(self, builder: ProfileBuilder) -> None:
        for snapshot in self.iter_snapshots():
            builder.feed_snapshot(snapshot)
        builder.feed_trace_flush(self.load_records())


class LiveVMSource(VMAgent):
    """Streams a live VM's snapshot points into a ProfileBuilder.

    Attach AFTER the Dumper: snapshot-point listeners run in attachment
    order, so the Dumper's snapshot is already in its store when this
    agent forwards it.  Call :meth:`flush` once the run ends to hand the
    Recorder's completed streams to the stages.
    """

    def __init__(
        self,
        builder: ProfileBuilder,
        recorder: "Recorder",
        dumper: "Dumper",
    ) -> None:
        self.builder = builder
        self.recorder = recorder
        self.dumper = dumper
        self._forwarded = 0

    def on_snapshot_point(self, event: SnapshotPointEvent) -> None:
        store = self.dumper.store
        if len(store) == self._forwarded:
            raise ProfileError(
                "LiveVMSource saw a snapshot point before the Dumper's "
                "snapshot landed; attach the Dumper first"
            )
        self.builder.feed_snapshot(store[-1])
        self._forwarded = len(store)

    def flush(self) -> None:
        """End of run: flush the Recorder's streams into the stages."""
        self.builder.feed_trace_flush(self.recorder.records)

    def telemetry(self) -> Dict[str, int]:
        return {"snapshots_streamed": self._forwarded}
