"""Profile store: one allocation profile per expected workload (§3.5).

The paper: "it is possible to create multiple allocation profiles for the
same application, one for each possible workload.  Then, whenever the
application is launched in the production phase, one allocation profile
can be chosen according to the estimated workload (for example, depending
on the client for which the application is running)."

:class:`ProfileStore` is that mechanism: a directory of profile JSON
files keyed by workload name, with selection at production launch.

The profile *service* (``repro serve``) extends it into a
content-addressed registry: every committed profile also lands under
``objects/<content-hash>.profile.json`` and a per-workload pointer file
``latest/<workload>`` names the hash currently being served.  Pointer
updates are atomic (unique temp name + ``os.replace``), so concurrent
readers — the HTTP API, a resuming daemon — never observe a torn write.
"""

from __future__ import annotations

import hashlib
import os
import uuid
from typing import Dict, List, Optional

from repro.core.profile import AllocationProfile
from repro.core.sttree import STTree
from repro.errors import ProfileError, ProfileFormatError

_SUFFIX = ".profile.json"
_OBJECTS_DIR = "objects"
_LATEST_DIR = "latest"


def profile_content_hash(profile: AllocationProfile) -> str:
    """The content-address of a profile.

    IR-bearing profiles are addressed by their STTree digest — two
    profiles flattened from the same lifetime model share an address
    regardless of metadata.  Profiles without an IR (hand-built, v1
    files) fall back to hashing their canonical JSON.
    """
    if profile.sttree is not None:
        return profile.sttree.digest()
    return hashlib.sha256(profile.to_json().encode()).hexdigest()


class ProfileStore:
    """A directory-backed registry of allocation profiles."""

    def __init__(self, directory: str) -> None:
        self.directory = directory
        os.makedirs(directory, exist_ok=True)

    def _path(self, workload: str) -> str:
        safe = workload.replace(os.sep, "_")
        return os.path.join(self.directory, safe + _SUFFIX)

    def _atomic_write(self, path: str, text: str) -> None:
        tmp = f"{path}.{os.getpid()}.{uuid.uuid4().hex[:8]}.tmp"
        with open(tmp, "w") as handle:
            handle.write(text)
        os.replace(tmp, path)

    # -- writing ------------------------------------------------------------------

    def save(self, profile: AllocationProfile) -> str:
        """Store a profile under its workload name; returns the path."""
        path = self._path(profile.workload)
        profile.save(path)
        return path

    # -- the content-addressed registry (the profile service's backing) -----------

    def _object_path(self, content_hash: str) -> str:
        return os.path.join(
            self.directory, _OBJECTS_DIR, content_hash + _SUFFIX
        )

    def _latest_path(self, workload: str) -> str:
        safe = workload.replace(os.sep, "_")
        return os.path.join(self.directory, _LATEST_DIR, safe)

    def put(self, profile: AllocationProfile, set_latest: bool = True) -> str:
        """Commit a profile by content address; returns its hash.

        Identical content is written once (the object file is immutable
        once present).  ``set_latest`` also repoints the workload's
        ``latest`` pointer at the new hash.
        """
        content_hash = profile_content_hash(profile)
        path = self._object_path(content_hash)
        if not os.path.exists(path):
            os.makedirs(os.path.dirname(path), exist_ok=True)
            self._atomic_write(path, profile.to_json())
        if set_latest:
            self.set_latest(profile.workload, content_hash)
        return content_hash

    def set_latest(self, workload: str, content_hash: str) -> None:
        """Atomically repoint ``latest/<workload>`` at ``content_hash``."""
        if not os.path.exists(self._object_path(content_hash)):
            raise ProfileError(
                f"cannot set latest {workload!r} pointer: no stored "
                f"profile object {content_hash}"
            )
        path = self._latest_path(workload)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        self._atomic_write(path, content_hash + "\n")

    def latest_hash(self, workload: str) -> Optional[str]:
        """The content hash ``latest/<workload>`` points at, or None."""
        try:
            with open(self._latest_path(workload)) as handle:
                content_hash = handle.read().strip()
        except OSError:
            return None
        return content_hash or None

    def load_by_hash(self, content_hash: str) -> AllocationProfile:
        """Load a stored object, verifying it hashes to its address."""
        path = self._object_path(content_hash)
        if not os.path.exists(path):
            raise ProfileError(
                f"no stored profile object {content_hash} in "
                f"{self.directory}"
            )
        profile = AllocationProfile.load(path)
        actual = profile_content_hash(profile)
        if actual != content_hash:
            raise ProfileFormatError(
                f"{path}: stored profile hashes to {actual}, not its "
                f"address {content_hash}; the object file is corrupt"
            )
        return profile

    def load_latest(self, workload: str) -> AllocationProfile:
        """The profile the workload's ``latest`` pointer names."""
        content_hash = self.latest_hash(workload)
        if content_hash is None:
            raise ProfileError(
                f"no latest profile for workload {workload!r} in "
                f"{self.directory} (published: {self.latest_workloads()})"
            )
        return self.load_by_hash(content_hash)

    def latest_workloads(self) -> List[str]:
        """Workloads with a ``latest`` pointer."""
        try:
            names = os.listdir(os.path.join(self.directory, _LATEST_DIR))
        except OSError:
            return []
        return sorted(name for name in names if not name.endswith(".tmp"))

    def object_hashes(self) -> List[str]:
        """Every content hash with a stored object."""
        try:
            names = os.listdir(os.path.join(self.directory, _OBJECTS_DIR))
        except OSError:
            return []
        return sorted(
            name[: -len(_SUFFIX)]
            for name in names
            if name.endswith(_SUFFIX)
        )

    # -- selection -----------------------------------------------------------------

    def list_workloads(self) -> List[str]:
        names = []
        for entry in sorted(os.listdir(self.directory)):
            if entry.endswith(_SUFFIX):
                names.append(entry[: -len(_SUFFIX)])
        return names

    def has_profile(self, workload: str) -> bool:
        return os.path.exists(self._path(workload))

    def load(self, workload: str) -> AllocationProfile:
        path = self._path(workload)
        if not os.path.exists(path):
            raise ProfileError(
                f"no profile for workload {workload!r} in {self.directory} "
                f"(available: {self.list_workloads()})"
            )
        return AllocationProfile.load(path)

    def load_tree(self, workload: str) -> STTree:
        """The stored profile's canonical IR (the serialized STTree).

        Profiles written before the IR-bearing v2 format carry only the
        flattened directives; asking for their tree is an error rather
        than a silent re-derivation.
        """
        profile = self.load(workload)
        if profile.sttree is None:
            raise ProfileError(
                f"profile for {workload!r} predates the IR-bearing v2 "
                "format and has no STTree; re-run profiling to regenerate"
            )
        return profile.sttree

    def select(
        self, expected_workload: str, fallback: Optional[str] = None
    ) -> AllocationProfile:
        """Choose the profile for the expected workload at launch time.

        Falls back to a same-application profile when the exact mix is
        absent — e.g. ``cassandra-wr`` can borrow ``cassandra-wi``'s
        profile, which still beats running unprofiled.
        """
        if self.has_profile(expected_workload):
            return self.load(expected_workload)
        prefix = expected_workload.split("-")[0]
        for name in self.list_workloads():
            if name.split("-")[0] == prefix:
                return self.load(name)
        if fallback is not None and self.has_profile(fallback):
            return self.load(fallback)
        raise ProfileError(
            f"no profile usable for {expected_workload!r} "
            f"(available: {self.list_workloads()})"
        )

    def load_all(self) -> Dict[str, AllocationProfile]:
        return {name: self.load(name) for name in self.list_workloads()}
