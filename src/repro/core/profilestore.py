"""Profile store: one allocation profile per expected workload (§3.5).

The paper: "it is possible to create multiple allocation profiles for the
same application, one for each possible workload.  Then, whenever the
application is launched in the production phase, one allocation profile
can be chosen according to the estimated workload (for example, depending
on the client for which the application is running)."

:class:`ProfileStore` is that mechanism: a directory of profile JSON
files keyed by workload name, with selection at production launch.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional

from repro.core.profile import AllocationProfile
from repro.core.sttree import STTree
from repro.errors import ProfileError

_SUFFIX = ".profile.json"


class ProfileStore:
    """A directory-backed registry of allocation profiles."""

    def __init__(self, directory: str) -> None:
        self.directory = directory
        os.makedirs(directory, exist_ok=True)

    def _path(self, workload: str) -> str:
        safe = workload.replace(os.sep, "_")
        return os.path.join(self.directory, safe + _SUFFIX)

    # -- writing ------------------------------------------------------------------

    def save(self, profile: AllocationProfile) -> str:
        """Store a profile under its workload name; returns the path."""
        path = self._path(profile.workload)
        profile.save(path)
        return path

    # -- selection -----------------------------------------------------------------

    def list_workloads(self) -> List[str]:
        names = []
        for entry in sorted(os.listdir(self.directory)):
            if entry.endswith(_SUFFIX):
                names.append(entry[: -len(_SUFFIX)])
        return names

    def has_profile(self, workload: str) -> bool:
        return os.path.exists(self._path(workload))

    def load(self, workload: str) -> AllocationProfile:
        path = self._path(workload)
        if not os.path.exists(path):
            raise ProfileError(
                f"no profile for workload {workload!r} in {self.directory} "
                f"(available: {self.list_workloads()})"
            )
        return AllocationProfile.load(path)

    def load_tree(self, workload: str) -> STTree:
        """The stored profile's canonical IR (the serialized STTree).

        Profiles written before the IR-bearing v2 format carry only the
        flattened directives; asking for their tree is an error rather
        than a silent re-derivation.
        """
        profile = self.load(workload)
        if profile.sttree is None:
            raise ProfileError(
                f"profile for {workload!r} predates the IR-bearing v2 "
                "format and has no STTree; re-run profiling to regenerate"
            )
        return profile.sttree

    def select(
        self, expected_workload: str, fallback: Optional[str] = None
    ) -> AllocationProfile:
        """Choose the profile for the expected workload at launch time.

        Falls back to a same-application profile when the exact mix is
        absent — e.g. ``cassandra-wr`` can borrow ``cassandra-wi``'s
        profile, which still beats running unprofiled.
        """
        if self.has_profile(expected_workload):
            return self.load(expected_workload)
        prefix = expected_workload.split("-")[0]
        for name in self.list_workloads():
            if name.split("-")[0] == prefix:
                return self.load(name)
        if fallback is not None and self.has_profile(fallback):
            return self.load(fallback)
        raise ProfileError(
            f"no profile usable for {expected_workload!r} "
            f"(available: {self.list_workloads()})"
        )

    def load_all(self) -> Dict[str, AllocationProfile]:
        return {name: self.load(name) for name in self.list_workloads()}
