"""The Dumper: CRIU-backed incremental JVM snapshots (paper §3.2/§4.2).

Upon request from the Recorder, checkpoints the JVM's memory.  Snapshots
are incremental (dirty pages only) and skip pages the Recorder marked
no-need.  Snapshot creation stops the application, so the time each
checkpoint takes is charged to the virtual clock — this is the profiling
disturbance Figures 3/4 show the CRIU engine reducing by >90 % relative
to jmap.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, TYPE_CHECKING

from repro.errors import ReproError
from repro.runtime.events import SnapshotPointEvent, VMAgent
from repro.snapshot.criu import CRIUEngine
from repro.snapshot.snapshot import Snapshot, SnapshotStore

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.idset import IdSet
    from repro.heap.objects import HeapObject
    from repro.runtime.vm import VM


class Dumper(VMAgent):
    """Creates incremental memory snapshots of the profiled VM.

    An agent subscribed to ``SNAPSHOT_POINT`` events published by the
    Recorder; construct without a VM and ``vm.attach_agent(dumper)``
    (the legacy ``Dumper(vm)`` form still works for direct use).
    """

    def __init__(
        self,
        vm: Optional["VM"] = None,
        store: Optional[SnapshotStore] = None,
        delta_encode: bool = True,
    ) -> None:
        self.vm = vm
        self.delta_encode = delta_encode
        self.engine: Optional[CRIUEngine] = None
        if vm is not None:
            self.engine = CRIUEngine(vm.config.costs, delta_encode=delta_encode)
        # NOTE: an explicit identity check — a freshly created store is
        # empty and therefore falsy, so ``store or SnapshotStore()`` would
        # silently discard a caller-provided store.
        self.store = store if store is not None else SnapshotStore()

    # -- agent lifecycle -----------------------------------------------------------

    def on_attach(self, vm: "VM") -> None:
        self.vm = vm
        if self.engine is None:
            self.engine = CRIUEngine(
                vm.config.costs, delta_encode=self.delta_encode
            )

    def on_snapshot_point(self, event: SnapshotPointEvent) -> None:
        self.take_snapshot(event.live, live_ids=event.live_ids)

    def telemetry(self) -> Dict[str, int]:
        return {"snapshots_taken": self.snapshots_taken}

    # -- snapshotting ---------------------------------------------------------------

    def take_snapshot(
        self,
        live_objects: Iterable["HeapObject"],
        live_ids: Optional["IdSet"] = None,
    ) -> Snapshot:
        """Checkpoint now; the application is stopped for the duration.

        ``live_ids``, when provided (the snapshot-point path), is the
        prebuilt :class:`IdSet` of ``live_objects``' ids, saving the
        engine one per-object pass.
        """
        if self.vm is None or self.engine is None:
            raise ReproError("Dumper is not attached to a VM")
        snapshot = self.engine.checkpoint(
            self.vm.heap, live_objects, self.vm.clock.now_ms, live_ids=live_ids
        )
        self.vm.clock.advance_us(snapshot.duration_us)
        self.store.append(snapshot)
        return snapshot

    @property
    def snapshots_taken(self) -> int:
        return len(self.store)
