"""The Dumper: CRIU-backed incremental JVM snapshots (paper §3.2/§4.2).

Upon request from the Recorder, checkpoints the JVM's memory.  Snapshots
are incremental (dirty pages only) and skip pages the Recorder marked
no-need.  Snapshot creation stops the application, so the time each
checkpoint takes is charged to the virtual clock — this is the profiling
disturbance Figures 3/4 show the CRIU engine reducing by >90 % relative
to jmap.
"""

from __future__ import annotations

from typing import Iterable, Optional, TYPE_CHECKING

from repro.snapshot.criu import CRIUEngine
from repro.snapshot.snapshot import Snapshot, SnapshotStore

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.heap.objects import HeapObject
    from repro.runtime.vm import VM


class Dumper:
    """Creates incremental memory snapshots of the profiled VM."""

    def __init__(
        self,
        vm: "VM",
        store: Optional[SnapshotStore] = None,
        delta_encode: bool = True,
    ) -> None:
        self.vm = vm
        self.engine = CRIUEngine(vm.config.costs, delta_encode=delta_encode)
        # NOTE: an explicit identity check — a freshly created store is
        # empty and therefore falsy, so ``store or SnapshotStore()`` would
        # silently discard a caller-provided store.
        self.store = store if store is not None else SnapshotStore()

    def take_snapshot(self, live_objects: Iterable["HeapObject"]) -> Snapshot:
        """Checkpoint now; the application is stopped for the duration."""
        snapshot = self.engine.checkpoint(
            self.vm.heap, live_objects, self.vm.clock.now_ms
        )
        self.vm.clock.advance_us(snapshot.duration_us)
        self.store.append(snapshot)
        return snapshot

    @property
    def snapshots_taken(self) -> int:
        return len(self.store)
