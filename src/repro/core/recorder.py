"""The Recorder: allocation logging plus snapshot triggering (paper §3.2/§4.1).

A Java agent attached to the profiled JVM with two jobs:

1. **Instrument allocations.**  At class-load time it rewrites every
   allocation site to call back into the Recorder, which logs the current
   stack trace (interned — each distinct trace is kept once in memory and
   written to disk only at shutdown) and the allocated object's identity
   hash code (appended to a per-trace stream).
2. **Trigger snapshots.**  After every GC cycle (configurable period) it
   first asks the collector to mark pages holding no live objects with the
   no-need bit (the ``madvise`` optimization of §4.2) and then signals the
   Dumper to take an incremental snapshot.
"""

from __future__ import annotations

import json
import os
from array import array
from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.core.idset import IdSet
from repro.errors import ProfileFormatError
from repro.runtime.code import AllocSite, ClassModel, CodeLocation
from repro.runtime.events import (
    SNAPSHOT_POINT,
    GCEndEvent,
    SnapshotPointEvent,
    VMAgent,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.dumper import Dumper
    from repro.heap.objects import HeapObject
    from repro.runtime.vm import VM

#: Magic prefix of the single-file streams layout (see ``flush_to_dir``).
_STREAMS_MAGIC = b"POLM2IDS"
_STREAMS_FILENAME = "streams.bin"


class AllocationRecords:
    """In-memory allocation records: trace table + per-trace id streams.

    Mirrors the Recorder's storage strategy: a table of interned stack
    traces (flushed once) and an append-only stream of object ids per
    trace.  Streams are ``array('q')`` — packed 64-bit ints, appended to
    on every single allocation — rather than lists of boxed Python ints.
    """

    def __init__(self) -> None:
        self._trace_ids: Dict[Tuple[CodeLocation, ...], int] = {}
        self.traces: Dict[int, Tuple[CodeLocation, ...]] = {}
        self.streams: Dict[int, array] = {}

    def intern_trace(self, trace: Tuple[CodeLocation, ...]) -> int:
        """Intern ``trace`` and return its record trace id (1-based,
        first-encounter order), creating its empty stream on first use."""
        trace_id = self._trace_ids.get(trace)
        if trace_id is None:
            trace_id = len(self._trace_ids) + 1
            self._trace_ids[trace] = trace_id
            self.traces[trace_id] = trace
            self.streams[trace_id] = array("q")
        return trace_id

    def append(self, trace_id: int, object_id: int) -> None:
        """Append one allocation to an already-interned trace's stream."""
        self.streams[trace_id].append(object_id)

    def log(self, trace: Tuple[CodeLocation, ...], object_id: int) -> int:
        """Record one allocation; returns the interned trace id.

        Convenience path that hashes the trace tuple; the Recorder's hot
        path interns once per VM trace id and calls :meth:`append`.
        """
        trace_id = self.intern_trace(trace)
        self.streams[trace_id].append(object_id)
        return trace_id

    @property
    def trace_count(self) -> int:
        return len(self.traces)

    @property
    def total_allocations(self) -> int:
        return sum(len(stream) for stream in self.streams.values())

    def recorded_object_ids(self) -> List[int]:
        ids: List[int] = []
        for stream in self.streams.values():
            ids.extend(stream)
        return ids

    # -- persistence (the "flushed to disk at the end" behaviour of §3.2) ----

    def flush_to_dir(self, path: str) -> None:
        """Write the trace table and the id streams to ``path``.

        The streams land in one length-prefixed binary file
        (``streams.bin``): an 8-byte magic, then per stream a
        ``(trace_id, count)`` pair of machine int64s followed by ``count``
        int64 object ids (native byte order, straight out of the
        ``array('q')`` buffers).  The historical layout wrote one
        ``stream_<tid>.ids`` text file per trace — thousands of tiny files
        on real workloads; :meth:`load_from_dir` still reads it.
        """
        os.makedirs(path, exist_ok=True)
        table = {
            str(tid): [list(frame) for frame in trace]
            for tid, trace in self.traces.items()
        }
        with open(os.path.join(path, "traces.json"), "w") as handle:
            json.dump(table, handle)
        with open(os.path.join(path, _STREAMS_FILENAME), "wb") as handle:
            handle.write(_STREAMS_MAGIC)
            for tid, stream in self.streams.items():
                handle.write(array("q", (tid, len(stream))).tobytes())
                handle.write(stream.tobytes())

    @classmethod
    def load_from_dir(cls, path: str) -> "AllocationRecords":
        records = cls()
        table_path = os.path.join(path, "traces.json")
        try:
            with open(table_path) as handle:
                table = json.load(handle)
        except (OSError, ValueError) as exc:
            raise ProfileFormatError(
                f"{table_path}: cannot read trace table: {exc}"
            ) from exc
        for tid_str, trace_list in table.items():
            tid = int(tid_str)
            trace = tuple(
                (frame[0], frame[1], int(frame[2])) for frame in trace_list
            )
            records._trace_ids[trace] = tid
            records.traces[tid] = trace
            records.streams[tid] = array("q")
        streams_path = os.path.join(path, _STREAMS_FILENAME)
        if os.path.exists(streams_path):
            records._load_streams_file(streams_path)
        else:
            # Legacy layout: one stream_<tid>.ids text file per trace.
            for tid in records.traces:
                stream_path = os.path.join(path, f"stream_{tid}.ids")
                if os.path.exists(stream_path):
                    with open(stream_path) as handle:
                        records.streams[tid] = array(
                            "q", (int(line) for line in handle if line.strip())
                        )
        return records

    def _load_streams_file(self, streams_path: str) -> None:
        with open(streams_path, "rb") as handle:
            blob = handle.read()
        if blob[: len(_STREAMS_MAGIC)] != _STREAMS_MAGIC:
            raise ProfileFormatError(
                f"{streams_path}: bad magic, not a streams file"
            )
        offset = len(_STREAMS_MAGIC)
        end = len(blob)
        while offset < end:
            if offset + 16 > end:
                raise ProfileFormatError(f"{streams_path}: truncated header")
            header = array("q")
            header.frombytes(blob[offset : offset + 16])
            trace_id, count = header
            offset += 16
            if count < 0 or offset + 8 * count > end:
                raise ProfileFormatError(
                    f"{streams_path}: truncated stream for trace {trace_id}"
                )
            stream = array("q")
            stream.frombytes(blob[offset : offset + 8 * count])
            offset += 8 * count
            self.streams[trace_id] = stream


class Recorder(VMAgent):
    """The profiling-phase agent: class transformer + allocation logger.

    As a :class:`~repro.runtime.events.VMAgent` it subscribes to raw
    allocations and ``GC_END``; when a cycle ends on a snapshot period it
    marks no-need pages and publishes ``SNAPSHOT_POINT``, which the
    Dumper (a sibling agent) consumes.
    """

    def __init__(self, snapshot_every: int = 1, mark_no_need: bool = True) -> None:
        if snapshot_every < 1:
            raise ValueError("snapshot_every must be >= 1")
        self.snapshot_every = snapshot_every
        #: When False, skips the madvise/no-need page marking of §4.2 —
        #: the ablation quantifying that optimization's contribution.
        self.mark_no_need = mark_no_need
        self.records = AllocationRecords()
        self.instrumented_site_count = 0
        self.vm: Optional["VM"] = None
        self.dumper: Optional["Dumper"] = None
        self._cycles_since_snapshot = 0
        #: VM trace id -> record trace id.  The VM interns each distinct
        #: stack trace once (see ``AllocSite.cached_trace_id``), so after
        #: the first sighting an allocation is logged with two int-keyed
        #: dict hits — the trace tuple is never hashed again.
        self._record_ids_by_vm_trace: Dict[int, int] = {}

    # -- agent lifecycle -----------------------------------------------------------

    def on_attach(self, vm: "VM") -> None:
        self.vm = vm

    def on_detach(self, vm: "VM") -> None:
        self.vm = None

    def attach(self, vm: "VM", dumper: Optional["Dumper"] = None) -> None:
        """Legacy seam: attach this Recorder (and its Dumper) as agents.

        Must run before workload classes are loaded, exactly as a
        ``-javaagent`` must be present at JVM launch.
        """
        self.dumper = dumper
        vm.attach_agent(self)
        if dumper is not None:
            vm.attach_agent(dumper)

    def telemetry(self) -> Dict[str, int]:
        return {
            "allocations_logged": self.records.total_allocations,
            "traces_interned": self.records.trace_count,
        }

    # -- ClassTransformer ------------------------------------------------------------

    def transform(self, class_model: ClassModel) -> ClassModel:
        """Flip the record hook on every allocation site of the class."""
        for site in class_model.iter_alloc_sites():
            site.record_hook = True
            self.instrumented_site_count += 1
        return class_model

    # -- allocation callback -----------------------------------------------------------

    def on_allocation(
        self, obj: "HeapObject", site: AllocSite, trace: tuple
    ) -> None:
        vm_trace_id = obj.trace_id
        if vm_trace_id:
            record_id = self._record_ids_by_vm_trace.get(vm_trace_id)
            if record_id is None:
                # First sighting of this trace: intern the tuple once.
                # VM interning is injective, so record ids still follow
                # first-encounter order exactly as trace-keyed logging did.
                record_id = self.records.intern_trace(trace)
                self._record_ids_by_vm_trace[vm_trace_id] = record_id
            self.records.streams[record_id].append(obj.object_id)
        else:
            # No VM-interned id (direct calls outside a site): slow path.
            self.records.log(trace, obj.object_id)
        if self.vm is not None:
            # Logging costs mutator time; this is the profiling overhead
            # the paper accepts in exchange for offline analysis.
            self.vm.clock.advance_us(self.vm.config.costs.record_log_us)

    def on_allocation_batch(self, event) -> None:
        """Log a whole quiet run: one stream extend instead of N appends.

        Byte-for-byte equivalent to ``count`` :meth:`on_allocation` calls:
        object ids in a batch are consecutive from ``first_object_id``,
        and the per-allocation logging cost still advances the clock once
        per object (float accumulation is not associative).
        """
        vm_trace_id = event.trace_id
        if vm_trace_id:
            record_id = self._record_ids_by_vm_trace.get(vm_trace_id)
            if record_id is None:
                record_id = self.records.intern_trace(event.trace)
                self._record_ids_by_vm_trace[vm_trace_id] = record_id
        else:
            record_id = self.records.intern_trace(event.trace)
        first = event.first_object_id
        self.records.streams[record_id].extend(
            array("q", range(first, first + event.count))
        )
        if self.vm is not None:
            advance = self.vm.clock.advance_us
            cost = self.vm.config.costs.record_log_us
            for _ in range(event.count):
                advance(cost)

    # -- GC cycle callback ----------------------------------------------------------------

    def on_gc_end(self, event: GCEndEvent) -> None:
        pause = event.pause
        self._cycles_since_snapshot += 1
        if self._cycles_since_snapshot < self.snapshot_every:
            return
        self._cycles_since_snapshot = 0
        vm = self.vm
        if vm is None or not vm.events.has_listeners(SNAPSHOT_POINT):
            # Nobody consumes snapshot points (no Dumper attached): skip
            # the no-need marking and the checkpoint entirely, exactly as
            # the historical ``dumper is None`` early-out did.
            return
        collector = vm.collector
        live = collector.last_live_objects if collector is not None else []
        if collector is not None and collector.last_trace_was_partial:
            # Remembered-set collections only establish young liveness;
            # snapshots need the full live set.  Trace through the
            # *collector* so the result (live list + mark epoch) is adopted
            # as its latest trace: a mixed/generation collection at this
            # same safepoint then reuses it instead of tracing the heap a
            # second time.
            live = collector.trace_live()
        # One compact live-id set serves the whole snapshot point: the
        # no-need sweep's columnar region kernels and the CRIU engine's
        # logical content both consume it (identity hashes are monotonic,
        # so the set is runs + bitmap blocks).
        live_ids = IdSet(obj.object_id for obj in live)
        if self.mark_no_need:
            # §4.1: before signalling the Dumper, traverse the heap and set
            # the no-need bit on every page with no live objects (madvise).
            vm.heap.mark_unused_pages_no_need(live, live_ids=live_ids)
        vm.events.publish(
            SNAPSHOT_POINT,
            SnapshotPointEvent(pause=pause, live=live, live_ids=live_ids),
        )
