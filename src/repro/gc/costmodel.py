"""Pause-duration cost model.

Durations are *derived from work actually performed* on the simulated heap
— objects scanned, bytes evacuated, bytes promoted across generations,
bytes compacted in old regions.  The constants live in
:class:`repro.config.CostModel`; this module turns work quantities into
virtual microseconds.  Keeping the arithmetic in one place makes the
ablation benches (what if promotion were free? what if compaction cost
doubled?) one-line experiments.
"""

from __future__ import annotations

from repro.config import CostModel

_KIB = 1024.0


def young_pause_us(
    costs: CostModel,
    scanned_objects: int,
    survivor_bytes: int,
    promoted_bytes: int,
    tenured_bytes: int = 0,
) -> float:
    """Cost of a young (evacuation) pause.

    Survivor copies stay within the young generation; promoted bytes also
    pay the cross-generation tax.  ``tenured_bytes`` (total non-young heap)
    drives the card-table/remembered-set scan — a floor paid even when
    nothing survives.
    """
    return (
        costs.pause_fixed_us
        + costs.scan_obj_us * scanned_objects
        + costs.copy_kib_us * (survivor_bytes / _KIB)
        + (costs.copy_kib_us + costs.promote_kib_us) * (promoted_bytes / _KIB)
        + costs.card_scan_kib_us * (tenured_bytes / _KIB)
    )


def mixed_pause_us(
    costs: CostModel,
    scanned_objects: int,
    compacted_bytes: int,
) -> float:
    """Cost of a mixed collection: compacting live data out of old regions."""
    return (
        costs.pause_fixed_us
        + costs.scan_obj_us * scanned_objects
        + costs.compact_kib_us * (compacted_bytes / _KIB)
    )


def gen_pause_us(
    costs: CostModel,
    scanned_objects: int,
    compacted_bytes: int,
    regions_freed_wholesale: int,
) -> float:
    """Cost of collecting one NG2C dynamic generation.

    Regions whose every object is dead are reclaimed without copying —
    only a fixed, tiny per-region bookkeeping charge.  This is the payoff
    of pretenuring like-lifetime objects together.
    """
    return (
        costs.pause_fixed_us
        + costs.scan_obj_us * scanned_objects
        + costs.compact_kib_us * (compacted_bytes / _KIB)
        + 2.0 * regions_freed_wholesale
    )


def full_pause_us(
    costs: CostModel,
    scanned_objects: int,
    moved_bytes: int,
) -> float:
    """Cost of a full, compacting stop-the-world collection."""
    return (
        4.0 * costs.pause_fixed_us
        + costs.scan_obj_us * scanned_objects
        + costs.compact_kib_us * (moved_bytes / _KIB)
    )
