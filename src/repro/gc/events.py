"""GC pause and cycle event records."""

from __future__ import annotations

import dataclasses
from typing import Dict, List


#: Pause kinds, matching the collection types discussed in the paper.
YOUNG = "young"
MIXED = "mixed"
GEN = "gen"  # NG2C collection of a dynamic generation
FULL = "full"
CONCURRENT = "concurrent"  # C4's brief synchronization pauses


@dataclasses.dataclass(frozen=True)
class GCPause:
    """One stop-the-world pause.

    Attributes:
        cycle: monotonically increasing GC cycle number.
        start_ms: virtual time at which the pause began.
        duration_ms: pause duration in virtual milliseconds.
        kind: one of ``young`` / ``mixed`` / ``gen`` / ``full`` /
            ``concurrent``.
        collector: collector name.
        stats: work quantities behind the duration — scanned objects,
            survivor/promoted/compacted bytes, regions freed without
            copying, …
    """

    cycle: int
    start_ms: float
    duration_ms: float
    kind: str
    collector: str
    stats: Dict[str, int] = dataclasses.field(default_factory=dict)

    @property
    def end_ms(self) -> float:
        return self.start_ms + self.duration_ms


class PauseLog:
    """An append-only sequence of pauses with simple aggregations."""

    def __init__(self) -> None:
        self._pauses: List[GCPause] = []

    def append(self, pause: GCPause) -> None:
        self._pauses.append(pause)

    @property
    def pauses(self) -> List[GCPause]:
        return list(self._pauses)

    def durations_ms(self) -> List[float]:
        return [p.duration_ms for p in self._pauses]

    @property
    def count(self) -> int:
        return len(self._pauses)

    @property
    def total_pause_ms(self) -> float:
        return sum(p.duration_ms for p in self._pauses)

    @property
    def worst_ms(self) -> float:
        return max((p.duration_ms for p in self._pauses), default=0.0)

    def by_kind(self, kind: str) -> List[GCPause]:
        return [p for p in self._pauses if p.kind == kind]

    def __len__(self) -> int:
        return len(self._pauses)

    def __iter__(self):
        return iter(self._pauses)
