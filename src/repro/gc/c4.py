"""A model of Azul's C4 (Continuously Concurrent Compacting Collector).

The paper uses C4 only as a throughput/memory reference point (§5):

* "there are no significant pause times (the duration of all pauses fall
  below 10 ms)" — so Figure 5/6 omit it;
* it is "the collector with worst performance" in Figure 7/8, because its
  read and write barriers tax the mutator continuously;
* it "pre-reserves all the available memory at launch time", so Figure 9
  omits it (its usage would plot near 2× for Cassandra).

The model reproduces exactly those three properties: collection work is
concurrent (it reclaims and compacts without stopping the world), each
cycle costs only a brief synchronization pause below 10 ms, mutator
operations pay a constant barrier multiplier, and reported memory equals
the full heap.
"""

from __future__ import annotations

import random
from typing import List

from repro.config import YOUNG_GEN
from repro.gc.base import GenerationalCollector
from repro.gc.events import CONCURRENT
from repro.heap.evacuation import FixedDestination
from repro.heap.region import Region


class C4Collector(GenerationalCollector):
    """Concurrent compacting collector: tiny pauses, barrier-taxed mutator."""

    name = "C4"

    #: Heap occupancy fraction that starts a concurrent cycle.
    CYCLE_TRIGGER_OCCUPANCY = 0.55

    #: Compact a region concurrently when at least this fraction is garbage.
    COMPACT_GARBAGE_FRACTION = 0.30

    #: Synchronization pauses stay strictly below 10 ms (paper §5).
    MIN_PAUSE_MS = 0.8
    MAX_PAUSE_MS = 8.0

    def __init__(self) -> None:
        super().__init__()
        self._rng: random.Random = random.Random(0)

    def _on_attach(self) -> None:
        vm = self._require_vm()
        self._rng = random.Random(vm.config.seed ^ 0xC4C4)

    # -- properties ---------------------------------------------------------------

    @property
    def mutator_overhead(self) -> float:
        """Constant read/write-barrier tax on every mutator operation."""
        return self._require_vm().config.costs.c4_barrier_tax

    @property
    def pre_reserves_memory(self) -> bool:
        return True

    @property
    def reserved_bytes(self) -> int:
        return self._require_vm().config.heap_bytes

    # -- policy -------------------------------------------------------------------

    def before_allocation(self, size: int) -> None:
        vm = self._require_vm()
        heap = vm.heap
        trigger = self.CYCLE_TRIGGER_OCCUPANCY * vm.config.heap_bytes
        if heap.used_bytes + size > trigger or heap.free_region_count < 8:
            self.concurrent_cycle()

    def resolve_allocation_gen(self, pretenure_index: int) -> int:
        # C4 is modelled as a single-space collector: everything allocates
        # into generation zero and is compacted concurrently in place.
        return YOUNG_GEN

    def batch_headroom(self, gen_id, max_size):
        """Quiet-run budget: occupancy stays under the cycle trigger.

        ``int()`` floors the float trigger, so staying within the budget
        implies ``used + size <= trigger`` for every allocation in the
        run; eight spare regions below the free-count floor bound the
        fresh-region claims.
        """
        vm = self._require_vm()
        heap = vm.heap
        spare = heap.free_region_count - 8
        if spare < 0:
            return (0, 0)
        quiet = (
            int(self.CYCLE_TRIGGER_OCCUPANCY * vm.config.heap_bytes)
            - heap.used_bytes
        )
        return (quiet if quiet > 0 else 0, spare)

    def handle_oom(self) -> None:
        self.concurrent_cycle()

    # -- collection ---------------------------------------------------------------

    def concurrent_cycle(self) -> None:
        """One concurrent mark/compact cycle.

        All marking and copying happens while the mutator runs (its cost is
        folded into the barrier tax); the world stops only for a brief
        synchronization pause, never ≥ 10 ms.
        """
        vm = self._require_vm()
        heap = vm.heap
        gen = heap.young
        live = self.trace_live()
        # Fresh same-safepoint trace: the epoch marks are the live set.
        epoch = self.last_mark_epoch
        live_by_region = heap.live_bytes_by_region(live)

        freed = 0
        compact_regions: List[Region] = []
        for region in list(gen.regions):
            if region.used_bytes == 0:
                continue
            live_bytes = live_by_region.get(region.index, 0)
            if live_bytes == 0:
                gen.release_region(region)
                heap.free_region(region)
                freed += 1
            elif (
                1.0 - live_bytes / region.used_bytes
                >= self.COMPACT_GARBAGE_FRACTION
            ):
                compact_regions.append(region)
        heap.reclaim_dead_humongous(epoch)
        compacted = 0
        if compact_regions:
            compacted, _, _ = heap.evacuate(
                compact_regions, epoch, gen, FixedDestination(gen)
            )
        pause_ms = self._rng.uniform(self.MIN_PAUSE_MS, self.MAX_PAUSE_MS)
        self.record_pause(
            CONCURRENT,
            pause_ms * 1000.0,
            stats={
                "regions_freed": freed,
                "compacted_bytes": compacted,
                "live_objects": len(live),
            },
        )
