"""A binary (single-tenured-space) pretenuring collector.

Two purposes:

1. **GC independence (paper §4.5).**  POLM2 "can be used with any
   generational GC that supports pretenuring" — the Instrumenter only
   needs ``supports_pretenuring`` and ``ensure_generation``.  This
   collector is the second implementation of that small API surface.

2. **A related-work ablation.**  Memento (Clifford et al., 2015) also
   pretenures, but "is only able to manage one tenured space, therefore
   applying a binary decision that will still potentially co-locate
   objects with possibly very different lifetimes, incurring in
   additional later compaction effort" (paper §6.1).  This collector *is*
   that design: every pretenure request, whatever its generation index,
   lands in the single old generation.  Running POLM2 on top of it
   quantifies exactly how much of the win comes from NG2C's *multiple*
   generations rather than from pretenuring per se.
"""

from __future__ import annotations

from repro.config import YOUNG_GEN
from repro.gc.g1 import G1Collector


class BinaryPretenuringCollector(G1Collector):
    """G1 mechanics plus a single-target pretenuring API (Memento-style).

    Inherits G1's collections unchanged, including their columnar
    evacuation plans (:class:`repro.heap.evacuation.SurvivorTenuring` for
    young pauses, :class:`repro.heap.evacuation.FixedDestination` for
    mixed/full) — pretenuring only redirects *allocation*, never copying.
    """

    name = "Binary"

    @property
    def supports_pretenuring(self) -> bool:
        return True

    def ensure_generation(self, index: int) -> int:
        """Every non-young index maps to the one old generation."""
        if index <= 0:
            return YOUNG_GEN
        return self.old_gen_id

    def resolve_allocation_gen(self, pretenure_index: int) -> int:
        return self.ensure_generation(pretenure_index)
