"""A G1-like two-generation collector (the OpenJDK default baseline).

Policy, as in the paper's background (§2.1): every object is allocated in
the young generation; survivors age through young collections and are
promoted to the old generation once they exceed the tenuring threshold;
old regions are compacted by *mixed* collections when old occupancy grows.

For big-data workloads this is exactly the pathology POLM2 attacks:
middle-lived objects (memtable rows, index postings, graph batches) are
copied repeatedly through survivor space, promoted en masse, and finally
compacted in the old generation — each step a stop-the-world pause
proportional to the volume of live data moved.
"""

from __future__ import annotations

from typing import List

from repro.config import YOUNG_GEN
from repro.gc import costmodel
from repro.gc.base import GenerationalCollector
from repro.gc.events import FULL, MIXED, YOUNG
from repro.heap.evacuation import FixedDestination, SurvivorTenuring
from repro.heap.region import Region


class G1Collector(GenerationalCollector):
    """Two generations, survivor aging, mixed old-region compaction."""

    name = "G1"

    #: A mixed collection only evacuates old regions at least this garbage.
    MIN_GARBAGE_FRACTION = 0.10

    #: Cap on old regions evacuated per mixed collection (G1 spreads mixed
    #: work over several pauses).
    MAX_MIXED_REGIONS = 64

    #: Fraction of total regions kept free as evacuation headroom.
    FREE_RESERVE_FRACTION = 0.04

    #: Bounds for the adaptive young-sizing policy (fractions of the
    #: configured young size).
    MIN_YOUNG_FRACTION = 0.15
    MAX_YOUNG_FRACTION = 1.5

    def __init__(self) -> None:
        super().__init__()
        self.old_gen_id = -1
        self._free_reserve_regions = 4
        self._young_target = 0

    def _on_attach(self) -> None:
        vm = self._require_vm()
        self.old_gen_id = vm.heap.new_generation("old").gen_id
        total_regions = vm.config.heap_bytes // vm.heap.region_size
        self._free_reserve_regions = max(
            4, int(total_regions * self.FREE_RESERVE_FRACTION)
        )
        self._young_target = vm.config.young_bytes

    @property
    def young_target_bytes(self) -> int:
        """Current young-generation trigger (adaptive under a pause goal)."""
        return self._young_target

    def _adapt_young_size(self, pause_ms: float) -> None:
        """Chase -XX:MaxGCPauseMillis by resizing the young generation.

        HotSpot's ergonomics in one rule: over the goal -> shrink young
        (less to copy per pause, more pauses); comfortably under -> grow
        it back.  Note what this cannot do: the same middle-lived bytes
        still get copied, just in smaller slices — which is why a pause
        goal is no substitute for lifetime-aware placement (see the
        pause-goal ablation).
        """
        vm = self._require_vm()
        goal = vm.config.pause_goal_ms
        if goal is None:
            return
        floor = int(vm.config.young_bytes * self.MIN_YOUNG_FRACTION)
        ceiling = int(vm.config.young_bytes * self.MAX_YOUNG_FRACTION)
        if pause_ms > goal:
            self._young_target = max(floor, int(self._young_target * 0.8))
        elif pause_ms < 0.6 * goal:
            self._young_target = min(ceiling, int(self._young_target * 1.1))

    # -- policy -------------------------------------------------------------------

    def before_allocation(self, size: int) -> None:
        vm = self._require_vm()
        heap = vm.heap
        if heap.young.used_bytes + size > self._young_target:
            self.collect_young()
            if self._old_occupancy() >= vm.config.mixed_trigger_occupancy:
                self.collect_mixed()
        if heap.free_region_count < self._free_reserve():
            self.collect_young()
            self.collect_mixed()
            if heap.free_region_count < max(2, self._free_reserve() // 2):
                self.full_collect()

    def resolve_allocation_gen(self, pretenure_index: int) -> int:
        # G1 has no pretenuring: every allocation goes to the young gen.
        return YOUNG_GEN

    def batch_headroom(self, gen_id, max_size):
        """Quiet-run budget for :meth:`before_allocation`'s two triggers.

        Young allocations are quiet while cumulative bytes stay within the
        young target; non-young allocations (the binary-rewriter subclass
        pretenures) never move ``young.used_bytes``, so they are quiet as
        long as the young trigger cannot fire for any size in the batch.
        The spare-region bound keeps the free count at or above the
        reserve, so the free-reserve trigger stays dormant too.
        """
        vm = self._require_vm()
        heap = vm.heap
        spare = heap.free_region_count - self._free_reserve()
        if spare < 0:
            return (0, 0)
        young_used = heap.young.used_bytes
        if gen_id == YOUNG_GEN:
            quiet = self._young_target - young_used
        elif young_used + max_size <= self._young_target:
            quiet = vm.config.heap_bytes
        else:
            quiet = 0
        return (quiet if quiet > 0 else 0, spare)

    def handle_oom(self) -> None:
        self.full_collect()

    def _old_occupancy(self) -> float:
        vm = self._require_vm()
        old_capacity = vm.config.heap_bytes - vm.config.young_bytes
        return vm.heap.generation(self.old_gen_id).used_bytes / old_capacity

    def _free_reserve(self) -> int:
        return self._free_reserve_regions

    # -- collections --------------------------------------------------------------

    def collect_young(self) -> None:
        """Evacuate the whole young generation (eden + survivor regions)."""
        vm = self._require_vm()
        heap = vm.heap
        young = heap.young
        old = heap.generation(self.old_gen_id)
        self.young_liveness()
        # The trace just ran at this safepoint: its mark epoch *is* the
        # live set, so no id set is materialized.
        epoch = self.last_mark_epoch
        regions: List[Region] = list(young.regions)
        # Survivor aging and the tenuring-threshold compare run as lane
        # arithmetic over the age column; eden regions stay one young run.
        plan = SurvivorTenuring(young, old, vm.config.tenure_threshold)
        survivor, promoted, scanned = heap.evacuate(regions, epoch, young, plan)
        heap.reclaim_dead_humongous(
            epoch, only_young=self.last_trace_was_partial
        )
        tenured = old.used_bytes
        duration = costmodel.young_pause_us(
            vm.config.costs, scanned, survivor, promoted, tenured
        )
        self.record_pause(
            YOUNG,
            duration,
            stats={
                "scanned_objects": scanned,
                "survivor_bytes": survivor,
                "promoted_bytes": promoted,
                "regions_collected": len(regions),
            },
        )
        self._adapt_young_size(duration / 1000.0)

    def collect_mixed(self) -> None:
        """Compact the old generation's most garbage-heavy regions."""
        vm = self._require_vm()
        heap = vm.heap
        old = heap.generation(self.old_gen_id)
        if self.last_live_objects and not self.last_trace_was_partial:
            # Reuse the full trace that just ran at this safepoint; its
            # epoch marks are still current (nothing traced in between).
            live = self.last_live_objects
        else:
            live = self.trace_live()
        epoch = self.last_mark_epoch
        live_by_region = heap.live_bytes_by_region(live)

        candidates: List[Region] = []
        for region in old.regions:
            if region.used_bytes == 0:
                continue
            live_bytes = live_by_region.get(region.index, 0)
            garbage = 1.0 - live_bytes / region.used_bytes
            if garbage >= self.MIN_GARBAGE_FRACTION:
                candidates.append(region)
        if not candidates:
            return
        candidates.sort(key=lambda r: live_by_region.get(r.index, 0))
        chosen = candidates[: self.MAX_MIXED_REGIONS]

        compacted, _, scanned = heap.evacuate(
            chosen, epoch, old, FixedDestination(old)
        )
        duration = costmodel.mixed_pause_us(vm.config.costs, scanned, compacted)
        self.record_pause(
            MIXED,
            duration,
            stats={
                "scanned_objects": scanned,
                "compacted_bytes": compacted,
                "regions_collected": len(chosen),
            },
        )

    def full_collect(self) -> None:
        """Stop-the-world full compaction: everything live moves to old."""
        vm = self._require_vm()
        heap = vm.heap
        young = heap.young
        old = heap.generation(self.old_gen_id)
        self.trace_live()
        epoch = self.last_mark_epoch
        moved = 0
        scanned = 0
        everything_old = FixedDestination(old)
        for gen in (young, old):
            regions = list(gen.regions)
            copied, promoted, seen = heap.evacuate(
                regions, epoch, gen, everything_old
            )
            moved += copied + promoted
            scanned += seen
        duration = costmodel.full_pause_us(vm.config.costs, scanned, moved)
        self.record_pause(
            FULL,
            duration,
            stats={"scanned_objects": scanned, "moved_bytes": moved},
        )
