"""A ``-Xlog:gc``-style textual GC log.

Attachable to any collector; renders each pause the way HotSpot's unified
logging does, which makes simulated runs easy to eyeball and lets the
examples show familiar-looking output::

    [12.345s] GC(7) Pause Young (NG2C) 18M->6M(64M) 3.219ms
    [14.001s] GC(8) Pause Gen (NG2C) freed 142 regions wholesale 1.108ms
"""

from __future__ import annotations

from typing import List, Optional, TYPE_CHECKING

from repro.gc.events import GCPause

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.gc.base import GenerationalCollector
    from repro.runtime.vm import VM

_MIB = 1024 * 1024


class GCLog:
    """Collects formatted log lines for every GC pause."""

    def __init__(self, vm: "VM") -> None:
        self.vm = vm
        self.lines: List[str] = []
        self._before_bytes: Optional[int] = None
        if vm.collector is None:
            raise ValueError("attach a collector before enabling the GC log")
        vm.collector.add_cycle_listener(self._on_pause)

    def _on_pause(self, pause: GCPause) -> None:
        heap = self.vm.heap
        after = heap.used_bytes
        before = self._before_bytes if self._before_bytes is not None else after
        capacity = self.vm.config.heap_bytes
        detail = self._detail(pause)
        self.lines.append(
            f"[{pause.start_ms / 1000.0:9.3f}s] GC({pause.cycle}) "
            f"Pause {pause.kind.capitalize()} ({pause.collector}) "
            f"{before // _MIB}M->{after // _MIB}M({capacity // _MIB}M) "
            f"{pause.duration_ms:.3f}ms{detail}"
        )
        self._before_bytes = after

    @staticmethod
    def _detail(pause: GCPause) -> str:
        stats = pause.stats
        parts = []
        if stats.get("promoted_bytes"):
            parts.append(f"promoted {stats['promoted_bytes'] // 1024}K")
        if stats.get("compacted_bytes"):
            parts.append(f"compacted {stats['compacted_bytes'] // 1024}K")
        if stats.get("regions_freed_wholesale"):
            parts.append(
                f"freed {stats['regions_freed_wholesale']} regions wholesale"
            )
        if not parts:
            return ""
        return " (" + ", ".join(parts) + ")"

    def tail(self, count: int = 10) -> List[str]:
        return self.lines[-count:]

    def render(self) -> str:
        return "\n".join(self.lines)

    def __len__(self) -> int:
        return len(self.lines)
