"""NG2C: pretenuring garbage collection with dynamic generations.

Reproduces the collector POLM2 builds upon (Bruno et al., ISMM '17,
described in the paper's §2.2):

* the heap holds an arbitrary number of generations, created at runtime
  (``new_generation``);
* allocation sites annotated ``@Gen`` pretenure objects into the calling
  thread's *target generation* (``set_generation`` — modelled as the
  thread-local :attr:`repro.runtime.thread.SimThread.target_gen`, flipped
  by instrumented call sites);
* non-annotated allocations behave exactly like G1's: young allocation,
  survivor aging, promotion to old.

The payoff measured in the paper emerges mechanically: when like-lifetime
objects share a generation, its regions die *together*, so collection
reclaims whole regions without copying — versus G1 repeatedly copying the
same middle-lived bytes through survivor space, promotion, and compaction.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.config import YOUNG_GEN
from repro.errors import UnknownGenerationError
from repro.gc import costmodel
from repro.gc.base import GenerationalCollector
from repro.gc.events import FULL, GEN, YOUNG
from repro.heap.evacuation import FixedDestination, SurvivorTenuring
from repro.heap.objects import HeapObject
from repro.heap.region import Region


class NG2CCollector(GenerationalCollector):
    """N-generation pretenuring collector with the NG2C API."""

    name = "NG2C"

    #: Compact a non-young region during a gen collection only when at
    #: least this fraction of it is garbage.
    COMPACT_GARBAGE_FRACTION = 0.50

    FREE_RESERVE_FRACTION = 0.04

    #: Tenured-occupancy fraction above which dynamic generations are
    #: collected after a young collection.
    GEN_COLLECT_PRESSURE = 0.45

    def __init__(self) -> None:
        super().__init__()
        self.old_gen_id = -1
        #: Profile generation index (1..K) -> heap generation id.
        self._gen_map: Dict[int, int] = {}
        #: Heap generation ids rotated away and awaiting reclamation.
        self._rotated_out: List[int] = []
        #: Total dynamic generations ever created (Table 1 metric).
        self.created_generation_count = 0
        self._free_reserve_regions = 4
        self._pretenured_since_gc = 0

    def _on_attach(self) -> None:
        vm = self._require_vm()
        self.old_gen_id = vm.heap.new_generation("old").gen_id
        total_regions = vm.config.heap_bytes // vm.heap.region_size
        self._free_reserve_regions = max(
            4, int(total_regions * self.FREE_RESERVE_FRACTION)
        )

    # -- NG2C API ----------------------------------------------------------------

    @property
    def supports_pretenuring(self) -> bool:
        return True

    def ensure_generation(self, index: int) -> int:
        """Map profile generation ``index`` to a heap generation, creating
        it on first use (``System.newGeneration``)."""
        if index <= 0:
            return YOUNG_GEN
        gen_id = self._gen_map.get(index)
        if gen_id is None:
            vm = self._require_vm()
            gen_id = vm.heap.new_generation(f"dyn{index}").gen_id
            self._gen_map[index] = gen_id
            self.created_generation_count += 1
        return gen_id

    def rotate_generation(self, index: int) -> int:
        """Re-point profile ``index`` at a brand-new heap generation.

        Models the manual NG2C usage the paper describes for Cassandra:
        "NG2C creates one generation each time a memory table is flushed".
        The previous heap generation keeps its (now dying) data until a gen
        collection reclaims and retires it.
        """
        if index <= 0:
            raise UnknownGenerationError("cannot rotate the young generation")
        old_id = self._gen_map.pop(index, None)
        if old_id is not None:
            self._rotated_out.append(old_id)
        return self.ensure_generation(index)

    def resolve_allocation_gen(self, pretenure_index: int) -> int:
        return self.ensure_generation(pretenure_index)

    @property
    def dynamic_generation_ids(self) -> List[int]:
        return list(self._gen_map.values()) + list(self._rotated_out)

    # -- policy ---------------------------------------------------------------------

    def before_allocation(self, size: int) -> None:
        vm = self._require_vm()
        heap = vm.heap
        if heap.young.used_bytes + size > vm.config.young_bytes:
            self.collect_young()
            # NG2C reclaims dying generations eagerly: most regions are
            # wholly dead (pretenured cohorts die together), so generation
            # collections are cheap and keeping the trigger low keeps the
            # committed footprint in line with G1's (paper Figure 9).
            if self._tenured_pressure() >= self.GEN_COLLECT_PRESSURE:
                self.collect_generations(
                    None if self.last_trace_was_partial else self.last_live_objects
                )
        elif self._pretenured_since_gc >= vm.config.young_bytes:
            # Pretenured allocation grows the dynamic generations without
            # ever filling the young generation, so a pretenured-byte
            # budget (symmetric with the young-collection trigger) drives
            # generation collections on its own.
            self.collect_generations()
        if heap.free_region_count < self._free_reserve():
            self.collect_young()
            self.collect_generations(
                None if self.last_trace_was_partial else self.last_live_objects
            )
            if heap.free_region_count < max(2, self._free_reserve() // 2):
                self.full_collect()

    def after_allocation(self, size: int, gen_id: int) -> None:
        if gen_id != YOUNG_GEN:
            self._pretenured_since_gc += size

    def batch_headroom(self, gen_id, max_size):
        """Quiet-run budget covering all three allocation triggers.

        Young runs: quiet while cumulative bytes stay within the young
        budget *and* the pretenured-byte trigger (checked whenever the
        young trigger does not fire) is not already armed.  Pretenured
        runs: the young trigger must be unfireable for every size in the
        batch, and the pretenured counter — which grows with each
        allocation — must stay strictly below the budget at every
        intermediate check, hence the ``- 1``.
        """
        vm = self._require_vm()
        heap = vm.heap
        spare = heap.free_region_count - self._free_reserve()
        if spare < 0:
            return (0, 0)
        young_budget = vm.config.young_bytes
        young_used = heap.young.used_bytes
        if gen_id == YOUNG_GEN:
            if self._pretenured_since_gc >= young_budget:
                quiet = 0
            else:
                quiet = young_budget - young_used
        elif young_used + max_size <= young_budget:
            quiet = young_budget - self._pretenured_since_gc - 1
        else:
            quiet = 0
        return (quiet if quiet > 0 else 0, spare)

    def handle_oom(self) -> None:
        self.full_collect()

    def _tenured_pressure(self) -> float:
        vm = self._require_vm()
        capacity = vm.config.heap_bytes - vm.config.young_bytes
        used = sum(
            gen.used_bytes
            for gid, gen in vm.heap.generations.items()
            if gid != YOUNG_GEN
        )
        return used / capacity

    def _free_reserve(self) -> int:
        return self._free_reserve_regions

    # -- collections --------------------------------------------------------------------

    def collect_young(self) -> None:
        """Evacuate the young generation; identical mechanics to G1's."""
        vm = self._require_vm()
        heap = vm.heap
        young = heap.young
        old = heap.generation(self.old_gen_id)
        self.young_liveness()
        # The trace just ran at this safepoint: its mark epoch *is* the
        # live set, so no id set is materialized.
        epoch = self.last_mark_epoch
        regions = list(young.regions)
        # Survivor aging and the tenuring-threshold compare run as lane
        # arithmetic over the age column; eden regions stay one young run.
        plan = SurvivorTenuring(young, old, vm.config.tenure_threshold)
        survivor, promoted, scanned = heap.evacuate(regions, epoch, young, plan)
        heap.reclaim_dead_humongous(
            epoch, only_young=self.last_trace_was_partial
        )
        tenured = sum(
            gen.used_bytes
            for gid, gen in heap.generations.items()
            if gid != heap.young.gen_id
        )
        duration = costmodel.young_pause_us(
            vm.config.costs, scanned, survivor, promoted, tenured
        )
        self.record_pause(
            YOUNG,
            duration,
            stats={
                "scanned_objects": scanned,
                "survivor_bytes": survivor,
                "promoted_bytes": promoted,
                "regions_collected": len(regions),
            },
        )

    def collect_generations(self, live: Optional[List[HeapObject]] = None) -> None:
        """Collect old + dynamic generations.

        Regions holding no live data are reclaimed wholesale (the win of
        pretenuring); regions that are mostly garbage are compacted within
        their generation; empty rotated-out generations are retired.

        ``live`` may carry a live set traced *at this same safepoint* (a
        young collection that just ran); anything else would be stale, so
        absent that the generation collection traces for itself.
        """
        vm = self._require_vm()
        heap = vm.heap
        if live is None:
            live = self.trace_live()
        if live is self.last_live_objects and not self.last_trace_was_partial:
            # The list is the collector's own same-safepoint trace, so its
            # epoch marks are current — no id set needed.
            live_test = self.last_mark_epoch
        else:
            # An arbitrary caller-supplied live list: fall back to ids.
            live_test = self.live_id_set(live)
        live_by_region = heap.live_bytes_by_region(live)

        freed_wholesale = 0
        compacted = 0
        scanned = 0
        target_gen_ids = [
            gid for gid in heap.generations if gid != YOUNG_GEN
        ]
        for gen_id in target_gen_ids:
            gen = heap.generation(gen_id)
            dead_regions: List[Region] = []
            compact_regions: List[Region] = []
            for region in gen.regions:
                if region.used_bytes == 0:
                    continue
                live_bytes = live_by_region.get(region.index, 0)
                if live_bytes == 0:
                    dead_regions.append(region)
                elif (
                    1.0 - live_bytes / region.used_bytes
                    >= self.COMPACT_GARBAGE_FRACTION
                ):
                    compact_regions.append(region)
            for region in dead_regions:
                gen.release_region(region)
                heap.free_region(region)
                freed_wholesale += 1
            if compact_regions:
                moved, _, seen = heap.evacuate(
                    compact_regions, live_test, gen, FixedDestination(gen)
                )
                compacted += moved
                scanned += seen
        heap.reclaim_dead_humongous(live_test)
        self._retire_empty_rotated()
        self._pretenured_since_gc = 0
        duration = costmodel.gen_pause_us(
            vm.config.costs, scanned, compacted, freed_wholesale
        )
        self.record_pause(
            GEN,
            duration,
            stats={
                "scanned_objects": scanned,
                "compacted_bytes": compacted,
                "regions_freed_wholesale": freed_wholesale,
            },
        )

    def _retire_empty_rotated(self) -> None:
        heap = self._require_vm().heap
        still_waiting: List[int] = []
        for gen_id in self._rotated_out:
            gen = heap.generations.get(gen_id)
            if gen is None:
                continue
            if gen.used_bytes == 0:
                heap.retire_generation(gen_id)
            else:
                still_waiting.append(gen_id)
        self._rotated_out = still_waiting

    def full_collect(self) -> None:
        """Compact every generation within itself (preserves pretenuring)."""
        vm = self._require_vm()
        heap = vm.heap
        self.trace_live()
        epoch = self.last_mark_epoch
        moved = 0
        scanned = 0
        for gen_id in list(heap.generations):
            gen = heap.generation(gen_id)
            regions = list(gen.regions)
            copied, promoted, seen = heap.evacuate(
                regions, epoch, gen, FixedDestination(gen)
            )
            moved += copied + promoted
            scanned += seen
        self._retire_empty_rotated()
        duration = costmodel.full_pause_us(vm.config.costs, scanned, moved)
        self.record_pause(
            FULL,
            duration,
            stats={"scanned_objects": scanned, "moved_bytes": moved},
        )
