"""Garbage collectors over the simulated heap.

Three collectors reproduce the paper's comparison set:

* :class:`repro.gc.g1.G1Collector` — the OpenJDK default: two generations,
  survivor aging, promotion, and mixed (old-region compaction) collections.
  Its en-masse promotion and compaction of middle-lived big-data objects
  is the pathology POLM2 removes.
* :class:`repro.gc.ng2c.NG2CCollector` — NG2C (ISMM '17): N dynamic
  generations and a pretenuring API (``new_generation`` /
  ``get_generation`` / ``set_generation`` plus ``@Gen`` allocation sites).
* :class:`repro.gc.c4.C4Collector` — a model of Azul's C4: concurrent
  compaction with sub-10 ms pauses bought with a mutator barrier tax and
  fully pre-reserved memory (paper §5.5).
"""

from repro.gc.base import GenerationalCollector
from repro.gc.binary import BinaryPretenuringCollector
from repro.gc.c4 import C4Collector
from repro.gc.events import GCPause
from repro.gc.g1 import G1Collector
from repro.gc.ng2c import NG2CCollector

__all__ = [
    "BinaryPretenuringCollector",
    "C4Collector",
    "G1Collector",
    "GCPause",
    "GenerationalCollector",
    "NG2CCollector",
]
