"""Shared collector machinery: tracing, pause accounting, cycle hooks."""

from __future__ import annotations

import abc
from typing import Callable, Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.core.idset import IdSet
from repro.errors import GCError
from repro.gc.events import GCPause, PauseLog
from repro.heap.objects import HeapObject
from repro.runtime.events import GC_END, GC_START, GCEndEvent, GCStartEvent

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runtime.vm import VM

#: Cycle listener: invoked with the pause event after every GC cycle.
#: POLM2's Recorder registers one to trigger a heap snapshot at the end of
#: each cycle (paper §3.2, "by default ... at the end of every GC cycle").
CycleListener = Callable[[GCPause], None]


class GenerationalCollector(abc.ABC):
    """Base class for the simulated collectors.

    Subclasses implement policy (when to collect what, where survivors
    go); this base provides the mechanics every policy shares — root
    tracing, pause recording against the virtual clock, and post-cycle
    listener dispatch.
    """

    name = "abstract"

    def __init__(self) -> None:
        self.vm: Optional["VM"] = None
        self.pause_log = PauseLog()
        self.cycles = 0
        #: ``(listener, bus wrapper)`` bindings for the legacy cycle-listener
        #: API, which now rides the VM's ``GC_END`` event so legacy and bus
        #: subscribers share one ordered dispatch list.
        self._cycle_bindings: List = []
        #: Listeners registered before the collector was attached to a VM;
        #: drained into the bus by :meth:`attach`.
        self._pending_cycle_listeners: List[CycleListener] = []
        #: Live objects found by the most recent trace (consumed by the
        #: Recorder's no-need page marking and by snapshot engines).
        self.last_live_objects: List[HeapObject] = []
        #: True when the last trace covered only the young generation
        #: (remembered-set mode) — consumers needing full liveness (the
        #: Recorder's snapshot trigger) must re-trace themselves.
        self.last_trace_was_partial = False
        #: Heap mark epoch of the most recent trace.  At the same
        #: safepoint, ``obj.mark_epoch == last_mark_epoch`` is equivalent
        #: to ``obj in last_live_objects`` — collectors use it in place of
        #: materialized id sets.  Stale once anyone runs a newer trace.
        self.last_mark_epoch = 0

    # -- wiring ---------------------------------------------------------------------

    def attach(self, vm: "VM") -> None:
        self.vm = vm
        pending, self._pending_cycle_listeners = self._pending_cycle_listeners, []
        for listener in pending:
            self.add_cycle_listener(listener)
        self._on_attach()

    def _on_attach(self) -> None:
        """Subclass hook: create generations, size policies."""

    def add_cycle_listener(self, listener: CycleListener) -> None:
        """Legacy seam: subscribe ``listener(pause)`` to the VM's GC_END.

        Routing through the bus keeps one ordered dispatch list for legacy
        and agent subscribers alike (registration order is preserved
        across both APIs, which experiment shadows rely on).
        """
        if self.vm is None:
            self._pending_cycle_listeners.append(listener)
            return
        wrapper = lambda event, fn=listener: fn(event.pause)  # noqa: E731
        self._cycle_bindings.append((listener, wrapper))
        self.vm.events.subscribe(GC_END, wrapper)

    def remove_cycle_listener(self, listener: CycleListener) -> None:
        if self.vm is None:
            self._pending_cycle_listeners.remove(listener)
            return
        for index, (fn, wrapper) in enumerate(self._cycle_bindings):
            if fn is listener:
                del self._cycle_bindings[index]
                self.vm.events.unsubscribe(GC_END, wrapper)
                return
        raise ValueError(f"listener {listener!r} is not registered")

    # -- abstract policy ---------------------------------------------------------------

    @abc.abstractmethod
    def before_allocation(self, size: int) -> None:
        """Run collections if allocating ``size`` bytes demands it."""

    @abc.abstractmethod
    def resolve_allocation_gen(self, pretenure_index: int) -> int:
        """Map a profile generation index (0 = young) to a heap generation id.

        Collectors without pretenuring ignore the index and return young.
        """

    def after_allocation(self, size: int, gen_id: int) -> None:
        """Post-allocation hook (pretenured-byte accounting); optional."""

    def batch_headroom(self, gen_id: int, max_size: int) -> Tuple[int, int]:
        """``(quiet_bytes, spare_regions)`` for the batched allocation path.

        ``quiet_bytes`` is a byte budget B such that allocating any
        sequence of objects (each at most ``max_size``) totalling at most
        B into ``gen_id`` makes every :meth:`before_allocation` call a
        guaranteed no-op; ``spare_regions`` bounds how many fresh regions
        those allocations may claim without tripping a free-reserve
        trigger.  The VM's batch front-end calls :meth:`before_allocation`
        *for real* once per quiet run, skips it for the rest of the run,
        and charges :meth:`after_allocation` once with the run's byte sum
        — sound only while ``after_allocation`` is additive in ``size``
        (all shipped collectors' are).

        The default ``(0, 0)`` keeps custom collectors on the exact
        scalar sequence: every object gets its own ``before_allocation``/
        ``after_allocation`` pair.
        """
        return (0, 0)

    @abc.abstractmethod
    def handle_oom(self) -> None:
        """Last-ditch response to an allocation failure (full collection)."""

    # -- properties -----------------------------------------------------------------

    @property
    def mutator_overhead(self) -> float:
        """Multiplier on mutator op cost (barrier taxes); 1.0 = none."""
        return 1.0

    @property
    def supports_pretenuring(self) -> bool:
        return False

    @property
    def pauses(self) -> List[GCPause]:
        return self.pause_log.pauses

    # -- shared mechanics ----------------------------------------------------------------

    def _require_vm(self) -> "VM":
        if self.vm is None:
            raise GCError(f"{self.name}: collector not attached to a VM")
        return self.vm

    def trace_live(self) -> List[HeapObject]:
        """Trace the full object graph from VM roots."""
        vm = self._require_vm()
        live = vm.heap.trace_live(vm.iter_roots())
        self.last_live_objects = live
        self.last_trace_was_partial = False
        self.last_mark_epoch = vm.heap.mark_epoch
        return live

    def trace_young_live(self) -> List[HeapObject]:
        """Young-only liveness via roots + the old->young remembered set.

        G1's real young-collection mechanism: instead of tracing the whole
        heap, start from (i) roots that point directly into the young
        generation and (ii) young children of remembered-set parents, then
        close over young-to-young references only.  Conservative: a dead
        tenured parent still in the remembered set keeps its young
        children alive (floating garbage) until a full-liveness collection
        prunes it.  Stale entries (parents with no young children left)
        are dropped as they are scanned, as card refinement would.
        """
        vm = self._require_vm()
        heap = vm.heap
        stack: List[HeapObject] = [
            root for root in vm.iter_roots() if root.gen_id == 0
        ]
        stale: List[int] = []
        for parent_id, parent in heap.old_to_young_remset.items():
            kids = [c for c in parent.refs if c.gen_id == 0]
            if not kids:
                stale.append(parent_id)
                continue
            stack.extend(kids)
        for parent_id in stale:
            del heap.old_to_young_remset[parent_id]
        # Epoch marking instead of a per-cycle visited set: same traversal,
        # no set allocation or id hashing (see SimHeap.trace_live).
        epoch = heap.new_mark_epoch(partial=True)
        live: List[HeapObject] = []
        while stack:
            obj = stack.pop()
            if obj.gen_id != 0 or obj.mark_epoch == epoch:
                continue
            obj.mark_epoch = epoch
            live.append(obj)
            stack.extend(obj.refs)
        self.last_live_objects = live
        self.last_trace_was_partial = True
        self.last_mark_epoch = epoch
        return live

    def young_liveness(self) -> List[HeapObject]:
        """Liveness for a young collection, honouring the remset config."""
        vm = self._require_vm()
        if vm.config.use_remembered_sets:
            return self.trace_young_live()
        return self.trace_live()

    @staticmethod
    def live_id_set(live: List[HeapObject]) -> IdSet:
        """The ids of ``live`` as an :class:`IdSet`.

        Columnar heap kernels (:meth:`repro.heap.region.Region.live_runs`)
        answer IdSet membership for whole id-column windows at once via
        :meth:`IdSet.extract_mask`, so an IdSet live test keeps evacuation
        on the vectorized path where a plain ``set`` would fall back to
        per-element probes.
        """
        return IdSet(obj.object_id for obj in live)

    def record_pause(
        self, kind: str, duration_us: float, stats: Optional[Dict[str, int]] = None
    ) -> GCPause:
        """Advance the clock by a stop-the-world pause and log the event.

        Dispatches cycle listeners after the pause completes; the Recorder
        uses this moment to ask the Dumper for a snapshot.
        """
        vm = self._require_vm()
        self.cycles += 1
        pause = GCPause(
            cycle=self.cycles,
            start_ms=vm.clock.now_ms,
            duration_ms=duration_us / 1000.0,
            kind=kind,
            collector=self.name,
            stats=dict(stats or {}),
        )
        events = vm.events
        if events.has_listeners(GC_START):
            events.publish(
                GC_START,
                GCStartEvent(
                    cycle=self.cycles,
                    kind=kind,
                    start_ms=pause.start_ms,
                    collector=self.name,
                ),
            )
        vm.clock.advance_us(duration_us)
        self.pause_log.append(pause)
        if events.has_listeners(GC_END):
            events.publish(GC_END, GCEndEvent(pause))
        return pause
