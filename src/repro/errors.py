"""Exception hierarchy for the POLM2 reproduction."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class HeapError(ReproError):
    """Base class for simulated-heap errors."""


class OutOfMemoryError(HeapError):
    """The simulated heap cannot satisfy an allocation request."""


class RegionFullError(HeapError):
    """A region's bump pointer cannot accommodate the requested size."""


class InvalidAddressError(HeapError):
    """An address does not fall inside any mapped page or region."""


class RuntimeModelError(ReproError):
    """Base class for runtime (code model / thread / class loading) errors."""


class ClassNotLoadedError(RuntimeModelError):
    """A workload referenced a class that was never loaded into the VM."""


class DuplicateClassError(RuntimeModelError):
    """A class with the same name was loaded twice."""


class NoActiveFrameError(RuntimeModelError):
    """An allocation or call was issued outside any method frame."""


class GCError(ReproError):
    """Base class for collector errors."""


class UnknownGenerationError(GCError):
    """A generation id does not name a live generation."""


class PretenuringUnsupportedError(GCError):
    """The active collector does not implement the pretenuring API."""


class SnapshotError(ReproError):
    """Base class for snapshot/checkpoint errors."""


class ProfileError(ReproError):
    """Base class for profiling / analysis errors."""


class ConflictResolutionError(ProfileError):
    """The STTree could not resolve an allocation-site conflict."""


class ProfileFormatError(ProfileError):
    """An allocation profile file is malformed."""


class WorkloadError(ReproError):
    """Base class for workload errors."""


class UnknownWorkloadError(WorkloadError):
    """The requested workload name is not registered."""
