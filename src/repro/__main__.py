"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``profile <workload> [-o profile.json]`` — run the profiling phase and
  save the allocation profile (§3.5: one profile per expected workload).
* ``record <workload> -o <dir>`` — run the profiling phase and persist
  the *raw* recording (allocation streams + snapshots) for later offline
  analysis, the paper's actual deployment shape.
* ``analyze <dir> [-o profile.json]`` — stream a recording directory
  through the analysis stages (``ProfileBuilder``), no VM required.
* ``run <workload> [--profile URI] [--strategy ...]`` — run the
  production phase (or a baseline) and print the pause report.
  ``--profile`` takes a file path or a profile URI (``store://``,
  ``http://`` — e.g. a running ``repro serve``'s
  ``/profiles/<workload>/latest``).
* ``serve`` — run the continuous profiling daemon: budgeted profiling
  cycles per workload, cross-VM STTree merge into a content-addressed
  profile store, and an HTTP API production VMs fetch profiles from.
* ``evaluate`` — regenerate every table and figure of the paper's §5.
* ``matrix`` — run a fleet-scale (workload × strategy × seed ×
  heap-config) sweep through the sharded work-stealing scheduler, with
  live progress and pooled multi-seed percentiles.
* ``workloads`` — list available workloads.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro import AllocationProfile, POLM2Pipeline, WORKLOAD_NAMES, make_workload
from repro.config import SimConfig, resolve_object_scale
from repro.errors import ReproError
from repro.experiments.runner import ExperimentRunner, ExperimentSettings
from repro.strategies import get_strategy, strategy_names


def cmd_workloads(_args) -> int:
    for name in WORKLOAD_NAMES:
        print(name)
    return 0


def _scaled_run(args):
    """Resolve ``--object-scale`` / ``$REPRO_OBJECT_SCALE`` for a command.

    Returns ``(config_or_None, duration_ms)``: at scale 1 the config stays
    ``None`` (callers keep their defaults untouched); above 1 the heap,
    young generation, and duration all grow by the factor, so the run
    allocates ~scale× the objects at unchanged pressure ratios.
    """
    scale = resolve_object_scale(getattr(args, "object_scale", None))
    duration_ms = args.duration_ms * scale
    if scale == 1:
        return None, duration_ms
    return SimConfig(seed=args.seed).scaled(scale), duration_ms


def cmd_profile(args) -> int:
    config, duration_ms = _scaled_run(args)
    if args.keep_recording:
        # Record-then-analyze: leaves the raw recording behind in the
        # chosen snapshot format and produces the same profile (the
        # streaming replay is digest-identical to the in-VM path).
        from repro.core.offline import analyze_recording, record_to_dir

        record_to_dir(
            args.workload,
            args.keep_recording,
            duration_ms=duration_ms,
            seed=args.seed,
            config=config,
            snapshot_format=args.snapshot_format,
        )
        print(f"recording kept -> {args.keep_recording}")
        profile = analyze_recording(args.keep_recording)
    else:
        pipeline = POLM2Pipeline(
            lambda: make_workload(args.workload, seed=args.seed),
            config=config,
        )
        profile = pipeline.run_profiling_phase(duration_ms=duration_ms)
    print(
        f"{profile.instrumented_site_count} sites, "
        f"{profile.generations_used} generations, "
        f"{profile.conflicts_detected} conflicts"
    )
    profile.save(args.output)
    print(f"saved -> {args.output}")
    return 0


def cmd_record(args) -> int:
    from repro.core.offline import record_to_dir

    config, duration_ms = _scaled_run(args)
    record_to_dir(
        args.workload,
        args.output,
        duration_ms=duration_ms,
        seed=args.seed,
        config=config,
        snapshot_format=args.snapshot_format,
    )
    print(f"recording saved -> {args.output}")
    return 0


def cmd_analyze(args) -> int:
    from repro.core.offline import analyze_recording
    from repro.core.sttree import STTREE_SCHEMA_VERSION

    profile = analyze_recording(args.recording_dir)
    print(
        f"{profile.instrumented_site_count} sites, "
        f"{profile.generations_used} generations, "
        f"{profile.conflicts_detected} conflicts"
    )
    if profile.sttree is not None:
        print(
            f"profile IR: schema v{STTREE_SCHEMA_VERSION}, "
            f"digest {profile.sttree.digest()[:16]}"
        )
    profile.save(args.output)
    print(f"saved -> {args.output}")
    return 0


def cmd_run(args) -> int:
    config, duration_ms = _scaled_run(args)
    pipeline = POLM2Pipeline(
        lambda: make_workload(args.workload, seed=args.seed), config=config
    )
    spec = get_strategy(args.strategy)
    profile = None
    if spec.needs_profile:
        if args.profile:
            from repro.core.profilesource import profile_source

            source = profile_source(args.profile)
            profile = source.resolve()
            print(f"profile <- {source.describe()}")
        else:
            print("(no --profile given: running the profiling phase first)")
            profile = pipeline.run_profiling_phase(duration_ms=duration_ms / 2)
    result = pipeline.run(spec, duration_ms=duration_ms, profile=profile)
    print(result.pause_report())
    print(f"throughput: {result.throughput_ops_s:.0f} ops/s")
    print(f"peak memory: {result.peak_memory_bytes / 2**20:.1f} MiB")
    return 0


def cmd_serve(args) -> int:
    import signal

    from repro.serve import ServeConfig, ServeDaemon

    workloads = [w.strip() for w in args.workloads.split(",") if w.strip()]
    for name in workloads:
        if name not in WORKLOAD_NAMES:
            known = ", ".join(WORKLOAD_NAMES)
            raise ReproError(f"unknown workload {name!r} (known: {known})")
    config = ServeConfig(
        workloads=workloads,
        instances=args.instances,
        seed=args.seed,
        sim_duration_ms=args.duration_ms,
        cycle_budget_s=args.cycle_budget_s,
        max_rounds=args.cycles,
        store_dir=args.store_dir,
        host=args.host,
        port=args.port,
        round_interval_s=args.interval_s,
        heap_bytes=args.heap_bytes,
        young_bytes=args.young_bytes,
    )
    daemon = ServeDaemon(config)

    def _on_signal(_signum, _frame) -> None:
        daemon.request_stop()

    try:
        signal.signal(signal.SIGTERM, _on_signal)
        signal.signal(signal.SIGINT, _on_signal)
    except ValueError:
        pass  # not the main thread (tests drive main() directly)

    url = daemon.start_service()
    # The smoke tests (and operators' readiness probes) key off this
    # exact line; keep it first and flushed.
    print(f"serving on {url}", flush=True)
    print(
        f"workloads: {', '.join(workloads)}  instances: {args.instances}  "
        f"cycle budget: {args.cycle_budget_s:g}s",
        flush=True,
    )

    def on_report(report) -> None:
        status = (
            "ok"
            if report.completed
            else f"TRUNCATED after {report.truncated_after} "
            f"(+{report.overrun_s:.2f}s over budget)"
        )
        print(
            f"cycle {report.index} {report.workload} seed={report.seed} "
            f"{report.elapsed_s:.2f}s/{report.budget_s:g}s {status}",
            flush=True,
        )

    rounds = daemon.run(on_report=on_report)
    print(f"stopped after {rounds} round(s)")
    return 0


def cmd_evaluate(args) -> int:
    from repro.metrics.report import full_report

    settings = ExperimentSettings(
        profiling_ms=args.profiling_ms,
        production_ms=args.duration_ms,
        jobs=args.jobs,
        cache_dir=None if args.no_cache else args.cache_dir,
    )
    runner = ExperimentRunner(settings)
    if settings.jobs > 1:
        # Fill the whole matrix in parallel first; the figure modules
        # then aggregate from warm in-memory cells.
        runner.full_matrix(jobs=settings.jobs)
    print(full_report(runner))
    return 0


def cmd_matrix(args) -> int:
    from repro.experiments.matrix import (
        HEAP_CONFIGS,
        parse_seeds,
        pooled_pause_percentiles,
    )
    from repro.metrics.percentiles import PAPER_PERCENTILES

    def split(raw: str, universe, what: str) -> tuple:
        if raw == "all":
            return tuple(universe)
        names = tuple(name.strip() for name in raw.split(",") if name.strip())
        for name in names:
            if name not in universe:
                known = ", ".join(universe)
                raise ReproError(f"unknown {what} {name!r} (known: {known})")
        if not names:
            raise ReproError(f"no {what} named in {raw!r}")
        return names

    workloads = split(args.workloads, WORKLOAD_NAMES, "workload")
    strategies = split(args.strategies, strategy_names(), "strategy")
    heap_configs = split(args.heap_configs, tuple(HEAP_CONFIGS), "heap config")
    seeds_raw = args.seeds or os.environ.get("REPRO_SEEDS") or None
    settings = ExperimentSettings(
        profiling_ms=args.profiling_ms,
        production_ms=args.duration_ms,
        seeds=parse_seeds(seeds_raw) if seeds_raw else None,
        jobs=args.jobs,
        cache_dir=None if args.no_cache else args.cache_dir,
        cache_backend=None if args.no_cache else args.cache_backend,
        profile_source=args.profile_source,
    )
    runner = ExperimentRunner(settings)
    computed = cached = 0
    cells: dict = {}
    last = None
    for item in runner.sweep(
        workloads=workloads,
        strategies=strategies,
        heap_configs=heap_configs,
        mode=args.mode,
    ):
        last = item.progress
        cached += item.cached
        computed += not item.cached
        if not item.key.is_profiling:
            cells[item.key] = item.result
        if not args.no_progress:
            print(
                f"[{item.progress.done}/{item.progress.total}] "
                f"{item.key.cell_id:<48} "
                f"{item.progress.cells_per_sec:>7.2f} cells/s  "
                f"ETA {item.progress.eta_s:>5.0f}s"
                f"{'  (cached)' if item.cached else ''}"
            )
    if last is not None:
        print(
            f"{last.done} cells ({cached} cached, {computed} computed) "
            f"in {last.elapsed_s:.1f}s — {last.cells_per_sec:.2f} cells/s"
        )
    headers = [f"P{pct:g}" for pct in PAPER_PERCENTILES] + ["max"]
    for workload, series in pooled_pause_percentiles(cells).items():
        print(f"\n--- {workload}: pooled pause percentiles (ms) ---")
        print("          " + " ".join(f"{h:>9}" for h in headers))
        for name, pooled in series.items():
            print(
                f"{name:>9} "
                + " ".join(f"{v:>9.2f}" for v in pooled.row)
                + f"   [{pooled.support}]"
            )
    return 0


def _add_object_scale_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--object-scale",
        type=int,
        default=None,
        metavar="N",
        help="multiply heap size, young size, and duration by N so the "
        "run allocates ~N× the objects (default: $REPRO_OBJECT_SCALE or 1)",
    )


def _add_snapshot_format_option(parser: argparse.ArgumentParser) -> None:
    from repro.snapshot.snapshot import SNAPSHOT_FORMATS

    parser.add_argument(
        "--snapshot-format",
        choices=SNAPSHOT_FORMATS,
        default=None,
        help="on-disk snapshot store format (default: "
        "$REPRO_SNAPSHOT_FORMAT or binary)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("workloads", help="list workloads").set_defaults(
        func=cmd_workloads
    )

    p_profile = sub.add_parser("profile", help="run the profiling phase")
    p_profile.add_argument("workload", choices=WORKLOAD_NAMES)
    p_profile.add_argument("-o", "--output", default="profile.json")
    p_profile.add_argument("--duration-ms", type=float, default=30_000.0)
    p_profile.add_argument("--seed", type=int, default=42)
    p_profile.add_argument(
        "--keep-recording",
        metavar="DIR",
        help="also persist the raw recording to DIR (record + analyze)",
    )
    _add_object_scale_option(p_profile)
    _add_snapshot_format_option(p_profile)
    p_profile.set_defaults(func=cmd_profile)

    p_record = sub.add_parser("record", help="record raw profiling data")
    p_record.add_argument("workload", choices=WORKLOAD_NAMES)
    p_record.add_argument("-o", "--output", default="recording")
    p_record.add_argument("--duration-ms", type=float, default=30_000.0)
    p_record.add_argument("--seed", type=int, default=42)
    _add_object_scale_option(p_record)
    _add_snapshot_format_option(p_record)
    p_record.set_defaults(func=cmd_record)

    p_analyze = sub.add_parser("analyze", help="analyze a recording dir")
    p_analyze.add_argument("recording_dir")
    p_analyze.add_argument("-o", "--output", default="profile.json")
    p_analyze.set_defaults(func=cmd_analyze)

    p_run = sub.add_parser("run", help="run production phase or a baseline")
    p_run.add_argument("workload", choices=WORKLOAD_NAMES)
    # Choices come from the strategy registry: registering a new
    # StrategySpec makes it runnable here with zero CLI edits.
    p_run.add_argument(
        "--strategy",
        choices=strategy_names(),
        default="polm2",
    )
    p_run.add_argument(
        "--profile",
        help="allocation profile: a JSON file path, store://DIR#WORKLOAD, "
        "or http://host:port/profiles/WORKLOAD/latest (a repro serve)",
    )
    p_run.add_argument("--duration-ms", type=float, default=60_000.0)
    p_run.add_argument("--seed", type=int, default=42)
    _add_object_scale_option(p_run)
    p_run.set_defaults(func=cmd_run)

    p_eval = sub.add_parser("evaluate", help="regenerate all tables/figures")
    p_eval.add_argument("--duration-ms", type=float, default=60_000.0)
    p_eval.add_argument("--profiling-ms", type=float, default=30_000.0)
    p_eval.add_argument(
        "--jobs",
        type=int,
        default=int(os.environ.get("REPRO_JOBS", 1)),
        help="worker processes for the experiment matrix "
        "(default: $REPRO_JOBS or 1)",
    )
    p_eval.add_argument(
        "--cache-dir",
        default=os.environ.get("REPRO_CACHE_DIR", ".repro_cache"),
        help="on-disk result cache location (default: $REPRO_CACHE_DIR "
        "or .repro_cache)",
    )
    p_eval.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the on-disk result cache",
    )
    p_eval.set_defaults(func=cmd_evaluate)

    p_serve = sub.add_parser(
        "serve",
        help="run the continuous profiling daemon + profile service",
    )
    p_serve.add_argument(
        "--workloads",
        default="cassandra-wi",
        help="comma-separated workloads to profile continuously",
    )
    p_serve.add_argument(
        "--instances",
        type=int,
        default=1,
        help="simulated VM instances per workload (merged per cycle)",
    )
    p_serve.add_argument("--seed", type=int, default=42)
    p_serve.add_argument(
        "--duration-ms",
        type=float,
        default=1_500.0,
        help="virtual ms profiled per cycle (default 1500)",
    )
    p_serve.add_argument(
        "--cycle-budget-s",
        type=float,
        default=60.0,
        help="wall-clock budget per cycle, post-processing included",
    )
    p_serve.add_argument(
        "--cycles",
        type=int,
        default=None,
        help="rounds to run before exiting (default: until SIGTERM)",
    )
    p_serve.add_argument(
        "--store-dir",
        default="profile-store",
        help="content-addressed profile store (and crash-safe state)",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port",
        type=int,
        default=0,
        help="HTTP port (default 0: pick an ephemeral port)",
    )
    p_serve.add_argument(
        "--interval-s",
        type=float,
        default=0.0,
        help="idle gap between rounds, seconds",
    )
    p_serve.add_argument(
        "--heap-bytes",
        type=int,
        default=None,
        help="simulated heap size (small heaps promote sooner; "
        "default: SimConfig default)",
    )
    p_serve.add_argument(
        "--young-bytes",
        type=int,
        default=None,
        help="simulated young-generation size",
    )
    p_serve.set_defaults(func=cmd_serve)

    from repro.experiments.matrix import HEAP_CONFIGS, SCHEDULER_MODES

    p_matrix = sub.add_parser(
        "matrix",
        help="run a fleet-scale (workload × strategy × seed × heap) sweep",
    )
    p_matrix.add_argument(
        "--workloads",
        default="all",
        help="comma-separated workload names, or 'all' (default)",
    )
    p_matrix.add_argument(
        "--strategies",
        default="g1,ng2c,polm2,c4",
        help="comma-separated strategy names, or 'all' for the registry",
    )
    p_matrix.add_argument(
        "--seeds",
        default=None,
        help="seeds to sweep: N, N-M (inclusive), or N,M,... "
        "(default: $REPRO_SEEDS or the single default seed)",
    )
    p_matrix.add_argument(
        "--heap-configs",
        default="default",
        help="comma-separated heap configs or 'all' "
        f"(known: {', '.join(HEAP_CONFIGS)})",
    )
    p_matrix.add_argument(
        "--jobs",
        type=int,
        default=int(os.environ.get("REPRO_JOBS", 1)),
        help="worker processes (default: $REPRO_JOBS or 1)",
    )
    p_matrix.add_argument(
        "--mode",
        choices=SCHEDULER_MODES,
        default="sharded",
        help="scheduler: sharded work-stealing DAG (default), the legacy "
        "wave barrier, or serial",
    )
    p_matrix.add_argument(
        "--cache-backend",
        default=os.environ.get("REPRO_CACHE_BACKEND") or None,
        help="cache backend spec: dir:///PATH or sqlite:///PATH.db "
        "(default: $REPRO_CACHE_BACKEND, else a dir cache at --cache-dir)",
    )
    p_matrix.add_argument(
        "--cache-dir",
        default=os.environ.get("REPRO_CACHE_DIR", ".repro_cache"),
        help="dir-backend cache location (default: $REPRO_CACHE_DIR "
        "or .repro_cache)",
    )
    p_matrix.add_argument(
        "--no-cache", action="store_true", help="disable the result cache"
    )
    p_matrix.add_argument(
        "--profile-source",
        default=os.environ.get("REPRO_PROFILE_SOURCE") or None,
        metavar="URI",
        help="fetch profiles from URI ({workload} substituted) instead of "
        "sweeping profiling cells — e.g. "
        "http://host:port/profiles/{workload}/latest against a running "
        "repro serve (default: $REPRO_PROFILE_SOURCE)",
    )
    p_matrix.add_argument("--duration-ms", type=float, default=60_000.0)
    p_matrix.add_argument("--profiling-ms", type=float, default=30_000.0)
    p_matrix.add_argument(
        "--no-progress",
        action="store_true",
        help="suppress per-cell progress lines",
    )
    p_matrix.set_defaults(func=cmd_matrix)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
