"""GC root registry: static references plus thread stacks."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.heap.objects import HeapObject


class RootRegistry:
    """Named static roots (class statics, JNI handles) for the whole VM.

    Workloads pin their top-level structures (a store, an index, a graph)
    here; everything transitively reachable from these roots or from thread
    frames survives collection.
    """

    def __init__(self) -> None:
        self._statics: Dict[str, HeapObject] = {}

    def pin(self, name: str, obj: HeapObject) -> HeapObject:
        """Register (or replace) a named static root."""
        self._statics[name] = obj
        return obj

    def unpin(self, name: str) -> Optional[HeapObject]:
        """Drop a named static root; returns the object previously pinned."""
        return self._statics.pop(name, None)

    def get(self, name: str) -> Optional[HeapObject]:
        return self._statics.get(name)

    def iter_static_roots(self) -> Iterator[HeapObject]:
        return iter(list(self._statics.values()))

    @property
    def names(self) -> List[str]:
        return sorted(self._statics)

    def __len__(self) -> int:
        return len(self._statics)
