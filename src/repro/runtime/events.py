"""The typed VM event bus and the :class:`VMAgent` interface.

The paper's architecture is a set of *agents* attached to the JVM through
one uniform mechanism — load-time agents plus GC-cycle callbacks (§3, §4).
This module is that seam for the simulated runtime: a small typed event
bus owned by the :class:`~repro.runtime.vm.VM`, and an agent protocol that
the Recorder, Dumper, Instrumenter, telemetry, and any third-party
profiler plug into via ``vm.attach_agent(agent)``.

Event kinds
-----------

``CLASS_LOAD``
    A class model finished loading (all transformers applied).  Payload:
    :class:`ClassLoadEvent`.  Guaranteed to precede every allocation made
    from that class's sites.
``ALLOCATION``
    One allocation through a record-hooked site.  **Hot path**: to keep
    the interned-trace fast path of ``VM.allocate_at_site`` intact, no
    event object is boxed — subscribers are called with the raw
    ``(obj, site, trace)`` triple, exactly the historical alloc-listener
    signature.  When no subscriber exists the VM skips trace capture
    entirely (the "no listeners → no trace capture" short-circuit).
``ALLOCATION_BATCH``
    One homogeneous run of allocations through a record-hooked site on
    the batched fast path (``VM.allocate_batch``).  Payload:
    :class:`AllocationBatchEvent` — the shared site/trace plus the first
    object id and the per-object sizes; object ids are consecutive, so
    ``range(first_object_id, first_object_id + count)`` enumerates them
    in allocation order.  Consumers that charge per-allocation mutator
    time must charge it once per object (the virtual clock is a float
    accumulator; one ``n×cost`` addition is not byte-identical to ``n``
    additions of ``cost``).  An agent defining only ``on_allocation``
    (no batch hook) forces ``VM.allocate_batch`` onto the scalar
    dispatch path so it never misses an allocation.
``SAFEPOINT``
    A workload-declared safepoint (memtable flush, segment merge, batch
    completion).  Payload: :class:`SafepointEvent`.
``GC_START`` / ``GC_END``
    Bracketing one stop-the-world collection, with the cycle kind
    (young / mixed / gen / full / concurrent).  Payloads:
    :class:`GCStartEvent` / :class:`GCEndEvent`.  ``GC_END`` replaces the
    historical per-collector cycle-listener list; it is guaranteed to be
    published before any ``SNAPSHOT_POINT`` of the same cycle.
``SNAPSHOT_POINT``
    The Recorder decided this cycle ends with a checkpoint: the no-need
    pages are already marked and the full live set is attached.  Payload:
    :class:`SnapshotPointEvent`.  The Dumper subscribes here.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Sequence, TYPE_CHECKING

from repro.errors import ReproError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.idset import IdSet
    from repro.gc.events import GCPause
    from repro.heap.objects import HeapObject
    from repro.runtime.code import AllocSite, ClassModel
    from repro.runtime.vm import VM

CLASS_LOAD = "class-load"
ALLOCATION = "allocation"
ALLOCATION_BATCH = "allocation-batch"
SAFEPOINT = "safepoint"
GC_START = "gc-start"
GC_END = "gc-end"
SNAPSHOT_POINT = "snapshot-point"

EVENT_KINDS = (
    CLASS_LOAD,
    ALLOCATION,
    ALLOCATION_BATCH,
    SAFEPOINT,
    GC_START,
    GC_END,
    SNAPSHOT_POINT,
)


@dataclasses.dataclass(frozen=True)
class ClassLoadEvent:
    """A class finished loading through the VM's class loader."""

    class_model: "ClassModel"


@dataclasses.dataclass(frozen=True)
class AllocationBatchEvent:
    """One homogeneous batch run allocated through a record-hooked site.

    Every object in the run shares ``site``, ``trace``/``trace_id``, and
    ``gen_id``; ids are consecutive from ``first_object_id`` in
    allocation order, and ``sizes[i]`` is the size of object
    ``first_object_id + i``.
    """

    site: "AllocSite"
    trace: tuple
    trace_id: int
    first_object_id: int
    count: int
    sizes: Sequence[int]
    gen_id: int


@dataclasses.dataclass(frozen=True)
class SafepointEvent:
    """A workload-declared safepoint (e.g. a memtable flush)."""

    kind: str
    at_ms: float
    source: Optional[str] = None


@dataclasses.dataclass(frozen=True)
class GCStartEvent:
    """A stop-the-world collection is beginning."""

    cycle: int
    kind: str
    start_ms: float
    collector: str


@dataclasses.dataclass(frozen=True)
class GCEndEvent:
    """A stop-the-world collection finished; the pause is fully accounted."""

    pause: "GCPause"


@dataclasses.dataclass(frozen=True)
class SnapshotPointEvent:
    """The cycle ends with a checkpoint; ``live`` is the full live set.

    ``live_ids`` optionally carries the same set as a prebuilt
    :class:`~repro.core.idset.IdSet` so downstream consumers (no-need
    marking, the CRIU engine) share one compact-kernel build instead of
    each re-deriving it from the object list.
    """

    pause: "GCPause"
    live: Sequence["HeapObject"]
    live_ids: Optional["IdSet"] = None


class EventBus:
    """Per-VM typed publish/subscribe fan-out.

    Dispatch order is subscription order.  The bus hands the VM a direct
    reference to its internal ``ALLOCATION`` list (:meth:`listener_list`)
    so the allocation hot path can test emptiness without a dict lookup;
    the list object is therefore mutated in place and never rebound.
    """

    __slots__ = ("_subscribers",)

    def __init__(self) -> None:
        self._subscribers: Dict[str, List[Callable]] = {
            kind: [] for kind in EVENT_KINDS
        }

    def _listeners(self, kind: str) -> List[Callable]:
        try:
            return self._subscribers[kind]
        except KeyError:
            raise ReproError(f"unknown VM event kind {kind!r}") from None

    def subscribe(self, kind: str, listener: Callable) -> None:
        self._listeners(kind).append(listener)

    def unsubscribe(self, kind: str, listener: Callable) -> None:
        self._listeners(kind).remove(listener)

    def listener_list(self, kind: str) -> List[Callable]:
        """The live (mutated in place) subscriber list for ``kind``."""
        return self._listeners(kind)

    def has_listeners(self, kind: str) -> bool:
        return bool(self._listeners(kind))

    def publish(self, kind: str, event) -> None:
        for listener in self._listeners(kind):
            listener(event)


class VMAgent:
    """Base class for VM agents (the ``-javaagent`` analogue).

    Subclasses opt into events by *defining* the matching hook — the VM
    inspects the agent at :meth:`~repro.runtime.vm.VM.attach_agent` time
    and subscribes exactly the hooks present, so an agent pays only for
    the events it consumes:

    ``transform(class_model)``
        registered as a class transformer (load-time rewriting);
    ``on_class_load(event: ClassLoadEvent)``
    ``on_allocation(obj, site, trace)``   *(hot path — raw args)*
    ``on_allocation_batch(event: AllocationBatchEvent)``
    ``on_safepoint(event: SafepointEvent)``
    ``on_gc_start(event: GCStartEvent)``
    ``on_gc_end(event: GCEndEvent)``
    ``on_snapshot_point(event: SnapshotPointEvent)``

    ``on_attach(vm)`` runs first (validation and wiring; raising there
    leaves the VM untouched) and ``on_detach(vm)`` runs last on
    :meth:`~repro.runtime.vm.VM.detach_agent`.  :meth:`telemetry` lets an
    agent contribute counters to the run's :class:`PhaseResult`.
    """

    def on_attach(self, vm: "VM") -> None:
        """Validate and wire up; called before any subscription exists."""

    def on_detach(self, vm: "VM") -> None:
        """Release resources; called after every subscription is removed."""

    def telemetry(self) -> Dict[str, int]:
        """Counters merged into the run's ``PhaseResult.telemetry``."""
        return {}


#: (event kind, agent hook name) pairs inspected by ``VM.attach_agent``.
AGENT_HOOKS = (
    (CLASS_LOAD, "on_class_load"),
    (ALLOCATION, "on_allocation"),
    (ALLOCATION_BATCH, "on_allocation_batch"),
    (SAFEPOINT, "on_safepoint"),
    (GC_START, "on_gc_start"),
    (GC_END, "on_gc_end"),
    (SNAPSHOT_POINT, "on_snapshot_point"),
)
