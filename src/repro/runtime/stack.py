"""Thread frames and stack traces."""

from __future__ import annotations

from typing import List, Tuple

from repro.heap.objects import HeapObject
from repro.runtime.code import CodeLocation, MethodModel


class Frame:
    """One activation record on a simulated thread stack.

    ``current_line`` tracks the line the frame is executing — updated at
    every call and allocation so that captured stack traces carry the call
    chain the paper's Analyzer needs (class, method, line per frame).

    ``locals`` holds heap objects referenced from the frame; they are GC
    roots until the frame pops.
    """

    __slots__ = ("method", "current_line", "locals")

    def __init__(self, method: MethodModel) -> None:
        self.method = method
        self.current_line = 0
        self.locals: List[HeapObject] = []

    @property
    def location(self) -> CodeLocation:
        return (self.method.class_name, self.method.name, self.current_line)

    def keep(self, obj: HeapObject) -> HeapObject:
        """Root ``obj`` in this frame (a local-variable store)."""
        self.locals.append(obj)
        return obj

    def drop(self, obj: HeapObject) -> None:
        """Remove one local-variable root (best effort; no-op if absent)."""
        try:
            self.locals.remove(obj)
        except ValueError:
            pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Frame({self.method.class_name}.{self.method.name}:{self.current_line})"


def capture_stack_trace(frames: List[Frame]) -> Tuple[CodeLocation, ...]:
    """Snapshot the call chain, innermost frame last.

    Every frame contributes ⟨class, method, current line⟩; for outer frames
    the current line is the call site through which control reached the
    next frame, and for the innermost frame it is the allocation line —
    matching the stack traces the Recorder logs (§3.2).
    """
    return tuple(frame.location for frame in frames)
