"""Deterministic virtual time.

All durations in the reproduction are *virtual*: mutator operations and GC
pauses advance this clock by amounts charged from the cost model.  Nothing
reads the host clock, so runs are bit-for-bit reproducible and the measured
ratios are independent of the machine executing the simulation.
"""

from __future__ import annotations


class VirtualClock:
    """A monotonically advancing virtual clock with microsecond resolution."""

    __slots__ = ("_now_us",)

    def __init__(self, start_us: float = 0.0) -> None:
        if start_us < 0:
            raise ValueError("clock cannot start before zero")
        self._now_us = float(start_us)

    @property
    def now_us(self) -> float:
        return self._now_us

    @property
    def now_ms(self) -> float:
        return self._now_us / 1000.0

    @property
    def now_s(self) -> float:
        return self._now_us / 1_000_000.0

    def advance_us(self, delta_us: float) -> float:
        """Advance the clock; returns the new time in microseconds."""
        if delta_us < 0:
            raise ValueError("time cannot move backwards")
        self._now_us += delta_us
        return self._now_us

    def advance_ms(self, delta_ms: float) -> float:
        return self.advance_us(delta_ms * 1000.0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VirtualClock(now={self.now_ms:.3f} ms)"
