"""Class loading with agent transformer hooks.

Java agents register ``ClassFileTransformer`` instances that may rewrite
each class as it is loaded.  The simulated :class:`ClassLoader` does the
same over :class:`~repro.runtime.code.ClassModel` objects: each registered
:class:`ClassTransformer` receives a private copy of the class being loaded
and may mutate it (flip ``@Gen`` flags, add Recorder hooks, set call-site
generation directives).  Workload code always executes against the loaded,
transformed models.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Protocol

from repro.errors import ClassNotLoadedError, DuplicateClassError
from repro.runtime.code import ClassModel, MethodModel


class ClassTransformer(Protocol):
    """The ``ClassFileTransformer`` analogue implemented by agents."""

    def transform(self, class_model: ClassModel) -> ClassModel:
        """Return the (possibly rewritten) class model to load."""
        ...  # pragma: no cover - protocol


class ClassLoader:
    """Loads class models, passing each through registered transformers."""

    def __init__(self) -> None:
        self._transformers: List[ClassTransformer] = []
        self._loaded: Dict[str, ClassModel] = {}
        #: Number of classes that were modified by at least one transformer
        #: (load-time instrumentation work, cf. the paper's note that the
        #: Instrumenter's overhead exists only while classes load).
        self.transformed_class_count = 0
        #: Sink called with each fully transformed class; the owning VM
        #: points this at its CLASS_LOAD event publication.
        self.on_loaded: Optional[Callable[[ClassModel], None]] = None

    # -- agent registration -------------------------------------------------------

    def add_transformer(self, transformer: ClassTransformer) -> None:
        self._transformers.append(transformer)

    def remove_transformer(self, transformer: ClassTransformer) -> None:
        self._transformers.remove(transformer)

    @property
    def transformers(self) -> List[ClassTransformer]:
        return list(self._transformers)

    # -- loading --------------------------------------------------------------------

    def load(self, class_model: ClassModel) -> ClassModel:
        """Load a class, applying every transformer in registration order.

        The input model is never mutated: transformers work on a copy, as
        bytecode rewriting produces a new class file.
        """
        if class_model.name in self._loaded:
            raise DuplicateClassError(f"class {class_model.name!r} already loaded")
        loaded = class_model.copy()
        transformed = False
        for transformer in self._transformers:
            result = transformer.transform(loaded)
            if result is not loaded:
                transformed = True
            loaded = result
        if self._transformers and transformed:
            self.transformed_class_count += 1
        self._loaded[loaded.name] = loaded
        if self.on_loaded is not None:
            self.on_loaded(loaded)
        return loaded

    def load_all(self, class_models: Iterable[ClassModel]) -> List[ClassModel]:
        return [self.load(model) for model in class_models]

    # -- lookup ----------------------------------------------------------------------

    def lookup(self, class_name: str) -> ClassModel:
        try:
            return self._loaded[class_name]
        except KeyError:
            raise ClassNotLoadedError(f"class {class_name!r} not loaded") from None

    def get(self, class_name: str) -> Optional[ClassModel]:
        return self._loaded.get(class_name)

    def method(self, class_name: str, method_name: str) -> MethodModel:
        klass = self.lookup(class_name)
        method = klass.get_method(method_name)
        if method is None:
            raise ClassNotLoadedError(
                f"class {class_name!r} has no method {method_name!r}"
            )
        return method

    @property
    def loaded_classes(self) -> List[str]:
        return sorted(self._loaded)
