"""The VM façade: heap + clock + threads + class loader + collector."""

from __future__ import annotations

import warnings
from array import array
from bisect import bisect_right
from itertools import accumulate
from typing import Callable, Iterator, List, Optional, Sequence, TYPE_CHECKING

from repro.config import SimConfig
from repro.errors import OutOfMemoryError, ReproError
from repro.heap.heap import SimHeap
from repro.heap.objects import HeapObject
from repro.runtime.classloader import ClassLoader
from repro.runtime.clock import VirtualClock
from repro.runtime.code import AllocSite, SiteRegistry
from repro.runtime.events import (
    AGENT_HOOKS,
    ALLOCATION,
    ALLOCATION_BATCH,
    CLASS_LOAD,
    SAFEPOINT,
    AllocationBatchEvent,
    ClassLoadEvent,
    EventBus,
    SafepointEvent,
)
from repro.runtime.roots import RootRegistry
from repro.runtime.thread import SimThread

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.gc.base import GenerationalCollector
    from repro.runtime.code import ClassModel

#: Allocation listener: ``(obj, site, stack_trace)`` — the Recorder's hook.
AllocListener = Callable[[HeapObject, AllocSite, tuple], None]


class VM:
    """A simulated JVM instance.

    Wires together the heap, the virtual clock, the class loader (with its
    agent transformers), application threads, the GC root set, and a
    pluggable collector.  Workloads interact with the VM through
    :class:`~repro.runtime.thread.SimThread` (calls + allocations) and
    :meth:`tick_op` (mutator work).
    """

    def __init__(
        self,
        config: Optional[SimConfig] = None,
        collector: Optional["GenerationalCollector"] = None,
    ) -> None:
        self.config = config or SimConfig()
        self.clock = VirtualClock()
        self.heap = SimHeap(self.config)
        self.classloader = ClassLoader()
        self.roots = RootRegistry()
        self.sites = SiteRegistry()
        self.threads: List[SimThread] = []
        #: The typed event bus every agent subscribes through.
        self.events = EventBus()
        #: Hot-path alias of the bus's ALLOCATION subscriber list (the
        #: same list object, mutated in place): ``allocate_at_site`` tests
        #: its emptiness per allocation, and an empty list means no trace
        #: is captured at all — the PR 2 fast-path invariant.
        self._alloc_listeners: List[AllocListener] = self.events.listener_list(
            ALLOCATION
        )
        #: Same hot-path aliasing for the batched front-end's event list.
        self._batch_alloc_listeners: List[Callable] = self.events.listener_list(
            ALLOCATION_BATCH
        )
        #: ALLOCATION subscribers with no batch hook (legacy shims, agents
        #: defining only ``on_allocation``).  While any exist,
        #: ``allocate_batch`` on a record-hooked site falls back to scalar
        #: dispatch so no subscriber ever misses an allocation.
        self._scalar_only_alloc_listeners = 0
        self._agents: List = []
        self.classloader.on_loaded = self._publish_class_load
        self.ops_completed = 0
        #: Executed ``setGeneration`` API calls (the overhead §4.4's
        #: push-up optimization minimizes; exercised by ablation benches).
        self.set_generation_calls = 0
        self.collector: Optional["GenerationalCollector"] = None
        if collector is not None:
            self.set_collector(collector)

    # -- wiring ---------------------------------------------------------------------

    def set_collector(self, collector: "GenerationalCollector") -> None:
        self.collector = collector
        collector.attach(self)

    def new_thread(self, name: str) -> SimThread:
        thread = SimThread(self, name)
        self.threads.append(thread)
        return thread

    # -- agents -----------------------------------------------------------------------

    def attach_agent(self, agent) -> None:
        """Attach a :class:`~repro.runtime.events.VMAgent` to this VM.

        Runs ``agent.on_attach(vm)`` first (validation — a raise leaves
        the VM untouched), then registers the agent as a class transformer
        if it defines ``transform``, then subscribes every ``on_<event>``
        hook the agent defines.  This is the one seam through which the
        Recorder, Dumper, Instrumenter, telemetry, and any third-party
        profiler reach the VM.
        """
        if agent in self._agents:
            raise ReproError(f"agent {agent!r} is already attached")
        on_attach = getattr(agent, "on_attach", None)
        if callable(on_attach):
            on_attach(self)
        if callable(getattr(agent, "transform", None)):
            self.classloader.add_transformer(agent)
        for kind, hook_name in AGENT_HOOKS:
            hook = getattr(agent, hook_name, None)
            if callable(hook):
                self.events.subscribe(kind, hook)
        if callable(getattr(agent, "on_allocation", None)) and not callable(
            getattr(agent, "on_allocation_batch", None)
        ):
            self._scalar_only_alloc_listeners += 1
        self._agents.append(agent)

    def detach_agent(self, agent) -> None:
        """Detach a previously attached agent (symmetric teardown)."""
        if agent not in self._agents:
            raise ReproError(f"agent {agent!r} is not attached")
        self._agents.remove(agent)
        for kind, hook_name in AGENT_HOOKS:
            hook = getattr(agent, hook_name, None)
            if callable(hook):
                self.events.unsubscribe(kind, hook)
        if callable(getattr(agent, "on_allocation", None)) and not callable(
            getattr(agent, "on_allocation_batch", None)
        ):
            self._scalar_only_alloc_listeners -= 1
        if callable(getattr(agent, "transform", None)):
            self.classloader.remove_transformer(agent)
        on_detach = getattr(agent, "on_detach", None)
        if callable(on_detach):
            on_detach(self)

    @property
    def agents(self) -> List:
        return list(self._agents)

    def safepoint(self, kind: str, source: Optional[str] = None) -> None:
        """Publish a workload-declared safepoint (e.g. a memtable flush)."""
        if self.events.has_listeners(SAFEPOINT):
            self.events.publish(
                SAFEPOINT,
                SafepointEvent(kind=kind, at_ms=self.clock.now_ms, source=source),
            )

    def _publish_class_load(self, class_model: "ClassModel") -> None:
        if self.events.has_listeners(CLASS_LOAD):
            self.events.publish(CLASS_LOAD, ClassLoadEvent(class_model))

    # -- legacy listener API (shims over the bus) ----------------------------------

    def add_alloc_listener(self, listener: AllocListener) -> None:
        """Deprecated seam: subscribe to ALLOCATION on :attr:`events`."""
        warnings.warn(
            "VM.add_alloc_listener is deprecated; subscribe to ALLOCATION "
            "on vm.events, or attach a VMAgent defining on_allocation",
            DeprecationWarning,
            stacklevel=2,
        )
        self.events.subscribe(ALLOCATION, listener)
        # A bare callable has no batch hook: keep allocate_batch honest.
        self._scalar_only_alloc_listeners += 1

    def remove_alloc_listener(self, listener: AllocListener) -> None:
        warnings.warn(
            "VM.remove_alloc_listener is deprecated; unsubscribe from "
            "ALLOCATION on vm.events",
            DeprecationWarning,
            stacklevel=2,
        )
        self.events.unsubscribe(ALLOCATION, listener)
        self._scalar_only_alloc_listeners -= 1

    # -- roots ----------------------------------------------------------------------

    def iter_roots(self) -> Iterator[HeapObject]:
        yield from self.roots.iter_static_roots()
        for thread in self.threads:
            yield from thread.iter_roots()

    # -- allocation -----------------------------------------------------------------

    def allocate_at_site(
        self,
        thread: SimThread,
        site: AllocSite,
        size: int,
        pretenure_index: int = 0,
        refs: Sequence[HeapObject] = (),
    ) -> HeapObject:
        """Allocate through a declared allocation site (the normal path)."""
        if self.collector is None:
            raise OutOfMemoryError("no collector attached to the VM")
        self.collector.before_allocation(size)
        gen_id = self.collector.resolve_allocation_gen(pretenure_index)
        site_id = site.cached_site_id
        if site_id == 0:
            site_id = self.sites.site_id(site.location)
            site.cached_site_id = site_id
        trace: tuple = ()
        trace_id = 0
        if site.record_hook and self._alloc_listeners:
            # Interned-trace fast path: the stack token pins the whole
            # frame stack (shape and caller lines), and the innermost line
            # is this site's own, so a token hit reuses the captured trace
            # and its interned id without touching a single frame.
            token = thread.stack_token
            if site.cached_trace_token == token:
                trace = site.cached_trace
                trace_id = site.cached_trace_id
            else:
                trace = thread.current_stack_trace()
                trace_id = self.sites.trace_id(trace)
                site.cached_trace = trace
                site.cached_trace_id = trace_id
                site.cached_trace_token = token
        try:
            obj = self._heap_alloc(size, gen_id, site_id, trace_id, refs)
        except OutOfMemoryError:
            self.collector.handle_oom()
            obj = self._heap_alloc(size, gen_id, site_id, trace_id, refs)
        if gen_id != 0:
            # Pretenured allocation takes the non-TLAB slow path.
            self.clock.advance_us(
                self.config.costs.pretenure_alloc_kib_us * (size / 1024.0)
            )
        self.collector.after_allocation(size, gen_id)
        if site.record_hook:
            for listener in self._alloc_listeners:
                listener(obj, site, trace)
        return obj

    def allocate_batch(
        self,
        thread: SimThread,
        site: AllocSite,
        sizes: Sequence[int],
        pretenure_index: int = 0,
        link_from: Optional[HeapObject] = None,
        materialize: bool = False,
    ) -> Optional[List[HeapObject]]:
        """Allocate a homogeneous batch through one site (the fast path).

        Observably equivalent — addresses, region claims, GC triggers,
        clock charges, recorder streams, remembered sets — to

        .. code-block:: python

            for size in sizes:
                obj = vm.allocate_at_site(thread, site, size, pretenure_index)
                if link_from is not None:
                    vm.heap.write_ref(link_from, obj)

        but amortized: site id, interned trace, and generation resolve
        once per quiet run, collector hooks are charged per run (each run
        opens with one *real* ``before_allocation``; the skipped calls are
        proven no-ops by :meth:`~repro.gc.base.GenerationalCollector
        .batch_headroom`), the heap extends region columns in bulk without
        boxing a ``HeapObject`` per allocation, and one
        :class:`AllocationBatchEvent` per run replaces per-object listener
        dispatch.  Per-allocation *clock* charges still loop per object —
        the virtual clock is a float accumulator, and one ``n×cost`` add
        is not byte-identical to ``n`` adds of ``cost``.

        Falls back to the scalar path whenever batching could be observed:
        scalar-only ALLOCATION subscribers on a record-hooked site,
        over-region-size (humongous) objects, ``link_from`` while Merlin
        ref-write listeners are attached, and pretenured record-hooked
        batches (whose pretenure and logging clock charges interleave).

        Returns the allocated objects when ``materialize`` is true, else
        ``None`` (object views are built lazily, on demand).
        """
        collector = self.collector
        if collector is None:
            raise OutOfMemoryError("no collector attached to the VM")
        n = len(sizes)
        if n == 0:
            return [] if materialize else None
        heap = self.heap
        sizes_arr = sizes if isinstance(sizes, array) else array("q", sizes)
        max_size = max(sizes_arr)
        record_hook = site.record_hook
        if (
            max_size > heap.region_size
            or (record_hook and self._scalar_only_alloc_listeners > 0)
            or (link_from is not None and heap.ref_write_listeners)
            or (
                pretenure_index != 0
                and record_hook
                and (self._alloc_listeners or self._batch_alloc_listeners)
            )
        ):
            out = []
            write_ref = heap.write_ref
            for size in sizes_arr:
                obj = self.allocate_at_site(thread, site, size, pretenure_index)
                if link_from is not None:
                    write_ref(link_from, obj)
                out.append(obj)
            return out if materialize else None
        site_id = site.cached_site_id
        if site_id == 0:
            site_id = self.sites.site_id(site.location)
            site.cached_site_id = site_id
        trace: tuple = ()
        trace_id = 0
        batch_listeners = self._batch_alloc_listeners
        if record_hook and batch_listeners:
            # The stack cannot change mid-batch (no frame push/pop), so
            # the interned trace resolves once for the whole batch.
            token = thread.stack_token
            if site.cached_trace_token == token:
                trace = site.cached_trace
                trace_id = site.cached_trace_id
            else:
                trace = thread.current_stack_trace()
                trace_id = self.sites.trace_id(trace)
                site.cached_trace = trace
                site.cached_trace_id = trace_id
                site.cached_trace_token = token
        ends = array("q", accumulate(sizes_arr))
        starts = array("q", (0,))
        starts.extend(ends[: n - 1])
        views: Optional[List[HeapObject]] = (
            [] if (materialize or link_from is not None) else None
        )
        clock = self.clock
        costs = self.config.costs
        region_size = heap.region_size
        p = 0
        while p < n:
            collector.before_allocation(sizes_arr[p])
            gen_id = collector.resolve_allocation_gen(pretenure_index)
            quiet, spare = collector.batch_headroom(gen_id, max_size)
            if spare < 0:
                spare = 0
            room = heap.generation(gen_id).bump_room()
            # Capacity usable with at most ``spare`` fresh-region claims:
            # each region abandoned mid-run wastes at most max_size - 1
            # bytes (the tail too small for the object that triggered the
            # claim), hence the max_size haircuts.
            cap = (room - max_size if room > max_size else 0) + spare * (
                region_size - max_size
            )
            budget = quiet if quiet < cap else cap
            q = p
            if budget >= sizes_arr[p]:
                q = bisect_right(ends, starts[p] + budget, p, n)
            if q > p:
                first_id, run_views = heap.allocate_batch(
                    sizes_arr,
                    starts,
                    p,
                    q,
                    gen_id,
                    site_id=site_id,
                    trace_id=trace_id,
                    birth_cycle=collector.cycles,
                    materialize=views is not None,
                )
                if gen_id != 0:
                    kib_cost = costs.pretenure_alloc_kib_us
                    for i in range(p, q):
                        clock.advance_us(kib_cost * (sizes_arr[i] / 1024.0))
                collector.after_allocation(ends[q - 1] - starts[p], gen_id)
                if record_hook and batch_listeners:
                    event = AllocationBatchEvent(
                        site=site,
                        trace=trace,
                        trace_id=trace_id,
                        first_object_id=first_id,
                        count=q - p,
                        sizes=sizes_arr[p:q],
                        gen_id=gen_id,
                    )
                    for listener in batch_listeners:
                        listener(event)
                if views is not None:
                    views.extend(run_views)
                    if link_from is not None:
                        write_ref = heap.write_ref
                        for obj in run_views:
                            write_ref(link_from, obj)
                p = q
            else:
                # No quiet headroom: one object the scalar way, reusing
                # the real before_allocation that just ran.
                size = sizes_arr[p]
                try:
                    obj = self._heap_alloc(size, gen_id, site_id, trace_id, ())
                except OutOfMemoryError:
                    collector.handle_oom()
                    obj = self._heap_alloc(size, gen_id, site_id, trace_id, ())
                if gen_id != 0:
                    clock.advance_us(
                        costs.pretenure_alloc_kib_us * (size / 1024.0)
                    )
                collector.after_allocation(size, gen_id)
                if record_hook and batch_listeners:
                    event = AllocationBatchEvent(
                        site=site,
                        trace=trace,
                        trace_id=trace_id,
                        first_object_id=obj.object_id,
                        count=1,
                        sizes=sizes_arr[p : p + 1],
                        gen_id=gen_id,
                    )
                    for listener in batch_listeners:
                        listener(event)
                if views is not None:
                    views.append(obj)
                    if link_from is not None:
                        heap.write_ref(link_from, obj)
                p += 1
        return views if materialize else None

    def allocate_anonymous(
        self, size: int, refs: Sequence[HeapObject] = ()
    ) -> HeapObject:
        """Allocate outside any modelled site (JDK-internal noise).

        Charged exactly like :meth:`allocate_at_site` minus the site
        machinery: the slow-path pretenure cost and the collector's
        ``after_allocation`` accounting apply here too (they were
        historically skipped, which let anonymous allocations dodge
        NG2C's pretenured-byte budget).
        """
        if self.collector is None:
            raise OutOfMemoryError("no collector attached to the VM")
        self.collector.before_allocation(size)
        gen_id = self.collector.resolve_allocation_gen(0)
        try:
            obj = self._heap_alloc(size, gen_id, 0, 0, refs)
        except OutOfMemoryError:
            self.collector.handle_oom()
            obj = self._heap_alloc(size, gen_id, 0, 0, refs)
        if gen_id != 0:
            # Pretenured allocation takes the non-TLAB slow path.
            self.clock.advance_us(
                self.config.costs.pretenure_alloc_kib_us * (size / 1024.0)
            )
        self.collector.after_allocation(size, gen_id)
        return obj

    def _heap_alloc(
        self,
        size: int,
        gen_id: int,
        site_id: int,
        trace_id: int,
        refs: Sequence[HeapObject],
    ) -> HeapObject:
        return self.heap.allocate(
            size=size,
            gen_id=gen_id,
            site_id=site_id,
            trace_id=trace_id,
            birth_cycle=self.collector.cycles if self.collector else 0,
            refs=refs,
        )

    # -- mutator time ------------------------------------------------------------------

    def tick_op(self, weight: float = 1.0) -> None:
        """Account one workload operation's mutator time.

        The collector's barrier overhead (C4's read/write barriers) scales
        the cost; stop-the-world pauses are charged separately by the
        collector itself.
        """
        self.ops_completed += 1
        overhead = self.collector.mutator_overhead if self.collector else 1.0
        self.clock.advance_us(self.config.costs.op_base_us * weight * overhead)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        collector = type(self.collector).__name__ if self.collector else None
        return (
            f"VM(clock={self.clock.now_ms:.1f} ms, ops={self.ops_completed}, "
            f"collector={collector})"
        )
