"""The VM façade: heap + clock + threads + class loader + collector."""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, Sequence, TYPE_CHECKING

from repro.config import SimConfig
from repro.errors import OutOfMemoryError, ReproError
from repro.heap.heap import SimHeap
from repro.heap.objects import HeapObject
from repro.runtime.classloader import ClassLoader
from repro.runtime.clock import VirtualClock
from repro.runtime.code import AllocSite, SiteRegistry
from repro.runtime.events import (
    AGENT_HOOKS,
    ALLOCATION,
    CLASS_LOAD,
    SAFEPOINT,
    ClassLoadEvent,
    EventBus,
    SafepointEvent,
)
from repro.runtime.roots import RootRegistry
from repro.runtime.thread import SimThread

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.gc.base import GenerationalCollector
    from repro.runtime.code import ClassModel

#: Allocation listener: ``(obj, site, stack_trace)`` — the Recorder's hook.
AllocListener = Callable[[HeapObject, AllocSite, tuple], None]


class VM:
    """A simulated JVM instance.

    Wires together the heap, the virtual clock, the class loader (with its
    agent transformers), application threads, the GC root set, and a
    pluggable collector.  Workloads interact with the VM through
    :class:`~repro.runtime.thread.SimThread` (calls + allocations) and
    :meth:`tick_op` (mutator work).
    """

    def __init__(
        self,
        config: Optional[SimConfig] = None,
        collector: Optional["GenerationalCollector"] = None,
    ) -> None:
        self.config = config or SimConfig()
        self.clock = VirtualClock()
        self.heap = SimHeap(self.config)
        self.classloader = ClassLoader()
        self.roots = RootRegistry()
        self.sites = SiteRegistry()
        self.threads: List[SimThread] = []
        #: The typed event bus every agent subscribes through.
        self.events = EventBus()
        #: Hot-path alias of the bus's ALLOCATION subscriber list (the
        #: same list object, mutated in place): ``allocate_at_site`` tests
        #: its emptiness per allocation, and an empty list means no trace
        #: is captured at all — the PR 2 fast-path invariant.
        self._alloc_listeners: List[AllocListener] = self.events.listener_list(
            ALLOCATION
        )
        self._agents: List = []
        self.classloader.on_loaded = self._publish_class_load
        self.ops_completed = 0
        #: Executed ``setGeneration`` API calls (the overhead §4.4's
        #: push-up optimization minimizes; exercised by ablation benches).
        self.set_generation_calls = 0
        self.collector: Optional["GenerationalCollector"] = None
        if collector is not None:
            self.set_collector(collector)

    # -- wiring ---------------------------------------------------------------------

    def set_collector(self, collector: "GenerationalCollector") -> None:
        self.collector = collector
        collector.attach(self)

    def new_thread(self, name: str) -> SimThread:
        thread = SimThread(self, name)
        self.threads.append(thread)
        return thread

    # -- agents -----------------------------------------------------------------------

    def attach_agent(self, agent) -> None:
        """Attach a :class:`~repro.runtime.events.VMAgent` to this VM.

        Runs ``agent.on_attach(vm)`` first (validation — a raise leaves
        the VM untouched), then registers the agent as a class transformer
        if it defines ``transform``, then subscribes every ``on_<event>``
        hook the agent defines.  This is the one seam through which the
        Recorder, Dumper, Instrumenter, telemetry, and any third-party
        profiler reach the VM.
        """
        if agent in self._agents:
            raise ReproError(f"agent {agent!r} is already attached")
        on_attach = getattr(agent, "on_attach", None)
        if callable(on_attach):
            on_attach(self)
        if callable(getattr(agent, "transform", None)):
            self.classloader.add_transformer(agent)
        for kind, hook_name in AGENT_HOOKS:
            hook = getattr(agent, hook_name, None)
            if callable(hook):
                self.events.subscribe(kind, hook)
        self._agents.append(agent)

    def detach_agent(self, agent) -> None:
        """Detach a previously attached agent (symmetric teardown)."""
        if agent not in self._agents:
            raise ReproError(f"agent {agent!r} is not attached")
        self._agents.remove(agent)
        for kind, hook_name in AGENT_HOOKS:
            hook = getattr(agent, hook_name, None)
            if callable(hook):
                self.events.unsubscribe(kind, hook)
        if callable(getattr(agent, "transform", None)):
            self.classloader.remove_transformer(agent)
        on_detach = getattr(agent, "on_detach", None)
        if callable(on_detach):
            on_detach(self)

    @property
    def agents(self) -> List:
        return list(self._agents)

    def safepoint(self, kind: str, source: Optional[str] = None) -> None:
        """Publish a workload-declared safepoint (e.g. a memtable flush)."""
        if self.events.has_listeners(SAFEPOINT):
            self.events.publish(
                SAFEPOINT,
                SafepointEvent(kind=kind, at_ms=self.clock.now_ms, source=source),
            )

    def _publish_class_load(self, class_model: "ClassModel") -> None:
        if self.events.has_listeners(CLASS_LOAD):
            self.events.publish(CLASS_LOAD, ClassLoadEvent(class_model))

    # -- legacy listener API (shims over the bus) ----------------------------------

    def add_alloc_listener(self, listener: AllocListener) -> None:
        """Deprecated seam: subscribe to ALLOCATION on :attr:`events`."""
        self.events.subscribe(ALLOCATION, listener)

    def remove_alloc_listener(self, listener: AllocListener) -> None:
        self.events.unsubscribe(ALLOCATION, listener)

    # -- roots ----------------------------------------------------------------------

    def iter_roots(self) -> Iterator[HeapObject]:
        yield from self.roots.iter_static_roots()
        for thread in self.threads:
            yield from thread.iter_roots()

    # -- allocation -----------------------------------------------------------------

    def allocate_at_site(
        self,
        thread: SimThread,
        site: AllocSite,
        size: int,
        pretenure_index: int = 0,
        refs: Sequence[HeapObject] = (),
    ) -> HeapObject:
        """Allocate through a declared allocation site (the normal path)."""
        if self.collector is None:
            raise OutOfMemoryError("no collector attached to the VM")
        self.collector.before_allocation(size)
        gen_id = self.collector.resolve_allocation_gen(pretenure_index)
        site_id = site.cached_site_id
        if site_id == 0:
            site_id = self.sites.site_id(site.location)
            site.cached_site_id = site_id
        trace: tuple = ()
        trace_id = 0
        if site.record_hook and self._alloc_listeners:
            # Interned-trace fast path: the stack token pins the whole
            # frame stack (shape and caller lines), and the innermost line
            # is this site's own, so a token hit reuses the captured trace
            # and its interned id without touching a single frame.
            token = thread.stack_token
            if site.cached_trace_token == token:
                trace = site.cached_trace
                trace_id = site.cached_trace_id
            else:
                trace = thread.current_stack_trace()
                trace_id = self.sites.trace_id(trace)
                site.cached_trace = trace
                site.cached_trace_id = trace_id
                site.cached_trace_token = token
        try:
            obj = self._heap_alloc(size, gen_id, site_id, trace_id, refs)
        except OutOfMemoryError:
            self.collector.handle_oom()
            obj = self._heap_alloc(size, gen_id, site_id, trace_id, refs)
        if gen_id != 0:
            # Pretenured allocation takes the non-TLAB slow path.
            self.clock.advance_us(
                self.config.costs.pretenure_alloc_kib_us * (size / 1024.0)
            )
        self.collector.after_allocation(size, gen_id)
        if site.record_hook:
            for listener in self._alloc_listeners:
                listener(obj, site, trace)
        return obj

    def allocate_anonymous(
        self, size: int, refs: Sequence[HeapObject] = ()
    ) -> HeapObject:
        """Allocate outside any modelled site (JDK-internal noise)."""
        if self.collector is None:
            raise OutOfMemoryError("no collector attached to the VM")
        self.collector.before_allocation(size)
        gen_id = self.collector.resolve_allocation_gen(0)
        try:
            return self._heap_alloc(size, gen_id, 0, 0, refs)
        except OutOfMemoryError:
            self.collector.handle_oom()
            return self._heap_alloc(size, gen_id, 0, 0, refs)

    def _heap_alloc(
        self,
        size: int,
        gen_id: int,
        site_id: int,
        trace_id: int,
        refs: Sequence[HeapObject],
    ) -> HeapObject:
        return self.heap.allocate(
            size=size,
            gen_id=gen_id,
            site_id=site_id,
            trace_id=trace_id,
            birth_cycle=self.collector.cycles if self.collector else 0,
            refs=refs,
        )

    # -- mutator time ------------------------------------------------------------------

    def tick_op(self, weight: float = 1.0) -> None:
        """Account one workload operation's mutator time.

        The collector's barrier overhead (C4's read/write barriers) scales
        the cost; stop-the-world pauses are charged separately by the
        collector itself.
        """
        self.ops_completed += 1
        overhead = self.collector.mutator_overhead if self.collector else 1.0
        self.clock.advance_us(self.config.costs.op_base_us * weight * overhead)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        collector = type(self.collector).__name__ if self.collector else None
        return (
            f"VM(clock={self.clock.now_ms:.1f} ms, ops={self.ops_completed}, "
            f"collector={collector})"
        )
