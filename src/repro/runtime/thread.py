"""Simulated application threads.

A :class:`SimThread` executes workload code against the *loaded* code
model: every call and allocation names its source line, and the thread
consults the (possibly agent-rewritten) :class:`~repro.runtime.code
.MethodModel` to decide what actually happens — whether the allocation is
pretenured (``@Gen``), whether it must be logged (Recorder hook), and
whether the call flips the thread-local *target generation* (NG2C's
``setGeneration`` bracket).
"""

from __future__ import annotations

import itertools
from typing import Iterator, List, Optional, Sequence, TYPE_CHECKING

from repro.errors import NoActiveFrameError
from repro.heap.objects import HeapObject
from repro.runtime.stack import Frame, capture_stack_trace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runtime.vm import VM

#: Globally unique stack-shape tokens.  Every frame push or pop on any
#: thread draws a fresh token, so two observations of the same token value
#: guarantee the observing thread's frame stack (identities *and* the
#: callers' current lines, which can only change while a frame is on top)
#: is unchanged.  Allocation sites key their interned-trace cache on this
#: (see :class:`repro.runtime.code.AllocSite`).
_stack_token_counter = itertools.count(1)


class _FrameContext:
    """Lightweight context manager for one method activation.

    Hand-rolled instead of ``contextlib.contextmanager`` because frame
    entry/exit is the hottest path in the simulation.
    """

    __slots__ = ("thread", "frame", "saved_gen")

    def __init__(self, thread: "SimThread", frame: Frame, saved_gen: Optional[int]):
        self.thread = thread
        self.frame = frame
        self.saved_gen = saved_gen

    def __enter__(self) -> Frame:
        thread = self.thread
        thread.frames.append(self.frame)
        thread.stack_token = next(_stack_token_counter)
        return self.frame

    def __exit__(self, exc_type, exc, tb) -> None:
        thread = self.thread
        thread.frames.pop()
        thread.stack_token = next(_stack_token_counter)
        if self.saved_gen is not None:
            thread.target_gen = self.saved_gen


class SimThread:
    """An application thread: a stack of frames plus NG2C's target generation."""

    def __init__(self, vm: "VM", name: str) -> None:
        self.vm = vm
        self.name = name
        self.frames: List[Frame] = []
        #: NG2C thread-local target generation, as a *profile index*
        #: (0 = young).  ``@Gen`` allocation sites pretenure into this.
        self.target_gen = 0
        #: Current stack-shape token; refreshed on every push/pop.
        self.stack_token = next(_stack_token_counter)

    # -- frame management -------------------------------------------------------

    @property
    def top(self) -> Frame:
        if not self.frames:
            raise NoActiveFrameError(f"thread {self.name!r} has no active frame")
        return self.frames[-1]

    def entry(self, class_name: str, method_name: str) -> _FrameContext:
        """Enter a top-level method (thread entry point, no caller)."""
        method = self.vm.classloader.method(class_name, method_name)
        return _FrameContext(self, Frame(method), saved_gen=None)

    def call(self, line: int, class_name: str, method_name: str) -> _FrameContext:
        """Call ``class_name.method_name`` from ``line`` of the current frame.

        If the Instrumenter bracketed this call site with ``setGeneration``,
        the thread's target generation is switched for the duration of the
        call and restored afterwards (Listing 2 of the paper).
        """
        caller = self.frames[-1]
        caller.current_line = line
        call_site = caller.method.call_sites.get(line)
        saved_gen: Optional[int] = None
        if call_site is not None and call_site.target_generation is not None:
            saved_gen = self.target_gen
            self.target_gen = call_site.target_generation
            self.vm.set_generation_calls += 2  # set + restore
        method = self.vm.classloader.method(class_name, method_name)
        return _FrameContext(self, Frame(method), saved_gen)

    # -- allocation ----------------------------------------------------------------

    def alloc(
        self,
        line: int,
        size: Optional[int] = None,
        refs: Sequence[HeapObject] = (),
        keep: bool = True,
    ) -> HeapObject:
        """Allocate at the declared allocation site on ``line``.

        The site must exist in the executing method's code model; this
        catches drift between workload code and its declared model.  When
        ``keep`` is true the object is rooted in the current frame (a local
        variable) until the frame pops.
        """
        if not self.frames:
            raise NoActiveFrameError(f"thread {self.name!r} has no active frame")
        frame = self.frames[-1]
        frame.current_line = line
        site = frame.method.alloc_sites.get(line)
        if site is None:
            raise NoActiveFrameError(
                f"{frame.method.class_name}.{frame.method.name} has no "
                f"allocation site at line {line}"
            )
        if site.gen_annotated:
            if site.pre_set_gen is not None:
                pretenure_index = site.pre_set_gen
                self.vm.set_generation_calls += 2  # set + restore bracket
            else:
                pretenure_index = self.target_gen
        else:
            pretenure_index = 0
        obj = self.vm.allocate_at_site(
            thread=self,
            site=site,
            size=size if size is not None else site.size_hint,
            pretenure_index=pretenure_index,
            refs=refs,
        )
        if keep:
            frame.keep(obj)
        return obj

    def alloc_batch(
        self,
        line: int,
        sizes: Optional[Sequence[int]] = None,
        count: Optional[int] = None,
        link_from: Optional[HeapObject] = None,
        keep: bool = False,
        materialize: bool = False,
    ) -> Optional[List[HeapObject]]:
        """Allocate a homogeneous batch at the site on ``line``.

        The bulk front-end for workload inner loops: one site lookup and
        one :meth:`VM.allocate_batch` call replace ``count`` scalar
        :meth:`alloc` calls.  Pass either explicit ``sizes`` or ``count``
        (which repeats the site's ``size_hint``).  ``link_from`` writes a
        reference from that object to each allocated one (the usual
        container-holds-elements idiom).  ``keep`` roots each object in
        the current frame and implies ``materialize``; the default leaves
        objects as lazy column views, returning ``None``.
        """
        if not self.frames:
            raise NoActiveFrameError(f"thread {self.name!r} has no active frame")
        frame = self.frames[-1]
        frame.current_line = line
        site = frame.method.alloc_sites.get(line)
        if site is None:
            raise NoActiveFrameError(
                f"{frame.method.class_name}.{frame.method.name} has no "
                f"allocation site at line {line}"
            )
        if sizes is None:
            if count is None:
                raise ValueError("alloc_batch needs sizes or count")
            sizes = [site.size_hint] * count
        if site.gen_annotated:
            if site.pre_set_gen is not None:
                pretenure_index = site.pre_set_gen
                self.vm.set_generation_calls += 2 * len(sizes)
            else:
                pretenure_index = self.target_gen
        else:
            pretenure_index = 0
        objs = self.vm.allocate_batch(
            thread=self,
            site=site,
            sizes=sizes,
            pretenure_index=pretenure_index,
            link_from=link_from,
            materialize=materialize or keep,
        )
        if keep and objs:
            for obj in objs:
                frame.keep(obj)
        return objs

    def current_stack_trace(self) -> tuple:
        return capture_stack_trace(self.frames)

    # -- GC interface ------------------------------------------------------------

    def iter_roots(self) -> Iterator[HeapObject]:
        """All objects rooted by this thread's frame locals."""
        for frame in self.frames:
            yield from frame.locals

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimThread({self.name!r}, depth={len(self.frames)})"
