"""The code model: classes, methods, allocation sites, call sites.

Java agents rewrite bytecode at the granularity of individual instructions
located by ⟨class, method, line⟩.  The simulation represents exactly that
level of structure: a :class:`MethodModel` declares, per source line, the
allocation sites and call sites the method contains.  Workload code then
*executes against* the loaded (possibly agent-transformed) model: every
simulated allocation consults its :class:`AllocSite` (is it ``@Gen``
annotated?  does it carry a Recorder callback?) and every simulated call
consults its :class:`CallSite` (does it set a target generation?).

This mirrors the paper faithfully:

* the **Recorder** transformer flips ``record_hook`` on allocation sites —
  the analogue of inserting a logging callback after every ``new`` (§4.1);
* the **Instrumenter** transformer flips ``gen_annotated`` (the ``@Gen``
  annotation) and sets ``CallSite.target_generation`` (the inserted
  ``setGeneration``/restore bracket of Listing 2).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterator, Optional, Tuple

#: A code location as used throughout the paper: class, method, line.
CodeLocation = Tuple[str, str, int]


@dataclasses.dataclass
class AllocSite:
    """An object-allocation site (a ``new`` at a specific line).

    Attributes:
        class_name / method_name / line: the code location.
        type_name: name of the allocated type (for readable profiles).
        size_hint: nominal size in bytes of instances allocated here (the
            workload may override per allocation, e.g. arrays).
        gen_annotated: True when the site carries NG2C's ``@Gen``
            annotation — instances are pretenured into the thread's current
            target generation.
        pre_set_gen: when not None, the Instrumenter bracketed this single
            allocation instruction with ``setGeneration(pre_set_gen)`` /
            restore (the per-statement variant of Listing 2's rewrite, used
            when no enclosing call site can carry the directive).
        record_hook: True when the Recorder rewrote the site to log each
            allocation (profiling phase only).
    """

    class_name: str
    method_name: str
    line: int
    type_name: str = "java.lang.Object"
    size_hint: int = 64
    gen_annotated: bool = False
    pre_set_gen: Optional[int] = None
    record_hook: bool = False
    #: Interned site id, filled in lazily by the VM (hot-path cache).
    cached_site_id: int = 0
    #: Interned-trace cache: while the allocating thread's stack token
    #: equals ``cached_trace_token``, the captured trace and its interned
    #: id are ``cached_trace`` / ``cached_trace_id``.  Valid because the
    #: token changes on every frame push/pop, outer frames' current lines
    #: cannot change while inner frames exist, and the innermost line is
    #: this site's own — so (site, token) fully determines the trace.
    cached_trace_token: int = 0
    cached_trace: tuple = ()
    cached_trace_id: int = 0

    @property
    def location(self) -> CodeLocation:
        return (self.class_name, self.method_name, self.line)

    def copy(self) -> "AllocSite":
        clone = dataclasses.replace(self)
        # Caches are per loaded copy (per VM): interned ids from another
        # VM's registry must never leak through a class-model copy.
        clone.cached_site_id = 0
        clone.cached_trace_token = 0
        clone.cached_trace = ()
        clone.cached_trace_id = 0
        return clone


@dataclasses.dataclass
class CallSite:
    """A method-call site, optionally bracketed by ``setGeneration``.

    When ``target_generation`` is not None, entering the call sets the
    calling thread's target generation to that value and restores the
    previous one on return — the rewrite shown at lines 8/10, 20/22, and
    25/27 of the paper's Listing 2.
    """

    class_name: str
    method_name: str
    line: int
    callee_class: str = ""
    callee_method: str = ""
    target_generation: Optional[int] = None

    @property
    def location(self) -> CodeLocation:
        return (self.class_name, self.method_name, self.line)

    def copy(self) -> "CallSite":
        return dataclasses.replace(self)


class MethodModel:
    """A method: a bag of allocation sites and call sites keyed by line."""

    def __init__(self, class_name: str, name: str) -> None:
        self.class_name = class_name
        self.name = name
        self.alloc_sites: Dict[int, AllocSite] = {}
        self.call_sites: Dict[int, CallSite] = {}

    def add_alloc_site(
        self, line: int, type_name: str = "java.lang.Object", size_hint: int = 64
    ) -> AllocSite:
        if line in self.alloc_sites:
            raise ValueError(
                f"{self.class_name}.{self.name}: duplicate alloc site at line {line}"
            )
        site = AllocSite(
            class_name=self.class_name,
            method_name=self.name,
            line=line,
            type_name=type_name,
            size_hint=size_hint,
        )
        self.alloc_sites[line] = site
        return site

    def add_call_site(
        self, line: int, callee_class: str = "", callee_method: str = ""
    ) -> CallSite:
        if line in self.call_sites:
            raise ValueError(
                f"{self.class_name}.{self.name}: duplicate call site at line {line}"
            )
        site = CallSite(
            class_name=self.class_name,
            method_name=self.name,
            line=line,
            callee_class=callee_class,
            callee_method=callee_method,
        )
        self.call_sites[line] = site
        return site

    def alloc_site(self, line: int) -> Optional[AllocSite]:
        return self.alloc_sites.get(line)

    def call_site(self, line: int) -> Optional[CallSite]:
        return self.call_sites.get(line)

    def copy(self) -> "MethodModel":
        clone = MethodModel(self.class_name, self.name)
        clone.alloc_sites = {line: s.copy() for line, s in self.alloc_sites.items()}
        clone.call_sites = {line: s.copy() for line, s in self.call_sites.items()}
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MethodModel({self.class_name}.{self.name}, "
            f"allocs={len(self.alloc_sites)}, calls={len(self.call_sites)})"
        )


class ClassModel:
    """A class: a named collection of :class:`MethodModel` instances."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.methods: Dict[str, MethodModel] = {}

    def add_method(self, name: str) -> MethodModel:
        if name in self.methods:
            raise ValueError(f"class {self.name}: duplicate method {name!r}")
        method = MethodModel(self.name, name)
        self.methods[name] = method
        return method

    def method(self, name: str) -> MethodModel:
        return self.methods[name]

    def get_method(self, name: str) -> Optional[MethodModel]:
        return self.methods.get(name)

    def copy(self) -> "ClassModel":
        clone = ClassModel(self.name)
        clone.methods = {name: m.copy() for name, m in self.methods.items()}
        return clone

    def iter_alloc_sites(self) -> Iterator[AllocSite]:
        for method in self.methods.values():
            yield from method.alloc_sites.values()

    def iter_call_sites(self) -> Iterator[CallSite]:
        for method in self.methods.values():
            yield from method.call_sites.values()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ClassModel({self.name!r}, methods={sorted(self.methods)})"


class SiteRegistry:
    """Interns code locations and stack traces to small integer ids.

    The Recorder keeps "a table with all the stack traces that have been
    used for allocations" and streams object ids per stack trace (§3.2);
    interning gives each site and each distinct trace a compact id so those
    streams stay cheap.
    """

    def __init__(self) -> None:
        self._site_ids: Dict[CodeLocation, int] = {}
        self._sites: Dict[int, CodeLocation] = {}
        self._trace_ids: Dict[Tuple[CodeLocation, ...], int] = {}
        self._traces: Dict[int, Tuple[CodeLocation, ...]] = {}

    def site_id(self, location: CodeLocation) -> int:
        sid = self._site_ids.get(location)
        if sid is None:
            sid = len(self._site_ids) + 1
            self._site_ids[location] = sid
            self._sites[sid] = location
        return sid

    def site_location(self, site_id: int) -> CodeLocation:
        return self._sites[site_id]

    def trace_id(self, trace: Tuple[CodeLocation, ...]) -> int:
        tid = self._trace_ids.get(trace)
        if tid is None:
            tid = len(self._trace_ids) + 1
            self._trace_ids[trace] = tid
            self._traces[tid] = trace
        return tid

    def trace(self, trace_id: int) -> Tuple[CodeLocation, ...]:
        return self._traces[trace_id]

    @property
    def site_count(self) -> int:
        return len(self._site_ids)

    @property
    def trace_count(self) -> int:
        return len(self._trace_ids)
