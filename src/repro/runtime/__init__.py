"""Simulated managed runtime: code model, threads, class loading, VM.

This subpackage stands in for the parts of the JVM that POLM2 touches:

* a method-level **code model** (:mod:`repro.runtime.code`) — classes,
  methods, allocation sites, and call sites identified by
  ⟨class, method, line⟩, the granularity at which ASM-based agents rewrite
  bytecode;
* a **class loader** with transformer hooks (:mod:`repro.runtime.classloader`)
  mirroring ``java.lang.instrument`` agents: the Recorder and the
  Instrumenter register as transformers and rewrite classes at load time;
* simulated **threads** with frames, stack traces, and the thread-local
  *target generation* NG2C's ``setGeneration`` manipulates;
* a **virtual clock** so every duration is deterministic.
"""

from repro.runtime.classloader import ClassLoader, ClassTransformer
from repro.runtime.clock import VirtualClock
from repro.runtime.code import AllocSite, CallSite, ClassModel, MethodModel
from repro.runtime.roots import RootRegistry
from repro.runtime.thread import SimThread
from repro.runtime.vm import VM

__all__ = [
    "AllocSite",
    "CallSite",
    "ClassLoader",
    "ClassModel",
    "ClassTransformer",
    "MethodModel",
    "RootRegistry",
    "SimThread",
    "VM",
    "VirtualClock",
]
