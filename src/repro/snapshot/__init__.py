"""JVM memory snapshots: CRIU-style incremental checkpoints vs jmap dumps.

Reproduces the comparison of the paper's §4.2 and Figures 3/4: POLM2's
Dumper uses CRIU with two optimizations — skip pages holding no live
objects (the ``madvise`` no-need bit set by the Recorder) and include only
pages dirtied since the previous snapshot — while the ``jmap`` baseline
walks and serializes every live object on every dump.
"""

from repro.snapshot.criu import CRIUEngine
from repro.snapshot.jmap import JmapDumper
from repro.snapshot.snapshot import Snapshot, SnapshotStore

__all__ = ["CRIUEngine", "JmapDumper", "Snapshot", "SnapshotStore"]
