"""Snapshot records and the store that orders them."""

from __future__ import annotations

import dataclasses
import json
from typing import Dict, FrozenSet, List


@dataclasses.dataclass(frozen=True)
class Snapshot:
    """One memory snapshot.

    ``live_object_ids`` is the *logical* content: the identity hash codes
    of every reachable object at dump time, i.e. what the Analyzer sees
    after reconstructing the process image from the incremental chain and
    reading each object header (paper §4.3).  ``size_bytes`` and
    ``duration_us`` are the *physical* cost of producing this snapshot
    (incremental for CRIU, full for jmap) — the quantities of Figures 3/4.
    """

    seq: int
    time_ms: float
    engine: str
    pages_written: int
    size_bytes: int
    duration_us: float
    live_object_ids: FrozenSet[int]
    #: True when the image is a delta over the previous snapshot.
    incremental: bool = True

    @property
    def live_count(self) -> int:
        return len(self.live_object_ids)

    # -- (de)serialization: snapshots are on-disk artifacts in the paper's
    # -- workflow (CRIU image directories the Analyzer reads later).

    def to_dict(self) -> Dict:
        return {
            "seq": self.seq,
            "time_ms": self.time_ms,
            "engine": self.engine,
            "pages_written": self.pages_written,
            "size_bytes": self.size_bytes,
            "duration_us": self.duration_us,
            "live_object_ids": sorted(self.live_object_ids),
            "incremental": self.incremental,
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "Snapshot":
        return cls(
            seq=int(payload["seq"]),
            time_ms=float(payload["time_ms"]),
            engine=payload["engine"],
            pages_written=int(payload["pages_written"]),
            size_bytes=int(payload["size_bytes"]),
            duration_us=float(payload["duration_us"]),
            live_object_ids=frozenset(payload["live_object_ids"]),
            incremental=bool(payload.get("incremental", True)),
        )


class SnapshotStore:
    """Time-ordered snapshot sequence for one profiling run."""

    def __init__(self) -> None:
        self._snapshots: List[Snapshot] = []

    def append(self, snapshot: Snapshot) -> None:
        if self._snapshots and snapshot.time_ms < self._snapshots[-1].time_ms:
            raise ValueError("snapshots must be appended in time order")
        self._snapshots.append(snapshot)

    @property
    def snapshots(self) -> List[Snapshot]:
        return list(self._snapshots)

    def __len__(self) -> int:
        return len(self._snapshots)

    def __iter__(self):
        return iter(self._snapshots)

    def __getitem__(self, index: int) -> Snapshot:
        return self._snapshots[index]

    # -- aggregate views (Figures 3/4) -------------------------------------------

    def sizes_bytes(self) -> List[int]:
        return [s.size_bytes for s in self._snapshots]

    def durations_us(self) -> List[float]:
        return [s.duration_us for s in self._snapshots]

    def total_bytes(self) -> int:
        return sum(s.size_bytes for s in self._snapshots)

    def total_duration_us(self) -> float:
        return sum(s.duration_us for s in self._snapshots)

    # -- persistence (JSON lines, one snapshot per line) ---------------------------

    def save(self, path: str) -> None:
        with open(path, "w") as handle:
            for snapshot in self._snapshots:
                handle.write(json.dumps(snapshot.to_dict()) + "\n")

    @classmethod
    def load(cls, path: str) -> "SnapshotStore":
        store = cls()
        with open(path) as handle:
            for line in handle:
                line = line.strip()
                if line:
                    store.append(Snapshot.from_dict(json.loads(line)))
        return store
