"""Snapshot records and the store that orders them.

Two on-disk/in-memory representations exist, mirroring the paper's two
dump engines:

* **full** — the snapshot owns its complete ``live_object_ids`` set
  (what a jmap ``.hprof`` dump contains);
* **delta** — the snapshot stores only ``born_ids``/``dead_ids`` relative
  to its predecessor (what a CRIU incremental image directory contains,
  §4.3); the cumulative live-set is materialized lazily on first access
  and cached.

Delta encoding cuts both resident memory and (de)serialization cost by
roughly the live/dirty ratio — the same economics that make the paper's
incremental checkpoints viable.  ``SnapshotStore.save``/``load`` round-trip
either representation, and loading a legacy full-format file keeps
working unchanged.

Id sets (``born_ids``/``dead_ids``/``live_object_ids``) are
:class:`~repro.core.idset.IdSet` kernels, not frozensets: chunked
sorted-run/bitmap containers whose set algebra runs as big-int bitwise
passes.  On disk, two formats coexist: the default binary columnar store
(``snapshots.bin``, schema ``polm2-snapshots-v2`` — see
:mod:`repro.snapshot.binstore`) and the legacy JSON-lines file, which
``iter_file`` still reads by sniffing the magic bytes.
"""

from __future__ import annotations

import json
from collections.abc import Sequence
from typing import Dict, Iterator, List, Optional

from repro.core.idset import EMPTY_IDSET, IdSet
from repro.errors import ProfileFormatError

#: On-disk snapshot formats ``SnapshotStore.save`` understands.
SNAPSHOT_FORMATS = ("binary", "jsonl")


class Snapshot:
    """One memory snapshot.

    ``live_object_ids`` is the *logical* content: the identity hash codes
    of every reachable object at dump time, i.e. what the Analyzer sees
    after reconstructing the process image from the incremental chain and
    reading each object header (paper §4.3).  ``size_bytes`` and
    ``duration_us`` are the *physical* cost of producing this snapshot
    (incremental for CRIU, full for jmap) — the quantities of Figures 3/4.

    A snapshot is constructed either *full* (``live_object_ids=...``) or
    *delta-encoded* (``born_ids=...``, ``dead_ids=...``, plus the
    ``predecessor`` snapshot the delta applies to; ``predecessor=None``
    means the delta applies to the empty heap).  For delta snapshots the
    cumulative live-set is materialized on first ``live_object_ids``
    access — walking the predecessor chain iteratively, caching every
    set it computes along the way — so repeated access is O(1).
    """

    __slots__ = (
        "seq",
        "time_ms",
        "engine",
        "pages_written",
        "size_bytes",
        "duration_us",
        "incremental",
        "born_ids",
        "dead_ids",
        "_predecessor",
        "_predecessor_released",
        "_live_ids",
        # Weak referencing lets the memory-accounting tests observe that
        # the streaming stages really drop snapshots after consuming them.
        "__weakref__",
    )

    def __init__(
        self,
        seq: int,
        time_ms: float,
        engine: str,
        pages_written: int,
        size_bytes: int,
        duration_us: float,
        live_object_ids=None,
        incremental: bool = True,
        born_ids=None,
        dead_ids=None,
        predecessor: Optional["Snapshot"] = None,
    ) -> None:
        self.seq = seq
        self.time_ms = time_ms
        self.engine = engine
        self.pages_written = pages_written
        self.size_bytes = size_bytes
        self.duration_us = duration_us
        self.incremental = incremental
        if live_object_ids is None and (born_ids is None or dead_ids is None):
            raise ValueError(
                "Snapshot needs live_object_ids or born_ids + dead_ids"
            )
        self.born_ids = None if born_ids is None else IdSet.coerce(born_ids)
        self.dead_ids = None if dead_ids is None else IdSet.coerce(dead_ids)
        self._predecessor = predecessor
        self._predecessor_released = False
        self._live_ids = (
            None if live_object_ids is None else IdSet.coerce(live_object_ids)
        )

    # -- representation ------------------------------------------------------------

    @property
    def is_delta(self) -> bool:
        """True when this snapshot is stored as a born/dead delta."""
        return self.born_ids is not None and self.dead_ids is not None

    @property
    def predecessor(self) -> Optional["Snapshot"]:
        """The snapshot this delta applies to (None: the empty heap)."""
        return self._predecessor

    @property
    def is_materialized(self) -> bool:
        """True when the cumulative live-set is already computed."""
        return self._live_ids is not None

    @property
    def live_object_ids(self) -> IdSet:
        if self._live_ids is None:
            # Materialize iteratively (a long chain would blow the stack
            # if done recursively), caching every intermediate set so a
            # forward scan over the store is O(live) per snapshot.
            chain: List[Snapshot] = []
            node: Optional[Snapshot] = self
            while node is not None and node._live_ids is None:
                if node._predecessor_released:
                    from repro.errors import SnapshotError

                    raise SnapshotError(
                        f"cannot materialize snapshot seq={self.seq}: "
                        f"seq={node.seq} released its predecessor after "
                        "the streaming stages consumed it"
                    )
                chain.append(node)
                node = node._predecessor
            live = EMPTY_IDSET if node is None else node._live_ids
            for snap in reversed(chain):
                live = (live | snap.born_ids) - snap.dead_ids
                snap._live_ids = live
        return self._live_ids

    @property
    def live_count(self) -> int:
        return len(self.live_object_ids)

    def release_predecessor(self) -> None:
        """Drop the reference to the predecessor snapshot.

        The serve-cycle engine calls this once the streaming stages have
        consumed a chained delta's born/dead sets: nothing downstream
        re-materializes old images, so keeping the whole chain alive
        would grow daemon memory by one snapshot per checkpoint — the
        gprofiler memory-never-drains failure mode.  Materializing an
        unmaterialized delta after its chain was released raises
        :class:`~repro.errors.SnapshotError` rather than silently
        computing a wrong live set.
        """
        if self._predecessor is None:
            return
        if self._live_ids is None and self.is_delta:
            self._predecessor_released = True
        self._predecessor = None

    # -- value semantics (the previous frozen-dataclass contract) -------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Snapshot):
            return NotImplemented
        return (
            self.seq == other.seq
            and self.time_ms == other.time_ms
            and self.engine == other.engine
            and self.pages_written == other.pages_written
            and self.size_bytes == other.size_bytes
            and self.duration_us == other.duration_us
            and self.incremental == other.incremental
            and self.live_object_ids == other.live_object_ids
        )

    def __hash__(self) -> int:
        return hash((self.seq, self.time_ms, self.engine))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "delta" if self.is_delta else "full"
        return (
            f"Snapshot(seq={self.seq}, t={self.time_ms:.1f}ms, "
            f"engine={self.engine!r}, {kind})"
        )

    # -- pickling: flatten to a payload dict so a delta chain never
    # -- recurses through __reduce__ (a long chain would overflow).
    # -- SnapshotStore pickles the whole chain compactly; a snapshot
    # -- pickled on its own falls back to the full representation.

    def __reduce__(self):
        return (Snapshot.from_dict, (self.to_full_dict(),))

    # -- (de)serialization: snapshots are on-disk artifacts in the paper's
    # -- workflow (CRIU image directories the Analyzer reads later).

    def to_dict(self) -> Dict:
        """Native representation: delta snapshots emit born/dead only."""
        payload = {
            "seq": self.seq,
            "time_ms": self.time_ms,
            "engine": self.engine,
            "pages_written": self.pages_written,
            "size_bytes": self.size_bytes,
            "duration_us": self.duration_us,
            "incremental": self.incremental,
        }
        if self.is_delta:
            payload["born_ids"] = self.born_ids.to_list()
            payload["dead_ids"] = self.dead_ids.to_list()
        else:
            payload["live_object_ids"] = self.live_object_ids.to_list()
        return payload

    def to_full_dict(self) -> Dict:
        """Legacy full representation (materializes the live-set)."""
        payload = self.to_dict()
        payload.pop("born_ids", None)
        payload.pop("dead_ids", None)
        payload["live_object_ids"] = self.live_object_ids.to_list()
        return payload

    @classmethod
    def from_dict(
        cls,
        payload: Dict,
        predecessor: Optional["Snapshot"] = None,
        source: Optional[str] = None,
    ) -> "Snapshot":
        """Rebuild from either representation.

        ``predecessor`` anchors a delta payload; it is ignored for full
        payloads (which are self-contained).  A delta payload missing
        ``born_ids`` or ``dead_ids`` raises
        :class:`~repro.errors.ProfileFormatError` naming the field (and
        ``source``, typically the file path, when given) — silently
        defaulting either to empty would corrupt every live-set
        materialized downstream of it.
        """
        common = dict(
            seq=int(payload["seq"]),
            time_ms=float(payload["time_ms"]),
            engine=payload["engine"],
            pages_written=int(payload["pages_written"]),
            size_bytes=int(payload["size_bytes"]),
            duration_us=float(payload["duration_us"]),
            incremental=bool(payload.get("incremental", True)),
        )
        if "live_object_ids" in payload:
            return cls(
                live_object_ids=payload["live_object_ids"], **common
            )
        for field in ("born_ids", "dead_ids"):
            if field not in payload:
                where = source or "<snapshot payload>"
                raise ProfileFormatError(
                    f"{where}: delta snapshot payload (seq "
                    f"{payload.get('seq', '?')}) is missing {field!r}"
                )
        return cls(
            born_ids=payload["born_ids"],
            dead_ids=payload["dead_ids"],
            predecessor=predecessor,
            **common,
        )


class SnapshotView(Sequence):
    """Read-only, zero-copy view over a store's snapshot list.

    Returned by :attr:`SnapshotStore.snapshots`; the Analyzer and the
    figure drivers iterate it in hot loops, so property access must be
    O(1) — the store used to return ``list(...)`` copies, O(n) per call.
    Slicing returns a plain list (callers take prefixes for plots).
    """

    __slots__ = ("_items",)

    def __init__(self, items: List[Snapshot]) -> None:
        self._items = items

    def __getitem__(self, index):
        return self._items[index]

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[Snapshot]:
        return iter(self._items)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SnapshotView({self._items!r})"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, SnapshotView):
            return self._items == other._items
        if isinstance(other, list):
            return self._items == other
        return NotImplemented

    __hash__ = None  # type: ignore[assignment] - mutable underlying list


class SnapshotStore:
    """Time-ordered snapshot sequence for one profiling run."""

    def __init__(self) -> None:
        self._snapshots: List[Snapshot] = []
        self._view = SnapshotView(self._snapshots)

    def append(self, snapshot: Snapshot) -> None:
        if self._snapshots and snapshot.time_ms < self._snapshots[-1].time_ms:
            raise ValueError("snapshots must be appended in time order")
        if snapshot.is_delta and not snapshot.is_materialized:
            # Delta validation: an unmaterialized delta is only decodable
            # if it chains from the snapshot appended just before it.
            predecessor = snapshot.predecessor
            expected = self._snapshots[-1] if self._snapshots else None
            if predecessor is not expected:
                raise ValueError(
                    "delta snapshot must chain from the store's last "
                    f"snapshot (seq={snapshot.seq} has predecessor "
                    f"{predecessor!r}, store tail is {expected!r})"
                )
        self._snapshots.append(snapshot)

    @property
    def snapshots(self) -> SnapshotView:
        """Immutable, O(1) view of the ordered snapshots."""
        return self._view

    def trim(self, keep_last: int = 1) -> int:
        """Drop all but the newest ``keep_last`` snapshots; returns the
        number dropped.

        The serve-cycle engine trims after the streaming stages consume
        each snapshot so daemon memory stays bounded by the cycle, not
        the run.  Mutates the list in place — existing views stay
        coherent.
        """
        if keep_last < 0:
            raise ValueError("keep_last cannot be negative")
        dropped = max(0, len(self._snapshots) - keep_last)
        if dropped:
            del self._snapshots[:dropped]
        return dropped

    def __len__(self) -> int:
        return len(self._snapshots)

    def __iter__(self):
        return iter(self._snapshots)

    def __getitem__(self, index: int) -> Snapshot:
        return self._snapshots[index]

    # -- aggregate views (Figures 3/4) -------------------------------------------

    def sizes_bytes(self) -> List[int]:
        return [s.size_bytes for s in self._snapshots]

    def durations_us(self) -> List[float]:
        return [s.duration_us for s in self._snapshots]

    def total_bytes(self) -> int:
        return sum(s.size_bytes for s in self._snapshots)

    def total_duration_us(self) -> float:
        return sum(s.duration_us for s in self._snapshots)

    # -- persistence: binary columnar (default) or legacy JSON lines ---------------

    def save(self, path: str, format: Optional[str] = None) -> None:
        """Persist every snapshot in its native (delta or full) form.

        ``format`` is ``"binary"`` (the default — the columnar
        ``polm2-snapshots-v2`` layout of :mod:`repro.snapshot.binstore`)
        or ``"jsonl"`` (the legacy one-JSON-object-per-line file).  When
        omitted, a ``.jsonl`` path selects the legacy format so existing
        callers writing ``snapshots.jsonl`` keep producing what the name
        promises; every other path gets the binary store.
        """
        if format is None:
            format = "jsonl" if path.endswith(".jsonl") else "binary"
        if format not in SNAPSHOT_FORMATS:
            raise ValueError(
                f"unknown snapshot format {format!r} "
                f"(expected one of {SNAPSHOT_FORMATS})"
            )
        if format == "binary":
            from repro.snapshot import binstore

            binstore.write_store(path, self._snapshots)
            return
        with open(path, "w") as handle:
            for snapshot in self._snapshots:
                handle.write(json.dumps(snapshot.to_dict()) + "\n")

    @classmethod
    def iter_file(cls, path: str) -> Iterator[Snapshot]:
        """Stream snapshots from either on-disk format, one at a time.

        The format is sniffed from the file's magic bytes: binary
        columnar stores decode through :mod:`repro.snapshot.binstore`,
        anything else is read as legacy JSON lines.  Unlike
        :meth:`load`, nothing here retains the whole sequence: each
        delta chains onto the previous snapshot (so lazy live-set
        decoding still works) but the *caller* decides what stays alive
        — the streaming analyzer keeps only the latest, so replaying a
        recording never materializes every live set at once.
        """
        from repro.snapshot import binstore

        if binstore.is_binary_store(path):
            yield from binstore.iter_binary(path)
            return
        previous: Optional[Snapshot] = None
        with open(path) as handle:
            for line in handle:
                line = line.strip()
                if line:
                    snapshot = Snapshot.from_dict(
                        json.loads(line), predecessor=previous, source=path
                    )
                    yield snapshot
                    previous = snapshot

    @classmethod
    def load(cls, path: str) -> "SnapshotStore":
        """Read either format; deltas chain onto the previous snapshot."""
        store = cls()
        for snapshot in cls.iter_file(path):
            store.append(snapshot)
        return store

    # -- pickling: ship the delta payloads, rebuild the chain iteratively.
    # -- (Default pickling would recurse predecessor-by-predecessor and
    # -- also re-inflate every delta to a full set via Snapshot.__reduce__;
    # -- this keeps cross-process transfer proportional to the deltas.)

    def __reduce__(self):
        return (
            SnapshotStore._from_payloads,
            ([s.to_dict() for s in self._snapshots],),
        )

    @classmethod
    def _from_payloads(cls, payloads: List[Dict]) -> "SnapshotStore":
        store = cls()
        previous: Optional[Snapshot] = None
        for payload in payloads:
            snapshot = Snapshot.from_dict(payload, predecessor=previous)
            store.append(snapshot)
            previous = snapshot
        return store
