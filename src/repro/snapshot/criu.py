"""CRIU-style incremental process checkpoints.

Models the Checkpoint/Restore-In-Userspace behaviour POLM2 relies on
(paper §4.2):

* **incremental**: only pages whose kernel dirty bit is set since the last
  checkpoint are written; the dirty bits are cleared at each checkpoint;
* **advice-aware**: pages carrying the no-need bit (set via ``madvise`` by
  the Recorder for pages holding no live objects) are skipped entirely.

The physical image is therefore ``dirty ∧ ¬no-need`` pages; its size and
write time are what Figures 3/4 compare against ``jmap``.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.config import CostModel
from repro.core.idset import IdSet
from repro.heap.heap import SimHeap
from repro.heap.objects import HeapObject
from repro.snapshot.snapshot import Snapshot


class CRIUEngine:
    """Incremental checkpointer over the simulated heap's page table.

    The first checkpoint is a full image; every later one is stored
    delta-encoded (``born_ids``/``dead_ids`` against its predecessor),
    mirroring the incremental image directories CRIU leaves on disk.
    ``delta_encode=False`` restores the legacy full-set representation
    (every snapshot owns its complete live-set), used by ablations and
    format-compatibility tests.
    """

    name = "criu"

    def __init__(self, costs: CostModel, delta_encode: bool = True) -> None:
        self.costs = costs
        self.delta_encode = delta_encode
        self._seq = 0
        self._prev_live: Optional[IdSet] = None
        self._prev_snapshot: Optional[Snapshot] = None

    def checkpoint(
        self,
        heap: SimHeap,
        live_objects: Iterable[HeapObject],
        time_ms: float,
        live_ids: Optional[IdSet] = None,
    ) -> Snapshot:
        """Create one incremental snapshot.

        Args:
            heap: the heap to checkpoint (its page table supplies the
                dirty/no-need bits).
            live_objects: objects reachable at checkpoint time; their ids
                become the snapshot's logical content.  The caller (the
                Recorder) is responsible for having already marked unused
                pages no-need.
            time_ms: virtual time of the checkpoint.
            live_ids: optional prebuilt :class:`IdSet` of the same ids;
                the snapshot-point path builds it once and shares it with
                the no-need sweep instead of re-deriving it here.
        """
        # Only the count matters for image size/time; counting flag bytes
        # is one C pass, no page-index list is materialized.
        pages_written = heap.page_table.snapshot_candidate_count()
        size_bytes = pages_written * heap.page_size
        duration_us = (
            self.costs.criu_fixed_us
            + self.costs.criu_write_kib_us * (size_bytes / 1024.0)
        )
        # CRIU clears the dirty bits so the next checkpoint is a delta.
        heap.page_table.clear_dirty()
        self._seq += 1
        # The captured ids go straight into the compact kernel: identity
        # hashes are monotonic, so the live set is runs + bitmap blocks.
        live = (
            live_ids
            if live_ids is not None
            else IdSet(obj.object_id for obj in live_objects)
        )
        common = dict(
            seq=self._seq,
            time_ms=time_ms,
            engine=self.name,
            pages_written=pages_written,
            size_bytes=size_bytes,
            duration_us=duration_us,
            incremental=self._seq > 1,
        )
        if self.delta_encode and self._prev_live is not None:
            # Logical content mirrors the physical image: only what
            # changed since the previous checkpoint is stored.
            snapshot = Snapshot(
                born_ids=live - self._prev_live,
                dead_ids=self._prev_live - live,
                predecessor=self._prev_snapshot,
                **common,
            )
        else:
            snapshot = Snapshot(live_object_ids=live, **common)
        self._prev_live = live
        self._prev_snapshot = snapshot
        return snapshot

    @property
    def checkpoints_taken(self) -> int:
        return self._seq
