"""Binary columnar snapshot store (``snapshots.bin``).

The JSON-lines snapshot file spends most of its load time parsing id
lists out of text and boxing them into frozensets.  This module replaces
it with a columnar binary layout, schema ``polm2-snapshots-v2``:

```
magic    8 B   b"POLM2SNP"
u32      4 B   metadata header length (little-endian)
header         JSON object:
                 schema        "polm2-snapshots-v2"
                 count         number of snapshots
                 columns       per-field metadata columns, one entry per
                               snapshot: seq, time_ms, engine,
                               pages_written, size_bytes, duration_us,
                               incremental, kind ("delta" | "full")
id columns     per snapshot, in order:
                 delta  -> u32 len + born_ids column
                           u32 len + dead_ids column
                 full   -> u32 len + live_object_ids column
```

Each id column is an :meth:`repro.core.idset.IdSet.to_bytes` payload —
varint-delta runs for sparse chunks, raw bitmap blocks for dense ranges
— so decoding a column is mostly one C ``int.from_bytes`` per dense
chunk.  Columns are length-prefixed, which makes the file mmap-friendly:
a reader can locate any snapshot's columns by skipping, and truncation
is detected (and reported with the offending path and field) instead of
misparsed.

Version policy matches the profile IR (``polm2-profile-v2``): this
reader accepts exactly ``polm2-snapshots-v2``; a future
``polm2-snapshots-v3`` file fails with a one-line
:class:`~repro.errors.ProfileFormatError` telling the user to upgrade,
never a misparse.  Legacy ``snapshots.jsonl`` recordings keep loading
through :meth:`repro.snapshot.snapshot.SnapshotStore.iter_file`, which
sniffs the magic and falls back to the JSON-lines reader.
"""

from __future__ import annotations

import json
import struct
from typing import Iterator, Optional, Sequence, TYPE_CHECKING

from repro.core.idset import IdSet
from repro.errors import ProfileFormatError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.snapshot.snapshot import Snapshot

#: First bytes of every binary snapshot store.
SNAPSHOTS_MAGIC = b"POLM2SNP"

#: Schema identifier embedded in (and required from) the header.
SNAPSHOTS_SCHEMA = "polm2-snapshots-v2"

_LEN = struct.Struct("<I")

#: Metadata columns, in header order.
_COLUMNS = (
    "seq",
    "time_ms",
    "engine",
    "pages_written",
    "size_bytes",
    "duration_us",
    "incremental",
    "kind",
)


def write_store(path: str, snapshots: Sequence["Snapshot"]) -> None:
    """Write the snapshot sequence as one binary columnar file."""
    columns = {name: [] for name in _COLUMNS}
    payloads = []
    for snapshot in snapshots:
        columns["seq"].append(snapshot.seq)
        columns["time_ms"].append(snapshot.time_ms)
        columns["engine"].append(snapshot.engine)
        columns["pages_written"].append(snapshot.pages_written)
        columns["size_bytes"].append(snapshot.size_bytes)
        columns["duration_us"].append(snapshot.duration_us)
        columns["incremental"].append(snapshot.incremental)
        if snapshot.is_delta:
            columns["kind"].append("delta")
            payloads.append(
                (snapshot.born_ids.to_bytes(), snapshot.dead_ids.to_bytes())
            )
        else:
            columns["kind"].append("full")
            payloads.append((snapshot.live_object_ids.to_bytes(),))
    header = json.dumps(
        {
            "schema": SNAPSHOTS_SCHEMA,
            "count": len(payloads),
            "columns": columns,
        },
        separators=(",", ":"),
    ).encode()
    with open(path, "wb") as handle:
        handle.write(SNAPSHOTS_MAGIC)
        handle.write(_LEN.pack(len(header)))
        handle.write(header)
        for column_group in payloads:
            for payload in column_group:
                handle.write(_LEN.pack(len(payload)))
                handle.write(payload)


def _read_column(blob: bytes, offset: int, path: str, field: str, seq) -> tuple:
    """One length-prefixed id column; returns (IdSet, next offset)."""
    if offset + _LEN.size > len(blob):
        raise ProfileFormatError(
            f"{path}: truncated {field!r} id column for snapshot seq {seq} "
            f"({SNAPSHOTS_SCHEMA})"
        )
    (length,) = _LEN.unpack_from(blob, offset)
    offset += _LEN.size
    if offset + length > len(blob):
        raise ProfileFormatError(
            f"{path}: truncated {field!r} id column for snapshot seq {seq} "
            f"({SNAPSHOTS_SCHEMA})"
        )
    try:
        ids = IdSet.from_bytes(blob[offset : offset + length])
    except ValueError as exc:
        raise ProfileFormatError(
            f"{path}: corrupt {field!r} id column for snapshot seq {seq}: {exc}"
        ) from exc
    return ids, offset + length


def _load_header(blob: bytes, path: str) -> dict:
    if len(blob) < len(SNAPSHOTS_MAGIC) + _LEN.size:
        raise ProfileFormatError(
            f"{path}: truncated snapshot store header (expected "
            f"{SNAPSHOTS_SCHEMA})"
        )
    (header_len,) = _LEN.unpack_from(blob, len(SNAPSHOTS_MAGIC))
    start = len(SNAPSHOTS_MAGIC) + _LEN.size
    if start + header_len > len(blob):
        raise ProfileFormatError(
            f"{path}: truncated snapshot store header (expected "
            f"{SNAPSHOTS_SCHEMA})"
        )
    try:
        header = json.loads(blob[start : start + header_len])
    except ValueError as exc:
        raise ProfileFormatError(
            f"{path}: corrupt snapshot store header: {exc}"
        ) from exc
    schema = header.get("schema") if isinstance(header, dict) else None
    if schema != SNAPSHOTS_SCHEMA:
        if isinstance(schema, str) and schema.startswith("polm2-snapshots-v"):
            raise ProfileFormatError(
                f"{path}: snapshot store schema {schema} is newer than the "
                f"supported {SNAPSHOTS_SCHEMA}; upgrade repro to read it"
            )
        raise ProfileFormatError(
            f"{path}: unknown snapshot store schema {schema!r} (expected "
            f"{SNAPSHOTS_SCHEMA})"
        )
    count = header.get("count")
    columns = header.get("columns")
    if not isinstance(count, int) or count < 0 or not isinstance(columns, dict):
        raise ProfileFormatError(
            f"{path}: malformed snapshot store header ({SNAPSHOTS_SCHEMA})"
        )
    for name in _COLUMNS:
        column = columns.get(name)
        if not isinstance(column, list) or len(column) != count:
            raise ProfileFormatError(
                f"{path}: metadata column {name!r} missing or wrong length "
                f"(expected {count} entries, {SNAPSHOTS_SCHEMA})"
            )
    header["_body_offset"] = start + header_len
    return header


def iter_binary(path: str) -> Iterator["Snapshot"]:
    """Stream snapshots out of a binary store, chaining delta predecessors.

    Metadata columns are decoded up front (they are tiny); id columns
    are decoded one snapshot at a time, so — exactly like the JSON-lines
    reader — the caller decides how many snapshots stay alive.
    """
    from repro.snapshot.snapshot import Snapshot

    with open(path, "rb") as handle:
        blob = handle.read()
    header = _load_header(blob, path)
    columns = header["columns"]
    offset = header["_body_offset"]
    previous: Optional[Snapshot] = None
    for index in range(header["count"]):
        seq = columns["seq"][index]
        kind = columns["kind"][index]
        common = dict(
            seq=int(seq),
            time_ms=float(columns["time_ms"][index]),
            engine=columns["engine"][index],
            pages_written=int(columns["pages_written"][index]),
            size_bytes=int(columns["size_bytes"][index]),
            duration_us=float(columns["duration_us"][index]),
            incremental=bool(columns["incremental"][index]),
        )
        if kind == "delta":
            born, offset = _read_column(blob, offset, path, "born_ids", seq)
            dead, offset = _read_column(blob, offset, path, "dead_ids", seq)
            snapshot = Snapshot(
                born_ids=born, dead_ids=dead, predecessor=previous, **common
            )
        elif kind == "full":
            live, offset = _read_column(
                blob, offset, path, "live_object_ids", seq
            )
            snapshot = Snapshot(live_object_ids=live, **common)
        else:
            raise ProfileFormatError(
                f"{path}: unknown snapshot kind {kind!r} for seq {seq} "
                f"({SNAPSHOTS_SCHEMA})"
            )
        yield snapshot
        previous = snapshot
    if offset != len(blob):
        raise ProfileFormatError(
            f"{path}: {len(blob) - offset} trailing bytes after the last id "
            f"column ({SNAPSHOTS_SCHEMA})"
        )


def is_binary_store(path: str) -> bool:
    """True when ``path`` starts with the binary store magic."""
    try:
        with open(path, "rb") as handle:
            return handle.read(len(SNAPSHOTS_MAGIC)) == SNAPSHOTS_MAGIC
    except OSError:
        return False
