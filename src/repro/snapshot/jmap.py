"""The jmap baseline: full live-object heap dumps.

``jmap -dump:live`` attaches to the JVM, walks every live object, and
serializes each into an ``.hprof`` file.  Every dump is *complete* — no
incrementality, no page skipping — which is why the paper's Figures 3/4
show POLM2's Dumper cutting snapshot time by >90 % and size by ≈60 %.

A further fidelity detail (paper §4.3): jmap identifies objects by their
*address*, which changes when the collector moves them, so jmap dumps
cannot be used to track an object across snapshots.  The model exposes
address-keyed content to let tests demonstrate exactly that failure.
"""

from __future__ import annotations

from typing import Dict, Iterable

from repro.config import CostModel
from repro.heap.heap import SimHeap
from repro.heap.objects import HeapObject
from repro.snapshot.snapshot import Snapshot

#: hprof serialization overhead per object record (header, class ref, …).
HPROF_RECORD_OVERHEAD = 24

#: hprof files expand live bytes: every instance record re-serializes its
#: header and field descriptors, string tables are embedded, and arrays
#: are written element-wise.  Real dumps run ~1.4-1.5x the live heap.
HPROF_EXPANSION = 1.45


class JmapDumper:
    """Full live-heap dumper, the widely used baseline of Figures 3/4."""

    name = "jmap"

    def __init__(self, costs: CostModel) -> None:
        self.costs = costs
        self._seq = 0

    def dump(
        self,
        heap: SimHeap,
        live_objects: Iterable[HeapObject],
        time_ms: float,
    ) -> Snapshot:
        """Produce one full dump of every live object.

        jmap has no incremental mode, so the snapshot always carries the
        complete live-set (never the delta representation CRIU uses) —
        exactly the redundancy Figures 3/4 charge it for.
        """
        live_bytes = 0
        ids = []
        for obj in live_objects:
            live_bytes += obj.size
            ids.append(obj.object_id)
        size_bytes = int(
            live_bytes * HPROF_EXPANSION + HPROF_RECORD_OVERHEAD * len(ids)
        )
        duration_us = (
            self.costs.jmap_fixed_us
            + self.costs.jmap_obj_us * len(ids)
            + self.costs.jmap_write_kib_us * (size_bytes / 1024.0)
        )
        self._seq += 1
        return Snapshot(
            seq=self._seq,
            time_ms=time_ms,
            engine=self.name,
            pages_written=0,
            size_bytes=size_bytes,
            duration_us=duration_us,
            live_object_ids=ids,
            incremental=False,
        )

    @staticmethod
    def address_keyed_view(live_objects: Iterable[HeapObject]) -> Dict[int, int]:
        """Map current address -> object size, as a jmap dump records it.

        Addresses are not stable across GC moves; tests use this view to
        reproduce §4.3's argument for identity-hash-based matching.
        """
        return {obj.address: obj.size for obj in live_objects}
