"""Big-data platform workloads (the paper's evaluation subjects, §5.2).

Six workload configurations over three mini-platforms, mirroring the
paper: Cassandra (write-intensive / write-read / read-intensive YCSB
mixes), Lucene (write-heavy text indexing with top-word queries), and
GraphChi (PageRank and Connected Components over a power-law graph).
"""

from typing import Callable, Dict

from repro.errors import UnknownWorkloadError
from repro.workloads.base import ManualNG2CStrategy, Workload

__all__ = [
    "ManualNG2CStrategy",
    "WORKLOAD_NAMES",
    "Workload",
    "make_workload",
]


def _registry() -> Dict[str, Callable[..., Workload]]:
    # Imported lazily so `repro.workloads.base` stays import-cycle-free.
    from repro.workloads.cassandra.workload import CassandraWorkload
    from repro.workloads.graphchi.workload import GraphChiWorkload
    from repro.workloads.lucene.workload import LuceneWorkload

    return {
        "cassandra-wi": lambda **kw: CassandraWorkload(mix="wi", **kw),
        "cassandra-wr": lambda **kw: CassandraWorkload(mix="wr", **kw),
        "cassandra-ri": lambda **kw: CassandraWorkload(mix="ri", **kw),
        "lucene": lambda **kw: LuceneWorkload(**kw),
        "graphchi-cc": lambda **kw: GraphChiWorkload(algorithm="cc", **kw),
        "graphchi-pr": lambda **kw: GraphChiWorkload(algorithm="pr", **kw),
    }


WORKLOAD_NAMES = (
    "cassandra-wi",
    "cassandra-wr",
    "cassandra-ri",
    "lucene",
    "graphchi-cc",
    "graphchi-pr",
)


def make_workload(name: str, **kwargs) -> Workload:
    """Instantiate a workload by its paper name (e.g. ``cassandra-wi``)."""
    registry = _registry()
    try:
        factory = registry[name]
    except KeyError:
        raise UnknownWorkloadError(
            f"unknown workload {name!r}; choose from {sorted(registry)}"
        ) from None
    return factory(**kwargs)
