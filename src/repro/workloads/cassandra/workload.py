"""Cassandra workload driver: YCSB-style mixes + the manual NG2C baseline.

The three mixes mirror §5.2.1 (rates in queries/second on the paper's
testbed; here only the read:write *ratio* matters):

* ``wi`` — write-intensive, 7500 writes / 2500 reads;
* ``wr`` — write-read,      5000 writes / 5000 reads;
* ``ri`` — read-intensive,  2500 writes / 7500 reads.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.core.profile import AllocDirective, CallDirective
from repro.errors import WorkloadError
from repro.runtime.code import ClassModel
from repro.runtime.vm import VM
from repro.workloads.base import ManualNG2CStrategy, Workload
from repro.workloads.cassandra import codemodel as cm
from repro.workloads.cassandra.codemodel import build_class_models
from repro.workloads.cassandra.store import CassandraParams, CassandraStore

#: Write fraction per mix (paper §5.2.1).
MIX_WRITE_FRACTION = {"wi": 0.75, "wr": 0.50, "ri": 0.25}

#: Generation indexes the hand annotations use: 1 rotates with the
#: memtable (one generation per flush, as the paper describes), 2 holds
#: long-lived structures (SSTable indexes, caches).
MANUAL_MEMTABLE_GEN = 1
MANUAL_LONGLIVED_GEN = 2


class CassandraWorkload(Workload):
    """One Cassandra node under a YCSB-style zipfian mix."""

    def __init__(
        self,
        mix: str = "wi",
        seed: int = 42,
        params: Optional[CassandraParams] = None,
        ops_per_tick: int = 64,
        thread_count: int = 2,
    ) -> None:
        super().__init__()
        if mix not in MIX_WRITE_FRACTION:
            raise WorkloadError(f"unknown Cassandra mix {mix!r}")
        if thread_count < 1:
            raise WorkloadError("thread_count must be >= 1")
        self.mix = mix
        self.name = f"cassandra-{mix}"
        self.seed = seed
        self.params = params or CassandraParams()
        self.ops_per_tick = ops_per_tick
        self.thread_count = thread_count
        self.write_fraction = MIX_WRITE_FRACTION[mix]
        self.rng = random.Random(seed)
        self.vm: Optional[VM] = None
        self.store: Optional[CassandraStore] = None
        self.threads: List = []

    # -- Workload interface ---------------------------------------------------------

    def class_models(self) -> List[ClassModel]:
        return build_class_models()

    def setup(self, vm: VM) -> None:
        self.vm = vm
        self.threads = [
            vm.new_thread(f"MutationStage-{i + 1}")
            for i in range(self.thread_count)
        ]
        self.store = CassandraStore(vm, self.threads[0], self.params, self.seed)
        self.store.flush_listeners.append(self.fire_flush_hooks)

    def tick(self) -> int:
        if self.vm is None or self.store is None:
            raise WorkloadError("setup() must run before tick()")
        store = self.store
        vm = self.vm
        ops = 0
        per_thread = max(1, self.ops_per_tick // len(self.threads))
        for thread in self.threads:
            with thread.entry(cm.STORAGE_PROXY, "process"):
                for _ in range(per_thread):
                    if self.rng.random() < self.write_fraction:
                        store.write(thread)
                    else:
                        store.read(thread)
                    vm.tick_op()
                    ops += 1
        return ops

    def teardown(self) -> None:
        self.store = None
        self.vm = None

    # -- manual NG2C baseline (§5.4.1) --------------------------------------------------

    def manual_ng2c(self) -> ManualNG2CStrategy:
        """The hand annotations an experienced developer wrote.

        Both shared-helper conflicts are recognized and resolved by
        setting the target generation at distinguishing call sites — but
        one placement is wrong: the response-row clone on the read path
        (``ReadExecutor.execute`` line 63) is directed into the rotating
        memtable generation, pretenuring per-request garbage.  The paper
        observed exactly this class of mistake and reports that it costs
        manual NG2C its lead on the read-intensive mix, where the read
        path dominates (§5.4.1: "misplaced manual code changes").
        """
        gen_mem = MANUAL_MEMTABLE_GEN
        gen_long = MANUAL_LONGLIVED_GEN
        alloc = [
            AllocDirective(cm.MEMTABLE, "put", cm.L_PUT_ALLOC_ROW),
            AllocDirective(cm.MEMTABLE, "put", cm.L_PUT_ALLOC_CELLS),
            AllocDirective(cm.MEMTABLE, "put", cm.L_PUT_ALLOC_INDEX_ENTRY),
            AllocDirective(cm.COMMIT_LOG, "append", cm.L_APPEND_ALLOC_RECORD),
            AllocDirective(cm.SSTABLE_WRITER, "flush", cm.L_FLUSH_ALLOC_INDEX),
            AllocDirective(cm.SSTABLE_WRITER, "flush", cm.L_FLUSH_ALLOC_BLOOM),
            AllocDirective(cm.SSTABLE_WRITER, "flush", cm.L_FLUSH_ALLOC_META),
            AllocDirective(cm.ROW_CACHE, "cacheRow", cm.L_CACHE_ALLOC_ENTRY),
            AllocDirective(cm.KEY_CACHE, "put", cm.L_KEY_CACHE_ALLOC_ENTRY),
            AllocDirective(cm.UTIL, "cloneRow", cm.L_CLONE_ALLOC),
            AllocDirective(cm.BYTE_BUFFER_UTIL, "allocate", cm.L_BUFFER_ALLOC),
        ]
        calls = [
            # Memtable generation: rows, log records, their helper allocs.
            CallDirective(
                cm.STORAGE_PROXY, "mutate", cm.L_MUTATE_CALL_MEMTABLE_PUT, gen_mem
            ),
            CallDirective(
                cm.STORAGE_PROXY, "mutate", cm.L_MUTATE_CALL_COMMITLOG, gen_mem
            ),
            # Long-lived generation: SSTable structures and both caches.
            CallDirective(
                cm.MEMTABLE, "maybeFlush", cm.L_MAYBE_FLUSH_CALL_FLUSH, gen_long
            ),
            CallDirective(
                cm.READ_EXECUTOR, "execute", cm.L_READ_CALL_ROW_CACHE, gen_long
            ),
            CallDirective(
                cm.READ_EXECUTOR, "execute", cm.L_READ_CALL_KEY_CACHE, gen_long
            ),
            # THE PLANTED MISTAKE: response clones are per-request garbage,
            # but the developer pretenured them with the memtable rows.
            CallDirective(
                cm.READ_EXECUTOR, "execute", cm.L_READ_CALL_CLONE, gen_mem
            ),
        ]
        return ManualNG2CStrategy(
            alloc_directives=alloc,
            call_directives=calls,
            rotate_generation_on_flush=True,
            rotating_index=gen_mem,
            conflicts_handled=2,
            notes=(
                "Hand annotations per NG2C's Cassandra case study; one "
                "misplaced setGeneration on the read path (paper §5.4.1)."
            ),
        )
