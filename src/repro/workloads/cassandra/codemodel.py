"""The Cassandra code model: classes, methods, allocation and call sites.

Line numbers are stable identifiers shared between the declared model and
the executing store code — the simulated analogue of real source lines.
The model is designed to carry the lifetime structure of the paper's
Table 1 row for Cassandra: eleven candidate middle/long-lived allocation
sites and two allocation-site conflicts (``Util.cloneRow`` and
``ByteBufferUtil.allocate``, each reached from paths with different
lifetimes).
"""

from __future__ import annotations

from typing import List

from repro.runtime.code import ClassModel

# -- class / method names -------------------------------------------------------

STORAGE_PROXY = "org.apache.cassandra.service.StorageProxy"
MEMTABLE = "org.apache.cassandra.db.Memtable"
COMMIT_LOG = "org.apache.cassandra.db.commitlog.CommitLog"
SSTABLE_WRITER = "org.apache.cassandra.io.sstable.SSTableWriter"
READ_EXECUTOR = "org.apache.cassandra.service.ReadExecutor"
ROW_CACHE = "org.apache.cassandra.cache.RowCache"
KEY_CACHE = "org.apache.cassandra.cache.KeyCache"
UTIL = "org.apache.cassandra.utils.Util"
BYTE_BUFFER_UTIL = "org.apache.cassandra.utils.ByteBufferUtil"

# -- line numbers (site identifiers) -----------------------------------------------

# StorageProxy.process
L_PROCESS_CALL_MUTATE = 10
L_PROCESS_CALL_READ = 12
# StorageProxy.mutate
L_MUTATE_CALL_MEMTABLE_PUT = 21
L_MUTATE_CALL_COMMITLOG = 24
L_MUTATE_CALL_MAYBE_FLUSH = 28
# Memtable.put
L_PUT_ALLOC_ROW = 30
L_PUT_ALLOC_CELLS = 31
L_PUT_ALLOC_INDEX_ENTRY = 32
L_PUT_CALL_CLONE = 26
# Memtable.maybeFlush
L_MAYBE_FLUSH_CALL_FLUSH = 35
# CommitLog.append
L_APPEND_ALLOC_RECORD = 40
L_APPEND_CALL_BUFFER = 44
# SSTableWriter.flush
L_FLUSH_ALLOC_INDEX = 100
L_FLUSH_ALLOC_BLOOM = 101
L_FLUSH_ALLOC_META = 102
# ReadExecutor.execute
L_READ_ALLOC_COMMAND = 60
L_READ_ALLOC_ITERATOR = 61
L_READ_CALL_CLONE = 63
L_READ_CALL_BUFFER = 65
L_READ_CALL_ROW_CACHE = 67
L_READ_CALL_KEY_CACHE = 68
# RowCache.cacheRow
L_CACHE_ALLOC_ENTRY = 70
L_CACHE_CALL_CLONE = 72
# KeyCache.put
L_KEY_CACHE_ALLOC_ENTRY = 75
# Util.cloneRow (conflict site #1)
L_CLONE_ALLOC = 80
# ByteBufferUtil.allocate (conflict site #2)
L_BUFFER_ALLOC = 90

# -- object sizes in bytes ------------------------------------------------------------

SIZE_ROW = 320
SIZE_CELLS = 160
SIZE_ROW_INDEX_ENTRY = 48
SIZE_LOG_RECORD = 96
SIZE_LOG_BUFFER = 128
SIZE_CLONE = 320
SIZE_SSTABLE_INDEX_ENTRY = 56
SIZE_BLOOM_PAGE = 4096
SIZE_SSTABLE_META = 512
SIZE_READ_COMMAND = 96
SIZE_ROW_ITERATOR = 80
SIZE_RESPONSE_BUFFER = 192
SIZE_CACHE_ENTRY = 64
SIZE_KEY_CACHE_ENTRY = 48


def build_class_models() -> List[ClassModel]:
    """Declare every Cassandra class the workload executes."""
    proxy = ClassModel(STORAGE_PROXY)
    process = proxy.add_method("process")
    process.add_call_site(L_PROCESS_CALL_MUTATE, STORAGE_PROXY, "mutate")
    process.add_call_site(L_PROCESS_CALL_READ, READ_EXECUTOR, "execute")
    mutate = proxy.add_method("mutate")
    mutate.add_call_site(L_MUTATE_CALL_MEMTABLE_PUT, MEMTABLE, "put")
    mutate.add_call_site(L_MUTATE_CALL_COMMITLOG, COMMIT_LOG, "append")
    mutate.add_call_site(L_MUTATE_CALL_MAYBE_FLUSH, MEMTABLE, "maybeFlush")

    memtable = ClassModel(MEMTABLE)
    put = memtable.add_method("put")
    put.add_alloc_site(L_PUT_ALLOC_ROW, "Row", SIZE_ROW)
    put.add_alloc_site(L_PUT_ALLOC_CELLS, "Cell[]", SIZE_CELLS)
    put.add_alloc_site(L_PUT_ALLOC_INDEX_ENTRY, "RowIndexEntry", SIZE_ROW_INDEX_ENTRY)
    put.add_call_site(L_PUT_CALL_CLONE, UTIL, "cloneRow")
    maybe_flush = memtable.add_method("maybeFlush")
    maybe_flush.add_call_site(L_MAYBE_FLUSH_CALL_FLUSH, SSTABLE_WRITER, "flush")

    commitlog = ClassModel(COMMIT_LOG)
    append = commitlog.add_method("append")
    append.add_alloc_site(L_APPEND_ALLOC_RECORD, "LogRecord", SIZE_LOG_RECORD)
    append.add_call_site(L_APPEND_CALL_BUFFER, BYTE_BUFFER_UTIL, "allocate")

    writer = ClassModel(SSTABLE_WRITER)
    flush = writer.add_method("flush")
    flush.add_alloc_site(L_FLUSH_ALLOC_INDEX, "IndexEntry", SIZE_SSTABLE_INDEX_ENTRY)
    flush.add_alloc_site(L_FLUSH_ALLOC_BLOOM, "BloomPage", SIZE_BLOOM_PAGE)
    flush.add_alloc_site(L_FLUSH_ALLOC_META, "SSTableMetadata", SIZE_SSTABLE_META)

    reader = ClassModel(READ_EXECUTOR)
    execute = reader.add_method("execute")
    execute.add_alloc_site(L_READ_ALLOC_COMMAND, "ReadCommand", SIZE_READ_COMMAND)
    execute.add_alloc_site(L_READ_ALLOC_ITERATOR, "RowIterator", SIZE_ROW_ITERATOR)
    execute.add_call_site(L_READ_CALL_CLONE, UTIL, "cloneRow")
    execute.add_call_site(L_READ_CALL_BUFFER, BYTE_BUFFER_UTIL, "allocate")
    execute.add_call_site(L_READ_CALL_ROW_CACHE, ROW_CACHE, "cacheRow")
    execute.add_call_site(L_READ_CALL_KEY_CACHE, KEY_CACHE, "put")

    row_cache = ClassModel(ROW_CACHE)
    cache_row = row_cache.add_method("cacheRow")
    cache_row.add_alloc_site(L_CACHE_ALLOC_ENTRY, "CacheEntry", SIZE_CACHE_ENTRY)
    cache_row.add_call_site(L_CACHE_CALL_CLONE, UTIL, "cloneRow")

    key_cache = ClassModel(KEY_CACHE)
    kc_put = key_cache.add_method("put")
    kc_put.add_alloc_site(
        L_KEY_CACHE_ALLOC_ENTRY, "KeyCacheEntry", SIZE_KEY_CACHE_ENTRY
    )

    util = ClassModel(UTIL)
    clone = util.add_method("cloneRow")
    clone.add_alloc_site(L_CLONE_ALLOC, "Row", SIZE_CLONE)

    buffer_util = ClassModel(BYTE_BUFFER_UTIL)
    allocate = buffer_util.add_method("allocate")
    allocate.add_alloc_site(L_BUFFER_ALLOC, "ByteBuffer", SIZE_LOG_BUFFER)

    return [
        proxy,
        memtable,
        commitlog,
        writer,
        reader,
        row_cache,
        key_cache,
        util,
        buffer_util,
    ]
