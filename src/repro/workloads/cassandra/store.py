"""The executing Cassandra store: write path, read path, flush, caches.

Every allocation goes through the declared code model
(:mod:`repro.workloads.cassandra.codemodel`), so agent-rewritten classes
change its behaviour exactly as rewritten bytecode would: the Recorder
sees every ``new``, and the Instrumenter's ``@Gen`` / ``setGeneration``
directives steer where rows, log records, cache entries, and SSTable
structures land in the heap.
"""

from __future__ import annotations

import collections
import dataclasses
import random
from typing import Deque, List, Optional, Tuple

from repro.heap.objects import HeapObject
from repro.runtime.thread import SimThread
from repro.runtime.vm import VM
from repro.workloads.cassandra import codemodel as cm
from repro.workloads.ycsb import ZipfianGenerator


@dataclasses.dataclass
class CassandraParams:
    """Sizing knobs, scaled with the 64 MiB default heap."""

    flush_threshold_bytes: int = 10 * 1024 * 1024
    row_cache_capacity_bytes: int = 14 * 1024 * 1024
    key_cache_capacity_bytes: int = 2 * 1024 * 1024
    max_sstables: int = 12
    key_space: int = 200_000
    #: Probability that a cache-missing read populates the row cache.
    cache_fill_probability: float = 0.35
    #: YCSB zipfian request-distribution constant (YCSB default).
    zipf_theta: float = 0.99
    #: Rows summarized per SSTable index entry.
    rows_per_index_entry: int = 8
    #: Rows covered per bloom-filter page.
    rows_per_bloom_page: int = 1024


class CassandraStore:
    """In-memory state of the mini Cassandra node."""

    def __init__(
        self, vm: VM, thread: SimThread, params: CassandraParams, seed: int
    ) -> None:
        self.vm = vm
        self.thread = thread
        self.params = params
        self.rng = random.Random(seed)
        heap = vm.heap
        # Holder objects: permanent anchors for each lifetime population.
        self.store_root = vm.allocate_anonymous(64)
        vm.roots.pin("cassandra.store", self.store_root)
        self.memtable_obj = self._new_holder()
        self.commitlog_obj = self._new_holder()
        self.sstables_obj = self._new_holder()
        self.rowcache_obj = self._new_holder()
        self.keycache_obj = self._new_holder()
        # Python-side bookkeeping.
        self.memtable_bytes = 0
        self.memtable_rows = 0
        self.flush_count = 0
        self.sstables: Deque[HeapObject] = collections.deque()
        self.row_cache: Deque[Tuple[HeapObject, int]] = collections.deque()
        self.row_cache_bytes = 0
        self.row_cache_keys: set = set()
        self.key_cache: Deque[HeapObject] = collections.deque()
        self.key_cache_bytes = 0
        #: Fired at each flush (generation rotation for manual NG2C).
        self.flush_listeners: List = []
        self._key_generator = ZipfianGenerator(
            params.key_space, theta=params.zipf_theta, seed=seed ^ 0xCA55
        )

    def _new_holder(self) -> HeapObject:
        holder = self.vm.allocate_anonymous(64)
        self.vm.heap.write_ref(self.store_root, holder)
        return holder

    def _replace_holder(self, old: HeapObject) -> HeapObject:
        self.vm.heap.remove_ref(self.store_root, old)
        return self._new_holder()

    # -- key distribution ---------------------------------------------------------

    def sample_key(self) -> int:
        """One YCSB-zipfian key (the benchmark the paper drives with)."""
        return min(self._key_generator.next(), self.params.key_space - 1)

    # -- write path -------------------------------------------------------------------

    def write(self, thread: Optional[SimThread] = None) -> None:
        """One mutation, executed under the StorageProxy.process frame.

        ``thread`` selects the mutation-stage thread doing the work
        (defaults to the store's primary thread); pretenuring state is
        thread-local, exactly as NG2C's ``setGeneration`` is.
        """
        thread = thread or self.thread
        heap = self.vm.heap
        with thread.call(cm.L_PROCESS_CALL_MUTATE, cm.STORAGE_PROXY, "mutate"):
            with thread.call(cm.L_MUTATE_CALL_MEMTABLE_PUT, cm.MEMTABLE, "put"):
                row = thread.alloc(cm.L_PUT_ALLOC_ROW)
                cells = thread.alloc(cm.L_PUT_ALLOC_CELLS)
                index_entry = thread.alloc(cm.L_PUT_ALLOC_INDEX_ENTRY)
                heap.write_ref(row, cells)
                heap.write_ref(row, index_entry)
                # Secondary-index clone: stored in the memtable, dies at
                # flush — the middle-lived path through Util.cloneRow.
                with thread.call(cm.L_PUT_CALL_CLONE, cm.UTIL, "cloneRow"):
                    index_clone = thread.alloc(cm.L_CLONE_ALLOC)
                heap.write_ref(self.memtable_obj, row)
                heap.write_ref(self.memtable_obj, index_clone)
                self.memtable_bytes += (
                    row.size + cells.size + index_entry.size + index_clone.size
                )
                self.memtable_rows += 1
            with thread.call(cm.L_MUTATE_CALL_COMMITLOG, cm.COMMIT_LOG, "append"):
                record = thread.alloc(cm.L_APPEND_ALLOC_RECORD)
                with thread.call(
                    cm.L_APPEND_CALL_BUFFER, cm.BYTE_BUFFER_UTIL, "allocate"
                ):
                    buffer = thread.alloc(cm.L_BUFFER_ALLOC)
                heap.write_ref(record, buffer)
                heap.write_ref(self.commitlog_obj, record)
                self.memtable_bytes += record.size + buffer.size
            if self.memtable_bytes >= self.params.flush_threshold_bytes:
                with thread.call(
                    cm.L_MUTATE_CALL_MAYBE_FLUSH, cm.MEMTABLE, "maybeFlush"
                ):
                    with thread.call(
                        cm.L_MAYBE_FLUSH_CALL_FLUSH, cm.SSTABLE_WRITER, "flush"
                    ):
                        self._flush(thread)

    def _flush(self, thread: Optional[SimThread] = None) -> None:
        """Flush the memtable: build SSTable structures, drop the old data.

        Executed under the SSTableWriter.flush frame, so index entries,
        bloom pages, and metadata allocate at their declared (long-lived)
        sites.
        """
        thread = thread or self.thread
        heap = self.vm.heap
        sstable = self.vm.allocate_anonymous(64)
        index_entries = max(1, self.memtable_rows // self.params.rows_per_index_entry)
        bloom_pages = max(1, self.memtable_rows // self.params.rows_per_bloom_page)
        thread.alloc_batch(
            cm.L_FLUSH_ALLOC_INDEX, count=index_entries, link_from=sstable
        )
        thread.alloc_batch(
            cm.L_FLUSH_ALLOC_BLOOM, count=bloom_pages, link_from=sstable
        )
        meta = thread.alloc(cm.L_FLUSH_ALLOC_META, keep=False)
        heap.write_ref(sstable, meta)
        heap.write_ref(self.sstables_obj, sstable)
        self.sstables.append(sstable)
        # Size-tiered compaction stand-in: cap retained SSTables.
        while len(self.sstables) > self.params.max_sstables:
            oldest = self.sstables.popleft()
            heap.remove_ref(self.sstables_obj, oldest)
        # The flushed memtable and its commit-log segment become garbage.
        self.memtable_obj = self._replace_holder(self.memtable_obj)
        self.commitlog_obj = self._replace_holder(self.commitlog_obj)
        self.memtable_bytes = 0
        self.memtable_rows = 0
        self.flush_count += 1
        for listener in self.flush_listeners:
            listener()

    # -- read path ----------------------------------------------------------------------

    def read(self, thread: Optional[SimThread] = None) -> None:
        """One read, executed under the StorageProxy.process frame."""
        thread = thread or self.thread
        key = self.sample_key()
        with thread.call(cm.L_PROCESS_CALL_READ, cm.READ_EXECUTOR, "execute"):
            thread.alloc(cm.L_READ_ALLOC_COMMAND)
            thread.alloc(cm.L_READ_ALLOC_ITERATOR)
            cache_hit = key in self.row_cache_keys
            if not cache_hit and (
                self.rng.random() < self.params.cache_fill_probability
            ):
                with thread.call(
                    cm.L_READ_CALL_ROW_CACHE, cm.ROW_CACHE, "cacheRow"
                ):
                    self._cache_row(key, thread)
                with thread.call(cm.L_READ_CALL_KEY_CACHE, cm.KEY_CACHE, "put"):
                    self._cache_key(thread)
            # Response materialization: a row clone plus a network buffer,
            # both dead as soon as the request completes — the young paths
            # through the two shared (conflicting) helpers.
            with thread.call(cm.L_READ_CALL_CLONE, cm.UTIL, "cloneRow"):
                thread.alloc(cm.L_CLONE_ALLOC)
            with thread.call(
                cm.L_READ_CALL_BUFFER, cm.BYTE_BUFFER_UTIL, "allocate"
            ):
                thread.alloc(cm.L_BUFFER_ALLOC)

    def _cache_row(self, key: int, thread: Optional[SimThread] = None) -> None:
        """Populate the row cache (long-lived path through cloneRow)."""
        thread = thread or self.thread
        heap = self.vm.heap
        entry = thread.alloc(cm.L_CACHE_ALLOC_ENTRY)
        with thread.call(cm.L_CACHE_CALL_CLONE, cm.UTIL, "cloneRow"):
            cached_row = thread.alloc(cm.L_CLONE_ALLOC)
        heap.write_ref(entry, cached_row)
        heap.write_ref(self.rowcache_obj, entry)
        entry_bytes = entry.size + cached_row.size
        self.row_cache.append((entry, key, entry_bytes))
        self.row_cache_keys.add(key)
        self.row_cache_bytes += entry_bytes
        while self.row_cache_bytes > self.params.row_cache_capacity_bytes:
            victim, victim_key, victim_bytes = self.row_cache.popleft()
            heap.remove_ref(self.rowcache_obj, victim)
            self.row_cache_keys.discard(victim_key)
            self.row_cache_bytes -= victim_bytes

    def _cache_key(self, thread: Optional[SimThread] = None) -> None:
        thread = thread or self.thread
        heap = self.vm.heap
        entry = thread.alloc(cm.L_KEY_CACHE_ALLOC_ENTRY)
        heap.write_ref(self.keycache_obj, entry)
        self.key_cache.append(entry)
        self.key_cache_bytes += entry.size
        while self.key_cache_bytes > self.params.key_cache_capacity_bytes:
            victim = self.key_cache.popleft()
            heap.remove_ref(self.keycache_obj, victim)
            self.key_cache_bytes -= victim.size
