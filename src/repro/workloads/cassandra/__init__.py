"""A miniature Cassandra: log-structured KV store under YCSB-style load.

Reproduces the object-lifetime structure that makes the real Cassandra a
hard case for G1 (paper §5.2.1):

* **memtable rows** and **commit-log records** are middle-lived: they
  accumulate for the whole flush period — long enough for G1 to promote
  them en masse — and then die *together* at flush;
* **SSTable in-memory structures** (index entries, bloom-filter pages,
  metadata) and **row/key-cache entries** are long-lived, dying only at
  compaction or eviction;
* the **read path** (commands, iterators, response clones) dies young.

Shared helpers (``Util.cloneRow``, ``ByteBufferUtil.allocate``) are called
from paths with very different lifetimes — the allocation-site conflicts
POLM2's STTree exists to resolve.
"""

from repro.workloads.cassandra.store import CassandraStore
from repro.workloads.cassandra.workload import CassandraWorkload

__all__ = ["CassandraStore", "CassandraWorkload"]
