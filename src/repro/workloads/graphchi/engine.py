"""The GraphChi engine: batch loading and vertex-program execution."""

from __future__ import annotations

import dataclasses
import random
from typing import List, Optional

from repro.heap.objects import HeapObject
from repro.runtime.thread import SimThread
from repro.runtime.vm import VM
from repro.workloads.graphchi import codemodel as cm
from repro.workloads.graphchi.graph import PowerLawGraph


@dataclasses.dataclass
class EngineParams:
    """Sizing, scaled with the 64 MiB default heap."""

    #: Edge budget per batch (GraphChi's memory-budget interval sizing).
    #: ~230k edges * 16 bytes ≈ 3.5 MiB of edge blocks per batch, plus
    #: vertex/degree/edge-data blocks ≈ 10-12 MiB per loaded batch.
    edges_per_batch: int = 230_000
    #: Bytes of edge storage one edge costs across the three edge arrays.
    bytes_per_edge: int = 16
    #: Vertices processed per engine step (one tick = one step).
    vertices_per_step: int = 192
    #: Vertex-value chunks (long-lived) to allocate at init (~8 MiB; the
    #: partition/shard-index tables add several MiB more).
    value_chunks: int = 256
    #: Message/scratch buffers allocated per step (vertex programs batch
    #: their messaging; one buffer serves many vertices).
    buffers_per_step: int = 4
    #: Probability a step draws a buffer from the shared pool.
    pool_buffer_probability: float = 0.30
    #: Virtual mutator weight of loading one batch (disk read, shard
    #: decompression — hundreds of milliseconds for ~12 MiB).
    load_weight: float = 2000.0
    #: Virtual mutator weight of one processing step (vertex updates are
    #: compute-heavy; GraphChi is throughput- not latency-oriented).
    step_weight: float = 50.0


class GraphEngine:
    """Executes PageRank / Connected Components batch by batch."""

    def __init__(
        self,
        vm: VM,
        thread: SimThread,
        graph: PowerLawGraph,
        algorithm: str,
        params: EngineParams,
        seed: int,
    ) -> None:
        if algorithm not in ("pr", "cc"):
            raise ValueError(f"unknown algorithm {algorithm!r}")
        self.vm = vm
        self.thread = thread
        self.graph = graph
        self.algorithm = algorithm
        self.params = params
        self.rng = random.Random(seed)
        self.algo_class = (
            cm.PAGERANK if algorithm == "pr" else cm.CONNECTED_COMPONENTS
        )
        self.update_call_line = (
            cm.L_RUN_CALL_UPDATE_PR if algorithm == "pr" else cm.L_RUN_CALL_UPDATE_CC
        )
        self.engine_root = vm.allocate_anonymous(64)
        vm.roots.pin("graphchi.engine", self.engine_root)
        self.values_holder: Optional[HeapObject] = None
        self.batch_holder: Optional[HeapObject] = None
        self.batches = graph.batch_slices(params.edges_per_batch)
        self.batch_index = 0
        self.iteration = 0
        self.vertices_processed = 0
        self._cursor = 0  # vertex offset within the current batch
        self._batch_loaded = False
        #: CC converges: per-iteration fraction of vertices still active.
        self._cc_active_fraction = 1.0
        self.batches_loaded = 0
        self.flush_listeners: List = []

    # -- initialization (long-lived vertex values) ------------------------------------

    def init_vertex_values(self) -> None:
        """Allocate vertex values + shard index — live for the whole run."""
        thread = self.thread
        heap = self.vm.heap
        holder = self.vm.allocate_anonymous(64)
        heap.write_ref(self.engine_root, holder)
        with thread.call(cm.L_RUN_CALL_INIT, cm.VERTEX_DATA, "init"):
            thread.alloc_batch(
                cm.L_INIT_ALLOC_VALUES,
                count=self.params.value_chunks,
                link_from=holder,
            )
            # One partition/index table per interval (GraphChi keeps the
            # shard indexes resident for the whole computation).
            thread.alloc_batch(
                cm.L_INIT_ALLOC_PARTITIONS,
                count=max(16, len(self.batches)),
                link_from=holder,
            )
        self.values_holder = holder

    # -- engine stepping --------------------------------------------------------------

    def step(self) -> int:
        """Advance the engine by one unit of work; returns ops performed.

        A step either loads the next batch (one pause-free bulk of block
        allocations) or processes a chunk of vertices in the loaded batch.
        """
        if self.values_holder is None:
            self.init_vertex_values()
            return 1
        if not self._batch_loaded:
            self._load_batch()
            return 1
        return self._process_chunk()

    def _load_batch(self) -> None:
        batch = self.batches[self.batch_index]
        edges = sum(self.graph.degrees[v] for v in batch)
        thread = self.thread
        heap = self.vm.heap
        holder = self.vm.allocate_anonymous(64)
        heap.write_ref(self.engine_root, holder)
        with thread.call(cm.L_RUN_CALL_LOAD, cm.SHARD, "loadBatch"):
            vertex_blocks = max(1, len(batch) * 24 // cm.SIZE_VERTEX_BLOCK)
            thread.alloc_batch(
                cm.L_LOAD_ALLOC_VERTEX_BLOCK,
                count=vertex_blocks,
                link_from=holder,
            )
            heap.write_ref(
                holder, thread.alloc(cm.L_LOAD_ALLOC_VERTEX_INDEX, keep=False)
            )
            degree_blocks = max(1, len(batch) * 8 // cm.SIZE_DEGREE_BLOCK)
            thread.alloc_batch(
                cm.L_LOAD_ALLOC_DEGREE_BLOCK,
                count=degree_blocks,
                link_from=holder,
            )
            edge_bytes = edges * self.params.bytes_per_edge
            edge_blocks = max(1, edge_bytes // (2 * cm.SIZE_EDGE_BLOCK))
            # In/out edge blocks alternate sites each iteration — scalar.
            for _ in range(edge_blocks):
                heap.write_ref(
                    holder, thread.alloc(cm.L_LOAD_ALLOC_IN_EDGES, keep=False)
                )
                heap.write_ref(
                    holder, thread.alloc(cm.L_LOAD_ALLOC_OUT_EDGES, keep=False)
                )
            data_blocks = max(1, edge_bytes // (2 * cm.SIZE_EDGE_DATA))
            thread.alloc_batch(
                cm.L_LOAD_ALLOC_EDGE_DATA, count=data_blocks, link_from=holder
            )
            # Pooled decompression buffers (middle-lived path through the
            # shared BufferPool — one side of the conflict).
            with thread.call(cm.L_LOAD_CALL_BUFFER, cm.BUFFER_POOL, "allocate"):
                thread.alloc_batch(cm.L_POOL_ALLOC, count=4, link_from=holder)
        self.batch_holder = holder
        self._batch_loaded = True
        self._cursor = 0
        self.batches_loaded += 1
        self.vm.tick_op(weight=self.params.load_weight)

    def _process_chunk(self) -> int:
        batch = self.batches[self.batch_index]
        thread = self.thread
        params = self.params
        active_fraction = (
            self._cc_active_fraction if self.algorithm == "cc" else 1.0
        )
        todo = min(params.vertices_per_step, len(batch) - self._cursor)
        with thread.call(self.update_call_line, self.algo_class, "update"):
            processed = int(todo * active_fraction)
            for _ in range(params.buffers_per_step):
                thread.alloc(cm.L_UPDATE_ALLOC_MESSAGES, keep=False)
                thread.alloc(cm.L_UPDATE_ALLOC_SCRATCH, keep=False)
            if self.rng.random() < params.pool_buffer_probability:
                with thread.call(
                    cm.L_UPDATE_CALL_BUFFER, cm.BUFFER_POOL, "allocate"
                ):
                    thread.alloc(cm.L_POOL_ALLOC, keep=False)
            self.vertices_processed += processed
        self._cursor += todo
        self.vm.tick_op(weight=params.step_weight * max(0.2, active_fraction))
        if self._cursor >= len(batch):
            self._finish_batch()
        return 1

    def _finish_batch(self) -> None:
        """Drop the batch (its blocks die together) and advance."""
        if self.batch_holder is not None:
            self.vm.heap.remove_ref(self.engine_root, self.batch_holder)
            self.batch_holder = None
        self._batch_loaded = False
        self.batch_index += 1
        for listener in self.flush_listeners:
            listener()
        if self.batch_index >= len(self.batches):
            self.batch_index = 0
            self.iteration += 1
            if self.algorithm == "cc":
                # Label propagation converges geometrically.
                self._cc_active_fraction = max(
                    0.15, self._cc_active_fraction * 0.55
                )
