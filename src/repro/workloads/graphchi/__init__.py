"""A miniature GraphChi: batch-iterative graph computation (paper §5.2.3).

GraphChi loads vertices and their edges in batches sized by a memory
budget, processes the batch (PageRank or Connected Components), drops it,
and loads the next.  GC-wise this is the second lifetime archetype the
paper studies: a batch's vertex/edge blocks live for exactly one
iteration — far too long for the weak generational hypothesis, exactly
right for a dedicated generation — while the vertex-value arrays live for
the whole computation.
"""

from repro.workloads.graphchi.engine import GraphEngine
from repro.workloads.graphchi.graph import PowerLawGraph
from repro.workloads.graphchi.workload import GraphChiWorkload

__all__ = ["GraphChiWorkload", "GraphEngine", "PowerLawGraph"]
