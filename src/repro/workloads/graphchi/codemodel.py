"""GraphChi code model: batch loading, vertex programs, shared buffer pool.

Nine candidate middle/long-lived allocation sites (the paper's Table 1
reports 9/9 instrumented for both GraphChi workloads) and one shared
helper (``BufferPool.allocate``) reached from both the batch loader
(middle-lived) and the vertex program (young) — the single conflict the
paper reports for GraphChi.
"""

from __future__ import annotations

from typing import List

from repro.runtime.code import ClassModel

ENGINE = "edu.cmu.graphchi.engine.GraphChiEngine"
SHARD = "edu.cmu.graphchi.shards.MemoryShard"
VERTEX_DATA = "edu.cmu.graphchi.datablocks.VertexData"
PAGERANK = "edu.cmu.graphchi.apps.Pagerank"
CONNECTED_COMPONENTS = "edu.cmu.graphchi.apps.ConnectedComponents"
BUFFER_POOL = "edu.cmu.graphchi.util.BufferPool"

# GraphChiEngine.run
L_RUN_CALL_INIT = 10
L_RUN_CALL_LOAD = 12
L_RUN_CALL_UPDATE_PR = 14
L_RUN_CALL_UPDATE_CC = 15
# VertexData.init (long-lived, allocated once)
L_INIT_ALLOC_VALUES = 20
L_INIT_ALLOC_PARTITIONS = 21
# MemoryShard.loadBatch (middle-lived, one batch)
L_LOAD_ALLOC_VERTEX_BLOCK = 30
L_LOAD_ALLOC_VERTEX_INDEX = 31
L_LOAD_ALLOC_DEGREE_BLOCK = 32
L_LOAD_ALLOC_IN_EDGES = 33
L_LOAD_ALLOC_OUT_EDGES = 34
L_LOAD_ALLOC_EDGE_DATA = 35
L_LOAD_CALL_BUFFER = 37
# Vertex programs (young scratch)
L_UPDATE_ALLOC_MESSAGES = 50
L_UPDATE_ALLOC_SCRATCH = 51
L_UPDATE_CALL_BUFFER = 53
# BufferPool.allocate (conflict site)
L_POOL_ALLOC = 60

# Block sizes (bytes).
SIZE_VERTEX_BLOCK = 32 * 1024
SIZE_VERTEX_INDEX = 16 * 1024
SIZE_DEGREE_BLOCK = 16 * 1024
SIZE_EDGE_BLOCK = 32 * 1024
SIZE_EDGE_DATA = 32 * 1024
# Chunked so each array chunk fits a heap region (no humongous objects).
SIZE_VALUE_CHUNK = 32 * 1024
SIZE_PARTITION_TABLE = 48 * 1024
SIZE_MESSAGE_BUFFER = 4096
SIZE_SCRATCH = 2048
SIZE_POOL_BUFFER = 4 * 1024


def build_class_models() -> List[ClassModel]:
    engine = ClassModel(ENGINE)
    run = engine.add_method("run")
    run.add_call_site(L_RUN_CALL_INIT, VERTEX_DATA, "init")
    run.add_call_site(L_RUN_CALL_LOAD, SHARD, "loadBatch")
    run.add_call_site(L_RUN_CALL_UPDATE_PR, PAGERANK, "update")
    run.add_call_site(L_RUN_CALL_UPDATE_CC, CONNECTED_COMPONENTS, "update")

    vertex_data = ClassModel(VERTEX_DATA)
    init = vertex_data.add_method("init")
    init.add_alloc_site(L_INIT_ALLOC_VALUES, "float[]", SIZE_VALUE_CHUNK)
    init.add_alloc_site(
        L_INIT_ALLOC_PARTITIONS, "PartitionTable", SIZE_PARTITION_TABLE
    )

    shard = ClassModel(SHARD)
    load = shard.add_method("loadBatch")
    load.add_alloc_site(L_LOAD_ALLOC_VERTEX_BLOCK, "VertexBlock", SIZE_VERTEX_BLOCK)
    load.add_alloc_site(L_LOAD_ALLOC_VERTEX_INDEX, "VertexIndex", SIZE_VERTEX_INDEX)
    load.add_alloc_site(L_LOAD_ALLOC_DEGREE_BLOCK, "DegreeBlock", SIZE_DEGREE_BLOCK)
    load.add_alloc_site(L_LOAD_ALLOC_IN_EDGES, "InEdgeBlock", SIZE_EDGE_BLOCK)
    load.add_alloc_site(L_LOAD_ALLOC_OUT_EDGES, "OutEdgeBlock", SIZE_EDGE_BLOCK)
    load.add_alloc_site(L_LOAD_ALLOC_EDGE_DATA, "EdgeDataBlock", SIZE_EDGE_DATA)
    load.add_call_site(L_LOAD_CALL_BUFFER, BUFFER_POOL, "allocate")

    def add_update(model: ClassModel) -> None:
        update = model.add_method("update")
        update.add_alloc_site(
            L_UPDATE_ALLOC_MESSAGES, "MessageBuffer", SIZE_MESSAGE_BUFFER
        )
        update.add_alloc_site(L_UPDATE_ALLOC_SCRATCH, "float[]", SIZE_SCRATCH)
        update.add_call_site(L_UPDATE_CALL_BUFFER, BUFFER_POOL, "allocate")

    pagerank = ClassModel(PAGERANK)
    add_update(pagerank)
    components = ClassModel(CONNECTED_COMPONENTS)
    add_update(components)

    pool = ClassModel(BUFFER_POOL)
    allocate = pool.add_method("allocate")
    allocate.add_alloc_site(L_POOL_ALLOC, "byte[]", SIZE_POOL_BUFFER)

    return [engine, vertex_data, shard, pagerank, components, pool]
