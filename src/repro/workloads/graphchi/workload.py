"""GraphChi workload driver: PageRank / Connected Components.

The paper runs both algorithms over the twitter-2010 graph and reports
9/9 instrumented allocation sites, 2 generations, and one conflict that
the manual NG2C annotations missed (Table 1) — the shared
``BufferPool.allocate`` helper, reached from the batch loader
(middle-lived) and from vertex programs (young).
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.profile import AllocDirective, CallDirective
from repro.errors import WorkloadError
from repro.runtime.code import ClassModel
from repro.runtime.vm import VM
from repro.workloads.base import ManualNG2CStrategy, Workload
from repro.workloads.graphchi import codemodel as cm
from repro.workloads.graphchi.codemodel import build_class_models
from repro.workloads.graphchi.engine import EngineParams, GraphEngine
from repro.workloads.graphchi.graph import PowerLawGraph

#: Manual annotation generations: 1 = batch data, 2 = vertex values.
MANUAL_BATCH_GEN = 1
MANUAL_LONGLIVED_GEN = 2

#: Engine steps executed per tick.
STEPS_PER_TICK = 24


class GraphChiWorkload(Workload):
    """PageRank (``pr``) or Connected Components (``cc``)."""

    def __init__(
        self,
        algorithm: str = "pr",
        seed: int = 42,
        params: Optional[EngineParams] = None,
        graph: Optional[PowerLawGraph] = None,
    ) -> None:
        super().__init__()
        if algorithm not in ("pr", "cc"):
            raise WorkloadError(f"unknown GraphChi algorithm {algorithm!r}")
        self.algorithm = algorithm
        self.name = f"graphchi-{algorithm}"
        self.seed = seed
        self.params = params or EngineParams()
        self.graph = graph or PowerLawGraph(seed=seed)
        self.vm: Optional[VM] = None
        self.engine: Optional[GraphEngine] = None

    def class_models(self) -> List[ClassModel]:
        return build_class_models()

    def setup(self, vm: VM) -> None:
        self.vm = vm
        thread = vm.new_thread("GraphChi-exec-1")
        self.engine = GraphEngine(
            vm, thread, self.graph, self.algorithm, self.params, self.seed
        )
        self.engine.flush_listeners.append(self.fire_flush_hooks)

    def tick(self) -> int:
        if self.engine is None:
            raise WorkloadError("setup() must run before tick()")
        ops = 0
        with self.engine.thread.entry(cm.ENGINE, "run"):
            for _ in range(STEPS_PER_TICK):
                ops += self.engine.step()
        return ops

    def teardown(self) -> None:
        self.engine = None
        self.vm = None

    # -- manual NG2C baseline ---------------------------------------------------------

    def manual_ng2c(self) -> ManualNG2CStrategy:
        """Hand annotations for GraphChi.

        The developer pretenures every batch block into generation 1 and
        the vertex values into generation 2 — but misses the shared
        ``BufferPool.allocate`` helper entirely (the conflict the paper
        says NG2C did not identify, Table 1: 1/0 for GraphChi).  Pooled
        buffers allocated during batch loading therefore stay in the
        young generation and are dragged through survivor copying.
        """
        alloc = [
            AllocDirective(cm.SHARD, "loadBatch", cm.L_LOAD_ALLOC_VERTEX_BLOCK),
            AllocDirective(cm.SHARD, "loadBatch", cm.L_LOAD_ALLOC_VERTEX_INDEX),
            AllocDirective(cm.SHARD, "loadBatch", cm.L_LOAD_ALLOC_DEGREE_BLOCK),
            AllocDirective(cm.SHARD, "loadBatch", cm.L_LOAD_ALLOC_IN_EDGES),
            AllocDirective(cm.SHARD, "loadBatch", cm.L_LOAD_ALLOC_OUT_EDGES),
            AllocDirective(cm.SHARD, "loadBatch", cm.L_LOAD_ALLOC_EDGE_DATA),
            AllocDirective(cm.VERTEX_DATA, "init", cm.L_INIT_ALLOC_VALUES),
            AllocDirective(cm.VERTEX_DATA, "init", cm.L_INIT_ALLOC_PARTITIONS),
        ]
        calls = [
            CallDirective(cm.ENGINE, "run", cm.L_RUN_CALL_LOAD, MANUAL_BATCH_GEN),
            CallDirective(cm.ENGINE, "run", cm.L_RUN_CALL_INIT, MANUAL_LONGLIVED_GEN),
        ]
        return ManualNG2CStrategy(
            alloc_directives=alloc,
            call_directives=calls,
            rotate_generation_on_flush=False,
            conflicts_handled=0,
            notes=(
                "Batch blocks -> gen 1, vertex values -> gen 2; the shared "
                "BufferPool helper conflict was not identified (Table 1)."
            ),
        )
