"""Synthetic power-law graph, standing in for the twitter-2010 crawl.

The paper's input (Kwak et al. 2010: 42 M vertices, 1.5 B edges) is scaled
down while keeping the structural property that matters for memory
behaviour: a heavy-tailed degree distribution, so edge batches vary in
size and the engine's memory budget — not a fixed vertex count — decides
batch boundaries.
"""

from __future__ import annotations

import random
from typing import List


class PowerLawGraph:
    """Degree sequence of a scaled-down power-law graph.

    Only the *shape* is materialized (per-vertex degrees); edges exist as
    counts, which is all the engine's block-loading cost model needs.
    """

    def __init__(
        self,
        vertex_count: int = 200_000,
        mean_degree: float = 18.0,
        alpha: float = 1.8,
        seed: int = 42,
    ) -> None:
        if vertex_count <= 0:
            raise ValueError("vertex_count must be positive")
        if mean_degree <= 0:
            raise ValueError("mean_degree must be positive")
        self.vertex_count = vertex_count
        self.alpha = alpha
        rng = random.Random(seed)
        # Pareto-distributed degrees, rescaled to the requested mean.
        raw = [rng.paretovariate(alpha) for _ in range(vertex_count)]
        scale = mean_degree * vertex_count / sum(raw)
        self.degrees: List[int] = [max(1, int(d * scale)) for d in raw]
        self.edge_count = sum(self.degrees)

    def batch_slices(self, edge_budget: int) -> List[range]:
        """Partition vertices into contiguous batches of ≤ ``edge_budget``
        edges each — GraphChi's interval computation."""
        if edge_budget <= 0:
            raise ValueError("edge_budget must be positive")
        slices: List[range] = []
        start = 0
        edges = 0
        for v, degree in enumerate(self.degrees):
            edges += degree
            if edges >= edge_budget:
                slices.append(range(start, v + 1))
                start = v + 1
                edges = 0
        if start < self.vertex_count:
            slices.append(range(start, self.vertex_count))
        return slices
