"""Workload interface and the manual-NG2C baseline strategy."""

from __future__ import annotations

import abc
import dataclasses
from typing import Callable, List, Optional, TYPE_CHECKING

from repro.core.profile import AllocationProfile, AllocDirective, CallDirective
from repro.runtime.code import ClassModel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runtime.vm import VM


@dataclasses.dataclass
class ManualNG2CStrategy:
    """Hand-written NG2C annotations for a workload (the paper's baseline).

    This is what an experienced developer produced by reading the source:
    a set of ``@Gen`` annotations and ``setGeneration`` call brackets.
    ``rotate_generation_on_flush`` reproduces the Cassandra usage the
    paper describes ("NG2C creates one generation each time a memory
    table is flushed").

    The paper found (§5.4.1) that even experts misjudge multi-path
    allocation sites: the shipped strategies for Cassandra-RI and Lucene
    intentionally carry those documented mistakes, which is why POLM2
    outperforms manual NG2C on exactly those two workloads.
    """

    alloc_directives: List[AllocDirective]
    call_directives: List[CallDirective]
    rotate_generation_on_flush: bool = False
    #: Which generation index rotates at flush (Cassandra memtables).
    rotating_index: int = 1
    #: How many allocation-site conflicts the developer identified and
    #: resolved with distinguishing setGeneration placements (Table 1's
    #: right-hand "Conflicts Encountered" numbers).
    conflicts_handled: int = 0
    notes: str = ""

    def as_profile(self, workload: str) -> AllocationProfile:
        """Adapt to an :class:`AllocationProfile` so the same Instrumenter
        machinery applies manual annotations (they are, after all, just
        source-level ``@Gen`` + ``setGeneration``)."""
        return AllocationProfile(
            workload=f"{workload}-manual",
            alloc_directives=self.alloc_directives,
            call_directives=self.call_directives,
            metadata={"manual": True, "notes": self.notes},
        )


class Workload(abc.ABC):
    """A runnable big-data application over the simulated VM.

    Lifecycle: construct -> (agents attach to the VM) -> ``class_models``
    are loaded through the VM's class loader -> ``setup`` pins roots and
    creates threads -> ``tick`` is called until the experiment's virtual
    duration elapses.
    """

    name: str = "abstract"

    def __init__(self) -> None:
        #: Callbacks fired when the workload retires a large unit of state
        #: (memtable flush, segment merge, batch completion).  The manual
        #: NG2C baseline historically hooked generation rotation here;
        #: agents now subscribe to the VM's SAFEPOINT event instead.
        self.flush_hooks: List[Callable[[], None]] = []
        #: The VM this workload runs on; the pipeline driver sets it
        #: before loading classes (subclasses also set it in ``setup``).
        self.vm: Optional["VM"] = None

    def fire_flush_hooks(self) -> None:
        for hook in self.flush_hooks:
            hook()
        vm = getattr(self, "vm", None)
        if vm is not None:
            vm.safepoint("flush", source=self.name)

    @abc.abstractmethod
    def class_models(self) -> List[ClassModel]:
        """The workload's declared code model (classes to load)."""

    @abc.abstractmethod
    def setup(self, vm: "VM") -> None:
        """Create threads, pin static roots, build initial state."""

    @abc.abstractmethod
    def tick(self) -> int:
        """Execute one batch of operations; returns operations executed."""

    def manual_ng2c(self) -> Optional[ManualNG2CStrategy]:
        """The hand-annotated NG2C baseline, if one exists for this workload."""
        return None

    def teardown(self) -> None:
        """Release references (optional)."""
