"""Lucene code model.

Eight allocation sites a developer would consider for annotation (the
paper's Table 1 shows NG2C-manual annotated 8, POLM2 chose far fewer) and
two shared-helper conflict sites.
"""

from __future__ import annotations

from typing import List

from repro.runtime.code import ClassModel

INDEX_WRITER = "org.apache.lucene.index.IndexWriter"
DOCS_WRITER = "org.apache.lucene.index.DocumentsWriter"
SEGMENT_FLUSHER = "org.apache.lucene.index.SegmentFlusher"
SEGMENT_MERGER = "org.apache.lucene.index.SegmentMerger"
SEARCHER = "org.apache.lucene.search.IndexSearcher"
BYTE_POOL = "org.apache.lucene.util.ByteBlockPool"
BYTESREF_POOL = "org.apache.lucene.util.BytesRefPool"

# IndexWriter.addDocument
L_ADD_ALLOC_DOCUMENT = 10
L_ADD_ALLOC_TOKENS = 11
L_ADD_ALLOC_FIELDS = 12
L_ADD_CALL_UPDATE = 15
# DocumentsWriter.updateDocument
L_UPDATE_ALLOC_POSTING = 20
L_UPDATE_ALLOC_TERMSLOT = 21
L_UPDATE_CALL_BYTES = 23
L_UPDATE_CALL_FLUSH = 25
# SegmentFlusher.flush
L_FLUSH_ALLOC_POSTINGS = 30
L_FLUSH_ALLOC_TERMDICT = 31
L_FLUSH_ALLOC_NORMS = 32
L_FLUSH_CALL_BYTES = 34
L_FLUSH_CALL_COPY = 33
# SegmentMerger.merge
L_MERGE_CALL_FLUSH = 40
# IndexSearcher.search
L_SEARCH_ALLOC_QUERY = 50
L_SEARCH_ALLOC_SCORER = 51
L_SEARCH_ALLOC_TOPDOCS = 52
L_SEARCH_CALL_BYTES = 54
L_SEARCH_CALL_COPY = 55
# Shared helpers (conflict sites)
L_BYTE_POOL_ALLOC = 60
L_BYTESREF_COPY = 70

SIZE_DOCUMENT = 224
SIZE_TOKENS = 192
SIZE_FIELDS = 128
SIZE_POSTING = 96
SIZE_TERMSLOT = 64
SIZE_SEGMENT_POSTINGS = 16 * 1024
SIZE_TERMDICT = 8 * 1024
SIZE_NORMS = 4 * 1024
SIZE_QUERY = 96
SIZE_SCORER = 128
SIZE_TOPDOCS = 256
SIZE_BYTE_BLOCK = 512
SIZE_BYTESREF = 64


def build_class_models() -> List[ClassModel]:
    writer = ClassModel(INDEX_WRITER)
    add = writer.add_method("addDocument")
    add.add_alloc_site(L_ADD_ALLOC_DOCUMENT, "Document", SIZE_DOCUMENT)
    add.add_alloc_site(L_ADD_ALLOC_TOKENS, "TokenStream", SIZE_TOKENS)
    add.add_alloc_site(L_ADD_ALLOC_FIELDS, "FieldData", SIZE_FIELDS)
    add.add_call_site(L_ADD_CALL_UPDATE, DOCS_WRITER, "updateDocument")

    docs = ClassModel(DOCS_WRITER)
    update = docs.add_method("updateDocument")
    update.add_alloc_site(L_UPDATE_ALLOC_POSTING, "PostingsEntry", SIZE_POSTING)
    update.add_alloc_site(L_UPDATE_ALLOC_TERMSLOT, "TermHashSlot", SIZE_TERMSLOT)
    update.add_call_site(L_UPDATE_CALL_BYTES, BYTE_POOL, "allocate")
    update.add_call_site(L_UPDATE_CALL_FLUSH, SEGMENT_FLUSHER, "flush")

    flusher = ClassModel(SEGMENT_FLUSHER)
    flush = flusher.add_method("flush")
    flush.add_alloc_site(
        L_FLUSH_ALLOC_POSTINGS, "SegmentPostings", SIZE_SEGMENT_POSTINGS
    )
    flush.add_alloc_site(L_FLUSH_ALLOC_TERMDICT, "TermDictionary", SIZE_TERMDICT)
    flush.add_alloc_site(L_FLUSH_ALLOC_NORMS, "NormsArray", SIZE_NORMS)
    flush.add_call_site(L_FLUSH_CALL_COPY, BYTESREF_POOL, "copy")
    flush.add_call_site(L_FLUSH_CALL_BYTES, BYTE_POOL, "allocate")

    merger = ClassModel(SEGMENT_MERGER)
    merge = merger.add_method("merge")
    merge.add_call_site(L_MERGE_CALL_FLUSH, SEGMENT_FLUSHER, "flush")

    searcher = ClassModel(SEARCHER)
    search = searcher.add_method("search")
    search.add_alloc_site(L_SEARCH_ALLOC_QUERY, "TermQuery", SIZE_QUERY)
    search.add_alloc_site(L_SEARCH_ALLOC_SCORER, "Scorer", SIZE_SCORER)
    search.add_alloc_site(L_SEARCH_ALLOC_TOPDOCS, "TopDocs", SIZE_TOPDOCS)
    search.add_call_site(L_SEARCH_CALL_BYTES, BYTE_POOL, "allocate")
    search.add_call_site(L_SEARCH_CALL_COPY, BYTESREF_POOL, "copy")

    byte_pool = ClassModel(BYTE_POOL)
    allocate = byte_pool.add_method("allocate")
    allocate.add_alloc_site(L_BYTE_POOL_ALLOC, "byte[]", SIZE_BYTE_BLOCK)

    bytesref = ClassModel(BYTESREF_POOL)
    copy = bytesref.add_method("copy")
    copy.add_alloc_site(L_BYTESREF_COPY, "BytesRef", SIZE_BYTESREF)

    return [writer, docs, flusher, merger, searcher, byte_pool, bytesref]
