"""Lucene workload driver: 80 % document updates, 20 % top-word searches.

Mirrors §5.2.2's ratios (20 000 writes : 5 000 reads per second).  The
manual NG2C baseline reproduces the paper's finding that Lucene is where
hand annotation goes wrong the hardest: eight annotated sites, several of
them actually short-lived, and both shared-helper conflicts missed
(Table 1: 2/8 sites for POLM2/NG2C and 2/0 conflicts).
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.core.profile import AllocDirective, CallDirective
from repro.errors import WorkloadError
from repro.runtime.code import ClassModel
from repro.runtime.vm import VM
from repro.workloads.base import ManualNG2CStrategy, Workload
from repro.workloads.lucene import codemodel as cm
from repro.workloads.lucene.codemodel import build_class_models
from repro.workloads.lucene.index import InMemoryIndex, LuceneParams

#: Write fraction (20 000 updates vs 5 000 searches per second).
WRITE_FRACTION = 0.8

#: Manual annotation generations: 1 = "indexing data", 2 = "segments".
MANUAL_RAM_GEN = 1
MANUAL_SEGMENT_GEN = 2


class LuceneWorkload(Workload):
    """In-memory Wikipedia-style indexing under a write-heavy mix."""

    name = "lucene"

    def __init__(
        self,
        seed: int = 42,
        params: Optional[LuceneParams] = None,
        ops_per_tick: int = 64,
    ) -> None:
        super().__init__()
        self.seed = seed
        self.params = params or LuceneParams()
        self.ops_per_tick = ops_per_tick
        self.rng = random.Random(seed)
        self.vm: Optional[VM] = None
        self.index: Optional[InMemoryIndex] = None

    def class_models(self) -> List[ClassModel]:
        return build_class_models()

    def setup(self, vm: VM) -> None:
        self.vm = vm
        thread = vm.new_thread("LuceneIndexer-1")
        self.index = InMemoryIndex(vm, thread, self.params, self.seed)
        self.index.flush_listeners.append(self.fire_flush_hooks)

    def tick(self) -> int:
        if self.vm is None or self.index is None:
            raise WorkloadError("setup() must run before tick()")
        index = self.index
        vm = self.vm
        ops = 0
        for _ in range(self.ops_per_tick):
            if self.rng.random() < WRITE_FRACTION:
                with index.thread.entry(cm.INDEX_WRITER, "addDocument"):
                    index.add_document()
            else:
                with index.thread.entry(cm.SEARCHER, "search"):
                    index.search()
            vm.tick_op()
            ops += 1
        return ops

    def teardown(self) -> None:
        self.index = None
        self.vm = None

    # -- manual NG2C baseline -----------------------------------------------------------

    def manual_ng2c(self) -> ManualNG2CStrategy:
        """Hand annotations, with the paper's documented mistakes.

        The developer annotated eight allocation sites.  Three of them
        (Document / TokenStream / FieldData) are per-request garbage and
        two more (the RAM-buffer postings and term slots) die before most
        collections — pretenuring all five pollutes the generations.  Both
        shared-helper conflicts went unnoticed (conflicts 0 in Table 1),
        so term-dictionary strings stay young and search-path blocks churn
        through whatever generation is current.
        """
        alloc = [
            # Mistake: per-document scratch pretenured into generation 1.
            AllocDirective(
                cm.INDEX_WRITER, "addDocument", cm.L_ADD_ALLOC_DOCUMENT,
                pre_set_gen=MANUAL_RAM_GEN,
            ),
            AllocDirective(
                cm.INDEX_WRITER, "addDocument", cm.L_ADD_ALLOC_TOKENS,
                pre_set_gen=MANUAL_RAM_GEN,
            ),
            AllocDirective(
                cm.INDEX_WRITER, "addDocument", cm.L_ADD_ALLOC_FIELDS,
                pre_set_gen=MANUAL_RAM_GEN,
            ),
            # Mistake: RAM-buffer entries flushed long before they tenure.
            AllocDirective(
                cm.DOCS_WRITER, "updateDocument", cm.L_UPDATE_ALLOC_POSTING,
                pre_set_gen=MANUAL_RAM_GEN,
            ),
            AllocDirective(
                cm.DOCS_WRITER, "updateDocument", cm.L_UPDATE_ALLOC_TERMSLOT,
                pre_set_gen=MANUAL_RAM_GEN,
            ),
            # Correct: segment structures are long-lived.
            AllocDirective(cm.SEGMENT_FLUSHER, "flush", cm.L_FLUSH_ALLOC_POSTINGS),
            AllocDirective(cm.SEGMENT_FLUSHER, "flush", cm.L_FLUSH_ALLOC_TERMDICT),
            AllocDirective(cm.SEGMENT_FLUSHER, "flush", cm.L_FLUSH_ALLOC_NORMS),
        ]
        calls = [
            CallDirective(
                cm.DOCS_WRITER, "updateDocument", cm.L_UPDATE_CALL_FLUSH,
                MANUAL_SEGMENT_GEN,
            ),
            CallDirective(
                cm.SEGMENT_MERGER, "merge", cm.L_MERGE_CALL_FLUSH,
                MANUAL_SEGMENT_GEN,
            ),
        ]
        return ManualNG2CStrategy(
            alloc_directives=alloc,
            call_directives=calls,
            rotate_generation_on_flush=False,
            conflicts_handled=0,
            notes=(
                "Eight hand-annotated sites; five are actually short-lived "
                "and both shared-helper conflicts were missed (paper §5.4.1)."
            ),
        )
