"""A miniature Lucene: in-memory text indexing and search (paper §5.2.2).

The paper indexes a 2012 Wikipedia dump (31 GB, 33 M documents) under a
write-intensive mix — 20 000 document updates and 5 000 searches per
second, queries looping over the dump's 500 most frequent words.  The
GC-relevant structure reproduced here:

* per-document objects (documents, token streams, field data) die young;
* the RAM indexing buffer (postings, term-hash slots) is short-to-middle
  lived — flushed to a segment before most GC cycles see it;
* **segment** structures (postings arrays, term dictionaries) are
  long-lived, dying only when merges supersede them;
* two shared helpers (``ByteBlockPool.allocate``, ``BytesRefPool.copy``)
  are reached from both the indexing/flush paths and the search path —
  the conflicts POLM2 detects and the manual annotations missed.
"""

from repro.workloads.lucene.index import InMemoryIndex
from repro.workloads.lucene.workload import LuceneWorkload

__all__ = ["InMemoryIndex", "LuceneWorkload"]
