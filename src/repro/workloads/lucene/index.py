"""The executing in-memory Lucene index: RAM buffer, segments, merges."""

from __future__ import annotations

import collections
import dataclasses
import random
from typing import Deque, List, Tuple

from repro.heap.objects import HeapObject
from repro.runtime.thread import SimThread
from repro.runtime.vm import VM
from repro.workloads.lucene import codemodel as cm


@dataclasses.dataclass
class LuceneParams:
    """Sizing, scaled with the 64 MiB default heap."""

    #: RAM indexing-buffer flush threshold (Lucene's ramBufferSizeMB).
    ram_buffer_bytes: int = 1_536 * 1024
    #: Postings entries created per document.
    postings_per_doc: int = 3
    #: Term-hash slots touched per document.
    slots_per_doc: int = 2
    #: Byte blocks drawn from the shared pool per document.
    blocks_per_doc: int = 2
    #: Fraction of the RAM buffer that survives into the segment.
    segment_yield: float = 0.6
    #: Segments triggering a merge.
    merge_factor: int = 8
    #: Fraction of merged input surviving the merge.
    merge_yield: float = 0.85
    #: Retained segment bytes before the oldest segments are dropped
    #: (superseded by merged, update-compacted data).
    max_segment_bytes: int = 20 * 1024 * 1024
    #: Distinct hot query terms (the paper's top-500-words loop).
    hot_terms: int = 500


class InMemoryIndex:
    """Mini Lucene index state over the simulated heap."""

    def __init__(
        self, vm: VM, thread: SimThread, params: LuceneParams, seed: int
    ) -> None:
        self.vm = vm
        self.thread = thread
        self.params = params
        self.rng = random.Random(seed)
        heap = vm.heap
        self.index_root = vm.allocate_anonymous(64)
        vm.roots.pin("lucene.index", self.index_root)
        self.ram_holder = self._new_holder()
        self.segments_holder = self._new_holder()
        self.ram_bytes = 0
        self.docs_in_ram = 0
        #: (segment holder object, byte size, merged?) in age order.
        self.segments: Deque[Tuple[HeapObject, int, bool]] = collections.deque()
        self.segment_bytes_total = 0
        self.flush_count = 0
        self.merge_count = 0
        self.docs_indexed = 0
        self.searches = 0
        self.flush_listeners: List = []

    def _new_holder(self) -> HeapObject:
        holder = self.vm.allocate_anonymous(64)
        self.vm.heap.write_ref(self.index_root, holder)
        return holder

    def _replace_holder(self, old: HeapObject) -> HeapObject:
        self.vm.heap.remove_ref(self.index_root, old)
        return self._new_holder()

    # -- write path -----------------------------------------------------------------

    def add_document(self) -> None:
        """Index one document (under the IndexWriter.addDocument frame)."""
        thread = self.thread
        heap = self.vm.heap
        params = self.params
        # Per-document scratch: dies with the request.
        thread.alloc(cm.L_ADD_ALLOC_DOCUMENT)
        thread.alloc(cm.L_ADD_ALLOC_TOKENS)
        thread.alloc(cm.L_ADD_ALLOC_FIELDS)
        with thread.call(cm.L_ADD_CALL_UPDATE, cm.DOCS_WRITER, "updateDocument"):
            thread.alloc_batch(
                cm.L_UPDATE_ALLOC_POSTING,
                count=params.postings_per_doc,
                link_from=self.ram_holder,
            )
            self.ram_bytes += params.postings_per_doc * cm.SIZE_POSTING
            thread.alloc_batch(
                cm.L_UPDATE_ALLOC_TERMSLOT,
                count=params.slots_per_doc,
                link_from=self.ram_holder,
            )
            self.ram_bytes += params.slots_per_doc * cm.SIZE_TERMSLOT
            with thread.call(cm.L_UPDATE_CALL_BYTES, cm.BYTE_POOL, "allocate"):
                thread.alloc_batch(
                    cm.L_BYTE_POOL_ALLOC,
                    count=params.blocks_per_doc,
                    link_from=self.ram_holder,
                )
                self.ram_bytes += params.blocks_per_doc * cm.SIZE_BYTE_BLOCK
            self.docs_in_ram += 1
            self.docs_indexed += 1
            if self.ram_bytes >= params.ram_buffer_bytes:
                with thread.call(
                    cm.L_UPDATE_CALL_FLUSH, cm.SEGMENT_FLUSHER, "flush"
                ):
                    self._flush_segment(self.ram_bytes, merged=False)
                self.ram_holder = self._replace_holder(self.ram_holder)
                self.ram_bytes = 0
                self.docs_in_ram = 0
                self.flush_count += 1
                for listener in self.flush_listeners:
                    listener()
                self._maybe_merge()

    def _flush_segment(self, input_bytes: int, merged: bool) -> None:
        """Build segment structures (under the SegmentFlusher.flush frame)."""
        thread = self.thread
        heap = self.vm.heap
        params = self.params
        segment = self.vm.allocate_anonymous(64)
        target = int(
            input_bytes * (params.merge_yield if merged else params.segment_yield)
        )
        postings_chunks = max(1, target // cm.SIZE_SEGMENT_POSTINGS)
        thread.alloc_batch(
            cm.L_FLUSH_ALLOC_POSTINGS, count=postings_chunks, link_from=segment
        )
        # Term dictionary and norms alternate sites per iteration, so they
        # stay scalar (a batch goes through exactly one site).
        for _ in range(max(1, postings_chunks // 8)):
            heap.write_ref(
                segment, thread.alloc(cm.L_FLUSH_ALLOC_TERMDICT, keep=False)
            )
            heap.write_ref(
                segment, thread.alloc(cm.L_FLUSH_ALLOC_NORMS, keep=False)
            )
        # Term-dictionary strings via the shared BytesRef pool (the
        # long-lived side of conflict #2) and pooled byte blocks (the
        # long-lived side of conflict #1).
        with thread.call(cm.L_FLUSH_CALL_COPY, cm.BYTESREF_POOL, "copy"):
            thread.alloc_batch(cm.L_BYTESREF_COPY, count=12, link_from=segment)
        with thread.call(cm.L_FLUSH_CALL_BYTES, cm.BYTE_POOL, "allocate"):
            thread.alloc_batch(cm.L_BYTE_POOL_ALLOC, count=4, link_from=segment)
        heap.write_ref(self.segments_holder, segment)
        actual = (
            postings_chunks * cm.SIZE_SEGMENT_POSTINGS
            + max(1, postings_chunks // 8) * (cm.SIZE_TERMDICT + cm.SIZE_NORMS)
        )
        self.segments.append((segment, actual, merged))
        self.segment_bytes_total += actual
        self._enforce_segment_cap()

    def _maybe_merge(self) -> None:
        """Tiered merge: combine the oldest small segments into one."""
        small = [(s, b) for (s, b, merged) in self.segments if not merged]
        if len(small) < self.params.merge_factor:
            return
        thread = self.thread
        heap = self.vm.heap
        to_merge = small[: self.params.merge_factor]
        merged_input = sum(b for _, b in to_merge)
        with thread.entry(cm.SEGMENT_MERGER, "merge"):
            with thread.call(cm.L_MERGE_CALL_FLUSH, cm.SEGMENT_FLUSHER, "flush"):
                self._flush_segment(merged_input, merged=True)
        victims = {id(s) for s, _ in to_merge}
        remaining: Deque[Tuple[HeapObject, int, bool]] = collections.deque()
        for seg, size, merged in self.segments:
            if id(seg) in victims:
                heap.remove_ref(self.segments_holder, seg)
                self.segment_bytes_total -= size
            else:
                remaining.append((seg, size, merged))
        self.segments = remaining
        self.merge_count += 1

    def _enforce_segment_cap(self) -> None:
        heap = self.vm.heap
        while (
            self.segment_bytes_total > self.params.max_segment_bytes
            and len(self.segments) > 1
        ):
            seg, size, _ = self.segments.popleft()
            heap.remove_ref(self.segments_holder, seg)
            self.segment_bytes_total -= size

    # -- read path -------------------------------------------------------------------

    def search(self) -> None:
        """One top-words query (under the IndexSearcher.search frame)."""
        thread = self.thread
        thread.alloc(cm.L_SEARCH_ALLOC_QUERY)
        thread.alloc(cm.L_SEARCH_ALLOC_SCORER)
        thread.alloc(cm.L_SEARCH_ALLOC_TOPDOCS)
        # Young-path uses of the two shared helpers.
        with thread.call(cm.L_SEARCH_CALL_BYTES, cm.BYTE_POOL, "allocate"):
            thread.alloc(cm.L_BYTE_POOL_ALLOC)
        with thread.call(cm.L_SEARCH_CALL_COPY, cm.BYTESREF_POOL, "copy"):
            thread.alloc(cm.L_BYTESREF_COPY)
        self.searches += 1
