"""A YCSB-style operation generator (Yahoo! Cloud Serving Benchmark).

The paper drives Cassandra with YCSB mixes (§5.2.1).  This module
provides the generator properly: request distributions (zipfian, uniform,
latest), read/write mixes, and the standard workload letters, so the
Cassandra driver and any future workload share one tested implementation.
"""

from __future__ import annotations

import dataclasses
import math
import random
from typing import Iterator, Tuple

READ = "read"
WRITE = "write"

#: Standard YCSB workload letters -> (read fraction, distribution).
STANDARD_WORKLOADS = {
    "a": (0.5, "zipfian"),  # update heavy
    "b": (0.95, "zipfian"),  # read mostly
    "c": (1.0, "zipfian"),  # read only
    "d": (0.95, "latest"),  # read latest
    "f": (0.5, "zipfian"),  # read-modify-write
}


class ZipfianGenerator:
    """Zipfian-distributed integers in [0, item_count).

    Implements the Gray et al. rejection-inversion approximation YCSB
    itself uses, with the default theta of 0.99.
    """

    def __init__(
        self, item_count: int, theta: float = 0.99, seed: int = 42
    ) -> None:
        if item_count <= 0:
            raise ValueError("item_count must be positive")
        if not 0.0 < theta < 1.0:
            raise ValueError("theta must be in (0, 1)")
        self.item_count = item_count
        self.theta = theta
        self.rng = random.Random(seed)
        self._zetan = self._zeta(item_count, theta)
        self._zeta2 = self._zeta(2, theta)
        self._alpha = 1.0 / (1.0 - theta)
        self._eta = (1 - (2.0 / item_count) ** (1 - theta)) / (
            1 - self._zeta2 / self._zetan
        )

    @staticmethod
    def _zeta(n: int, theta: float) -> float:
        # Exact for small n; the Euler-Maclaurin approximation keeps
        # construction O(1) for large key spaces.
        if n <= 10_000:
            return sum(1.0 / (i ** theta) for i in range(1, n + 1))
        head = sum(1.0 / (i ** theta) for i in range(1, 10_001))
        tail = ((n ** (1 - theta)) - (10_000 ** (1 - theta))) / (1 - theta)
        return head + tail

    def next(self) -> int:
        u = self.rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5 ** self.theta:
            return 1
        return int(
            self.item_count * ((self._eta * u - self._eta + 1) ** self._alpha)
        )


@dataclasses.dataclass
class YCSBConfig:
    """One YCSB run configuration."""

    item_count: int = 200_000
    read_fraction: float = 0.5
    distribution: str = "zipfian"  # zipfian | uniform | latest
    theta: float = 0.99
    seed: int = 42

    @classmethod
    def standard(cls, letter: str, item_count: int = 200_000, seed: int = 42):
        try:
            read_fraction, distribution = STANDARD_WORKLOADS[letter.lower()]
        except KeyError:
            raise ValueError(
                f"unknown YCSB workload {letter!r}; "
                f"choose from {sorted(STANDARD_WORKLOADS)}"
            ) from None
        return cls(
            item_count=item_count,
            read_fraction=read_fraction,
            distribution=distribution,
            seed=seed,
        )


class YCSBGenerator:
    """Yields ``(operation, key)`` pairs per the configured mix."""

    def __init__(self, config: YCSBConfig) -> None:
        if config.distribution not in ("zipfian", "uniform", "latest"):
            raise ValueError(f"unknown distribution {config.distribution!r}")
        if not 0.0 <= config.read_fraction <= 1.0:
            raise ValueError("read_fraction must be in [0, 1]")
        self.config = config
        self.rng = random.Random(config.seed)
        self._zipf = ZipfianGenerator(
            config.item_count, config.theta, seed=config.seed ^ 0x5EED
        )
        #: Highest key written so far (drives the "latest" distribution).
        self.insert_cursor = config.item_count

    def next_key(self) -> int:
        distribution = self.config.distribution
        if distribution == "uniform":
            return self.rng.randrange(self.config.item_count)
        if distribution == "latest":
            # Skew toward recently inserted keys.
            offset = self._zipf.next()
            return max(0, self.insert_cursor - 1 - offset) % max(
                1, self.insert_cursor
            )
        key = self._zipf.next()
        return min(key, self.config.item_count - 1)

    def next_op(self) -> Tuple[str, int]:
        if self.rng.random() < self.config.read_fraction:
            return READ, self.next_key()
        self.insert_cursor += 1
        return WRITE, self.next_key()

    def __iter__(self) -> Iterator[Tuple[str, int]]:
        while True:
            yield self.next_op()
