"""Fixed-budget profiling cycles: the daemon's inner loop.

gprofiler's timing analysis documents the failure mode this module is
designed against: each snapshot cycle runs its profilers for exactly the
configured duration, but merging and shipping happen *after* the window,
so the real cycle overruns its nominal length and — with no idle gap
left — daemon memory never drains.  Here the whole cycle is accounted
against one wall-clock budget:

* the profiling window (driving the simulated VM) polls the wall clock
  and aborts the cycle if the budget expires mid-window;
* post-processing (IncrementalAnalyzer finish + any injected stages,
  e.g. the daemon's merge/commit) runs *inside* the budget, checked at
  every stage boundary — a cycle that overruns is truncated and
  reported via counters, never silently queued into the next window;
* memory is bounded per cycle, not per run: the
  :class:`BoundedLiveSource` trims the snapshot store and releases each
  consumed delta's predecessor chain, so the live snapshot count never
  exceeds two regardless of how many cycles the daemon has run.

Because a completed cycle is exactly the streaming profiling phase at a
fixed seed, its STTree is byte-identical to the offline
:class:`~repro.core.stages.ProfileBuilder` path — the serve-parity tests
pin that.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.config import SimConfig
from repro.core.dumper import Dumper
from repro.core.recorder import Recorder
from repro.core.stages import ProfileBuilder
from repro.core.sttree import STTree
from repro.errors import ProfileError
from repro.gc.ng2c import NG2CCollector
from repro.heap.objects import reset_identity_hashes
from repro.runtime.events import SnapshotPointEvent, VMAgent
from repro.runtime.vm import VM
from repro.strategies.agents import TelemetryAgent
from repro.workloads import make_workload

#: How many workload ticks between wall-clock polls in the profiling
#: window.  Polling is cheap but not free; the window can overshoot the
#: budget by at most this many ticks' wall time.
BUDGET_POLL_TICKS = 32

#: Stage names of the built-in cycle stages.
STAGE_PROFILE = "profile"
STAGE_ANALYZE = "analyze"


class BoundedLiveSource(VMAgent):
    """Streams snapshot points into a ProfileBuilder with bounded memory.

    The streaming twin of :class:`~repro.core.stages.LiveVMSource` for
    always-on use: after each snapshot is fed to the stages it trims the
    Dumper's store to the newest snapshot and severs the consumed
    delta's predecessor link, so a cycle retains at most two snapshots
    (the one being taken plus the previous chain head) at any instant.
    Attach AFTER the Dumper, like LiveVMSource.
    """

    def __init__(
        self, builder: ProfileBuilder, recorder: Recorder, dumper: Dumper
    ) -> None:
        self.builder = builder
        self.recorder = recorder
        self.dumper = dumper
        self.snapshots_streamed = 0
        self.live_snapshot_peak = 0

    def on_snapshot_point(self, event: SnapshotPointEvent) -> None:
        store = self.dumper.store
        if len(store) == 0:
            raise ProfileError(
                "BoundedLiveSource saw a snapshot point before the "
                "Dumper's snapshot landed; attach the Dumper first"
            )
        snapshot = store[-1]
        self.builder.feed_snapshot(snapshot)
        self.snapshots_streamed += 1
        self.live_snapshot_peak = max(self.live_snapshot_peak, len(store))
        store.trim(keep_last=1)
        snapshot.release_predecessor()

    def flush(self) -> None:
        """End of window: hand the Recorder's streams to the stages."""
        self.builder.feed_trace_flush(self.recorder.records)

    def telemetry(self) -> Dict[str, int]:
        return {
            "snapshots_streamed": self.snapshots_streamed,
            "live_snapshot_peak": self.live_snapshot_peak,
        }


@dataclasses.dataclass
class CycleReport:
    """Everything one profiling cycle did, on budget or not."""

    index: int
    workload: str
    seed: int
    budget_s: float
    elapsed_s: float
    #: ``(stage name, seconds)`` for every stage that ran, in order.
    stage_timings: List[Tuple[str, float]]
    truncated: bool
    #: Name of the last stage that ran before truncation (None when the
    #: cycle completed).
    truncated_after: Optional[str]
    #: Seconds past budget when the cycle ended (0.0 when on budget).
    overrun_s: float
    snapshots_streamed: int
    live_snapshot_peak: int
    #: The cycle's STTree — None when the cycle was truncated before the
    #: analyze stage produced one.
    tree: Optional[STTree] = None

    @property
    def completed(self) -> bool:
        return not self.truncated

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly summary (the tree travels by content hash)."""
        return {
            "index": self.index,
            "workload": self.workload,
            "seed": self.seed,
            "budget_s": self.budget_s,
            "elapsed_s": self.elapsed_s,
            "stage_timings": [list(item) for item in self.stage_timings],
            "truncated": self.truncated,
            "truncated_after": self.truncated_after,
            "overrun_s": self.overrun_s,
            "snapshots_streamed": self.snapshots_streamed,
            "live_snapshot_peak": self.live_snapshot_peak,
            "tree_hash": None if self.tree is None else self.tree.digest(),
        }


#: A post-processing stage injected into the cycle: ``(name, fn)`` where
#: ``fn`` receives the cycle's STTree.  The daemon injects its
#: merge-and-commit step here so it is budget-accounted like everything
#: else.
PostStage = Tuple[str, Callable[[STTree], None]]


class ProfilingCycleEngine:
    """Runs profiling cycles for one simulated VM on a wall-clock budget.

    Each cycle builds a fresh VM (same workload, same seed — the
    simulated stand-in for re-attaching to the same live process), runs
    the streaming profiling phase for ``sim_duration_ms`` *virtual*
    milliseconds, then post-processes, all against ``budget_s`` seconds
    of wall clock.  ``clock`` is injectable so budget enforcement is
    testable without real sleeping.
    """

    def __init__(
        self,
        workload_name: str,
        seed: int = 42,
        config: Optional[SimConfig] = None,
        sim_duration_ms: float = 1_500.0,
        budget_s: float = 60.0,
        snapshot_every: int = 1,
        push_up: bool = True,
        clock: Callable[[], float] = time.monotonic,
        post_stages: Optional[Sequence[PostStage]] = None,
    ) -> None:
        if budget_s <= 0:
            raise ProfileError(f"cycle budget must be positive, got {budget_s}")
        self.workload_name = workload_name
        self.seed = seed
        self.config = config or SimConfig(seed=seed)
        self.sim_duration_ms = sim_duration_ms
        self.budget_s = budget_s
        self.snapshot_every = snapshot_every
        self.push_up = push_up
        self.clock = clock
        self.post_stages: List[PostStage] = list(post_stages or [])
        # -- lifetime counters (served via /metrics) --
        self.cycles_run = 0
        self.cycles_truncated = 0
        self.overrun_s_total = 0.0
        self.live_snapshot_peak = 0
        self.last_report: Optional[CycleReport] = None
        #: Summed TelemetryAgent counters across every cycle's VM.
        self.vm_telemetry: Dict[str, int] = {}

    # -- one cycle -------------------------------------------------------------------

    def run_cycle(self, index: Optional[int] = None) -> CycleReport:
        """Run one budgeted cycle; always returns a report."""
        if index is None:
            index = self.cycles_run
        start = self.clock()
        deadline = start + self.budget_s
        stage_timings: List[Tuple[str, float]] = []
        truncated_after: Optional[str] = None
        tree: Optional[STTree] = None

        # Stage 1 — the profiling window.  Mirrors
        # POLM2Pipeline.run_profiling_phase step for step so a completed
        # window analyzes to a byte-identical STTree.
        reset_identity_hashes()
        workload = make_workload(self.workload_name, seed=self.seed)
        collector = NG2CCollector()
        vm = VM(self.config, collector=collector)
        recorder = Recorder(snapshot_every=self.snapshot_every)
        dumper = Dumper()
        recorder.dumper = dumper
        builder = ProfileBuilder(
            max_generations=self.config.max_generations, push_up=self.push_up
        )
        source = BoundedLiveSource(builder, recorder, dumper)
        telemetry = TelemetryAgent()
        for agent in (recorder, dumper, source, telemetry):
            vm.attach_agent(agent)
        workload.vm = vm
        for model in workload.class_models():
            vm.classloader.load(model)
        workload.setup(vm)
        window_complete = True
        ticks = 0
        while vm.clock.now_ms < self.sim_duration_ms:
            workload.tick()
            ticks += 1
            if ticks % BUDGET_POLL_TICKS == 0 and self.clock() >= deadline:
                window_complete = False
                break
        workload.teardown()
        stage_timings.append((STAGE_PROFILE, self.clock() - start))

        if not window_complete or self.clock() >= deadline:
            truncated_after = STAGE_PROFILE
        else:
            # Stage 2 — post-processing: close the streaming stages and
            # fold the survival counts into the cycle's STTree.
            stage_start = self.clock()
            source.flush()
            tree = builder.analyzer.finish()
            stage_timings.append((STAGE_ANALYZE, self.clock() - stage_start))
            if self.clock() >= deadline:
                truncated_after = STAGE_ANALYZE
                tree = None
            else:
                # Injected stages (the daemon's merge/commit), each
                # gated on the remaining budget.
                for name, stage in self.post_stages:
                    stage_start = self.clock()
                    stage(tree)
                    stage_timings.append((name, self.clock() - stage_start))
                    if self.clock() >= deadline:
                        truncated_after = name
                        break

        elapsed = self.clock() - start
        # A cycle is truncated the moment any boundary crossed the
        # deadline — even the last stage's: the overrun must surface in
        # the counters, not vanish because nothing was left to skip.
        truncated = truncated_after is not None
        report = CycleReport(
            index=index,
            workload=self.workload_name,
            seed=self.seed,
            budget_s=self.budget_s,
            elapsed_s=elapsed,
            stage_timings=stage_timings,
            truncated=truncated,
            truncated_after=truncated_after,
            overrun_s=max(0.0, elapsed - self.budget_s),
            snapshots_streamed=source.snapshots_streamed,
            live_snapshot_peak=source.live_snapshot_peak,
            tree=tree,
        )
        self.cycles_run += 1
        if truncated:
            self.cycles_truncated += 1
        self.overrun_s_total += report.overrun_s
        for counter, value in telemetry.telemetry().items():
            self.vm_telemetry[counter] = self.vm_telemetry.get(counter, 0) + value
        self.live_snapshot_peak = max(
            self.live_snapshot_peak, report.live_snapshot_peak
        )
        self.last_report = report
        return report

    # -- telemetry ---------------------------------------------------------------------

    def telemetry(self) -> Dict[str, float]:
        return {
            "cycles_run": self.cycles_run,
            "cycles_truncated": self.cycles_truncated,
            "overrun_s_total": round(self.overrun_s_total, 6),
            "live_snapshot_peak": self.live_snapshot_peak,
        }
