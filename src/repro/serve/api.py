"""The profile service's HTTP surface (stdlib ``http.server``, no deps).

Production-phase VMs fetch their profile instead of reading a file:

* ``GET /profiles/<workload>/latest`` — the profile the workload's
  ``latest`` pointer names; the content hash travels in the ``ETag``
  and ``X-Profile-Hash`` headers.
* ``GET /profiles/<workload>`` — alias for ``/latest``.
* ``GET /profiles/by-hash/<sha256>`` — one immutable content-addressed
  object (safe to cache forever).
* ``POST /recordings`` — agents ship a completed cycle's output (an
  allocation-profile JSON document); the daemon merges it into the
  workload's served profile and responds with the new latest hash.
* ``GET /metrics`` — TelemetryAgent counters plus cycle-budget overrun
  statistics, as JSON.

Errors are JSON (``{"error": ...}``) with conventional status codes.
The server is a ``ThreadingHTTPServer`` running on a daemon thread;
``port=0`` binds an ephemeral port (tests).
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, Optional

from repro.core.profile import AllocationProfile
from repro.core.profilestore import ProfileStore
from repro.errors import ProfileError, ReproError

#: ``POST /recordings`` handler: receives the raw profile JSON an agent
#: shipped, returns a response payload (e.g. the new latest hash).
SubmitFn = Callable[[str], Dict[str, object]]


class ProfileService:
    """Serves a :class:`ProfileStore` (and daemon telemetry) over HTTP."""

    def __init__(
        self,
        store: ProfileStore,
        metrics_fn: Optional[Callable[[], Dict[str, object]]] = None,
        submit_fn: Optional[SubmitFn] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.store = store
        self.metrics_fn = metrics_fn
        self.submit_fn = submit_fn
        self.host = host
        self.port = port
        self._server: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle -----------------------------------------------------------------

    def start(self) -> str:
        """Bind and serve on a background thread; returns the base URL."""
        if self._server is not None:
            raise ReproError("profile service is already running")
        service = self

        class Handler(_ProfileRequestHandler):
            pass

        Handler.service = service
        try:
            self._server = ThreadingHTTPServer((self.host, self.port), Handler)
        except OSError as exc:
            raise ReproError(
                f"cannot bind profile service to {self.host}:{self.port}: {exc}"
            ) from exc
        self._server.daemon_threads = True
        self.port = self._server.server_address[1]
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-serve-http",
            daemon=True,
        )
        self._thread.start()
        return self.url

    def stop(self) -> None:
        if self._server is None:
            return
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._server = None
        self._thread = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def __enter__(self) -> "ProfileService":
        self.start()
        return self

    def __exit__(self, *_exc) -> None:
        self.stop()


class _ProfileRequestHandler(BaseHTTPRequestHandler):
    """Routes one request against the owning :class:`ProfileService`."""

    service: ProfileService  # set on the per-service subclass
    protocol_version = "HTTP/1.1"

    # -- plumbing ------------------------------------------------------------------

    def log_message(self, *_args) -> None:  # pragma: no cover - silence
        pass

    def _send(
        self,
        status: int,
        payload: str,
        content_type: str = "application/json",
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> None:
        body = payload.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, message: str) -> None:
        self._send(status, json.dumps({"error": message}))

    def _send_profile(self, profile: AllocationProfile) -> None:
        from repro.core.profilestore import profile_content_hash

        content_hash = profile_content_hash(profile)
        self._send(
            200,
            profile.to_json(),
            extra_headers={
                "ETag": f'"{content_hash}"',
                "X-Profile-Hash": content_hash,
                "X-Profile-Workload": profile.workload,
            },
        )

    # -- routes --------------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        parts = [p for p in self.path.split("?")[0].split("/") if p]
        try:
            if parts == ["metrics"]:
                metrics = (
                    self.service.metrics_fn()
                    if self.service.metrics_fn is not None
                    else {}
                )
                self._send(200, json.dumps(metrics, indent=2, sort_keys=True))
                return
            if len(parts) == 3 and parts[:2] == ["profiles", "by-hash"]:
                self._send_profile(self.service.store.load_by_hash(parts[2]))
                return
            if (
                len(parts) in (2, 3)
                and parts[0] == "profiles"
                and (len(parts) == 2 or parts[2] == "latest")
            ):
                self._send_profile(self.service.store.load_latest(parts[1]))
                return
            self._send_error_json(404, f"unknown path {self.path!r}")
        except ProfileError as exc:
            self._send_error_json(404, str(exc))
        except Exception as exc:  # pragma: no cover - defensive
            self._send_error_json(500, f"{type(exc).__name__}: {exc}")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        if [p for p in self.path.split("/") if p] != ["recordings"]:
            self._send_error_json(404, f"unknown path {self.path!r}")
            return
        if self.service.submit_fn is None:
            self._send_error_json(
                503, "this profile service does not accept recordings"
            )
            return
        try:
            length = int(self.headers.get("Content-Length", 0))
            body = self.rfile.read(length).decode("utf-8")
        except (ValueError, UnicodeDecodeError) as exc:
            self._send_error_json(400, f"unreadable request body: {exc}")
            return
        try:
            response = self.service.submit_fn(body)
        except ProfileError as exc:
            self._send_error_json(400, str(exc))
            return
        except Exception as exc:  # pragma: no cover - defensive
            self._send_error_json(500, f"{type(exc).__name__}: {exc}")
            return
        self._send(200, json.dumps(response, sort_keys=True))
