"""The ``repro serve`` daemon: cycles → merge → commit → serve.

One daemon owns, per workload, ``instances`` simulated VM instances (the
stand-in for a fleet of JVMs running the same service).  Every round it
runs one budgeted profiling cycle per instance; each completed cycle's
STTree is merged — *inside that cycle's budget*, as injected post
stages — into the workload's accumulated tree and committed to the
content-addressed :class:`~repro.core.profilestore.ProfileStore`, where
the HTTP API serves it to production-phase VMs.

Crash safety: after every commit the daemon persists its cycle state
(committed-round counts, latest hashes, lifetime counters) to
``serve-state.json`` with the same unique-temp-name + ``os.replace``
pattern the store uses, so a killed daemon resumes at the next
uncommitted round.  A kill *mid*-round can at worst replay that round's
merges — harmless, because the STTree merge is idempotent (a semilattice
join): re-merging an already-committed cycle reproduces the committed
hash bit for bit.
"""

from __future__ import annotations

import dataclasses
import json
import os
import threading
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.config import SimConfig
from repro.core.profile import AllocationProfile
from repro.core.profilestore import ProfileStore, profile_content_hash
from repro.core.sttree import STTree
from repro.errors import ProfileError, ProfileFormatError
from repro.serve.api import ProfileService
from repro.serve.cycle import CycleReport, ProfilingCycleEngine

#: State file format marker (same versioning discipline as profiles).
STATE_FORMAT = "polm2-serve-state-v1"
STATE_FILE = "serve-state.json"


@dataclasses.dataclass
class ServeConfig:
    """Everything ``repro serve`` needs to run."""

    workloads: Sequence[str]
    #: Simulated VM instances per workload; instance ``i`` runs at
    #: ``seed + i`` so the fleet is heterogeneous but reproducible.
    instances: int = 1
    seed: int = 42
    sim_duration_ms: float = 1_500.0
    cycle_budget_s: float = 60.0
    #: Rounds to run before exiting; ``None`` means run until stopped.
    max_rounds: Optional[int] = None
    store_dir: str = "profile-store"
    host: str = "127.0.0.1"
    port: int = 0
    snapshot_every: int = 1
    push_up: bool = True
    #: Idle gap between rounds (the daemon sleeps interruptibly).
    round_interval_s: float = 0.0
    #: Simulated heap sizing (None keeps SimConfig defaults).  Small
    #: heaps force frequent collections, so short cycles still observe
    #: object promotion.
    heap_bytes: Optional[int] = None
    young_bytes: Optional[int] = None

    def __post_init__(self) -> None:
        self.workloads = list(self.workloads)
        if not self.workloads:
            raise ProfileError("repro serve needs at least one workload")
        if self.instances < 1:
            raise ProfileError(
                f"instances must be >= 1, got {self.instances}"
            )


class ServeDaemon:
    """Continuous profiling for a set of workloads, served over HTTP."""

    def __init__(
        self,
        config: ServeConfig,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.config = config
        self.clock = clock
        self.store = ProfileStore(config.store_dir)
        self.state_path = os.path.join(config.store_dir, STATE_FILE)
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self.service: Optional[ProfileService] = None
        #: In-memory cache of each workload's accumulated (merged) tree.
        self._latest_tree: Dict[str, STTree] = {}
        #: The tree a cycle's merge stage produced, awaiting its commit
        #: stage; discarded if the budget expires between the two.
        self._pending: Dict[str, STTree] = {}
        self.cycles_committed: Dict[str, int] = {
            name: 0 for name in config.workloads
        }
        self.recordings_received = 0
        #: Counter totals restored from a previous incarnation's state.
        self._base_totals: Dict[str, float] = {
            "cycles_run": 0,
            "cycles_truncated": 0,
            "overrun_s_total": 0.0,
        }
        self._load_state()
        sim_overrides: Dict[str, int] = {}
        if config.heap_bytes is not None:
            sim_overrides["heap_bytes"] = config.heap_bytes
        if config.young_bytes is not None:
            sim_overrides["young_bytes"] = config.young_bytes
        self.engines: Dict[str, List[ProfilingCycleEngine]] = {}
        for name in config.workloads:
            self.engines[name] = [
                ProfilingCycleEngine(
                    name,
                    seed=config.seed + instance,
                    config=SimConfig(
                        seed=config.seed + instance, **sim_overrides
                    ),
                    sim_duration_ms=config.sim_duration_ms,
                    budget_s=config.cycle_budget_s,
                    snapshot_every=config.snapshot_every,
                    push_up=config.push_up,
                    clock=clock,
                    post_stages=[
                        ("merge", self._merge_stage(name)),
                        ("commit", self._commit_stage(name)),
                    ],
                )
                for instance in range(config.instances)
            ]

    # -- crash-safe state --------------------------------------------------------------

    def _load_state(self) -> None:
        try:
            with open(self.state_path) as handle:
                text = handle.read()
        except OSError:
            self._restore_latest_trees()
            return
        try:
            payload = json.loads(text)
        except ValueError as exc:
            raise ProfileFormatError(
                f"{self.state_path}: invalid serve state JSON: {exc}"
            ) from exc
        if payload.get("format") != STATE_FORMAT:
            raise ProfileFormatError(
                f"{self.state_path}: unsupported serve state format "
                f"{payload.get('format')!r}"
            )
        for name, entry in payload.get("workloads", {}).items():
            if name in self.cycles_committed:
                self.cycles_committed[name] = int(
                    entry.get("cycles_committed", 0)
                )
        totals = payload.get("totals", {})
        for key in self._base_totals:
            self._base_totals[key] = totals.get(key, 0)
        self.recordings_received = int(totals.get("recordings_received", 0))
        self._restore_latest_trees()

    def _restore_latest_trees(self) -> None:
        """Re-seed the merge accumulators from the store's pointers."""
        for name in self.config.workloads:
            content_hash = self.store.latest_hash(name)
            if content_hash is None:
                continue
            profile = self.store.load_by_hash(content_hash)
            if profile.sttree is not None:
                self._latest_tree[name] = profile.sttree

    def _write_state(self) -> None:
        totals = self._totals()
        payload = {
            "format": STATE_FORMAT,
            "schema_version": 1,
            "workloads": {
                name: {
                    "cycles_committed": self.cycles_committed[name],
                    "latest_hash": self.store.latest_hash(name),
                }
                for name in self.config.workloads
            },
            "totals": totals,
        }
        self.store._atomic_write(
            self.state_path, json.dumps(payload, indent=2, sort_keys=True)
        )

    # -- the merge/commit post stages (run inside each cycle's budget) -----------------

    def _merge_stage(self, workload: str) -> Callable[[STTree], None]:
        def merge(tree: STTree) -> None:
            with self._lock:
                latest = self._latest_tree.get(workload)
                # First commit keeps the cycle tree itself (merge with
                # nothing is identity) so a single-cycle serve is
                # byte-identical to the offline profiling phase.
                self._pending[workload] = (
                    tree if latest is None else latest.merge(tree)
                )

        return merge

    def _commit_stage(self, workload: str) -> Callable[[STTree], None]:
        def commit(_tree: STTree) -> None:
            with self._lock:
                merged = self._pending.pop(workload, None)
                if merged is None:  # pragma: no cover - stage misuse
                    raise ProfileError(
                        f"commit stage for {workload!r} ran without a "
                        "preceding merge stage"
                    )
                self._commit_locked(workload, merged)

        return commit

    def _commit_locked(self, workload: str, merged: STTree) -> str:
        profile = AllocationProfile.from_sttree(
            merged,
            workload=workload,
            push_up=self.config.push_up,
            metadata={
                "source": "repro-serve",
                "instances": self.config.instances,
                "cycle_budget_s": self.config.cycle_budget_s,
            },
        )
        content_hash = self.store.put(profile, set_latest=True)
        self._latest_tree[workload] = merged
        self._write_state()
        return content_hash

    # -- external recordings (POST /recordings) ----------------------------------------

    def submit_recording(self, body: str) -> Dict[str, object]:
        """Merge an agent-shipped profile JSON into its workload's latest."""
        profile = AllocationProfile.from_json(body)
        if profile.sttree is None:
            raise ProfileError(
                "recording carries no STTree IR; only v2 profiles with an "
                "embedded tree can be merged"
            )
        submitted_hash = profile_content_hash(profile)
        with self._lock:
            latest = self._latest_tree.get(profile.workload)
            merged = (
                profile.sttree
                if latest is None
                else latest.merge(profile.sttree)
            )
            self.cycles_committed.setdefault(profile.workload, 0)
            self.recordings_received += 1
            latest_hash = self._commit_locked(profile.workload, merged)
        return {
            "workload": profile.workload,
            "submitted_hash": submitted_hash,
            "latest_hash": latest_hash,
        }

    # -- the drive loop ----------------------------------------------------------------

    def run_round(self) -> List[CycleReport]:
        """One cycle per (workload, instance); returns every report."""
        reports: List[CycleReport] = []
        for name in self.config.workloads:
            index = self.cycles_committed[name]
            self._pending.pop(name, None)
            for engine in self.engines[name]:
                reports.append(engine.run_cycle(index=index))
                if self._stop.is_set():
                    break
            with self._lock:
                self.cycles_committed[name] = index + 1
                self._write_state()
            if self._stop.is_set():
                break
        return reports

    def run(
        self,
        max_rounds: Optional[int] = None,
        on_report: Optional[Callable[[CycleReport], None]] = None,
        serve_http: bool = True,
    ) -> int:
        """Drive rounds until stopped or ``max_rounds``; returns rounds run.

        ``on_report`` fires after each cycle (the CLI's per-cycle log
        line).  With ``serve_http`` the HTTP API is up for the whole
        run — including the idle gaps between rounds.
        """
        if max_rounds is None:
            max_rounds = self.config.max_rounds
        if serve_http:
            self.start_service()
        rounds = 0
        try:
            while not self._stop.is_set():
                if max_rounds is not None and rounds >= max_rounds:
                    break
                for report in self.run_round():
                    if on_report is not None:
                        on_report(report)
                rounds += 1
                if self._stop.is_set():
                    break
                if max_rounds is not None and rounds >= max_rounds:
                    break
                if self.config.round_interval_s > 0:
                    self._stop.wait(self.config.round_interval_s)
        finally:
            if serve_http:
                self.stop_service()
        return rounds

    def request_stop(self) -> None:
        """Ask the drive loop to exit after the current cycle (signal-safe)."""
        self._stop.set()

    @property
    def stopping(self) -> bool:
        return self._stop.is_set()

    # -- the HTTP face -----------------------------------------------------------------

    def start_service(self) -> str:
        if self.service is None:
            self.service = ProfileService(
                self.store,
                metrics_fn=self.metrics,
                submit_fn=self.submit_recording,
                host=self.config.host,
                port=self.config.port,
            )
            self.service.start()
        return self.service.url

    def stop_service(self) -> None:
        if self.service is not None:
            self.service.stop()
            self.service = None

    # -- telemetry ---------------------------------------------------------------------

    def _totals(self) -> Dict[str, float]:
        totals = dict(self._base_totals)
        for engines in self.engines.values():
            for engine in engines:
                totals["cycles_run"] += engine.cycles_run
                totals["cycles_truncated"] += engine.cycles_truncated
                totals["overrun_s_total"] += engine.overrun_s_total
        totals["overrun_s_total"] = round(totals["overrun_s_total"], 6)
        totals["recordings_received"] = self.recordings_received
        return totals

    def metrics(self) -> Dict[str, object]:
        """The ``GET /metrics`` payload: budgets, overruns, VM telemetry."""
        with self._lock:
            vm_telemetry: Dict[str, int] = {}
            live_snapshot_peak = 0
            for engines in self.engines.values():
                for engine in engines:
                    live_snapshot_peak = max(
                        live_snapshot_peak, engine.live_snapshot_peak
                    )
                    for counter, value in engine.vm_telemetry.items():
                        vm_telemetry[counter] = (
                            vm_telemetry.get(counter, 0) + value
                        )
            return {
                "service": {
                    "workloads": list(self.config.workloads),
                    "instances": self.config.instances,
                    "cycle_budget_s": self.config.cycle_budget_s,
                    "sim_duration_ms": self.config.sim_duration_ms,
                },
                "cycles": {
                    **self._totals(),
                    "live_snapshot_peak": live_snapshot_peak,
                },
                "vm_telemetry": vm_telemetry,
                "profiles": {
                    name: {
                        "cycles_committed": self.cycles_committed[name],
                        "latest_hash": self.store.latest_hash(name),
                    }
                    for name in self.config.workloads
                },
                "store": {"objects": len(self.store.object_hashes())},
            }
