"""The profile service: continuous profiling cycles served over HTTP.

``repro serve`` turns the one-shot profiling pipeline into a long-running
daemon (the gprofiler deployment shape): :mod:`repro.serve.cycle` runs
fixed-budget profiling cycles against simulated VMs,
:mod:`repro.serve.daemon` merges each cycle's STTree into a
content-addressed :class:`~repro.core.profilestore.ProfileStore` with
crash-safe cycle state, and :mod:`repro.serve.api` serves the profiles
and telemetry to production-phase VMs over a small stdlib HTTP API.
"""

from repro.serve.api import ProfileService
from repro.serve.cycle import BoundedLiveSource, CycleReport, ProfilingCycleEngine
from repro.serve.daemon import ServeConfig, ServeDaemon

__all__ = [
    "BoundedLiveSource",
    "CycleReport",
    "ProfileService",
    "ProfilingCycleEngine",
    "ServeConfig",
    "ServeDaemon",
]
