"""Legacy setup shim.

The offline environment ships setuptools without the ``wheel`` package, so
PEP 517 editable installs fail on ``bdist_wheel``.  Keeping a setup.py lets
``pip install -e .`` fall back to ``setup.py develop``.
"""

from setuptools import setup

setup()
