"""Unit tests for the CRIU-style incremental checkpoint engine."""

import pytest

from repro.config import CostModel, SimConfig
from repro.heap.heap import SimHeap
from repro.snapshot.criu import CRIUEngine


@pytest.fixture
def heap() -> SimHeap:
    return SimHeap(SimConfig.small())


@pytest.fixture
def engine() -> CRIUEngine:
    return CRIUEngine(CostModel())


class TestIncrementality:
    def test_first_snapshot_contains_dirty_pages(self, heap, engine):
        obj = heap.allocate(8192)
        snap = engine.checkpoint(heap, [obj], time_ms=0.0)
        assert snap.pages_written >= 2
        assert snap.size_bytes == snap.pages_written * heap.page_size

    def test_dirty_bits_cleared_after_checkpoint(self, heap, engine):
        heap.allocate(4096)
        engine.checkpoint(heap, [], time_ms=0.0)
        assert heap.page_table.dirty_pages() == []

    def test_second_snapshot_is_delta(self, heap, engine):
        a = heap.allocate(8192)
        first = engine.checkpoint(heap, [a], time_ms=0.0)
        b = heap.allocate(4096)
        second = engine.checkpoint(heap, [a, b], time_ms=1.0)
        assert second.incremental
        assert not first.incremental
        assert second.pages_written < first.pages_written + second.pages_written
        assert second.size_bytes <= first.size_bytes

    def test_untouched_memory_not_redumped(self, heap, engine):
        heap.allocate(8192)
        engine.checkpoint(heap, [], time_ms=0.0)
        snap = engine.checkpoint(heap, [], time_ms=1.0)
        assert snap.pages_written == 0
        assert snap.size_bytes == 0

    def test_mutation_redirties(self, heap, engine):
        parent = heap.allocate(64)
        child = heap.allocate(64)
        engine.checkpoint(heap, [parent, child], time_ms=0.0)
        heap.write_ref(parent, child)
        snap = engine.checkpoint(heap, [parent, child], time_ms=1.0)
        assert snap.pages_written >= 1


class TestNoNeedSkipping:
    def test_no_need_pages_excluded(self, heap, engine):
        live = heap.allocate(4096)
        heap.allocate(16 * 4096)  # garbage
        heap.mark_unused_pages_no_need([live])
        snap = engine.checkpoint(heap, [live], time_ms=0.0)
        # Only the live object's pages (and holder metadata) are written.
        live_pages = len(list(live.page_span(heap.page_size)))
        assert snap.pages_written <= live_pages + 2


class TestLogicalContent:
    def test_live_ids_recorded(self, heap, engine):
        objs = [heap.allocate(64) for _ in range(5)]
        snap = engine.checkpoint(heap, objs, time_ms=0.0)
        assert snap.live_object_ids == frozenset(o.object_id for o in objs)
        assert snap.live_count == 5

    def test_duration_scales_with_size(self, heap, engine):
        heap.allocate(64)
        small = engine.checkpoint(heap, [], time_ms=0.0)
        for _ in range(10):
            heap.allocate(3 * 4096)
        large = engine.checkpoint(heap, [], time_ms=1.0)
        assert large.duration_us > small.duration_us

    def test_sequence_numbers(self, heap, engine):
        s1 = engine.checkpoint(heap, [], time_ms=0.0)
        s2 = engine.checkpoint(heap, [], time_ms=1.0)
        assert (s1.seq, s2.seq) == (1, 2)
        assert engine.checkpoints_taken == 2
