"""Tests for the binary columnar snapshot store (``snapshots.bin``)."""

import json

import pytest

from repro.errors import ProfileFormatError
from repro.snapshot.binstore import (
    SNAPSHOTS_MAGIC,
    SNAPSHOTS_SCHEMA,
    is_binary_store,
)
from repro.snapshot.snapshot import Snapshot, SnapshotStore


def make_full(seq, ids, time_ms=None):
    return Snapshot(
        seq=seq,
        time_ms=time_ms if time_ms is not None else float(seq),
        engine="jmap",
        pages_written=0,
        size_bytes=64 * len(ids),
        duration_us=5.0 * seq,
        live_object_ids=ids,
        incremental=False,
    )


def make_delta(seq, born, dead, predecessor):
    return Snapshot(
        seq=seq,
        time_ms=float(seq),
        engine="criu",
        pages_written=3,
        size_bytes=128,
        duration_us=2.5 * seq,
        born_ids=born,
        dead_ids=dead,
        predecessor=predecessor,
    )


def build_store():
    store = SnapshotStore()
    first = make_full(1, range(1000))
    store.append(first)
    previous = first
    for seq in range(2, 8):
        snapshot = make_delta(
            seq,
            born=range(seq * 1000, seq * 1000 + 500),
            dead=range((seq - 2) * 500, (seq - 2) * 500 + 100),
            predecessor=previous,
        )
        store.append(snapshot)
        previous = snapshot
    return store


class TestRoundTrip:
    def test_save_load_identical(self, tmp_path):
        path = str(tmp_path / "snapshots.bin")
        store = build_store()
        store.save(path)
        assert is_binary_store(path)
        loaded = SnapshotStore.load(path)
        assert len(loaded) == len(store)
        for original, restored in zip(store, loaded):
            assert restored == original
            assert restored.is_delta == original.is_delta
            assert restored.live_object_ids == original.live_object_ids

    def test_deltas_stay_deltas(self, tmp_path):
        path = str(tmp_path / "snapshots.bin")
        build_store().save(path)
        loaded = list(SnapshotStore.iter_file(path))
        assert not loaded[0].is_delta
        assert all(s.is_delta for s in loaded[1:])
        # Chain is rebuilt: each delta's predecessor is the previous one.
        for left, right in zip(loaded, loaded[1:]):
            assert right.predecessor is left

    def test_empty_store(self, tmp_path):
        path = str(tmp_path / "snapshots.bin")
        SnapshotStore().save(path)
        assert list(SnapshotStore.iter_file(path)) == []

    def test_format_inference_by_extension(self, tmp_path):
        store = build_store()
        jsonl = str(tmp_path / "snapshots.jsonl")
        binary = str(tmp_path / "snapshots.bin")
        store.save(jsonl)
        store.save(binary)
        with open(jsonl) as handle:
            json.loads(handle.readline())  # really JSON lines
        assert is_binary_store(binary)
        assert not is_binary_store(jsonl)
        assert SnapshotStore.load(jsonl)[3] == SnapshotStore.load(binary)[3]

    def test_explicit_format_overrides_extension(self, tmp_path):
        path = str(tmp_path / "snapshots.jsonl")
        build_store().save(path, format="binary")
        assert is_binary_store(path)

    def test_unknown_format_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown snapshot format"):
            build_store().save(str(tmp_path / "x"), format="parquet")


class TestCorruption:
    def test_truncated_id_column(self, tmp_path):
        path = str(tmp_path / "snapshots.bin")
        build_store().save(path)
        blob = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(blob[:-20])
        with pytest.raises(ProfileFormatError) as excinfo:
            list(SnapshotStore.iter_file(path))
        message = str(excinfo.value)
        assert path in message
        assert "truncated" in message

    def test_truncated_header(self, tmp_path):
        path = str(tmp_path / "snapshots.bin")
        with open(path, "wb") as handle:
            handle.write(SNAPSHOTS_MAGIC + b"\xff\xff\xff\x7f")
        with pytest.raises(ProfileFormatError, match="truncated"):
            list(SnapshotStore.iter_file(path))

    def test_corrupt_header_json(self, tmp_path):
        path = str(tmp_path / "snapshots.bin")
        body = b"not json"
        with open(path, "wb") as handle:
            handle.write(SNAPSHOTS_MAGIC)
            handle.write(len(body).to_bytes(4, "little"))
            handle.write(body)
        with pytest.raises(ProfileFormatError, match="corrupt"):
            list(SnapshotStore.iter_file(path))

    def test_corrupt_id_column_payload(self, tmp_path):
        path = str(tmp_path / "snapshots.bin")
        store = SnapshotStore()
        store.append(make_full(1, range(100)))
        store.save(path)
        blob = bytearray(open(path, "rb").read())
        blob[-1] ^= 0xFF  # flip bits inside the last id column
        with open(path, "wb") as handle:
            handle.write(bytes(blob))
        with pytest.raises(ProfileFormatError) as excinfo:
            list(SnapshotStore.iter_file(path))
        assert "live_object_ids" in str(excinfo.value)

    def test_trailing_bytes_detected(self, tmp_path):
        path = str(tmp_path / "snapshots.bin")
        build_store().save(path)
        with open(path, "ab") as handle:
            handle.write(b"extra")
        with pytest.raises(ProfileFormatError, match="trailing"):
            list(SnapshotStore.iter_file(path))


class TestVersionPolicy:
    def _write_with_schema(self, path, schema):
        header = json.dumps(
            {"schema": schema, "count": 0, "columns": {}}
        ).encode()
        with open(path, "wb") as handle:
            handle.write(SNAPSHOTS_MAGIC)
            handle.write(len(header).to_bytes(4, "little"))
            handle.write(header)

    def test_v3_rejected_with_one_line_upgrade_error(self, tmp_path):
        path = str(tmp_path / "snapshots.bin")
        self._write_with_schema(path, "polm2-snapshots-v3")
        with pytest.raises(ProfileFormatError) as excinfo:
            list(SnapshotStore.iter_file(path))
        message = str(excinfo.value)
        assert len(message.splitlines()) == 1
        assert "polm2-snapshots-v3" in message
        assert SNAPSHOTS_SCHEMA in message
        assert "upgrade" in message

    def test_unknown_schema_rejected(self, tmp_path):
        path = str(tmp_path / "snapshots.bin")
        self._write_with_schema(path, "something-else")
        with pytest.raises(ProfileFormatError, match="unknown snapshot store"):
            list(SnapshotStore.iter_file(path))


class TestDeltaPayloadStrictness:
    COMMON = dict(
        seq=2,
        time_ms=2.0,
        engine="criu",
        pages_written=1,
        size_bytes=64,
        duration_us=1.0,
        incremental=True,
    )

    def test_missing_born_ids_raises(self):
        payload = dict(self.COMMON, dead_ids=[1, 2])
        with pytest.raises(ProfileFormatError, match="born_ids"):
            Snapshot.from_dict(payload)

    def test_missing_dead_ids_raises_naming_source(self):
        payload = dict(self.COMMON, born_ids=[1, 2])
        with pytest.raises(ProfileFormatError) as excinfo:
            Snapshot.from_dict(payload, source="/rec/snapshots.jsonl")
        message = str(excinfo.value)
        assert "/rec/snapshots.jsonl" in message
        assert "dead_ids" in message
        assert "seq 2" in message

    def test_jsonl_line_missing_field_names_path(self, tmp_path):
        path = str(tmp_path / "snapshots.jsonl")
        payload = dict(self.COMMON, born_ids=[1])
        with open(path, "w") as handle:
            handle.write(json.dumps(payload) + "\n")
        with pytest.raises(ProfileFormatError) as excinfo:
            list(SnapshotStore.iter_file(path))
        assert path in str(excinfo.value)

    def test_full_payload_still_loads(self):
        payload = dict(self.COMMON, live_object_ids=[1, 2, 3])
        snapshot = Snapshot.from_dict(payload)
        assert snapshot.live_object_ids == {1, 2, 3}
