"""Unit tests for the snapshot store."""

import pytest

from repro.snapshot.snapshot import Snapshot, SnapshotStore


def snap(seq: int, time_ms: float, size: int = 4096) -> Snapshot:
    return Snapshot(
        seq=seq,
        time_ms=time_ms,
        engine="test",
        pages_written=size // 4096,
        size_bytes=size,
        duration_us=100.0,
        live_object_ids=frozenset({seq}),
    )


class TestSnapshotStore:
    def test_append_and_index(self):
        store = SnapshotStore()
        store.append(snap(1, 0.0))
        store.append(snap(2, 1.0))
        assert len(store) == 2
        assert store[0].seq == 1
        assert [s.seq for s in store] == [1, 2]

    def test_rejects_out_of_order(self):
        store = SnapshotStore()
        store.append(snap(1, 5.0))
        with pytest.raises(ValueError):
            store.append(snap(2, 1.0))

    def test_aggregates(self):
        store = SnapshotStore()
        store.append(snap(1, 0.0, size=4096))
        store.append(snap(2, 1.0, size=8192))
        assert store.total_bytes() == 12288
        assert store.sizes_bytes() == [4096, 8192]
        assert store.total_duration_us() == 200.0
        assert store.durations_us() == [100.0, 100.0]

    def test_snapshots_returns_copy(self):
        store = SnapshotStore()
        store.append(snap(1, 0.0))
        listing = store.snapshots
        listing.clear()
        assert len(store) == 1
