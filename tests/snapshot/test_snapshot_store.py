"""Unit tests for the snapshot store and the delta representation."""

import json
import pickle

import pytest

from repro.snapshot.snapshot import Snapshot, SnapshotStore


def snap(seq: int, time_ms: float, size: int = 4096, live=None) -> Snapshot:
    return Snapshot(
        seq=seq,
        time_ms=time_ms,
        engine="test",
        pages_written=size // 4096,
        size_bytes=size,
        duration_us=100.0,
        live_object_ids=frozenset({seq} if live is None else live),
    )


def delta_chain(live_sets):
    """Build a store of delta snapshots realizing the given live sets."""
    store = SnapshotStore()
    prev_live = frozenset()
    prev_snap = None
    for seq, live in enumerate(live_sets, start=1):
        live = frozenset(live)
        snapshot = Snapshot(
            seq=seq,
            time_ms=float(seq),
            engine="criu",
            pages_written=1,
            size_bytes=4096,
            duration_us=100.0,
            born_ids=live - prev_live,
            dead_ids=prev_live - live,
            predecessor=prev_snap,
        )
        store.append(snapshot)
        prev_live, prev_snap = live, snapshot
    return store


class TestSnapshotStore:
    def test_append_and_index(self):
        store = SnapshotStore()
        store.append(snap(1, 0.0))
        store.append(snap(2, 1.0))
        assert len(store) == 2
        assert store[0].seq == 1
        assert [s.seq for s in store] == [1, 2]

    def test_rejects_out_of_order(self):
        store = SnapshotStore()
        store.append(snap(1, 5.0))
        with pytest.raises(ValueError):
            store.append(snap(2, 1.0))

    def test_aggregates(self):
        store = SnapshotStore()
        store.append(snap(1, 0.0, size=4096))
        store.append(snap(2, 1.0, size=8192))
        assert store.total_bytes() == 12288
        assert store.sizes_bytes() == [4096, 8192]
        assert store.total_duration_us() == 200.0
        assert store.durations_us() == [100.0, 100.0]

    def test_snapshots_is_immutable_view(self):
        store = SnapshotStore()
        store.append(snap(1, 0.0))
        listing = store.snapshots
        with pytest.raises(AttributeError):
            listing.clear()
        with pytest.raises(TypeError):
            listing[0] = None
        assert len(store) == 1
        # The view is live and O(1): it tracks later appends.
        store.append(snap(2, 1.0))
        assert len(listing) == 2
        assert store.snapshots is listing
        # Slicing still hands figure code a plain prefix list.
        assert listing[:1] == [store[0]]
        # An empty store's view is falsy (polling loops rely on this).
        assert not SnapshotStore().snapshots


class TestDeltaSnapshots:
    LIVE_SETS = [{1, 2, 3}, {2, 3, 4, 5}, {5, 6}, {5, 6, 7}]

    def test_lazy_materialization_matches_live_sets(self):
        store = delta_chain(self.LIVE_SETS)
        assert all(s.is_delta for s in store)
        assert not store[3].is_materialized
        # Accessing the last snapshot materializes (and caches) the chain.
        assert store[3].live_object_ids == frozenset({5, 6, 7})
        assert store[1].is_materialized
        for snapshot, live in zip(store, self.LIVE_SETS):
            assert snapshot.live_object_ids == frozenset(live)

    def test_append_rejects_unchained_delta(self):
        store = delta_chain(self.LIVE_SETS[:2])
        stranger = Snapshot(
            seq=9,
            time_ms=9.0,
            engine="criu",
            pages_written=1,
            size_bytes=4096,
            duration_us=1.0,
            born_ids=frozenset({9}),
            dead_ids=frozenset(),
            predecessor=None,
        )
        with pytest.raises(ValueError):
            store.append(stranger)

    def test_roundtrip_save_load(self, tmp_path):
        store = delta_chain(self.LIVE_SETS)
        path = str(tmp_path / "snapshots.jsonl")
        store.save(path)
        # Delta lines stay delta-encoded on disk.
        lines = [json.loads(l) for l in open(path) if l.strip()]
        assert "born_ids" in lines[1] and "live_object_ids" not in lines[1]
        loaded = SnapshotStore.load(path)
        assert list(loaded) == list(store)

    def test_legacy_full_format_still_loads(self, tmp_path):
        store = SnapshotStore()
        store.append(snap(1, 0.0, live={1, 2}))
        store.append(snap(2, 1.0, live={2, 3}))
        path = str(tmp_path / "snapshots.jsonl")
        store.save(path)
        lines = [json.loads(l) for l in open(path) if l.strip()]
        assert all("live_object_ids" in line for line in lines)
        loaded = SnapshotStore.load(path)
        assert list(loaded) == list(store)

    def test_delta_and_full_stores_are_equivalent(self, tmp_path):
        delta = delta_chain(self.LIVE_SETS)
        full = SnapshotStore()
        for i, live in enumerate(self.LIVE_SETS, start=1):
            full.append(
                Snapshot(
                    seq=i,
                    time_ms=float(i),
                    engine="criu",
                    pages_written=1,
                    size_bytes=4096,
                    duration_us=100.0,
                    live_object_ids=frozenset(live),
                )
            )
        assert list(delta) == list(full)
        delta_path = str(tmp_path / "delta.jsonl")
        full_path = str(tmp_path / "full.jsonl")
        delta.save(delta_path)
        full.save(full_path)
        assert list(SnapshotStore.load(delta_path)) == list(
            SnapshotStore.load(full_path)
        )

    def test_store_pickles_compactly_and_correctly(self):
        store = delta_chain(self.LIVE_SETS)
        clone = pickle.loads(pickle.dumps(store))
        assert list(clone) == list(store)
        assert all(s.is_delta for s in clone)

    def test_long_chain_does_not_recurse(self):
        live_sets = [set(range(i, i + 4)) for i in range(3000)]
        store = delta_chain(live_sets)
        assert store[-1].live_object_ids == frozenset(live_sets[-1])
        clone = pickle.loads(pickle.dumps(store))
        assert clone[-1].live_object_ids == frozenset(live_sets[-1])
