"""Unit tests for the jmap baseline dumper."""

import pytest

from repro.config import CostModel, SimConfig
from repro.heap.heap import SimHeap
from repro.snapshot.jmap import HPROF_EXPANSION, JmapDumper


@pytest.fixture
def heap() -> SimHeap:
    return SimHeap(SimConfig.small())


@pytest.fixture
def dumper() -> JmapDumper:
    return JmapDumper(CostModel())


class TestFullDumps:
    def test_dump_size_covers_all_live_objects(self, heap, dumper):
        objs = [heap.allocate(1024) for _ in range(10)]
        snap = dumper.dump(heap, objs, time_ms=0.0)
        assert snap.size_bytes >= int(10 * 1024 * HPROF_EXPANSION)
        assert not snap.incremental

    def test_every_dump_is_full(self, heap, dumper):
        objs = [heap.allocate(1024) for _ in range(10)]
        first = dumper.dump(heap, objs, time_ms=0.0)
        second = dumper.dump(heap, objs, time_ms=1.0)
        assert second.size_bytes == first.size_bytes

    def test_duration_has_large_fixed_cost(self, heap, dumper):
        snap = dumper.dump(heap, [], time_ms=0.0)
        assert snap.duration_us >= CostModel().jmap_fixed_us

    def test_live_ids_recorded(self, heap, dumper):
        objs = [heap.allocate(64) for _ in range(3)]
        snap = dumper.dump(heap, objs, time_ms=0.0)
        assert snap.live_object_ids == frozenset(o.object_id for o in objs)


class TestAddressInstability:
    def test_addresses_change_across_moves(self, heap, dumper):
        """Paper §4.3: jmap keys dumps by address; a GC move breaks the
        cross-snapshot identity of every moved object."""
        dest = heap.new_generation("dest")
        obj = heap.allocate(128)
        id_before = obj.object_id
        view_before = JmapDumper.address_keyed_view([obj])
        heap.evacuate(
            list(heap.young.regions), {obj.object_id}, heap.young, lambda o: dest
        )
        view_after = JmapDumper.address_keyed_view([obj])
        assert set(view_before) != set(view_after)
        # ...while the identity hash survives the same move.
        assert obj.object_id == id_before
