"""Unit tests for the mini Lucene index."""

import pytest

from repro.config import SimConfig
from repro.gc.ng2c import NG2CCollector
from repro.runtime.vm import VM
from repro.workloads.lucene import codemodel as cm
from repro.workloads.lucene.index import LuceneParams
from repro.workloads.lucene.workload import LuceneWorkload


def small_params() -> LuceneParams:
    return LuceneParams(
        ram_buffer_bytes=64 * 1024,
        merge_factor=3,
        max_segment_bytes=256 * 1024,
    )


@pytest.fixture
def index():
    vm = VM(SimConfig.small(), collector=NG2CCollector())
    workload = LuceneWorkload(params=small_params(), seed=1)
    for model in workload.class_models():
        vm.classloader.load(model)
    workload.setup(vm)
    return workload, workload.index, vm


def add_docs(idx, count):
    for _ in range(count):
        with idx.thread.entry(cm.INDEX_WRITER, "addDocument"):
            idx.add_document()


class TestIndexing:
    def test_documents_grow_ram_buffer(self, index):
        _, idx, vm = index
        add_docs(idx, 5)
        assert idx.docs_in_ram == 5
        assert idx.ram_bytes > 0
        assert idx.docs_indexed == 5

    def test_ram_buffer_flush(self, index):
        _, idx, vm = index
        docs = 0
        while idx.flush_count == 0:
            add_docs(idx, 10)
            docs += 10
            assert docs < 5000
        assert idx.ram_bytes < small_params().ram_buffer_bytes
        assert len(idx.segments) >= 1

    def test_flushed_ram_buffer_dies(self, index):
        _, idx, vm = index
        add_docs(idx, 3)
        old_entries = [o.object_id for o in idx.ram_holder.refs]
        while idx.flush_count == 0:
            add_docs(idx, 10)
        live = {o.object_id for o in vm.heap.trace_live(vm.iter_roots())}
        assert not (set(old_entries) & live)

    def test_segments_reachable(self, index):
        _, idx, vm = index
        while idx.flush_count == 0:
            add_docs(idx, 10)
        segment, size, merged = idx.segments[0]
        live = {o.object_id for o in vm.heap.trace_live(vm.iter_roots())}
        assert segment.object_id in live
        assert all(ref.object_id in live for ref in segment.refs)
        assert not merged


class TestMerging:
    def test_merge_reduces_segment_count(self, index):
        _, idx, vm = index
        while idx.merge_count == 0:
            add_docs(idx, 20)
        small = [m for (_, _, m) in idx.segments if not m]
        assert len(small) < small_params().merge_factor

    def test_merged_inputs_die(self, index):
        _, idx, vm = index
        ever_created = set()
        while idx.merge_count == 0:
            add_docs(idx, 10)
            ever_created |= {seg.object_id for (seg, _, _) in idx.segments}
        live = {o.object_id for o in vm.heap.trace_live(vm.iter_roots())}
        current = {seg.object_id for (seg, _, _) in idx.segments}
        dead_inputs = ever_created - current
        assert dead_inputs
        assert not (dead_inputs & live)

    def test_segment_byte_cap(self, index):
        _, idx, vm = index
        for _ in range(40):
            add_docs(idx, 25)
        assert idx.segment_bytes_total <= small_params().max_segment_bytes * 2


class TestSearch:
    def test_search_is_young_only(self, index):
        _, idx, vm = index
        live_before = len(vm.heap.trace_live(vm.iter_roots()))
        for _ in range(10):
            with idx.thread.entry(cm.SEARCHER, "search"):
                idx.search()
        assert idx.searches == 10
        live_after = len(vm.heap.trace_live(vm.iter_roots()))
        assert live_after == live_before


class TestDriver:
    def test_tick_mixes_reads_and_writes(self, index):
        workload, idx, vm = index
        total = sum(workload.tick() for _ in range(6))
        assert total == 6 * workload.ops_per_tick
        assert idx.docs_indexed > 0
        assert idx.searches > 0
        # write:search ratio ~4:1
        assert idx.docs_indexed > idx.searches
