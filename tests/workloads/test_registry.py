"""Unit tests for the workload registry."""

import pytest

from repro.errors import UnknownWorkloadError
from repro.workloads import WORKLOAD_NAMES, make_workload


class TestRegistry:
    def test_all_paper_workloads_present(self):
        assert set(WORKLOAD_NAMES) == {
            "cassandra-wi",
            "cassandra-wr",
            "cassandra-ri",
            "lucene",
            "graphchi-cc",
            "graphchi-pr",
        }

    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_factories_produce_named_workloads(self, name):
        workload = make_workload(name, seed=7)
        assert workload.name == name
        assert workload.class_models()

    def test_unknown_name_rejected(self):
        with pytest.raises(UnknownWorkloadError):
            make_workload("spark")

    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_every_workload_has_manual_baseline(self, name):
        strategy = make_workload(name, seed=7).manual_ng2c()
        assert strategy is not None
        assert strategy.alloc_directives
        profile = strategy.as_profile(name)
        assert profile.instrumented_site_count > 0
