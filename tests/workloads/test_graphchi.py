"""Unit tests for the mini GraphChi engine and graph generator."""

import pytest

from repro.config import SimConfig
from repro.gc.ng2c import NG2CCollector
from repro.runtime.vm import VM
from repro.workloads.graphchi.engine import EngineParams
from repro.workloads.graphchi.graph import PowerLawGraph
from repro.workloads.graphchi.workload import GraphChiWorkload


def small_graph() -> PowerLawGraph:
    return PowerLawGraph(vertex_count=3000, mean_degree=10, seed=3)


def small_params() -> EngineParams:
    return EngineParams(
        edges_per_batch=6000,
        value_chunks=8,
        load_weight=10.0,
        step_weight=2.0,
    )


from repro.workloads.graphchi import codemodel as gcm


class SteppableEngine:
    """Wraps the engine so unit tests can step under the run frame."""

    def __init__(self, engine):
        self._engine = engine

    def __getattr__(self, name):
        return getattr(self._engine, name)

    def step(self):
        with self._engine.thread.entry(gcm.ENGINE, "run"):
            return self._engine.step()


@pytest.fixture
def engine():
    vm = VM(SimConfig.small(), collector=NG2CCollector())
    workload = GraphChiWorkload(
        algorithm="pr", params=small_params(), graph=small_graph(), seed=3
    )
    for model in workload.class_models():
        vm.classloader.load(model)
    workload.setup(vm)
    return workload, SteppableEngine(workload.engine), vm


class TestPowerLawGraph:
    def test_degree_sequence_properties(self):
        graph = small_graph()
        assert len(graph.degrees) == 3000
        assert all(d >= 1 for d in graph.degrees)
        mean = graph.edge_count / graph.vertex_count
        assert 5 <= mean <= 20

    def test_heavy_tail(self):
        graph = small_graph()
        top = sorted(graph.degrees, reverse=True)
        assert top[0] > 5 * (graph.edge_count / graph.vertex_count)

    def test_batches_cover_all_vertices(self):
        graph = small_graph()
        slices = graph.batch_slices(edge_budget=5000)
        covered = [v for s in slices for v in s]
        assert covered == list(range(graph.vertex_count))

    def test_batches_respect_budget_roughly(self):
        graph = small_graph()
        budget = 5000
        for batch in graph.batch_slices(budget)[:-1]:
            edges = sum(graph.degrees[v] for v in batch)
            max_degree = max(graph.degrees)
            assert edges <= budget + max_degree

    def test_deterministic(self):
        a = PowerLawGraph(vertex_count=100, seed=5)
        b = PowerLawGraph(vertex_count=100, seed=5)
        assert a.degrees == b.degrees

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            PowerLawGraph(vertex_count=0)
        with pytest.raises(ValueError):
            small_graph().batch_slices(0)


class TestEngineLifecycle:
    def test_first_step_initializes_values(self, engine):
        _, eng, vm = engine
        eng.step()
        assert eng.values_holder is not None
        assert len(eng.values_holder.refs) > small_params().value_chunks

    def test_second_step_loads_batch(self, engine):
        _, eng, vm = engine
        eng.step()
        eng.step()
        assert eng.batch_holder is not None
        assert len(eng.batch_holder.refs) > 0

    def test_batch_dies_at_completion(self, engine):
        _, eng, vm = engine
        eng.step()
        eng.step()
        block_ids = [o.object_id for o in eng.batch_holder.refs]
        guard = 0
        while eng.batch_index == 0 and eng.iteration == 0:
            eng.step()
            guard += 1
            assert guard < 10_000
        live = {o.object_id for o in vm.heap.trace_live(vm.iter_roots())}
        assert not (set(block_ids) & live)

    def test_vertex_values_survive_batches(self, engine):
        _, eng, vm = engine
        for _ in range(400):
            eng.step()
        live = {o.object_id for o in vm.heap.trace_live(vm.iter_roots())}
        assert all(ref.object_id in live for ref in eng.values_holder.refs)

    def test_iterations_advance(self, engine):
        _, eng, vm = engine
        guard = 0
        while eng.iteration == 0:
            eng.step()
            guard += 1
            assert guard < 50_000
        assert eng.batches_loaded == len(eng.batches)


class TestConnectedComponentsConvergence:
    def test_active_fraction_decays(self):
        vm = VM(SimConfig.small(), collector=NG2CCollector())
        workload = GraphChiWorkload(
            algorithm="cc", params=small_params(), graph=small_graph(), seed=3
        )
        for model in workload.class_models():
            vm.classloader.load(model)
        workload.setup(vm)
        eng = SteppableEngine(workload.engine)
        guard = 0
        while eng.iteration < 2:
            eng.step()
            guard += 1
            assert guard < 100_000
        assert eng._cc_active_fraction < 1.0


class TestDriver:
    def test_tick_returns_steps(self, engine):
        workload, _, vm = engine
        assert workload.tick() > 0

    def test_invalid_algorithm(self):
        from repro.errors import WorkloadError

        with pytest.raises(WorkloadError):
            GraphChiWorkload(algorithm="bfs")
