"""Unit tests for the mini Cassandra store's lifetime structure."""

import pytest

from repro.config import SimConfig
from repro.gc.ng2c import NG2CCollector
from repro.runtime.vm import VM
from repro.workloads.cassandra.store import CassandraParams, CassandraStore
from repro.workloads.cassandra.workload import CassandraWorkload
from repro.workloads.cassandra import codemodel as cm


def small_params() -> CassandraParams:
    return CassandraParams(
        flush_threshold_bytes=256 * 1024,
        row_cache_capacity_bytes=128 * 1024,
        key_cache_capacity_bytes=32 * 1024,
        max_sstables=3,
        key_space=5000,
    )


@pytest.fixture
def store():
    vm = VM(SimConfig.small(), collector=NG2CCollector())
    workload = CassandraWorkload(mix="wi", params=small_params(), seed=1)
    for model in workload.class_models():
        vm.classloader.load(model)
    workload.setup(vm)
    return workload, workload.store, vm


def run_entry(store, fn, count=1):
    with store.thread.entry(cm.STORAGE_PROXY, "process"):
        for _ in range(count):
            fn()


class TestWritePath:
    def test_write_grows_memtable(self, store):
        _, s, vm = store
        run_entry(s, s.write, count=10)
        assert s.memtable_rows == 10
        assert s.memtable_bytes > 0
        assert len(s.memtable_obj.refs) == 20  # row + index clone per write

    def test_memtable_rows_reachable(self, store):
        _, s, vm = store
        run_entry(s, s.write, count=5)
        live = vm.heap.trace_live(vm.iter_roots())
        # 5 writes: row + cells + index entry + clone + record + buffer.
        assert len(live) >= 5 * 6


class TestFlush:
    def test_flush_triggered_by_threshold(self, store):
        _, s, vm = store
        writes = 0
        while s.flush_count == 0:
            run_entry(s, s.write, count=20)
            writes += 20
            assert writes < 10_000
        assert s.memtable_rows < writes

    def test_flush_kills_memtable_and_commitlog(self, store):
        _, s, vm = store
        run_entry(s, s.write, count=10)
        old_memtable_rows = [r.object_id for r in s.memtable_obj.refs]
        while s.flush_count == 0:
            run_entry(s, s.write, count=20)
        live = {o.object_id for o in vm.heap.trace_live(vm.iter_roots())}
        assert not (set(old_memtable_rows) & live)

    def test_flush_creates_sstable_structures(self, store):
        _, s, vm = store
        while s.flush_count == 0:
            run_entry(s, s.write, count=20)
        assert len(s.sstables) == 1
        sstable = s.sstables[0]
        assert len(sstable.refs) > 2  # index entries + bloom + meta

    def test_sstable_cap_enforced(self, store):
        _, s, vm = store
        while s.flush_count < 5:
            run_entry(s, s.write, count=50)
        assert len(s.sstables) <= small_params().max_sstables

    def test_flush_listeners_fired(self, store):
        workload, s, vm = store
        events = []
        s.flush_listeners.append(lambda: events.append(1))
        while s.flush_count == 0:
            run_entry(s, s.write, count=20)
        assert events


class TestReadPath:
    def test_read_allocates_young_garbage_only(self, store):
        _, s, vm = store
        s.params.cache_fill_probability = 0.0
        live_before = len(vm.heap.trace_live(vm.iter_roots()))
        run_entry(s, s.read, count=10)
        live_after = len(vm.heap.trace_live(vm.iter_roots()))
        assert live_after == live_before

    def test_cache_fill_and_eviction(self, store):
        _, s, vm = store
        s.params.cache_fill_probability = 1.0
        run_entry(s, s.read, count=800)
        assert s.row_cache_bytes <= s.params.row_cache_capacity_bytes
        assert s.key_cache_bytes <= s.params.key_cache_capacity_bytes
        assert len(s.row_cache) > 0

    def test_cache_hit_skips_fill(self, store):
        _, s, vm = store
        s.params.cache_fill_probability = 1.0
        s.params.key_space = 1  # every read hits the same key
        run_entry(s, s.read, count=10)
        assert len(s.row_cache) == 1


class TestWorkloadDriver:
    def test_tick_counts_ops(self, store):
        workload, s, vm = store
        assert workload.tick() == workload.ops_per_tick
        assert vm.ops_completed == workload.ops_per_tick

    def test_mix_fractions(self):
        from repro.workloads.cassandra.workload import MIX_WRITE_FRACTION

        assert MIX_WRITE_FRACTION["wi"] == 0.75
        assert MIX_WRITE_FRACTION["wr"] == 0.50
        assert MIX_WRITE_FRACTION["ri"] == 0.25

    def test_unknown_mix_rejected(self):
        from repro.errors import WorkloadError

        with pytest.raises(WorkloadError):
            CassandraWorkload(mix="zz")

    def test_multiple_mutation_stage_threads(self):
        from repro.config import SimConfig
        from repro.gc.ng2c import NG2CCollector
        from repro.runtime.vm import VM

        vm = VM(SimConfig.small(), collector=NG2CCollector())
        workload = CassandraWorkload(
            mix="wi", params=small_params(), seed=1, thread_count=3
        )
        for model in workload.class_models():
            vm.classloader.load(model)
        workload.setup(vm)
        assert len(vm.threads) == 3
        workload.tick()
        # Work is spread across the stage threads.
        assert vm.ops_completed >= 3

    def test_invalid_thread_count(self):
        from repro.errors import WorkloadError

        with pytest.raises(WorkloadError):
            CassandraWorkload(thread_count=0)

    def test_zipfian_keys_skewed(self, store):
        _, s, vm = store
        keys = [s.sample_key() for _ in range(2000)]
        low = sum(1 for k in keys if k < s.params.key_space // 100)
        # YCSB zipfian (theta=0.99): the hottest 1% of keys receives far
        # more than the 1% of traffic a uniform distribution would give.
        assert low > len(keys) // 4
