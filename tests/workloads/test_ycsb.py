"""Unit tests for the YCSB operation generator."""

import collections

import pytest

from repro.workloads.ycsb import (
    READ,
    STANDARD_WORKLOADS,
    WRITE,
    YCSBConfig,
    YCSBGenerator,
    ZipfianGenerator,
)


class TestZipfian:
    def test_range(self):
        gen = ZipfianGenerator(1000, seed=1)
        keys = [gen.next() for _ in range(5000)]
        assert all(0 <= k < 1000 for k in keys)

    def test_head_heavy(self):
        gen = ZipfianGenerator(10_000, seed=1)
        keys = [gen.next() for _ in range(20_000)]
        head = sum(1 for k in keys if k < 100)  # top 1% of keys
        # Zipfian theta=0.99: the head gets a large share of traffic.
        assert head > len(keys) * 0.3

    def test_deterministic(self):
        a = [ZipfianGenerator(100, seed=9).next() for _ in range(50)]
        b = [ZipfianGenerator(100, seed=9).next() for _ in range(50)]
        assert a == b

    def test_large_keyspace_construction_fast(self):
        gen = ZipfianGenerator(50_000_000, seed=1)
        assert 0 <= gen.next() < 50_000_000

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            ZipfianGenerator(0)
        with pytest.raises(ValueError):
            ZipfianGenerator(10, theta=1.0)


class TestYCSBConfig:
    def test_standard_letters(self):
        for letter in STANDARD_WORKLOADS:
            config = YCSBConfig.standard(letter)
            assert 0.0 <= config.read_fraction <= 1.0

    def test_workload_b_read_mostly(self):
        assert YCSBConfig.standard("b").read_fraction == 0.95

    def test_unknown_letter(self):
        with pytest.raises(ValueError):
            YCSBConfig.standard("z")


class TestYCSBGenerator:
    def test_mix_fractions(self):
        gen = YCSBGenerator(YCSBConfig(read_fraction=0.75, seed=3))
        ops = collections.Counter(gen.next_op()[0] for _ in range(4000))
        read_share = ops[READ] / 4000
        assert 0.70 < read_share < 0.80

    def test_read_only(self):
        gen = YCSBGenerator(YCSBConfig(read_fraction=1.0, seed=3))
        assert all(gen.next_op()[0] == READ for _ in range(100))

    def test_uniform_distribution(self):
        gen = YCSBGenerator(
            YCSBConfig(distribution="uniform", item_count=1000, seed=3)
        )
        keys = [gen.next_key() for _ in range(5000)]
        head = sum(1 for k in keys if k < 100)
        assert abs(head - 500) < 150  # ~10% of traffic to 10% of keys

    def test_latest_distribution_tracks_inserts(self):
        gen = YCSBGenerator(
            YCSBConfig(
                distribution="latest",
                item_count=1000,
                read_fraction=0.5,
                seed=3,
            )
        )
        for _ in range(500):
            gen.next_op()
        assert gen.insert_cursor > 1000
        keys = [gen.next_key() for _ in range(2000)]
        recent = sum(1 for k in keys if k > gen.insert_cursor - 200)
        assert recent > len(keys) * 0.3

    def test_iterator_protocol(self):
        gen = YCSBGenerator(YCSBConfig(seed=3))
        stream = iter(gen)
        op, key = next(stream)
        assert op in (READ, WRITE)
        assert isinstance(key, int)

    def test_invalid_distribution(self):
        with pytest.raises(ValueError):
            YCSBGenerator(YCSBConfig(distribution="pareto"))
