"""Unit tests for the Workload base class and the manual-NG2C adapter."""

from repro.core.profile import AllocDirective, CallDirective
from repro.workloads.base import ManualNG2CStrategy, Workload


class MinimalWorkload(Workload):
    name = "minimal"

    def class_models(self):
        return []

    def setup(self, vm):
        pass

    def tick(self):
        return 0


class TestFlushHooks:
    def test_hooks_fire_in_order(self):
        workload = MinimalWorkload()
        calls = []
        workload.flush_hooks.append(lambda: calls.append("a"))
        workload.flush_hooks.append(lambda: calls.append("b"))
        workload.fire_flush_hooks()
        assert calls == ["a", "b"]

    def test_no_hooks_is_fine(self):
        MinimalWorkload().fire_flush_hooks()

    def test_default_manual_strategy_is_none(self):
        assert MinimalWorkload().manual_ng2c() is None

    def test_teardown_default_noop(self):
        MinimalWorkload().teardown()


class TestManualStrategyAdapter:
    def test_as_profile_carries_directives(self):
        strategy = ManualNG2CStrategy(
            alloc_directives=[AllocDirective("C", "m", 1)],
            call_directives=[CallDirective("C", "r", 2, target_generation=1)],
            notes="test",
        )
        profile = strategy.as_profile("wl")
        assert profile.workload == "wl-manual"
        assert profile.instrumented_site_count == 1
        assert profile.generation_indexes == {1}
        assert profile.metadata["manual"] is True
        assert profile.metadata["notes"] == "test"

    def test_defaults(self):
        strategy = ManualNG2CStrategy(alloc_directives=[], call_directives=[])
        assert not strategy.rotate_generation_on_flush
        assert strategy.conflicts_handled == 0
        assert strategy.rotating_index == 1
