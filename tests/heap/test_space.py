"""Unit tests for generations (region sets with bump allocation)."""

import pytest

from repro.errors import OutOfMemoryError
from repro.heap.objects import HeapObject
from repro.heap.region import Region
from repro.heap.space import Generation


def make_generation(num_regions: int = 4, region_size: int = 4096) -> Generation:
    pool = [Region(i, i * region_size, region_size) for i in range(num_regions)]
    pool.reverse()
    return Generation(1, "test", lambda: pool.pop() if pool else None)


class TestAllocation:
    def test_allocates_and_tags_generation(self):
        gen = make_generation()
        obj = HeapObject(size=64)
        gen.allocate(obj)
        assert obj.gen_id == 1
        assert obj.address >= 0

    def test_claims_new_region_when_full(self):
        gen = make_generation(num_regions=2, region_size=4096)
        gen.allocate(HeapObject(size=4096))
        gen.allocate(HeapObject(size=64))
        assert len(gen.regions) == 2

    def test_oom_when_pool_exhausted(self):
        gen = make_generation(num_regions=1, region_size=4096)
        gen.allocate(HeapObject(size=4096))
        with pytest.raises(OutOfMemoryError):
            gen.allocate(HeapObject(size=64))

    def test_object_larger_than_region_raises(self):
        gen = make_generation(region_size=4096)
        with pytest.raises(OutOfMemoryError):
            gen.allocate(HeapObject(size=8192))


class TestAccounting:
    def test_used_bytes_incremental(self):
        gen = make_generation()
        gen.allocate(HeapObject(size=100))
        gen.allocate(HeapObject(size=200))
        assert gen.used_bytes == 300

    def test_used_bytes_matches_regions(self):
        gen = make_generation()
        for _ in range(20):
            gen.allocate(HeapObject(size=500))
        assert gen.used_bytes == sum(r.used_bytes for r in gen.regions)

    def test_committed_bytes(self):
        gen = make_generation(region_size=4096)
        gen.allocate(HeapObject(size=64))
        assert gen.committed_bytes == 4096

    def test_object_count_and_iter(self):
        gen = make_generation()
        objs = [HeapObject(size=64) for _ in range(5)]
        for obj in objs:
            gen.allocate(obj)
        assert gen.object_count == 5
        assert list(gen.iter_objects()) == objs


class TestRegionRelease:
    def test_release_region_adjusts_usage(self):
        gen = make_generation(region_size=4096)
        gen.allocate(HeapObject(size=4096))
        gen.allocate(HeapObject(size=100))
        first = gen.regions[0]
        gen.release_region(first)
        assert first not in gen.regions
        assert gen.used_bytes == 100

    def test_release_all(self):
        gen = make_generation()
        gen.allocate(HeapObject(size=64))
        released = gen.release_all_regions()
        assert len(released) == 1
        assert gen.regions == []
        assert gen.used_bytes == 0

    def test_allocation_works_after_release_all(self):
        gen = make_generation()
        gen.allocate(HeapObject(size=64))
        gen.release_all_regions()
        gen.allocate(HeapObject(size=64))
        assert gen.used_bytes == 64
