"""Unit tests for humongous (multi-region) objects."""

import pytest

from repro.config import SimConfig
from repro.errors import OutOfMemoryError
from repro.gc.g1 import G1Collector
from repro.gc.ng2c import NG2CCollector
from repro.heap.heap import SimHeap
from repro.runtime.vm import VM


@pytest.fixture
def heap() -> SimHeap:
    return SimHeap(SimConfig.small())


class TestHumongousAllocation:
    def test_large_object_spans_contiguous_regions(self, heap):
        size = int(2.5 * heap.region_size)
        obj = heap.allocate(size)
        assert heap.is_humongous(obj)
        assert heap.humongous_count == 1
        assert heap.humongous_bytes == 3 * heap.region_size
        # The object starts at a region base.
        assert obj.address % heap.region_size == 0

    def test_small_object_not_humongous(self, heap):
        obj = heap.allocate(1024)
        assert not heap.is_humongous(obj)

    def test_humongous_counts_in_used_bytes(self, heap):
        before = heap.used_bytes
        heap.allocate(2 * heap.region_size)
        assert heap.used_bytes >= before + 2 * heap.region_size

    def test_contiguity_required(self, heap):
        # Fragment the free space by pinning every other region via
        # normal allocations, then ask for a run longer than any gap.
        total_regions = heap.config.heap_bytes // heap.region_size
        # Claim all regions into young, then free alternating ones.
        keepers = []
        for _ in range(total_regions):
            keepers.append(heap.allocate(heap.region_size))
        for region in list(heap.young.regions)[::2]:
            heap.young.release_region(region)
            heap.free_region(region)
        with pytest.raises(OutOfMemoryError):
            heap.allocate(3 * heap.region_size)

    def test_pages_dirtied(self, heap):
        obj = heap.allocate(2 * heap.region_size)
        for page in obj.page_span(heap.page_size):
            assert heap.page_table.is_dirty(page)


class TestHumongousNeverMoved:
    def test_address_stable_across_young_gc(self):
        vm = VM(SimConfig.small(), collector=G1Collector())
        root = vm.allocate_anonymous(64)
        vm.roots.pin("root", root)
        big = vm.allocate_anonymous(2 * vm.heap.region_size)
        vm.heap.write_ref(root, big)
        address = big.address
        vm.collector.collect_young()
        assert big.address == address
        live = {o.object_id for o in vm.heap.trace_live(vm.iter_roots())}
        assert big.object_id in live


class TestHumongousReclamation:
    def test_dead_humongous_reclaimed(self, heap):
        obj = heap.allocate(2 * heap.region_size)
        free_before = heap.free_region_count
        reclaimed, freed = heap.reclaim_dead_humongous(live_ids=set())
        assert reclaimed == 1
        assert freed == 2 * heap.region_size
        assert heap.free_region_count == free_before + 2
        assert heap.humongous_count == 0

    def test_live_humongous_kept(self, heap):
        obj = heap.allocate(2 * heap.region_size)
        reclaimed, _ = heap.reclaim_dead_humongous(live_ids={obj.object_id})
        assert reclaimed == 0
        assert heap.is_humongous(obj)

    def test_collectors_reclaim_eagerly(self):
        vm = VM(SimConfig.small(), collector=NG2CCollector())
        vm.allocate_anonymous(2 * vm.heap.region_size)  # garbage at once
        assert vm.heap.humongous_count == 1
        vm.collector.collect_young()
        assert vm.heap.humongous_count == 0
