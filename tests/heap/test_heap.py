"""Unit tests for SimHeap: allocation, barriers, tracing, evacuation."""

import pytest

from repro.config import SimConfig, YOUNG_GEN
from repro.errors import UnknownGenerationError
from repro.heap.heap import SimHeap


@pytest.fixture
def heap() -> SimHeap:
    return SimHeap(SimConfig.small())


class TestGenerations:
    def test_young_exists_at_birth(self, heap):
        assert heap.young.gen_id == YOUNG_GEN

    def test_new_generation_gets_fresh_id(self, heap):
        gen = heap.new_generation("dyn")
        assert gen.gen_id == 1
        assert heap.generation(1) is gen

    def test_unknown_generation(self, heap):
        with pytest.raises(UnknownGenerationError):
            heap.generation(99)

    def test_retire_generation_frees_regions(self, heap):
        gen = heap.new_generation()
        heap.allocate(64, gen_id=gen.gen_id)
        free_before = heap.free_region_count
        heap.retire_generation(gen.gen_id)
        assert heap.free_region_count == free_before + 1
        with pytest.raises(UnknownGenerationError):
            heap.generation(gen.gen_id)

    def test_young_cannot_be_retired(self, heap):
        with pytest.raises(UnknownGenerationError):
            heap.retire_generation(YOUNG_GEN)


class TestAllocation:
    def test_allocate_into_young(self, heap):
        obj = heap.allocate(128)
        assert obj.gen_id == YOUNG_GEN
        assert heap.young.used_bytes == 128

    def test_allocate_dirties_pages(self, heap):
        obj = heap.allocate(128)
        pages = list(obj.page_span(heap.page_size))
        assert all(heap.page_table.is_dirty(p) for p in pages)

    def test_allocate_with_refs(self, heap):
        child = heap.allocate(64)
        parent = heap.allocate(64, refs=[child])
        assert parent.refs == [child]

    def test_counters(self, heap):
        heap.allocate(128)
        heap.allocate(64)
        assert heap.total_allocated_bytes == 192
        assert heap.total_allocated_objects == 2

    def test_peak_committed_tracks_high_water(self, heap):
        before = heap.peak_committed_bytes
        heap.allocate(64)
        assert heap.peak_committed_bytes >= max(before, heap.region_size)


class TestStoreBarriers:
    def test_write_ref_links_and_dirties(self, heap):
        parent = heap.allocate(64)
        child = heap.allocate(64)
        heap.page_table.clear_dirty()
        heap.write_ref(parent, child)
        assert child in parent.refs
        assert heap.page_table.is_dirty(parent.address // heap.page_size)

    def test_remove_ref(self, heap):
        parent = heap.allocate(64)
        child = heap.allocate(64)
        heap.write_ref(parent, child)
        heap.remove_ref(parent, child)
        assert parent.refs == []

    def test_replace_and_clear_refs(self, heap):
        parent = heap.allocate(64)
        kids = [heap.allocate(64) for _ in range(3)]
        heap.replace_refs(parent, kids)
        assert parent.refs == kids
        heap.clear_refs(parent)
        assert parent.refs == []


class TestTracing:
    def test_unreferenced_object_not_live(self, heap):
        root = heap.allocate(64)
        heap.allocate(64)  # garbage
        live = heap.trace_live([root])
        assert len(live) == 1

    def test_transitive_reachability(self, heap):
        c = heap.allocate(64)
        b = heap.allocate(64, refs=[c])
        a = heap.allocate(64, refs=[b])
        live = heap.trace_live([a])
        assert {o.object_id for o in live} == {a.object_id, b.object_id, c.object_id}

    def test_cycles_terminate(self, heap):
        a = heap.allocate(64)
        b = heap.allocate(64)
        heap.write_ref(a, b)
        heap.write_ref(b, a)
        live = heap.trace_live([a])
        assert len(live) == 2

    def test_multiple_roots_deduplicated(self, heap):
        shared = heap.allocate(64)
        r1 = heap.allocate(64, refs=[shared])
        r2 = heap.allocate(64, refs=[shared])
        live = heap.trace_live([r1, r2])
        assert len(live) == 3

    def test_none_roots_ignored(self, heap):
        assert heap.trace_live([None]) == []


class TestEvacuation:
    def test_survivors_move_and_keep_ids(self, heap):
        old = heap.new_generation("old")
        live_obj = heap.allocate(128)
        dead_obj = heap.allocate(128)
        original_id = live_obj.object_id
        regions = list(heap.young.regions)
        survivor, promoted, scanned = heap.evacuate(
            regions, {live_obj.object_id}, heap.young, lambda o: old
        )
        assert scanned == 2
        assert promoted == 128
        assert survivor == 0
        assert live_obj.object_id == original_id
        assert live_obj.gen_id == old.gen_id

    def test_source_regions_freed(self, heap):
        heap.allocate(128)
        free_before = heap.free_region_count
        regions = list(heap.young.regions)
        heap.evacuate(regions, set(), heap.young, lambda o: heap.young)
        assert heap.free_region_count == free_before + len(regions)

    def test_within_generation_counts_as_survivor(self, heap):
        obj = heap.allocate(128)
        regions = list(heap.young.regions)
        survivor, promoted, _ = heap.evacuate(
            regions, {obj.object_id}, heap.young, lambda o: heap.young
        )
        assert survivor == 128
        assert promoted == 0

    def test_destination_pages_dirtied(self, heap):
        old = heap.new_generation("old")
        obj = heap.allocate(128)
        heap.page_table.clear_dirty()
        heap.evacuate(
            list(heap.young.regions), {obj.object_id}, heap.young, lambda o: old
        )
        assert heap.page_table.is_dirty(obj.address // heap.page_size)


class TestRegionQueries:
    def test_region_of_address(self, heap):
        obj = heap.allocate(64)
        region = heap.region_of_address(obj.address)
        assert obj in region.objects

    def test_live_bytes_by_region(self, heap):
        a = heap.allocate(100)
        b = heap.allocate(200)
        per_region = heap.live_bytes_by_region([a, b])
        index = a.address // heap.region_size
        assert per_region[index] == 300


class TestNoNeedMarking:
    def test_unused_pages_marked(self, heap):
        live_obj = heap.allocate(64)
        marked = heap.mark_unused_pages_no_need([live_obj])
        assert marked > 0
        live_page = live_obj.address // heap.page_size
        assert not heap.page_table.is_no_need(live_page)

    def test_all_pages_marked_when_nothing_live(self, heap):
        heap.allocate(64)
        marked = heap.mark_unused_pages_no_need([])
        assert marked == heap.page_table.num_pages
