"""Incremental page-occupancy counters staying truthful under heap churn.

The counters are maintained at allocation, evacuation, and region
reclamation (never recomputed); these tests drive each of those paths and
check the counters against ground truth — both directly and through
:meth:`repro.heap.heap.SimHeap.verify`, which recounts from object
placement.
"""

import pytest

from repro.config import SimConfig
from repro.heap.heap import SimHeap


@pytest.fixture
def heap() -> SimHeap:
    return SimHeap(SimConfig.small())


def occupancy_of(heap, obj):
    return [heap.page_table.occupancy(p) for p in obj.page_span(heap.page_size)]


class TestAllocationTracking:
    def test_allocation_counts_its_pages(self, heap):
        obj = heap.allocate(1024)
        assert all(count >= 1 for count in occupancy_of(heap, obj))
        heap.verify()

    def test_multiple_objects_share_a_page(self, heap):
        first = heap.allocate(64)
        second = heap.allocate(64)
        page = first.address // heap.page_size
        assert second.address // heap.page_size == page
        assert heap.page_table.occupancy(page) == 2
        heap.verify()

    def test_spanning_allocation_counts_every_page(self, heap):
        obj = heap.allocate(3 * heap.page_size)
        span = list(obj.page_span(heap.page_size))
        assert len(span) >= 3
        assert all(heap.page_table.occupancy(p) >= 1 for p in span)
        heap.verify()


class TestEvacuationTracking:
    def test_survivors_move_their_counts(self, heap):
        keep = [heap.allocate(1024) for _ in range(4)]
        for _ in range(60):
            heap.allocate(1024)  # garbage
        live = heap.trace_live(keep)
        assert len(live) == 4
        epoch = heap.mark_epoch
        old = heap.new_generation("old")
        young = heap.young
        heap.evacuate(list(young.regions), epoch, young, lambda obj: old)
        # Only the four survivors remain anywhere in the heap.
        assert sum(heap.page_table.occupancy_snapshot()) == 4
        for obj in keep:
            assert all(count >= 1 for count in occupancy_of(heap, obj))
        heap.verify()

    def test_dead_region_pages_read_empty(self, heap):
        for _ in range(60):
            heap.allocate(1024)
        young = heap.young
        used_pages = {
            page
            for region in young.regions
            for page in region.page_span(heap.page_size)
        }
        heap.evacuate(
            list(young.regions), heap.new_mark_epoch(), young, lambda obj: young
        )
        assert all(heap.page_table.occupancy(p) == 0 for p in used_pages)
        heap.verify()

    def test_wholesale_region_free_untracks_objects(self, heap):
        gen = heap.new_generation("dyn")
        objs = [heap.allocate(1024, gen_id=gen.gen_id) for _ in range(8)]
        region = gen.regions[0]
        gen.release_region(region)
        heap.free_region(region)
        assert all(
            heap.page_table.occupancy(p) == 0
            for obj in objs
            for p in obj.page_span(heap.page_size)
        )
        heap.verify()


class TestHumongousTracking:
    def test_humongous_allocation_counts_its_span(self, heap):
        obj = heap.allocate(2 * heap.region_size)
        span = list(obj.page_span(heap.page_size))
        assert len(span) == 2 * heap.region_size // heap.page_size
        assert all(heap.page_table.occupancy(p) == 1 for p in span)
        heap.verify()

    def test_humongous_death_clears_its_span(self, heap):
        obj = heap.allocate(2 * heap.region_size)
        span = list(obj.page_span(heap.page_size))
        reclaimed, _ = heap.reclaim_dead_humongous(live_ids=set())
        assert reclaimed == 1
        assert all(heap.page_table.occupancy(p) == 0 for p in span)
        heap.verify()

    def test_humongous_death_by_epoch_clears_its_span(self, heap):
        dead = heap.allocate(2 * heap.region_size)
        kept = heap.allocate(2 * heap.region_size)
        heap.trace_live([kept])
        reclaimed, _ = heap.reclaim_dead_humongous(heap.mark_epoch)
        assert reclaimed == 1
        assert all(
            heap.page_table.occupancy(p) == 0
            for p in dead.page_span(heap.page_size)
        )
        assert all(
            heap.page_table.occupancy(p) == 1
            for p in kept.page_span(heap.page_size)
        )
        heap.verify()


class TestNoNeedSweepVsOccupancy:
    def test_dead_but_present_pages_are_advised_away(self, heap):
        """Occupancy is presence, not reachability: a page full of dead
        objects still counts as occupied yet must be advised no-need."""
        dead = [heap.allocate(1024) for _ in range(4)]
        kept = heap.allocate(1024, gen_id=heap.new_generation("dyn").gen_id)
        live = heap.trace_live([kept])
        heap.mark_unused_pages_no_need(live)
        for obj in dead:
            for page in obj.page_span(heap.page_size):
                assert heap.page_table.occupancy(page) >= 1  # still present
                assert heap.page_table.is_no_need(page)  # but not live
        for page in kept.page_span(heap.page_size):
            assert not heap.page_table.is_no_need(page)

    def test_sweep_count_matches_legacy_definition(self, heap):
        objs = [heap.allocate(2048) for _ in range(16)]
        live = heap.trace_live(objs[::2])
        marked = heap.mark_unused_pages_no_need(live)
        needed = set()
        for obj in live:
            needed.update(obj.page_span(heap.page_size))
        assert marked == heap.page_table.num_pages - len(needed)
        assert set(heap.page_table.no_need_pages()) == (
            set(range(heap.page_table.num_pages)) - needed
        )
