"""Property-based tests for heap invariants (hypothesis)."""

from __future__ import annotations

from typing import List, Set, Tuple

from hypothesis import given, settings, strategies as st

from repro.config import SimConfig
from repro.heap.heap import SimHeap
from repro.heap.objects import HeapObject


def fresh_heap() -> SimHeap:
    return SimHeap(SimConfig.small())


#: (size, parent index or None) specs for building random object graphs.
graph_specs = st.lists(
    st.tuples(
        st.integers(min_value=16, max_value=2048),
        st.one_of(st.none(), st.integers(min_value=0, max_value=200)),
    ),
    min_size=1,
    max_size=60,
)


def build_graph(heap: SimHeap, specs) -> List[HeapObject]:
    objects: List[HeapObject] = []
    for size, parent in specs:
        obj = heap.allocate(size)
        if parent is not None and objects:
            heap.write_ref(objects[parent % len(objects)], obj)
        objects.append(obj)
    return objects


def reachable_closure(roots: List[HeapObject]) -> Set[int]:
    """Reference implementation of reachability (plain BFS)."""
    seen: Set[int] = set()
    queue = list(roots)
    while queue:
        obj = queue.pop()
        if obj.object_id in seen:
            continue
        seen.add(obj.object_id)
        queue.extend(obj.refs)
    return seen


class TestTracingProperties:
    @given(specs=graph_specs)
    @settings(max_examples=40, deadline=None)
    def test_trace_matches_reference_bfs(self, specs):
        heap = fresh_heap()
        objects = build_graph(heap, specs)
        roots = objects[:1]
        live = heap.trace_live(roots)
        assert {o.object_id for o in live} == reachable_closure(roots)

    @given(specs=graph_specs)
    @settings(max_examples=40, deadline=None)
    def test_trace_is_subset_of_allocated(self, specs):
        heap = fresh_heap()
        objects = build_graph(heap, specs)
        live = heap.trace_live(objects[:2])
        allocated = {o.object_id for o in objects}
        assert {o.object_id for o in live} <= allocated


class TestAccountingProperties:
    @given(sizes=st.lists(st.integers(min_value=16, max_value=4096), max_size=80))
    @settings(max_examples=40, deadline=None)
    def test_used_bytes_equals_sum_of_sizes(self, sizes):
        heap = fresh_heap()
        for size in sizes:
            heap.allocate(size)
        assert heap.young.used_bytes == sum(sizes)

    @given(sizes=st.lists(st.integers(min_value=16, max_value=4096), max_size=80))
    @settings(max_examples=40, deadline=None)
    def test_committed_never_below_used(self, sizes):
        heap = fresh_heap()
        for size in sizes:
            heap.allocate(size)
        assert heap.committed_bytes >= heap.used_bytes


class TestEvacuationProperties:
    @given(specs=graph_specs, root_count=st.integers(min_value=1, max_value=5))
    @settings(max_examples=30, deadline=None)
    def test_evacuation_preserves_live_set(self, specs, root_count):
        heap = fresh_heap()
        objects = build_graph(heap, specs)
        roots = objects[:root_count]
        live_before = reachable_closure(roots)
        dest = heap.new_generation("dest")
        heap.evacuate(
            list(heap.young.regions), live_before, heap.young, lambda o: dest
        )
        live_after = {o.object_id for o in heap.trace_live(roots)}
        assert live_after == live_before

    @given(specs=graph_specs)
    @settings(max_examples=30, deadline=None)
    def test_evacuated_bytes_bounded_by_live_bytes(self, specs):
        heap = fresh_heap()
        objects = build_graph(heap, specs)
        live_ids = reachable_closure(objects[:1])
        live_bytes = sum(o.size for o in objects if o.object_id in live_ids)
        dest = heap.new_generation("dest")
        survivor, promoted, _ = heap.evacuate(
            list(heap.young.regions), live_ids, heap.young, lambda o: dest
        )
        assert survivor + promoted == live_bytes

    @given(specs=graph_specs)
    @settings(max_examples=30, deadline=None)
    def test_dead_objects_not_in_destination(self, specs):
        heap = fresh_heap()
        objects = build_graph(heap, specs)
        live_ids = reachable_closure(objects[:1])
        dest = heap.new_generation("dest")
        heap.evacuate(
            list(heap.young.regions), live_ids, heap.young, lambda o: dest
        )
        dest_ids = {o.object_id for o in dest.iter_objects()}
        assert dest_ids == live_ids


class TestPageAdviceProperties:
    @given(specs=graph_specs)
    @settings(max_examples=30, deadline=None)
    def test_live_pages_never_marked_no_need(self, specs):
        heap = fresh_heap()
        objects = build_graph(heap, specs)
        live = heap.trace_live(objects[:3])
        heap.mark_unused_pages_no_need(live)
        for obj in live:
            for page in obj.page_span(heap.page_size):
                assert not heap.page_table.is_no_need(page)
