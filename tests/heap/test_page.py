"""Unit tests for the page table (dirty + no-need bits)."""

import pytest

from repro.errors import InvalidAddressError
from repro.heap.page import PageTable


@pytest.fixture
def table() -> PageTable:
    return PageTable(address_space_bytes=16 * 4096, page_size=4096)


class TestConstruction:
    def test_page_count(self, table):
        assert table.num_pages == 16

    def test_rounds_partial_page_up(self):
        table = PageTable(address_space_bytes=4097, page_size=4096)
        assert table.num_pages == 2

    def test_rejects_empty_address_space(self):
        with pytest.raises(ValueError):
            PageTable(0)

    def test_rejects_bad_page_size(self):
        with pytest.raises(ValueError):
            PageTable(4096, page_size=0)


class TestAddressing:
    def test_page_index(self, table):
        assert table.page_index(0) == 0
        assert table.page_index(4095) == 0
        assert table.page_index(4096) == 1

    def test_page_index_out_of_range(self, table):
        with pytest.raises(InvalidAddressError):
            table.page_index(16 * 4096)
        with pytest.raises(InvalidAddressError):
            table.page_index(-1)

    def test_pages_for_range(self, table):
        assert list(table.pages_for_range(0, 1)) == [0]
        assert list(table.pages_for_range(4000, 200)) == [0, 1]
        assert list(table.pages_for_range(0, 3 * 4096)) == [0, 1, 2]

    def test_pages_for_empty_range(self, table):
        assert list(table.pages_for_range(0, 0)) == []

    def test_pages_for_negative_range(self, table):
        assert list(table.pages_for_range(0, -1)) == []
        assert list(table.pages_for_range(8 * 4096, -4096)) == []

    def test_range_touching_last_page(self, table):
        assert list(table.pages_for_range(15 * 4096, 4096)) == [15]
        assert list(table.pages_for_range(14 * 4096 + 1, 2 * 4096 - 1)) == [14, 15]

    def test_range_past_last_page_raises(self, table):
        with pytest.raises(InvalidAddressError):
            table.pages_for_range(15 * 4096, 4097)

    def test_partial_trailing_page_is_addressable(self):
        # 4097 bytes round up to two pages; the tail page is only 1 byte.
        table = PageTable(address_space_bytes=4097, page_size=4096)
        assert list(table.pages_for_range(4096, 1)) == [1]
        table.mark_written_range(4096, 1)
        assert table.is_dirty(1)


class TestDirtyBit:
    def test_fresh_table_is_clean(self, table):
        assert table.dirty_pages() == []

    def test_mark_dirty_range(self, table):
        table.mark_dirty_range(4096, 100)
        assert table.dirty_pages() == [1]
        assert table.is_dirty(1)
        assert not table.is_dirty(0)

    def test_mark_dirty_spanning(self, table):
        table.mark_dirty_range(4000, 5000)
        assert table.dirty_pages() == [0, 1, 2]

    def test_clear_dirty_returns_count(self, table):
        table.mark_dirty_range(0, 3 * 4096)
        assert table.clear_dirty() == 3
        assert table.dirty_pages() == []

    def test_zero_length_write_is_noop(self, table):
        table.mark_dirty_range(0, 0)
        assert table.dirty_pages() == []

    def test_mark_dirty_pages_list(self, table):
        table.mark_dirty_pages([2, 5])
        assert table.dirty_pages() == [2, 5]


class TestNoNeedBit:
    def test_set_and_clear(self, table):
        table.set_no_need([3, 4])
        assert table.no_need_pages() == [3, 4]
        table.clear_no_need([3])
        assert table.no_need_pages() == [4]

    def test_clear_all(self, table):
        table.set_no_need(range(8))
        table.clear_all_no_need()
        assert table.no_need_pages() == []

    def test_no_need_independent_of_dirty(self, table):
        table.mark_dirty_range(0, 4096)
        table.set_no_need([0])
        assert table.is_dirty(0)
        assert table.is_no_need(0)


class TestSnapshotCandidates:
    def test_candidates_are_dirty_minus_no_need(self, table):
        table.mark_dirty_pages([0, 1, 2, 3])
        table.set_no_need([1, 3, 8])
        assert table.snapshot_candidate_pages() == [0, 2]

    def test_mark_written_clears_stale_advice(self, table):
        table.set_no_need([0])
        table.mark_written_range(0, 100)
        assert table.is_dirty(0)
        assert not table.is_no_need(0)

    def test_counts(self, table):
        table.mark_dirty_pages([0, 1])
        table.set_no_need([1, 2])
        counts = table.counts()
        assert counts.total == 16
        assert counts.dirty == 2
        assert counts.no_need == 2
        assert counts.dirty_and_no_need == 1

    def test_candidate_count_matches_candidate_list(self, table):
        table.mark_dirty_pages([0, 1, 2, 3])
        table.set_no_need([1, 3, 8])
        assert table.snapshot_candidate_count() == len(
            table.snapshot_candidate_pages()
        )

    def test_clear_dirty_preserves_no_need(self, table):
        table.mark_dirty_pages([0, 1])
        table.set_no_need([1, 2])
        assert table.clear_dirty() == 2
        assert table.no_need_pages() == [1, 2]
        assert table.dirty_pages() == []


class TestRewriteNoNeed:
    def test_marks_complement_of_needed(self, table):
        needed = bytearray(table.num_pages)
        needed[3] = 1
        needed[7] = 1
        marked = table.rewrite_no_need(needed)
        assert marked == 14
        assert table.no_need_pages() == [p for p in range(16) if p not in (3, 7)]

    def test_replaces_stale_advice(self, table):
        table.set_no_need([5])
        needed = bytearray(table.num_pages)
        needed[5] = 1  # page 5 now holds live data
        table.rewrite_no_need(needed)
        assert not table.is_no_need(5)
        assert table.is_no_need(4)

    def test_preserves_dirty_bits(self, table):
        table.mark_dirty_pages([0, 5])
        needed = bytearray(table.num_pages)
        needed[0] = 1
        table.rewrite_no_need(needed)
        assert table.is_dirty(0) and table.is_dirty(5)
        assert not table.is_no_need(0)
        assert table.is_no_need(5)

    def test_rejects_wrong_size_map(self, table):
        with pytest.raises(ValueError):
            table.rewrite_no_need(bytearray(table.num_pages - 1))


class TestOccupancy:
    def test_track_and_untrack(self, table):
        table.track_object(100, 200)
        assert table.occupancy(0) == 1
        table.track_object(0, 4096)
        assert table.occupancy(0) == 2
        table.untrack_object(100, 200)
        assert table.occupancy(0) == 1
        table.untrack_object(0, 4096)
        assert table.occupied_pages() == []

    def test_spanning_object_counts_on_every_page(self, table):
        table.track_object(4000, 5000)  # pages 0..2
        assert [table.occupancy(p) for p in (0, 1, 2, 3)] == [1, 1, 1, 0]
        table.untrack_object(4000, 5000)
        assert table.occupied_pages() == []

    def test_zero_length_is_noop(self, table):
        table.track_object(0, 0)
        table.untrack_object(0, 0)
        assert table.occupied_pages() == []

    def test_object_spanning_last_page(self, table):
        # An allocation whose extent ends exactly at the address-space end.
        table.track_object(15 * 4096, 4096)
        assert table.occupancy(15) == 1
        assert table.occupied_pages() == [15]

    def test_occupancy_on_partial_trailing_page(self):
        table = PageTable(address_space_bytes=4096 + 100, page_size=4096)
        table.track_object(4096, 100)
        assert table.occupancy(1) == 1
