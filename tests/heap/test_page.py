"""Unit tests for the page table (dirty + no-need bits)."""

import pytest

from repro.errors import InvalidAddressError
from repro.heap.page import PageTable


@pytest.fixture
def table() -> PageTable:
    return PageTable(address_space_bytes=16 * 4096, page_size=4096)


class TestConstruction:
    def test_page_count(self, table):
        assert table.num_pages == 16

    def test_rounds_partial_page_up(self):
        table = PageTable(address_space_bytes=4097, page_size=4096)
        assert table.num_pages == 2

    def test_rejects_empty_address_space(self):
        with pytest.raises(ValueError):
            PageTable(0)

    def test_rejects_bad_page_size(self):
        with pytest.raises(ValueError):
            PageTable(4096, page_size=0)


class TestAddressing:
    def test_page_index(self, table):
        assert table.page_index(0) == 0
        assert table.page_index(4095) == 0
        assert table.page_index(4096) == 1

    def test_page_index_out_of_range(self, table):
        with pytest.raises(InvalidAddressError):
            table.page_index(16 * 4096)
        with pytest.raises(InvalidAddressError):
            table.page_index(-1)

    def test_pages_for_range(self, table):
        assert list(table.pages_for_range(0, 1)) == [0]
        assert list(table.pages_for_range(4000, 200)) == [0, 1]
        assert list(table.pages_for_range(0, 3 * 4096)) == [0, 1, 2]

    def test_pages_for_empty_range(self, table):
        assert list(table.pages_for_range(0, 0)) == []


class TestDirtyBit:
    def test_fresh_table_is_clean(self, table):
        assert table.dirty_pages() == []

    def test_mark_dirty_range(self, table):
        table.mark_dirty_range(4096, 100)
        assert table.dirty_pages() == [1]
        assert table.is_dirty(1)
        assert not table.is_dirty(0)

    def test_mark_dirty_spanning(self, table):
        table.mark_dirty_range(4000, 5000)
        assert table.dirty_pages() == [0, 1, 2]

    def test_clear_dirty_returns_count(self, table):
        table.mark_dirty_range(0, 3 * 4096)
        assert table.clear_dirty() == 3
        assert table.dirty_pages() == []

    def test_zero_length_write_is_noop(self, table):
        table.mark_dirty_range(0, 0)
        assert table.dirty_pages() == []

    def test_mark_dirty_pages_list(self, table):
        table.mark_dirty_pages([2, 5])
        assert table.dirty_pages() == [2, 5]


class TestNoNeedBit:
    def test_set_and_clear(self, table):
        table.set_no_need([3, 4])
        assert table.no_need_pages() == [3, 4]
        table.clear_no_need([3])
        assert table.no_need_pages() == [4]

    def test_clear_all(self, table):
        table.set_no_need(range(8))
        table.clear_all_no_need()
        assert table.no_need_pages() == []

    def test_no_need_independent_of_dirty(self, table):
        table.mark_dirty_range(0, 4096)
        table.set_no_need([0])
        assert table.is_dirty(0)
        assert table.is_no_need(0)


class TestSnapshotCandidates:
    def test_candidates_are_dirty_minus_no_need(self, table):
        table.mark_dirty_pages([0, 1, 2, 3])
        table.set_no_need([1, 3, 8])
        assert table.snapshot_candidate_pages() == [0, 2]

    def test_mark_written_clears_stale_advice(self, table):
        table.set_no_need([0])
        table.mark_written_range(0, 100)
        assert table.is_dirty(0)
        assert not table.is_no_need(0)

    def test_counts(self, table):
        table.mark_dirty_pages([0, 1])
        table.set_no_need([1, 2])
        counts = table.counts()
        assert counts.total == 16
        assert counts.dirty == 2
        assert counts.no_need == 2
        assert counts.dirty_and_no_need == 1
