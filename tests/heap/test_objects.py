"""Unit tests for heap objects and headers."""

import pytest

from repro.heap.objects import (
    HEADER_BYTES,
    HeapObject,
    ObjectHeaderReader,
    next_identity_hash,
    total_bytes,
)


class TestIdentityHash:
    def test_monotonic_and_unique(self):
        first = next_identity_hash()
        second = next_identity_hash()
        assert second > first

    def test_objects_get_distinct_ids(self):
        a = HeapObject(size=64)
        b = HeapObject(size=64)
        assert a.object_id != b.object_id

    def test_id_allocated_in_creation_order(self):
        a = HeapObject(size=64)
        b = HeapObject(size=64)
        assert b.object_id > a.object_id

    def test_id_survives_address_change(self):
        # The Analyzer's §4.3 requirement: ids live in headers, not
        # addresses, so a GC move must not change them.
        obj = HeapObject(size=64)
        original = obj.object_id
        obj.address = 4096
        obj.address = 65536
        assert obj.object_id == original


class TestHeapObject:
    def test_rejects_size_below_header(self):
        with pytest.raises(ValueError):
            HeapObject(size=HEADER_BYTES - 1)

    def test_minimum_size_is_header(self):
        obj = HeapObject(size=HEADER_BYTES)
        assert obj.size == HEADER_BYTES

    def test_initial_placement_is_unmapped(self):
        obj = HeapObject(size=64)
        assert obj.address == -1
        assert obj.gen_id == -1
        assert obj.age == 0

    def test_refs_start_empty(self):
        obj = HeapObject(size=64)
        assert obj.refs == []
        assert list(obj.iter_refs()) == []

    def test_page_span_unmapped_is_empty(self):
        obj = HeapObject(size=64)
        assert list(obj.page_span(4096)) == []

    def test_page_span_single_page(self):
        obj = HeapObject(size=64)
        obj.address = 100
        assert list(obj.page_span(4096)) == [0]

    def test_page_span_straddles_boundary(self):
        obj = HeapObject(size=128)
        obj.address = 4096 - 32
        assert list(obj.page_span(4096)) == [0, 1]

    def test_page_span_large_object(self):
        obj = HeapObject(size=3 * 4096)
        obj.address = 4096
        assert list(obj.page_span(4096)) == [1, 2, 3]


class TestHelpers:
    def test_total_bytes(self):
        objs = [HeapObject(size=64), HeapObject(size=100)]
        assert total_bytes(objs) == 164

    def test_total_bytes_empty(self):
        assert total_bytes([]) == 0

    def test_header_reader_matches_object_ids(self):
        objs = [HeapObject(size=64) for _ in range(5)]
        assert ObjectHeaderReader.read_all(objs) == [o.object_id for o in objs]
        assert ObjectHeaderReader.identity_hash(objs[0]) == objs[0].object_id
