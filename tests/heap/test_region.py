"""Unit tests for regions (bump allocation, accounting, reset)."""

import pytest

from repro.errors import RegionFullError
from repro.heap.objects import HeapObject
from repro.heap.region import Region


@pytest.fixture
def region() -> Region:
    return Region(index=2, base=2 * 65536, size=65536)


class TestBumpAllocation:
    def test_first_object_at_base(self, region):
        obj = HeapObject(size=64)
        address = region.bump_allocate(obj)
        assert address == region.base
        assert obj.address == region.base

    def test_sequential_addresses(self, region):
        a = HeapObject(size=64)
        b = HeapObject(size=128)
        region.bump_allocate(a)
        region.bump_allocate(b)
        assert b.address == a.address + a.size

    def test_objects_tracked(self, region):
        a = HeapObject(size=64)
        region.bump_allocate(a)
        assert region.objects == [a]

    def test_full_region_raises(self, region):
        region.bump_allocate(HeapObject(size=65536))
        with pytest.raises(RegionFullError):
            region.bump_allocate(HeapObject(size=16))

    def test_has_room(self, region):
        assert region.has_room(65536)
        region.bump_allocate(HeapObject(size=65536 - 64))
        assert region.has_room(64)
        assert not region.has_room(65)


class TestAccounting:
    def test_used_and_free(self, region):
        region.bump_allocate(HeapObject(size=100))
        assert region.used_bytes == 100
        assert region.free_bytes == 65536 - 100

    def test_live_bytes(self, region):
        a = HeapObject(size=100)
        b = HeapObject(size=200)
        region.bump_allocate(a)
        region.bump_allocate(b)
        assert region.live_bytes({a.object_id}) == 100
        assert region.live_bytes({a.object_id, b.object_id}) == 300
        assert region.live_bytes(set()) == 0

    def test_page_span_empty(self, region):
        assert list(region.page_span(4096)) == []

    def test_page_span_used(self, region):
        region.bump_allocate(HeapObject(size=5000))
        pages = list(region.page_span(4096))
        assert pages[0] == region.base // 4096
        assert len(pages) == 2

    def test_full_page_span(self, region):
        assert len(list(region.full_page_span(4096))) == 65536 // 4096


class TestReset:
    def test_reset_clears_everything(self, region):
        region.gen_id = 3
        region.bump_allocate(HeapObject(size=64))
        region.reset()
        assert region.top == 0
        assert region.gen_id is None
        assert region.objects == []
        assert region.has_room(65536)
