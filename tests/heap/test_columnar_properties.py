"""Property tests for the columnar region storage (hypothesis).

Three families of invariants guard the struct-of-arrays layout:

* **view round-trips** — mutating a :class:`HeapObject` lazy view (age,
  gen, address via evacuation) must land in the region columns, and
  column reads must agree with the view, slot for slot;
* **kernel equivalence** — the vectorized kernels (IdSet membership
  masks, lane aging, run sums) must match their scalar reference
  implementations on arbitrary inputs, including IdSet chunk boundaries;
* **engine equivalence** — columnar evacuation must produce exactly the
  placement (addresses, destination contents, page occupancy) of the
  legacy per-object loop, and columns must stay coherent through
  evacuate/reset cycles (checked by ``SimHeap.verify``).
"""

from __future__ import annotations

from typing import List, Set

from hypothesis import given, settings, strategies as st

from repro.config import SimConfig
from repro.core.idset import IdSet
from repro.heap.evacuation import FixedDestination, SurvivorTenuring
from repro.heap.heap import SimHeap
from repro.heap.objects import HeapObject, _reset_identity_hashes
from repro.heap.region import Region

#: IdSet chunks are 2^16 wide; ids straddling a multiple of 65536 exercise
#: the cross-chunk stitching of ``extract_mask``.
CHUNK = 1 << 16


def fresh_heap() -> SimHeap:
    return SimHeap(SimConfig.small())


object_sizes = st.lists(
    st.integers(min_value=16, max_value=2048), min_size=1, max_size=60
)

graph_specs = st.lists(
    st.tuples(
        st.integers(min_value=16, max_value=2048),
        st.one_of(st.none(), st.integers(min_value=0, max_value=200)),
    ),
    min_size=1,
    max_size=60,
)


def build_graph(heap: SimHeap, specs) -> List[HeapObject]:
    objects: List[HeapObject] = []
    for size, parent in specs:
        obj = heap.allocate(size)
        if parent is not None and objects:
            heap.write_ref(objects[parent % len(objects)], obj)
        objects.append(obj)
    return objects


def column_state(heap: SimHeap):
    """Canonical placement snapshot: (id, address, gen, age) per object."""
    state = []
    for gen in heap.generations.values():
        for region in gen.regions:
            for obj in region.objects:
                state.append((obj.object_id, obj.address, obj.gen_id, obj.age))
    return sorted(state)


class TestViewRoundTrips:
    @given(
        sizes=object_sizes,
        ages=st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=60),
    )
    @settings(max_examples=40, deadline=None)
    def test_age_writes_land_in_the_column(self, sizes, ages):
        heap = fresh_heap()
        objects = [heap.allocate(size) for size in sizes]
        for obj, age in zip(objects, ages):
            obj.age = age
        for obj in objects:
            region, slot = obj._region, obj._slot
            assert region._ages[slot] == obj.age

    @given(specs=graph_specs, threshold=st.integers(min_value=1, max_value=4))
    @settings(max_examples=30, deadline=None)
    def test_columns_agree_with_views_after_evacuation(self, specs, threshold):
        heap = fresh_heap()
        objects = build_graph(heap, specs)
        old = heap.new_generation("old")
        epoch = heap.mark_epoch
        heap.trace_live(objects[:3])
        plan = SurvivorTenuring(heap.young, old, threshold)
        heap.evacuate(
            list(heap.young.regions), heap.mark_epoch, heap.young, plan
        )
        # verify() asserts per-slot column/view agreement (id, size, site,
        # age, address, generation) plus occupancy bookkeeping.
        heap.verify()
        assert heap.mark_epoch > epoch

    @given(specs=graph_specs)
    @settings(max_examples=30, deadline=None)
    def test_dead_views_detach_and_survivors_rebind(self, specs):
        heap = fresh_heap()
        objects = build_graph(heap, specs)
        live_ids = {o.object_id for o in heap.trace_live(objects[:2])}
        dest = heap.new_generation("dest")
        heap.evacuate(
            list(heap.young.regions),
            heap.mark_epoch,
            heap.young,
            FixedDestination(dest),
        )
        for obj in objects:
            if obj.object_id in live_ids:
                assert obj._region is not None
                assert obj._region.objects[obj._slot] is obj
            else:
                # Dead views detach but keep their last placement values.
                assert obj._region is None and obj._slot == -1
                assert obj.address >= 0


class TestKernelEquivalence:
    @given(
        lows=st.lists(
            st.integers(min_value=0, max_value=3 * CHUNK), min_size=0, max_size=200
        ),
        start=st.integers(min_value=0, max_value=3 * CHUNK),
        count=st.integers(min_value=1, max_value=300),
    )
    @settings(max_examples=60, deadline=None)
    def test_extract_mask_matches_membership(self, lows, start, count):
        ids = IdSet(lows)
        mask = ids.extract_mask(start, count)
        for i in range(count):
            assert bool(mask & (1 << i)) == ((start + i) in ids)

    @given(
        sizes=object_sizes,
        live_picks=st.lists(st.booleans(), min_size=1, max_size=60),
    )
    @settings(max_examples=40, deadline=None)
    def test_live_runs_match_flags_for_every_live_form(self, sizes, live_picks):
        region = Region(index=0, base=0, size=1 << 20)
        objects = [HeapObject(size=size) for size in sizes]
        for obj in objects:
            region.bump_allocate(obj)
        picks = (live_picks * len(objects))[: len(objects)]
        live_ids: Set[int] = {
            o.object_id for o, keep in zip(objects, picks) if keep
        }
        expected = [
            1 if o.object_id in live_ids else 0 for o in objects
        ]
        for live in (live_ids, frozenset(live_ids), IdSet(live_ids)):
            runs = region.live_runs(live)
            got = [0] * len(objects)
            for a, b in runs:
                for i in range(a, b):
                    got[i] = 1
            assert got == expected
            assert list(region.mark_column) == expected
            assert region.live_bytes(live) == sum(
                o.size for o in objects if o.object_id in live_ids
            )

    @given(
        ages=st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=60),
        threshold=st.integers(min_value=1, max_value=20),
    )
    @settings(max_examples=60, deadline=None)
    def test_age_up_and_split_matches_scalar_reference(self, ages, threshold):
        region = Region(index=0, base=0, size=1 << 20)
        objects = []
        for age in ages:
            obj = HeapObject(size=16)
            obj.age = age
            region.bump_allocate(obj)
            objects.append(obj)
        splits = region.age_up_and_split(0, len(objects), threshold)
        # Sub-runs tile [0, n) in order and alternate verdicts.
        cursor = 0
        for a, b, promote in splits:
            assert a == cursor and b > a
            for i in range(a, b):
                assert region._ages[i] == ages[i] + 1
                assert (region._ages[i] >= threshold) == promote
            cursor = b
        assert cursor == len(objects)


class TestEngineEquivalence:
    @given(specs=graph_specs, root_count=st.integers(min_value=1, max_value=4))
    @settings(max_examples=25, deadline=None)
    def test_columnar_placement_equals_legacy_loop(self, specs, root_count):
        """Twin heaps, same graph: plan-driven evacuation must place every
        survivor at the same address as the per-object callable."""
        results = []
        for use_plan in (False, True):
            _reset_identity_hashes()
            heap = fresh_heap()
            objects = build_graph(heap, specs)
            heap.trace_live(objects[:root_count])
            dest = heap.new_generation("dest")
            policy = FixedDestination(dest) if use_plan else (lambda o: dest)
            heap.evacuate(
                list(heap.young.regions), heap.mark_epoch, heap.young, policy
            )
            heap.verify()
            results.append(
                (column_state(heap), heap.page_table.occupancy_snapshot())
            )
        assert results[0] == results[1]

    @given(
        specs=graph_specs,
        root_count=st.integers(min_value=1, max_value=4),
        threshold=st.integers(min_value=1, max_value=3),
        rounds=st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=20, deadline=None)
    def test_repeated_tenuring_matches_legacy(
        self, specs, root_count, threshold, rounds
    ):
        """Aging + promotion across several young collections: the lane
        kernels and the scalar closure must agree on every placement."""
        results = []
        for use_plan in (False, True):
            _reset_identity_hashes()
            heap = fresh_heap()
            objects = build_graph(heap, specs)
            old = heap.new_generation("old")
            young = heap.young

            def legacy(obj):
                obj.age += 1
                return old if obj.age >= threshold else young

            for _ in range(rounds):
                heap.trace_live(objects[:root_count])
                policy = (
                    SurvivorTenuring(young, old, threshold)
                    if use_plan
                    else legacy
                )
                heap.evacuate(
                    list(young.regions), heap.mark_epoch, young, policy
                )
            heap.verify()
            results.append(
                (column_state(heap), heap.page_table.occupancy_snapshot())
            )
        assert results[0] == results[1]

    @given(specs=graph_specs)
    @settings(max_examples=25, deadline=None)
    def test_columns_empty_after_reset(self, specs):
        heap = fresh_heap()
        objects = build_graph(heap, specs)
        heap.trace_live(objects[:1])
        dest = heap.new_generation("dest")
        sources = list(heap.young.regions)
        heap.evacuate(
            sources, heap.mark_epoch, heap.young, FixedDestination(dest)
        )
        for region in sources:
            assert region.top == 0 and region.gen_id is None
            assert not region.objects
            for column in (
                region.id_column,
                region.size_column,
                region.site_column,
                region.offset_column,
                region.age_column,
                region.mark_column,
            ):
                assert len(column) == 0
        heap.verify()
