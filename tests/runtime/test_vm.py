"""Unit tests for the VM façade."""

import pytest

from repro.config import SimConfig
from repro.errors import OutOfMemoryError
from repro.gc.c4 import C4Collector
from repro.gc.g1 import G1Collector
from repro.runtime.code import ClassModel
from repro.runtime.events import ALLOCATION
from repro.runtime.vm import VM


def build_vm(collector=None) -> VM:
    vm = VM(SimConfig.small(), collector=collector or G1Collector())
    model = ClassModel("C")
    model.add_method("m").add_alloc_site(10, "Obj", 128)
    vm.classloader.load(model)
    return vm


class TestAllocation:
    def test_allocate_anonymous(self):
        vm = build_vm()
        obj = vm.allocate_anonymous(256)
        assert obj.size == 256
        assert obj.site_id == 0

    def test_allocate_at_site_assigns_site_id(self):
        vm = build_vm()
        thread = vm.new_thread("t")
        with thread.entry("C", "m"):
            obj = thread.alloc(10)
        assert obj.site_id > 0
        assert vm.sites.site_location(obj.site_id) == ("C", "m", 10)

    def test_site_id_cached(self):
        vm = build_vm()
        thread = vm.new_thread("t")
        with thread.entry("C", "m"):
            a = thread.alloc(10)
            b = thread.alloc(10)
        assert a.site_id == b.site_id

    def test_allocation_without_collector_raises(self):
        vm = VM(SimConfig.small())
        with pytest.raises(OutOfMemoryError):
            vm.allocate_anonymous(64)


class TestAllocListeners:
    def test_listener_fired_for_record_hooked_sites(self):
        vm = build_vm()
        site = vm.classloader.lookup("C").method("m").alloc_site(10)
        site.record_hook = True
        events = []
        vm.events.subscribe(
            ALLOCATION, lambda obj, s, trace: events.append((obj, s, trace))
        )
        thread = vm.new_thread("t")
        with thread.entry("C", "m"):
            obj = thread.alloc(10)
        assert len(events) == 1
        assert events[0][0] is obj
        assert events[0][2] == (("C", "m", 10),)

    def test_listener_silent_without_hook(self):
        vm = build_vm()
        events = []
        vm.events.subscribe(ALLOCATION, lambda *args: events.append(args))
        thread = vm.new_thread("t")
        with thread.entry("C", "m"):
            thread.alloc(10)
        assert events == []

    def test_remove_listener(self):
        vm = build_vm()
        site = vm.classloader.lookup("C").method("m").alloc_site(10)
        site.record_hook = True
        events = []
        listener = lambda *args: events.append(args)  # noqa: E731
        vm.events.subscribe(ALLOCATION, listener)
        vm.events.unsubscribe(ALLOCATION, listener)
        thread = vm.new_thread("t")
        with thread.entry("C", "m"):
            thread.alloc(10)
        assert events == []


class TestRoots:
    def test_static_and_thread_roots(self):
        vm = build_vm()
        static = vm.allocate_anonymous(64)
        vm.roots.pin("s", static)
        thread = vm.new_thread("t")
        with thread.entry("C", "m"):
            local = thread.alloc(10)
            roots = list(vm.iter_roots())
            assert static in roots
            assert local in roots

    def test_unpin(self):
        vm = build_vm()
        static = vm.allocate_anonymous(64)
        vm.roots.pin("s", static)
        assert vm.roots.unpin("s") is static
        assert vm.roots.get("s") is None
        assert static not in list(vm.iter_roots())


class TestMutatorTime:
    def test_tick_op_advances_clock(self):
        vm = build_vm()
        before = vm.clock.now_us
        vm.tick_op()
        assert vm.clock.now_us == before + vm.config.costs.op_base_us
        assert vm.ops_completed == 1

    def test_c4_barrier_tax(self):
        vm = build_vm(C4Collector())
        vm.tick_op()
        expected = vm.config.costs.op_base_us * vm.config.costs.c4_barrier_tax
        assert vm.clock.now_us == pytest.approx(expected)

    def test_weighted_op(self):
        vm = build_vm()
        vm.tick_op(weight=10.0)
        assert vm.clock.now_us == pytest.approx(
            10.0 * vm.config.costs.op_base_us
        )

    def test_pretenured_allocation_pays_slow_path(self):
        from repro.gc.ng2c import NG2CCollector

        vm = VM(SimConfig.small(), collector=NG2CCollector())
        model = ClassModel("C")
        site = model.add_method("m").add_alloc_site(10, "Obj", 4096)
        site.gen_annotated = True
        site.pre_set_gen = 1
        vm.classloader.load(model)
        thread = vm.new_thread("t")
        before = vm.clock.now_us
        with thread.entry("C", "m"):
            thread.alloc(10)
        charged = vm.clock.now_us - before
        assert charged >= vm.config.costs.pretenure_alloc_kib_us * 4.0
