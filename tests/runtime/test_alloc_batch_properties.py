"""Property tests (hypothesis) for batch/scalar allocation equivalence.

The batched front-end claims byte-for-byte equivalence with the scalar
loop for *any* size mix, collector, and heap pressure — including runs
that straddle region boundaries, trip GC triggers mid-batch, and retire
the current allocation region.  Random size lists probe exactly those
seams; every example compares full placement state, the virtual clock,
and recorder streams between a scalar VM and a batched VM built from
identical configs and identity-hash counters.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.config import SimConfig
from repro.core.recorder import Recorder
from repro.core.sttree import STTree
from repro.gc.g1 import G1Collector
from repro.gc.ng2c import NG2CCollector
from repro.heap.objects import reset_identity_hashes
from repro.runtime.code import ClassModel
from repro.runtime.vm import VM

SITE_LINE = 10

#: Mixes of small objects with occasional near-region-size ones: the
#: large sizes force fresh-region claims (and abandoned tails) inside
#: batch runs, the total volume trips young collections mid-batch.
size_lists = st.lists(
    st.one_of(
        st.integers(min_value=16, max_value=512),
        st.integers(min_value=100_000, max_value=262_144),
    ),
    min_size=1,
    max_size=120,
)

collectors = st.sampled_from([G1Collector, NG2CCollector])


def build_vm(collector_factory, record_hook):
    reset_identity_hashes()
    vm = VM(SimConfig.small(), collector=collector_factory())
    model = ClassModel("C")
    model.add_method("run").add_alloc_site(SITE_LINE, "Obj", 64)
    vm.classloader.load(model)
    site = vm.classloader.lookup("C").method("run").alloc_site(SITE_LINE)
    site.record_hook = record_hook
    return vm, site


def state_of(vm):
    placements = []
    for gen in vm.heap.generations.values():
        for region in gen.regions:
            for slot in range(len(region.objects)):
                obj = region.view_at(slot)
                placements.append(
                    (obj.object_id, obj.address, obj.size, obj.gen_id, obj.age)
                )
    placements.sort()
    return (
        placements,
        vm.clock.now_us,
        vm.heap.total_allocated_bytes,
        vm.heap.total_allocated_objects,
        vm.collector.cycles,
        len(vm.collector.pauses),
    )


def run(collector_factory, sizes, batched, record_hook=False, pretenure=0):
    vm, site = build_vm(collector_factory, record_hook)
    recorder = None
    if record_hook:
        recorder = Recorder()
        vm.attach_agent(recorder)
    thread = vm.new_thread("t")
    with thread.entry("C", "run"):
        if batched:
            vm.allocate_batch(thread, site, sizes, pretenure_index=pretenure)
        else:
            for size in sizes:
                vm.allocate_at_site(thread, site, size, pretenure)
    vm.heap.verify()
    streams = None
    if recorder is not None:
        streams = {
            tid: stream.tolist()
            for tid, stream in recorder.records.streams.items()
        }
    return state_of(vm), streams, recorder


class TestBatchScalarEquivalence:
    @given(sizes=size_lists, collector_factory=collectors)
    @settings(max_examples=40, deadline=None)
    def test_placements_and_clock_match(self, sizes, collector_factory):
        scalar, _, _ = run(collector_factory, sizes, batched=False)
        batch, _, _ = run(collector_factory, sizes, batched=True)
        assert scalar == batch

    @given(sizes=size_lists)
    @settings(max_examples=25, deadline=None)
    def test_recorder_streams_match(self, sizes):
        scalar, scalar_streams, _ = run(
            G1Collector, sizes, batched=False, record_hook=True
        )
        batch, batch_streams, _ = run(
            G1Collector, sizes, batched=True, record_hook=True
        )
        assert scalar == batch
        assert scalar_streams == batch_streams

    @given(sizes=size_lists)
    @settings(max_examples=20, deadline=None)
    def test_pretenured_batches_match(self, sizes):
        scalar, _, _ = run(NG2CCollector, sizes, batched=False, pretenure=1)
        batch, _, _ = run(NG2CCollector, sizes, batched=True, pretenure=1)
        assert scalar == batch

    @given(sizes=size_lists)
    @settings(max_examples=15, deadline=None)
    def test_sttree_digests_match(self, sizes):
        _, _, scalar_rec = run(
            G1Collector, sizes, batched=False, record_hook=True
        )
        _, _, batch_rec = run(
            G1Collector, sizes, batched=True, record_hook=True
        )
        digests = []
        for recorder in (scalar_rec, batch_rec):
            tree = STTree()
            for tid, stream in recorder.records.streams.items():
                tree.insert(recorder.records.traces[tid], 1, len(stream))
            digests.append(tree.digest())
        assert digests[0] == digests[1]


class TestRegionStraddling:
    @given(
        small=st.integers(min_value=16, max_value=256),
        count=st.integers(min_value=200, max_value=600),
    )
    @settings(max_examples=20, deadline=None)
    def test_uniform_batches_tile_regions_like_scalar(self, small, count):
        sizes = [small] * count
        scalar, _, _ = run(G1Collector, sizes, batched=False)
        batch, _, _ = run(G1Collector, sizes, batched=True)
        assert scalar == batch

    @given(data=st.data())
    @settings(max_examples=20, deadline=None)
    def test_batch_crossing_exact_region_boundary(self, data):
        vm, site = build_vm(G1Collector, record_hook=False)
        region_size = vm.heap.region_size
        # Pre-fill so the current region has a known remainder, then
        # batch across the boundary: the split point must land exactly
        # where scalar bump allocation claims a fresh region.
        prefill = data.draw(
            st.integers(min_value=64, max_value=region_size - 64)
        )
        filler = data.draw(st.integers(min_value=32, max_value=512))
        thread = vm.new_thread("t")
        with thread.entry("C", "run"):
            vm.allocate_at_site(thread, site, prefill)
            objs = vm.allocate_batch(
                thread, site, [filler] * 80, materialize=True
            )
        vm.heap.verify()
        addresses = [o.address for o in objs]
        assert len(set(addresses)) == len(addresses)
        # Objects tile gap-free within each region.
        by_region = {}
        for obj in objs:
            by_region.setdefault(obj.address // region_size, []).append(obj)
        for group in by_region.values():
            group.sort(key=lambda o: o.address)
            for a, b in zip(group, group[1:]):
                assert b.address == a.address + a.size
