"""Tests for the typed VM event bus and the agent attach/detach seam."""

from __future__ import annotations

import pytest

from repro.config import SimConfig
from repro.core.dumper import Dumper
from repro.core.recorder import Recorder
from repro.errors import ReproError
from repro.gc.g1 import G1Collector
from repro.gc.ng2c import NG2CCollector
from repro.runtime.events import (
    ALLOCATION,
    CLASS_LOAD,
    EVENT_KINDS,
    GC_END,
    GC_START,
    SAFEPOINT,
    SNAPSHOT_POINT,
    EventBus,
    VMAgent,
)
from repro.runtime.vm import VM
from tests.conftest import build_simple_class


class _JournalAgent(VMAgent):
    """Records every event delivered, in order, as (kind, payload)."""

    def __init__(self):
        self.journal = []

    def transform(self, class_model):
        self.journal.append(("transform", class_model.name))
        for site in class_model.iter_alloc_sites():
            site.record_hook = True  # opt into allocation events
        return class_model

    def on_class_load(self, event):
        self.journal.append((CLASS_LOAD, event.class_model.name))

    def on_allocation(self, obj, site, trace):
        self.journal.append((ALLOCATION, obj.object_id))

    def on_safepoint(self, event):
        self.journal.append((SAFEPOINT, event.kind))

    def on_gc_start(self, event):
        self.journal.append((GC_START, event.cycle))

    def on_gc_end(self, event):
        self.journal.append((GC_END, event.pause.cycle))

    def on_snapshot_point(self, event):
        self.journal.append((SNAPSHOT_POINT, event.pause.cycle))

    def kinds(self):
        return [kind for kind, _ in self.journal]


def _run_workload(vm, duration_ms=1200.0):
    from repro.workloads import make_workload

    workload = make_workload("graphchi-pr", seed=7)
    for model in workload.class_models():
        vm.classloader.load(model)
    workload.setup(vm)
    while vm.clock.now_ms < duration_ms:
        workload.tick()
    workload.teardown()
    return workload


class TestEventBus:
    def test_publish_dispatches_in_subscription_order(self):
        bus = EventBus()
        seen = []
        bus.subscribe(SAFEPOINT, lambda e: seen.append("first"))
        bus.subscribe(SAFEPOINT, lambda e: seen.append("second"))
        bus.publish(SAFEPOINT, object())
        assert seen == ["first", "second"]

    def test_unknown_kind_rejected(self):
        bus = EventBus()
        with pytest.raises(ReproError):
            bus.subscribe("comet-sighting", lambda e: None)
        with pytest.raises(ReproError):
            bus.publish("comet-sighting", object())

    def test_listener_list_is_live(self):
        bus = EventBus()
        alias = bus.listener_list(ALLOCATION)
        assert not alias
        bus.subscribe(ALLOCATION, lambda *a: None)
        assert len(alias) == 1  # same list object, mutated in place
        assert bus.has_listeners(ALLOCATION)

    def test_every_kind_has_a_slot(self):
        bus = EventBus()
        for kind in EVENT_KINDS:
            assert not bus.has_listeners(kind)


class TestAttachDetachSymmetry:
    def test_detach_reverses_attach(self, small_config):
        vm = VM(small_config, collector=G1Collector())
        agent = _JournalAgent()
        vm.attach_agent(agent)
        assert agent in vm.agents
        assert vm.events.has_listeners(CLASS_LOAD)
        assert agent in vm.classloader.transformers
        vm.detach_agent(agent)
        assert agent not in vm.agents
        assert agent not in vm.classloader.transformers
        for kind in EVENT_KINDS:
            assert not vm.events.has_listeners(kind)

    def test_double_attach_rejected(self, small_config):
        vm = VM(small_config, collector=G1Collector())
        agent = _JournalAgent()
        vm.attach_agent(agent)
        with pytest.raises(ReproError):
            vm.attach_agent(agent)

    def test_detach_unattached_rejected(self, small_config):
        vm = VM(small_config, collector=G1Collector())
        with pytest.raises(ReproError):
            vm.detach_agent(_JournalAgent())

    def test_detached_agent_sees_no_events(self, small_config):
        vm = VM(small_config, collector=G1Collector())
        agent = _JournalAgent()
        vm.attach_agent(agent)
        vm.detach_agent(agent)
        vm.classloader.load(build_simple_class())
        vm.safepoint("flush")
        assert agent.journal == []

    def test_failed_attach_leaves_vm_untouched(self, small_config):
        class _Throws(VMAgent):
            def on_attach(self, vm):
                raise ReproError("refused")

            def on_allocation(self, obj, site, trace):  # pragma: no cover
                pass

        vm = VM(small_config, collector=G1Collector())
        with pytest.raises(ReproError):
            vm.attach_agent(_Throws())
        assert vm.agents == []
        assert not vm.events.has_listeners(ALLOCATION)

    def test_legacy_alloc_listener_api_rides_the_bus(self, small_config):
        vm = VM(small_config, collector=G1Collector())
        hits = []
        listener = lambda obj, site, trace: hits.append(obj)  # noqa: E731
        with pytest.deprecated_call():
            vm.add_alloc_listener(listener)
        assert vm.events.has_listeners(ALLOCATION)
        with pytest.deprecated_call():
            vm.remove_alloc_listener(listener)
        assert not vm.events.has_listeners(ALLOCATION)


class TestEventOrdering:
    def test_class_load_precedes_first_allocation(self):
        # Full-size heap: graphchi-pr overruns the 8 MiB test config.
        vm = VM(SimConfig(seed=7), collector=NG2CCollector())
        agent = _JournalAgent()
        vm.attach_agent(agent)
        _run_workload(vm)
        kinds = agent.kinds()
        assert CLASS_LOAD in kinds and ALLOCATION in kinds
        assert kinds.index(CLASS_LOAD) < kinds.index(ALLOCATION)

    def test_transform_precedes_class_load_event(self, small_config):
        vm = VM(small_config, collector=G1Collector())
        agent = _JournalAgent()
        vm.attach_agent(agent)
        vm.classloader.load(build_simple_class())
        assert agent.kinds() == ["transform", CLASS_LOAD]

    def test_gc_brackets_and_snapshot_point_order(self):
        vm = VM(SimConfig(seed=7), collector=NG2CCollector())
        # The journal agent attaches first: its GC_END hook runs before
        # the Recorder's, which is what publishes the SNAPSHOT_POINT.
        agent = _JournalAgent()
        vm.attach_agent(agent)
        recorder = Recorder()
        recorder.attach(vm, Dumper())
        _run_workload(vm)
        kinds = agent.kinds()
        assert GC_START in kinds and GC_END in kinds
        assert SNAPSHOT_POINT in kinds
        # Every gc-end is preceded by its gc-start, and every
        # snapshot-point follows a gc-end of the same cycle.
        journal = agent.journal
        for i, (kind, payload) in enumerate(journal):
            if kind == GC_END:
                assert (GC_START, payload) in journal[:i]
            if kind == SNAPSHOT_POINT:
                assert (GC_END, payload) in journal[:i]

    def test_workload_flush_publishes_safepoint(self):
        vm = VM(SimConfig(seed=3), collector=NG2CCollector())
        agent = _JournalAgent()
        vm.attach_agent(agent)
        from repro.workloads import make_workload

        workload = make_workload("cassandra-wi", seed=3)
        for model in workload.class_models():
            vm.classloader.load(model)
        workload.setup(vm)
        while vm.clock.now_ms < 2500.0 and (SAFEPOINT, "flush") not in agent.journal:
            workload.tick()
        workload.teardown()
        assert (SAFEPOINT, "flush") in agent.journal


class TestGCStartEvent:
    def test_start_ms_is_pre_pause_clock(self):
        vm = VM(SimConfig(seed=7), collector=G1Collector())
        starts = []
        vm.events.subscribe(GC_START, lambda e: starts.append(e))
        _run_workload(vm)
        pauses = vm.collector.pauses
        assert len(starts) == len(pauses)
        for event, pause in zip(starts, pauses):
            assert event.cycle == pause.cycle
            assert event.kind == pause.kind
            assert event.start_ms == pause.start_ms
            assert event.collector == vm.collector.name
