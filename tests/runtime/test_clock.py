"""Unit tests for the virtual clock."""

import pytest

from repro.runtime.clock import VirtualClock


class TestVirtualClock:
    def test_starts_at_zero(self):
        clock = VirtualClock()
        assert clock.now_us == 0.0
        assert clock.now_ms == 0.0
        assert clock.now_s == 0.0

    def test_custom_start(self):
        clock = VirtualClock(start_us=1500.0)
        assert clock.now_ms == 1.5

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock(start_us=-1)

    def test_advance(self):
        clock = VirtualClock()
        clock.advance_us(2500)
        assert clock.now_ms == 2.5
        clock.advance_ms(1.0)
        assert clock.now_ms == 3.5

    def test_cannot_move_backwards(self):
        clock = VirtualClock()
        with pytest.raises(ValueError):
            clock.advance_us(-1)

    def test_unit_conversions_consistent(self):
        clock = VirtualClock()
        clock.advance_us(3_000_000)
        assert clock.now_s == 3.0
        assert clock.now_ms == 3000.0
