"""Unit tests for class loading and agent transformers."""

import pytest

from repro.errors import ClassNotLoadedError, DuplicateClassError
from repro.runtime.classloader import ClassLoader
from repro.runtime.code import ClassModel


def make_class(name="C"):
    model = ClassModel(name)
    model.add_method("m").add_alloc_site(10)
    return model


class RecordingTransformer:
    """Flips record hooks — a stand-in for the Recorder agent."""

    def __init__(self):
        self.seen = []

    def transform(self, class_model):
        self.seen.append(class_model.name)
        for site in class_model.iter_alloc_sites():
            site.record_hook = True
        return class_model


class TestLoading:
    def test_load_and_lookup(self):
        loader = ClassLoader()
        loaded = loader.load(make_class())
        assert loader.lookup("C") is loaded
        assert loader.get("C") is loaded
        assert loader.loaded_classes == ["C"]

    def test_duplicate_load_rejected(self):
        loader = ClassLoader()
        loader.load(make_class())
        with pytest.raises(DuplicateClassError):
            loader.load(make_class())

    def test_lookup_missing_raises(self):
        loader = ClassLoader()
        with pytest.raises(ClassNotLoadedError):
            loader.lookup("Missing")
        assert loader.get("Missing") is None

    def test_method_lookup(self):
        loader = ClassLoader()
        loader.load(make_class())
        assert loader.method("C", "m").name == "m"
        with pytest.raises(ClassNotLoadedError):
            loader.method("C", "missing")

    def test_load_all(self):
        loader = ClassLoader()
        loader.load_all([make_class("A"), make_class("B")])
        assert loader.loaded_classes == ["A", "B"]


class TestTransformers:
    def test_transformer_sees_copy_not_original(self):
        loader = ClassLoader()
        loader.add_transformer(RecordingTransformer())
        original = make_class()
        loaded = loader.load(original)
        assert loaded.method("m").alloc_site(10).record_hook
        assert not original.method("m").alloc_site(10).record_hook

    def test_transformers_run_in_order(self):
        loader = ClassLoader()
        order = []

        class Tagger:
            def __init__(self, tag):
                self.tag = tag

            def transform(self, model):
                order.append(self.tag)
                return model

        loader.add_transformer(Tagger("first"))
        loader.add_transformer(Tagger("second"))
        loader.load(make_class())
        assert order == ["first", "second"]

    def test_remove_transformer(self):
        loader = ClassLoader()
        recorder = RecordingTransformer()
        loader.add_transformer(recorder)
        loader.remove_transformer(recorder)
        loaded = loader.load(make_class())
        assert not loaded.method("m").alloc_site(10).record_hook
