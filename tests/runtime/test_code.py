"""Unit tests for the code model and site interning."""

import pytest

from repro.runtime.code import (
    AllocSite,
    CallSite,
    ClassModel,
    MethodModel,
    SiteRegistry,
)


class TestMethodModel:
    def test_add_sites(self):
        method = MethodModel("C", "m")
        alloc = method.add_alloc_site(10, "Row", 128)
        call = method.add_call_site(20, "D", "n")
        assert method.alloc_site(10) is alloc
        assert method.call_site(20) is call
        assert alloc.location == ("C", "m", 10)
        assert call.location == ("C", "m", 20)

    def test_missing_sites_are_none(self):
        method = MethodModel("C", "m")
        assert method.alloc_site(99) is None
        assert method.call_site(99) is None

    def test_duplicate_alloc_line_rejected(self):
        method = MethodModel("C", "m")
        method.add_alloc_site(10)
        with pytest.raises(ValueError):
            method.add_alloc_site(10)

    def test_duplicate_call_line_rejected(self):
        method = MethodModel("C", "m")
        method.add_call_site(10)
        with pytest.raises(ValueError):
            method.add_call_site(10)

    def test_copy_is_deep(self):
        method = MethodModel("C", "m")
        method.add_alloc_site(10)
        clone = method.copy()
        clone.alloc_site(10).gen_annotated = True
        assert not method.alloc_site(10).gen_annotated


class TestClassModel:
    def test_methods(self):
        model = ClassModel("C")
        method = model.add_method("m")
        assert model.method("m") is method
        assert model.get_method("missing") is None

    def test_duplicate_method_rejected(self):
        model = ClassModel("C")
        model.add_method("m")
        with pytest.raises(ValueError):
            model.add_method("m")

    def test_iter_sites(self):
        model = ClassModel("C")
        m1 = model.add_method("a")
        m1.add_alloc_site(1)
        m1.add_call_site(2)
        m2 = model.add_method("b")
        m2.add_alloc_site(3)
        assert len(list(model.iter_alloc_sites())) == 2
        assert len(list(model.iter_call_sites())) == 1

    def test_copy_is_independent(self):
        model = ClassModel("C")
        model.add_method("m").add_alloc_site(1)
        clone = model.copy()
        clone.method("m").alloc_site(1).record_hook = True
        assert not model.method("m").alloc_site(1).record_hook


class TestSiteRegistry:
    def test_site_interning(self):
        registry = SiteRegistry()
        sid = registry.site_id(("C", "m", 10))
        assert registry.site_id(("C", "m", 10)) == sid
        assert registry.site_id(("C", "m", 11)) != sid
        assert registry.site_location(sid) == ("C", "m", 10)
        assert registry.site_count == 2

    def test_trace_interning(self):
        registry = SiteRegistry()
        trace = (("A", "a", 1), ("B", "b", 2))
        tid = registry.trace_id(trace)
        assert registry.trace_id(trace) == tid
        assert registry.trace(tid) == trace
        assert registry.trace_count == 1


class TestDirectiveFields:
    def test_alloc_site_defaults(self):
        site = AllocSite("C", "m", 1)
        assert not site.gen_annotated
        assert site.pre_set_gen is None
        assert not site.record_hook

    def test_call_site_defaults(self):
        call = CallSite("C", "m", 1)
        assert call.target_generation is None
