"""Unit tests for simulated threads: frames, traces, generation brackets."""

import pytest

from repro.config import SimConfig
from repro.errors import NoActiveFrameError
from repro.gc.ng2c import NG2CCollector
from repro.runtime.code import ClassModel
from repro.runtime.vm import VM


def build_vm() -> VM:
    vm = VM(SimConfig.small(), collector=NG2CCollector())
    outer = ClassModel("Outer")
    run = outer.add_method("run")
    run.add_alloc_site(5, "Top", 64)
    run.add_call_site(10, "Inner", "work")
    inner = ClassModel("Inner")
    work = inner.add_method("work")
    work.add_alloc_site(20, "Obj", 128)
    vm.classloader.load(outer)
    vm.classloader.load(inner)
    return vm


class TestFrames:
    def test_alloc_outside_frame_raises(self):
        vm = build_vm()
        thread = vm.new_thread("t")
        with pytest.raises(NoActiveFrameError):
            thread.alloc(5)

    def test_entry_and_nested_call(self):
        vm = build_vm()
        thread = vm.new_thread("t")
        with thread.entry("Outer", "run"):
            assert len(thread.frames) == 1
            with thread.call(10, "Inner", "work"):
                assert len(thread.frames) == 2
            assert len(thread.frames) == 1
        assert thread.frames == []

    def test_alloc_at_undeclared_line_raises(self):
        vm = build_vm()
        thread = vm.new_thread("t")
        with thread.entry("Outer", "run"):
            with pytest.raises(NoActiveFrameError):
                thread.alloc(99)

    def test_stack_trace_capture(self):
        vm = build_vm()
        thread = vm.new_thread("t")
        with thread.entry("Outer", "run"):
            with thread.call(10, "Inner", "work"):
                thread.alloc(20)
                trace = thread.current_stack_trace()
        assert trace == (("Outer", "run", 10), ("Inner", "work", 20))

    def test_frame_locals_are_roots(self):
        vm = build_vm()
        thread = vm.new_thread("t")
        with thread.entry("Outer", "run"):
            obj = thread.alloc(5)
            assert obj in list(thread.iter_roots())
        assert list(thread.iter_roots()) == []

    def test_keep_false_does_not_root(self):
        vm = build_vm()
        thread = vm.new_thread("t")
        with thread.entry("Outer", "run"):
            thread.alloc(5, keep=False)
            assert list(thread.iter_roots()) == []


class TestGenerationBracket:
    def test_call_directive_switches_and_restores(self):
        vm = build_vm()
        thread = vm.new_thread("t")
        loaded = vm.classloader.lookup("Outer")
        loaded.method("run").call_site(10).target_generation = 3
        with thread.entry("Outer", "run"):
            assert thread.target_gen == 0
            with thread.call(10, "Inner", "work"):
                assert thread.target_gen == 3
            assert thread.target_gen == 0
        assert vm.set_generation_calls == 2

    def test_annotated_site_pretenures_into_target_gen(self):
        vm = build_vm()
        thread = vm.new_thread("t")
        loaded = vm.classloader.lookup("Inner")
        loaded.method("work").alloc_site(20).gen_annotated = True
        vm.classloader.lookup("Outer").method("run").call_site(
            10
        ).target_generation = 2
        with thread.entry("Outer", "run"):
            with thread.call(10, "Inner", "work"):
                obj = thread.alloc(20)
        expected_heap_gen = vm.collector.ensure_generation(2)
        assert obj.gen_id == expected_heap_gen

    def test_unannotated_site_ignores_target_gen(self):
        vm = build_vm()
        thread = vm.new_thread("t")
        thread.target_gen = 4
        with thread.entry("Outer", "run"):
            obj = thread.alloc(5)
        assert obj.gen_id == 0

    def test_pre_set_gen_bracket(self):
        vm = build_vm()
        thread = vm.new_thread("t")
        site = vm.classloader.lookup("Outer").method("run").alloc_site(5)
        site.gen_annotated = True
        site.pre_set_gen = 2
        with thread.entry("Outer", "run"):
            obj = thread.alloc(5)
        assert obj.gen_id == vm.collector.ensure_generation(2)
        assert vm.set_generation_calls == 2

    def test_custom_size_overrides_hint(self):
        vm = build_vm()
        thread = vm.new_thread("t")
        with thread.entry("Outer", "run"):
            obj = thread.alloc(5, size=1024)
        assert obj.size == 1024
