"""Unit tests for the batched allocation front-end.

``VM.allocate_batch`` must be *observably identical* to the scalar loop
it replaces — addresses, column contents, collector accounting, clock,
recorder streams — while amortizing per-object overhead.  These tests
pin the equivalence on the unit level (the golden-digest integration
suite pins it end to end) plus the explicit scalar fallbacks and the
``allocate_anonymous`` accounting fix that rode along.
"""

from __future__ import annotations

import pytest

from repro.config import SimConfig, YOUNG_GEN
from repro.core.recorder import Recorder
from repro.gc.c4 import C4Collector
from repro.gc.g1 import G1Collector
from repro.gc.ng2c import NG2CCollector
from repro.heap.objects import reset_identity_hashes
from repro.runtime.code import ClassModel
from repro.runtime.events import ALLOCATION, ALLOCATION_BATCH, VMAgent
from repro.runtime.vm import VM

SITE_LINE = 10
GEN_LINE = 20


def build_vm(collector_factory=G1Collector, record_hook=False):
    reset_identity_hashes()
    vm = VM(SimConfig.small(), collector=collector_factory())
    model = ClassModel("C")
    method = model.add_method("run")
    method.add_alloc_site(SITE_LINE, "Obj", 64)
    gen_site = method.add_alloc_site(GEN_LINE, "Tenured", 64)
    gen_site.gen_annotated = True
    gen_site.pre_set_gen = 1
    vm.classloader.load(model)
    site = vm.classloader.lookup("C").method("run").alloc_site(SITE_LINE)
    if record_hook:
        site.record_hook = True
    return vm, site


def heap_state(vm):
    """Everything the scalar/batch equivalence must preserve."""
    placements = []
    for gen in vm.heap.generations.values():
        for region in gen.regions:
            for slot in range(len(region.objects)):
                obj = region.view_at(slot)
                placements.append(
                    (
                        obj.object_id,
                        obj.address,
                        obj.size,
                        obj.site_id,
                        obj.gen_id,
                        obj.age,
                    )
                )
    placements.sort()
    return {
        "placements": placements,
        "clock": vm.clock.now_us,
        "allocated_bytes": vm.heap.total_allocated_bytes,
        "allocated_objects": vm.heap.total_allocated_objects,
        "cycles": vm.collector.cycles,
        "pauses": len(vm.collector.pauses),
        "used_bytes": vm.heap.used_bytes,
    }


def run_scalar(vm, site, thread, sizes, pretenure_index=0, link_from=None):
    out = []
    for size in sizes:
        obj = vm.allocate_at_site(thread, site, size, pretenure_index)
        if link_from is not None:
            vm.heap.write_ref(link_from, obj)
        out.append(obj)
    return out


class TestScalarEquivalence:
    @pytest.mark.parametrize(
        "collector_factory", [G1Collector, NG2CCollector, C4Collector]
    )
    def test_batch_matches_scalar_through_gc(self, collector_factory):
        # Enough bytes to force several collections in the 8 MiB heap.
        sizes = [64, 128, 4096, 64] * 6000
        states = []
        for batched in (False, True):
            vm, site = build_vm(collector_factory)
            thread = vm.new_thread("t")
            with thread.entry("C", "run"):
                if batched:
                    vm.allocate_batch(thread, site, sizes)
                else:
                    run_scalar(vm, site, thread, sizes)
            states.append(heap_state(vm))
        assert states[0] == states[1]
        assert states[0]["pauses"] > 0  # the run really collected

    def test_batch_matches_scalar_pretenured(self):
        sizes = [256] * 4000
        states = []
        for batched in (False, True):
            vm, site = build_vm(NG2CCollector)
            thread = vm.new_thread("t")
            with thread.entry("C", "run"):
                if batched:
                    vm.allocate_batch(thread, site, sizes, pretenure_index=1)
                else:
                    run_scalar(vm, site, thread, sizes, pretenure_index=1)
            states.append(heap_state(vm))
        assert states[0] == states[1]
        assert states[0]["clock"] > 0  # pretenure charges applied

    def test_batch_matches_scalar_with_recorder(self):
        sizes = [96] * 5000
        stream_states = []
        for batched in (False, True):
            vm, site = build_vm(G1Collector, record_hook=True)
            recorder = Recorder()
            vm.attach_agent(recorder)
            thread = vm.new_thread("t")
            with thread.entry("C", "run"):
                if batched:
                    vm.allocate_batch(thread, site, sizes)
                else:
                    run_scalar(vm, site, thread, sizes)
            stream_states.append(
                (
                    heap_state(vm),
                    {
                        tid: stream.tolist()
                        for tid, stream in recorder.records.streams.items()
                    },
                    dict(recorder.records.traces),
                )
            )
        assert stream_states[0] == stream_states[1]
        assert stream_states[0][1]  # something was actually recorded

    def test_batch_matches_scalar_with_link_from(self):
        sizes = [80] * 3000
        states = []
        for batched in (False, True):
            vm, site = build_vm(G1Collector)
            parent = vm.allocate_anonymous(64)
            vm.roots.pin("parent", parent)
            thread = vm.new_thread("t")
            with thread.entry("C", "run"):
                if batched:
                    vm.allocate_batch(thread, site, sizes, link_from=parent)
                else:
                    run_scalar(vm, site, thread, sizes, link_from=parent)
            states.append((heap_state(vm), len(parent._refs)))
        assert states[0] == states[1]

    def test_materialized_views_match_scalar_objects(self):
        sizes = [64, 200, 64, 1024] * 50
        vm, site = build_vm(G1Collector)
        thread = vm.new_thread("t")
        with thread.entry("C", "run"):
            scalar = run_scalar(vm, site, thread, sizes)
        scalar_state = [
            (o.size, o.site_id, o.gen_id, o.age) for o in scalar
        ]
        vm2, site2 = build_vm(G1Collector)
        thread2 = vm2.new_thread("t")
        with thread2.entry("C", "run"):
            batch = vm2.allocate_batch(thread2, site2, sizes, materialize=True)
        assert [(o.size, o.site_id, o.gen_id, o.age) for o in batch] == (
            scalar_state
        )
        assert [o.object_id for o in batch] == [o.object_id for o in scalar]
        assert [o.address for o in batch] == [o.address for o in scalar]

    def test_empty_batch(self):
        vm, site = build_vm()
        thread = vm.new_thread("t")
        assert vm.allocate_batch(thread, site, []) is None
        assert vm.allocate_batch(thread, site, [], materialize=True) == []

    def test_heap_verify_after_batching(self):
        vm, site = build_vm()
        thread = vm.new_thread("t")
        with thread.entry("C", "run"):
            vm.allocate_batch(thread, site, [64, 96, 128] * 400)
        vm.heap.verify()


class TestBatchEvents:
    def test_one_event_per_quiet_run(self):
        vm, site = build_vm(G1Collector, record_hook=True)
        events = []
        vm.events.subscribe(ALLOCATION_BATCH, events.append)
        scalar_hits = []
        vm.events.subscribe(
            ALLOCATION, lambda obj, s, trace: scalar_hits.append(obj)
        )

        # A scalar-only ALLOCATION subscriber must force the fallback —
        # but vm.events.subscribe is the raw bus, which the VM cannot
        # introspect; only agents and the legacy shim are counted.  Use
        # an agent defining both hooks so batching stays legal.
        sizes = [64] * 100
        thread = vm.new_thread("t")
        with thread.entry("C", "run"):
            vm.allocate_batch(thread, site, sizes)
        assert sum(e.count for e in events) == 100
        assert len(events) >= 1
        for event in events:
            assert event.site is site
            assert len(event.sizes) == event.count
            assert event.gen_id == YOUNG_GEN
        # Consecutive ids, runs back to back.
        first = events[0].first_object_id
        expect = first
        for event in events:
            assert event.first_object_id == expect
            expect += event.count

    def test_no_event_without_record_hook(self):
        vm, site = build_vm(G1Collector, record_hook=False)
        events = []
        vm.events.subscribe(ALLOCATION_BATCH, events.append)
        thread = vm.new_thread("t")
        with thread.entry("C", "run"):
            vm.allocate_batch(thread, site, [64] * 10)
        assert events == []

    def test_agent_with_both_hooks_sees_batches(self):
        class Both(VMAgent):
            def __init__(self):
                self.scalar = 0
                self.batched = 0

            def on_allocation(self, obj, site, trace):
                self.scalar += 1

            def on_allocation_batch(self, event):
                self.batched += event.count

        vm, site = build_vm(G1Collector, record_hook=True)
        agent = Both()
        vm.attach_agent(agent)
        thread = vm.new_thread("t")
        with thread.entry("C", "run"):
            vm.allocate_batch(thread, site, [64] * 50)
            vm.allocate_at_site(thread, site, 64)
        assert agent.batched == 50
        assert agent.scalar == 1


class TestScalarFallbacks:
    def test_scalar_only_agent_forces_fallback(self):
        class ScalarOnly(VMAgent):
            def __init__(self):
                self.seen = 0

            def on_allocation(self, obj, site, trace):
                self.seen += 1

        vm, site = build_vm(G1Collector, record_hook=True)
        agent = ScalarOnly()
        vm.attach_agent(agent)
        batch_events = []
        vm.events.subscribe(ALLOCATION_BATCH, batch_events.append)
        thread = vm.new_thread("t")
        with thread.entry("C", "run"):
            vm.allocate_batch(thread, site, [64] * 30)
        assert agent.seen == 30
        assert batch_events == []

    def test_detaching_scalar_only_agent_reenables_batching(self):
        class ScalarOnly(VMAgent):
            def on_allocation(self, obj, site, trace):
                pass

        vm, site = build_vm(G1Collector, record_hook=True)
        agent = ScalarOnly()
        vm.attach_agent(agent)
        assert vm._scalar_only_alloc_listeners == 1
        vm.detach_agent(agent)
        assert vm._scalar_only_alloc_listeners == 0

    def test_humongous_batch_falls_back(self):
        vm, site = build_vm(G1Collector)
        huge = vm.heap.region_size + 8
        thread = vm.new_thread("t")
        with thread.entry("C", "run"):
            objs = vm.allocate_batch(thread, site, [huge, 64], materialize=True)
        assert [o.size for o in objs] == [huge, 64]

    def test_legacy_shim_listener_forces_fallback(self):
        vm, site = build_vm(G1Collector, record_hook=True)
        hits = []
        with pytest.deprecated_call():
            vm.add_alloc_listener(lambda obj, s, trace: hits.append(obj))
        thread = vm.new_thread("t")
        with thread.entry("C", "run"):
            vm.allocate_batch(thread, site, [64] * 5)
        assert len(hits) == 5


class TestThreadAllocBatch:
    def test_count_uses_size_hint(self):
        vm, site = build_vm()
        thread = vm.new_thread("t")
        with thread.entry("C", "run"):
            objs = thread.alloc_batch(SITE_LINE, count=7, materialize=True)
        assert [o.size for o in objs] == [64] * 7

    def test_requires_sizes_or_count(self):
        vm, site = build_vm()
        thread = vm.new_thread("t")
        with thread.entry("C", "run"):
            with pytest.raises(ValueError):
                thread.alloc_batch(SITE_LINE)

    def test_keep_roots_objects(self):
        vm, site = build_vm()
        thread = vm.new_thread("t")
        with thread.entry("C", "run"):
            objs = thread.alloc_batch(SITE_LINE, count=3, keep=True)
            assert objs is not None
            roots = list(thread.iter_roots())
            for obj in objs:
                assert obj in roots

    def test_gen_annotated_site_pretenures(self):
        vm, _ = build_vm(NG2CCollector)
        thread = vm.new_thread("t")
        with thread.entry("C", "run"):
            objs = thread.alloc_batch(GEN_LINE, count=4, materialize=True)
        assert all(o.gen_id != YOUNG_GEN for o in objs)

    def test_link_from_writes_refs(self):
        vm, site = build_vm()
        parent = vm.allocate_anonymous(64)
        vm.roots.pin("p", parent)
        thread = vm.new_thread("t")
        with thread.entry("C", "run"):
            thread.alloc_batch(SITE_LINE, count=6, link_from=parent)
        assert len(parent._refs) == 6


class TestAllocateAnonymousAccounting:
    """Regression: anonymous allocations skipped ``after_allocation``."""

    def test_after_allocation_charged(self):
        class Counting(G1Collector):
            def __init__(self):
                super().__init__()
                self.after_calls = []

            def after_allocation(self, size, gen_id):
                self.after_calls.append((size, gen_id))
                super().after_allocation(size, gen_id)

        collector = Counting()
        vm = VM(SimConfig.small(), collector=collector)
        vm.allocate_anonymous(256)
        assert collector.after_calls == [(256, YOUNG_GEN)]

    def test_pretenured_anonymous_charges_clock(self):
        class OldAllocator(NG2CCollector):
            def resolve_allocation_gen(self, pretenure_index):
                return self.old_gen_id

        vm = VM(SimConfig.small(), collector=OldAllocator())
        before = vm.clock.now_us
        vm.allocate_anonymous(2048)
        expected = vm.config.costs.pretenure_alloc_kib_us * (2048 / 1024.0)
        assert vm.clock.now_us == pytest.approx(before + expected)
        # NG2C's pretenured-byte budget must see the allocation now.
        assert vm.collector._pretenured_since_gc == 2048
