"""Unit tests for frames/stack-trace capture and the root registry."""

from repro.heap.objects import HeapObject
from repro.runtime.code import MethodModel
from repro.runtime.roots import RootRegistry
from repro.runtime.stack import Frame, capture_stack_trace


class TestFrame:
    def test_location_tracks_current_line(self):
        frame = Frame(MethodModel("C", "m"))
        assert frame.location == ("C", "m", 0)
        frame.current_line = 42
        assert frame.location == ("C", "m", 42)

    def test_keep_and_drop(self):
        frame = Frame(MethodModel("C", "m"))
        obj = HeapObject(size=64)
        assert frame.keep(obj) is obj
        assert obj in frame.locals
        frame.drop(obj)
        assert obj not in frame.locals

    def test_drop_missing_is_noop(self):
        frame = Frame(MethodModel("C", "m"))
        frame.drop(HeapObject(size=64))  # must not raise


class TestStackTraceCapture:
    def test_innermost_last(self):
        outer = Frame(MethodModel("A", "a"))
        outer.current_line = 10
        inner = Frame(MethodModel("B", "b"))
        inner.current_line = 20
        trace = capture_stack_trace([outer, inner])
        assert trace == (("A", "a", 10), ("B", "b", 20))

    def test_empty_stack(self):
        assert capture_stack_trace([]) == ()


class TestRootRegistry:
    def test_pin_and_get(self):
        registry = RootRegistry()
        obj = HeapObject(size=64)
        registry.pin("cache", obj)
        assert registry.get("cache") is obj
        assert registry.names == ["cache"]
        assert len(registry) == 1

    def test_pin_replaces(self):
        registry = RootRegistry()
        first = HeapObject(size=64)
        second = HeapObject(size=64)
        registry.pin("x", first)
        registry.pin("x", second)
        assert registry.get("x") is second
        assert list(registry.iter_static_roots()) == [second]

    def test_unpin(self):
        registry = RootRegistry()
        obj = HeapObject(size=64)
        registry.pin("x", obj)
        assert registry.unpin("x") is obj
        assert registry.unpin("x") is None
        assert len(registry) == 0

    def test_iteration_safe_against_mutation(self):
        registry = RootRegistry()
        registry.pin("a", HeapObject(size=64))
        for _ in registry.iter_static_roots():
            registry.pin("b", HeapObject(size=64))  # must not blow up
