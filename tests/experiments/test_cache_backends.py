"""Pluggable cache backends: resumability, concurrency, corruption.

The backend contract: a killed sweep resumes from exactly the cells
already committed (both backends), concurrent runners sharing one store
never corrupt it, corrupt cells warn once and recompute, and permission
problems raise :class:`~repro.errors.ReproError` instead of silently
forking the sweep's storage.
"""

import json
import multiprocessing
import os
import sqlite3

import pytest

from repro.config import SimConfig
from repro.errors import ReproError
from repro.experiments.matrix import (
    CACHE_FORMAT,
    CellKey,
    DirCacheBackend,
    SqliteCacheBackend,
    SweepSpec,
    backend_from_spec,
    run_sweep,
    sweep_cache_key,
)
from repro.core.pipeline import PhaseResult

PROFILE_MS = 1_000.0
PRODUCTION_MS = 1_600.0

SPEC = SweepSpec(
    workloads=("cassandra-wi",),
    strategies=("g1", "polm2"),
    seeds=(0, 1),
)


def make_backend(kind, tmp_path, name="cache"):
    key = sweep_cache_key(SimConfig(), PROFILE_MS, PRODUCTION_MS)
    if kind == "dir":
        return DirCacheBackend(str(tmp_path / name), key)
    return SqliteCacheBackend(str(tmp_path / f"{name}.db"), key)


def fake_result(strategy="g1", workload="w", ops=1) -> PhaseResult:
    return PhaseResult(
        strategy=strategy,
        workload=workload,
        collector_name="c",
        duration_ms=10.0,
        ops_completed=ops,
        pauses=[],
        peak_memory_bytes=1,
        set_generation_calls=0,
        throughput_timeline=[],
    )


def run_cells(backend):
    """One full sweep against ``backend``; returns {key: (cached, json)}."""
    return {
        item.key: (item.cached, json.dumps(item.result.to_dict(), sort_keys=True))
        for item in run_sweep(
            SPEC,
            profiling_ms=PROFILE_MS,
            production_ms=PRODUCTION_MS,
            backend=backend,
        )
    }


@pytest.mark.parametrize("kind", ["dir", "sqlite"])
class TestRoundTrip:
    def test_store_load_round_trip(self, tmp_path, kind):
        backend = make_backend(kind, tmp_path)
        key = CellKey("w", "g1", 3, "default")
        result = fake_result(ops=7)
        backend.store(key, result)
        backend.flush()
        loaded = backend.load(key)
        assert loaded is not None
        assert loaded.to_dict() == result.to_dict()
        assert backend.load(CellKey("w", "g1", 4, "default")) is None
        assert key.cell_id in backend.cell_ids()

    def test_seed_and_heap_are_part_of_the_key(self, tmp_path, kind):
        backend = make_backend(kind, tmp_path)
        backend.store(CellKey("w", "g1", 0, "default"), fake_result(ops=1))
        backend.store(CellKey("w", "g1", 1, "default"), fake_result(ops=2))
        backend.store(CellKey("w", "g1", 0, "big-heap"), fake_result(ops=3))
        backend.flush()
        assert backend.load(CellKey("w", "g1", 0, "default")).ops_completed == 1
        assert backend.load(CellKey("w", "g1", 1, "default")).ops_completed == 2
        assert backend.load(CellKey("w", "g1", 0, "big-heap")).ops_completed == 3


@pytest.mark.parametrize("kind", ["dir", "sqlite"])
class TestCrashResume:
    def test_killed_sweep_resumes_only_missing_cells(self, tmp_path, kind):
        backend = make_backend(kind, tmp_path)
        first = run_cells(backend)
        backend.close()

        # Simulate a crash that lost two production cells.
        lost = [
            CellKey("cassandra-wi", "g1", 1, "default"),
            CellKey("cassandra-wi", "polm2", 1, "default"),
        ]
        backend = make_backend(kind, tmp_path)
        if kind == "dir":
            for key in lost:
                os.remove(os.path.join(backend.dir, f"{key.cell_id}.json"))
        else:
            with sqlite3.connect(backend.path) as conn:
                conn.executemany(
                    "DELETE FROM cells WHERE cell_id = ?",
                    [(key.cell_id,) for key in lost],
                )

        rerun = run_cells(backend)
        recomputed = {key for key, (cached, _) in rerun.items() if not cached}
        # Only the lost cells execute — the profiling cell the lost
        # polm2 cell depends on is still cached, so it streams as a hit.
        assert recomputed == set(lost)
        # And the recomputation is byte-identical to the original run.
        for key, (_, payload) in rerun.items():
            assert payload == first[key][1]


def _concurrent_writer(kind, path, key, start, count):
    """One runner process storing ``count`` cells into a shared store."""
    if kind == "dir":
        backend = DirCacheBackend(path, "sharedkey")
    else:
        backend = SqliteCacheBackend(path, "sharedkey")
    for i in range(start, start + count):
        backend.store(CellKey("w", "g1", i, "default"), fake_result(ops=i))
    backend.close()


@pytest.mark.parametrize("kind", ["dir", "sqlite"])
class TestConcurrentRunners:
    def test_two_runners_one_store(self, tmp_path, kind):
        path = str(tmp_path / ("cache" if kind == "dir" else "sweep.db"))
        ctx = multiprocessing.get_context("fork")
        writers = [
            ctx.Process(
                target=_concurrent_writer, args=(kind, path, None, start, 40)
            )
            for start in (0, 40)
        ]
        for proc in writers:
            proc.start()
        for proc in writers:
            proc.join(timeout=120)
            assert proc.exitcode == 0
        if kind == "dir":
            backend = DirCacheBackend(path, "sharedkey")
        else:
            backend = SqliteCacheBackend(path, "sharedkey")
        for i in range(80):
            loaded = backend.load(CellKey("w", "g1", i, "default"))
            assert loaded is not None and loaded.ops_completed == i

    def test_same_cell_written_twice_stays_intact(self, tmp_path, kind):
        """The tmp-file race fix: concurrent same-cell stores cannot
        clobber each other mid-rename — both writes land intact."""
        path = str(tmp_path / ("cache" if kind == "dir" else "sweep.db"))
        ctx = multiprocessing.get_context("fork")
        writers = [
            ctx.Process(
                target=_concurrent_writer, args=(kind, path, None, 0, 20)
            )
            for _ in range(2)
        ]
        for proc in writers:
            proc.start()
        for proc in writers:
            proc.join(timeout=120)
            assert proc.exitcode == 0
        backend = (
            DirCacheBackend(path, "sharedkey")
            if kind == "dir"
            else SqliteCacheBackend(path, "sharedkey")
        )
        for i in range(20):
            loaded = backend.load(CellKey("w", "g1", i, "default"))
            assert loaded is not None and loaded.ops_completed == i


class TestDirBackendTmpNames:
    def test_tmp_path_is_unique_per_call_and_process(self, tmp_path):
        backend = make_backend("dir", tmp_path)
        a = backend._tmp_path("/x/cell.json")
        b = backend._tmp_path("/x/cell.json")
        assert a != b
        assert str(os.getpid()) in a
        assert a.endswith(".tmp") and b.endswith(".tmp")

    def test_store_leaves_no_tmp_files(self, tmp_path):
        backend = make_backend("dir", tmp_path)
        backend.store(CellKey("w", "g1", 0, "default"), fake_result())
        leftovers = [
            name for name in os.listdir(backend.dir) if name.endswith(".tmp")
        ]
        assert leftovers == []


class TestCorruptCells:
    def test_dir_corrupt_cell_warns_once_and_recomputes(self, tmp_path):
        backend = make_backend("dir", tmp_path)
        key = CellKey("w", "g1", 0, "default")
        backend.store(key, fake_result())
        path = os.path.join(backend.dir, f"{key.cell_id}.json")
        with open(path, "w") as handle:
            handle.write("{not json")
        with pytest.warns(UserWarning, match=key.cell_id):
            assert backend.load(key) is None
        # Second load of the same cell: no duplicate warning.
        import warnings as warnings_module

        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error")
            assert backend.load(key) is None

    def test_dir_foreign_payload_warns_and_recomputes(self, tmp_path):
        backend = make_backend("dir", tmp_path)
        key = CellKey("w", "g1", 0, "default")
        path = os.path.join(backend.dir, f"{key.cell_id}.json")
        os.makedirs(backend.dir, exist_ok=True)
        with open(path, "w") as handle:
            json.dump({"alien": True}, handle)
        with pytest.warns(UserWarning, match="corrupt"):
            assert backend.load(key) is None

    def test_sqlite_corrupt_payload_warns_and_recomputes(self, tmp_path):
        backend = make_backend("sqlite", tmp_path)
        key = CellKey("w", "g1", 0, "default")
        with sqlite3.connect(backend.path) as conn:
            conn.execute(
                "INSERT INTO cells (cache_key, cell_id, format, payload)"
                " VALUES (?, ?, ?, ?)",
                (backend.key, key.cell_id, CACHE_FORMAT, "{broken"),
            )
        with pytest.warns(UserWarning, match=key.cell_id):
            assert backend.load(key) is None

    def test_dir_permission_error_raises_repro_error(self, tmp_path, monkeypatch):
        backend = make_backend("dir", tmp_path)
        key = CellKey("w", "g1", 0, "default")
        backend.store(key, fake_result())
        target = os.path.join(backend.dir, f"{key.cell_id}.json")
        real_open = open

        def deny(path, *args, **kwargs):
            if str(path) == target:
                raise PermissionError(13, "Permission denied", str(path))
            return real_open(path, *args, **kwargs)

        monkeypatch.setattr("builtins.open", deny)
        with pytest.raises(ReproError, match="unreadable"):
            backend.load(key)


class TestFormatVersioning:
    def test_stale_dir_format_noted_once(self, tmp_path):
        root = tmp_path / "cache"
        stale = root / "deadbeef"
        stale.mkdir(parents=True)
        with open(stale / "FORMAT.json", "w") as handle:
            json.dump({"format": "matrix-cache-v3"}, handle)
        with open(stale / "w__g1__s0__default.json", "w") as handle:
            json.dump({}, handle)
        with pytest.warns(UserWarning, match="matrix-cache-v3"):
            DirCacheBackend(str(root), "currentkey")

    def test_unmarked_cell_dir_noted_as_pre_v4(self, tmp_path):
        root = tmp_path / "cache"
        stale = root / "oldkey"
        stale.mkdir(parents=True)
        with open(stale / "w__g1.json", "w") as handle:
            json.dump({}, handle)
        with pytest.warns(UserWarning, match="pre-v4"):
            DirCacheBackend(str(root), "currentkey")

    def test_sqlite_stale_format_noted(self, tmp_path):
        backend = make_backend("sqlite", tmp_path)
        with sqlite3.connect(backend.path) as conn:
            conn.execute(
                "INSERT INTO cells (cache_key, cell_id, format, payload)"
                " VALUES ('old', 'w__g1__s0__default', 'matrix-cache-v3', '{}')"
            )
        backend.close()
        with pytest.warns(UserWarning, match="matrix-cache-v3"):
            make_backend("sqlite", tmp_path)

    def test_current_format_is_v4(self):
        assert CACHE_FORMAT == "matrix-cache-v4"


class TestBackendSpecs:
    def test_sqlite_spec(self, tmp_path):
        backend = backend_from_spec(
            f"sqlite:///{tmp_path}/sweep.db", "key12345"
        )
        assert isinstance(backend, SqliteCacheBackend)
        backend.close()

    def test_dir_spec_and_bare_path(self, tmp_path):
        assert isinstance(
            backend_from_spec(f"dir:///{tmp_path}/c", "key"), DirCacheBackend
        )
        assert isinstance(
            backend_from_spec(str(tmp_path / "c2"), "key"), DirCacheBackend
        )

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ReproError, match="unknown cache backend"):
            backend_from_spec("redis://localhost/0", "key")
