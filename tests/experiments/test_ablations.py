"""Unit tests for the ablation experiments (small scale)."""

import pytest

from repro.experiments import ablations

PROFILING_MS = 8_000.0
PRODUCTION_MS = 8_000.0


class TestPushUpAblation:
    def test_push_up_reduces_api_calls(self):
        result = ablations.run_push_up_ablation(
            "cassandra-wi",
            profiling_ms=PROFILING_MS,
            production_ms=PRODUCTION_MS,
        )
        assert result.calls_with_push_up < result.calls_without_push_up
        assert 0.0 < result.call_reduction <= 1.0


class TestNaiveProfile:
    def test_naive_profile_brackets_every_site(self):
        from repro.core.recorder import AllocationRecords
        from repro.snapshot.snapshot import Snapshot

        records = AllocationRecords()
        trace = (("C", "put", 1), ("Util", "clone", 9))
        for oid in range(1, 40):
            records.log(trace, oid)
        snapshots = [
            Snapshot(
                seq=i,
                time_ms=float(i),
                engine="t",
                pages_written=0,
                size_bytes=0,
                duration_us=0.0,
                live_object_ids=frozenset(range(1, 40)),
            )
            for i in range(1, 5)
        ]
        profile = ablations.build_naive_profile(records, snapshots, "unit")
        assert len(profile.alloc_directives) == 1
        directive = profile.alloc_directives[0]
        assert directive.pre_set_gen is not None
        assert profile.call_directives == []


class TestMadviseAblation:
    def test_madvise_shrinks_snapshots(self):
        result = ablations.run_madvise_ablation(
            "cassandra-wi", duration_ms=PROFILING_MS
        )
        assert result.bytes_with_madvise < result.bytes_without_madvise
        # Short runs see less accumulated garbage; the full-duration bench
        # measures ~15%.
        assert result.size_reduction > 0.03


class TestRemsetAblation:
    def test_remsets_trade_copying_for_cheap_scans(self):
        result = ablations.run_remset_ablation(
            "cassandra-wi", production_ms=10_000.0
        )
        assert result.precise_worst_ms > 0
        assert result.remset_worst_ms > 0
        # Floating garbage can only add work, never remove it.
        assert result.remset_total_ms >= result.precise_total_ms * 0.9


class TestPauseGoalAblation:
    def test_goal_slices_pauses_but_polm2_removes_them(self):
        result = ablations.run_pause_goal_ablation(
            "cassandra-wi",
            goal_ms=30.0,
            profiling_ms=12_000.0,
            production_ms=12_000.0,
        )
        assert result.g1_goal_pauses > result.g1_pauses
        assert result.polm2_worst_ms < result.g1_worst_ms


class TestBinaryPretenuringAblation:
    def test_single_space_costs_compaction(self):
        result = ablations.run_binary_pretenuring_ablation(
            "cassandra-wi",
            profiling_ms=12_000.0,
            production_ms=12_000.0,
        )
        assert result.binary_total_ms > result.ng2c_total_ms
