"""Settings parsing and the default-runner singleton lifecycle."""

from __future__ import annotations

import pytest

from repro.errors import ReproError
from repro.experiments.runner import (
    ExperimentSettings,
    default_runner,
    reset_default_runner,
)


class TestFromEnv:
    def test_defaults(self, monkeypatch):
        for var in (
            "REPRO_PROFILE_MS",
            "REPRO_PRODUCTION_MS",
            "REPRO_SEED",
            "REPRO_JOBS",
            "REPRO_CACHE_DIR",
        ):
            monkeypatch.delenv(var, raising=False)
        settings = ExperimentSettings.from_env()
        assert settings.profiling_ms == 30_000.0
        assert settings.production_ms == 60_000.0
        assert settings.seed == 42
        assert settings.jobs == 1
        assert settings.cache_dir is None

    def test_reads_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE_MS", "1500")
        monkeypatch.setenv("REPRO_JOBS", "4")
        settings = ExperimentSettings.from_env()
        assert settings.profiling_ms == 1500.0
        assert settings.jobs == 4

    @pytest.mark.parametrize("var", ["REPRO_JOBS", "REPRO_SEED"])
    def test_unparseable_int_raises_repro_error(self, monkeypatch, var):
        monkeypatch.setenv(var, "many")
        with pytest.raises(ReproError, match=var):
            ExperimentSettings.from_env()

    @pytest.mark.parametrize("var", ["REPRO_PROFILE_MS", "REPRO_PRODUCTION_MS"])
    def test_unparseable_float_raises_repro_error(self, monkeypatch, var):
        monkeypatch.setenv(var, "soon")
        with pytest.raises(ReproError, match=var):
            ExperimentSettings.from_env()

    def test_empty_value_falls_back_to_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "")
        assert ExperimentSettings.from_env().jobs == 1


class TestDefaultRunnerReset:
    def test_reset_discards_stale_settings(self, monkeypatch):
        monkeypatch.setenv("REPRO_SEED", "1")
        first = default_runner()
        assert first.settings.seed == 1
        monkeypatch.setenv("REPRO_SEED", "2")
        # Without a reset the singleton would keep serving seed=1.
        assert default_runner() is first
        reset_default_runner()
        second = default_runner()
        assert second is not first
        assert second.settings.seed == 2
