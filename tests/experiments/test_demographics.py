"""Unit tests for the lifetime-demographics experiment."""

from repro.experiments import demographics


class TestControlWorkload:
    def test_control_obeys_weak_hypothesis(self):
        row = demographics.measure_workload(
            "control",
            duration_ms=5_000.0,
            workload=demographics.RequestResponseControl(),
        )
        assert row.objects_observed > 1000
        assert row.survival[1] < 0.02
        assert row.middle_lived_fraction < 0.01


class TestBGPLATDemographics:
    def test_cassandra_violates_weak_hypothesis(self):
        row = demographics.measure_workload("cassandra-wi", duration_ms=8_000.0)
        assert row.survival[1] > 0.15
        assert row.middle_lived_fraction > 0.05

    def test_survival_monotone_in_threshold(self):
        row = demographics.measure_workload("cassandra-wi", duration_ms=8_000.0)
        thresholds = sorted(row.survival)
        values = [row.survival[t] for t in thresholds]
        assert values == sorted(values, reverse=True)


class TestRender:
    def test_render_contains_all_rows(self):
        rows = demographics.run(workloads=("graphchi-pr",), duration_ms=5_000.0)
        text = demographics.render(rows)
        assert "control" in text
        assert "graphchi-pr" in text
        assert "%" in text
