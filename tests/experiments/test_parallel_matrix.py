"""Parity tests for the runner's parallel and cached execution paths.

The performance layer must never change results: the parallel matrix and
the disk-cache round trip both have to reproduce the serial, uncached
outputs byte-for-byte (virtual clock + fixed seed ⇒ determinism).
"""

import json

import pytest

from repro.experiments.runner import (
    ExperimentRunner,
    ExperimentSettings,
    PROFILING_KEY,
)

WORKLOADS = ("cassandra-wi",)
STRATEGIES = ("g1", "polm2")
PROFILE_MS = 1_500.0
PRODUCTION_MS = 2_500.0


def settings(**overrides) -> ExperimentSettings:
    params = dict(profiling_ms=PROFILE_MS, production_ms=PRODUCTION_MS)
    params.update(overrides)
    return ExperimentSettings(**params)


def canonical(matrix) -> str:
    """Byte-exact serialization of a result matrix."""
    return json.dumps(
        {
            f"{workload}|{strategy}": result.to_dict()
            for (workload, strategy), result in sorted(matrix.items())
        },
        sort_keys=True,
    )


@pytest.fixture(scope="module")
def serial_matrix():
    runner = ExperimentRunner(settings())
    return canonical(runner.full_matrix(WORKLOADS, STRATEGIES))


class TestParallelParity:
    def test_parallel_matches_serial_byte_for_byte(self, serial_matrix):
        runner = ExperimentRunner(settings(jobs=2))
        parallel = runner.full_matrix(WORKLOADS, STRATEGIES)
        assert canonical(parallel) == serial_matrix

    def test_jobs_argument_overrides_settings(self, serial_matrix):
        runner = ExperimentRunner(settings())
        parallel = runner.full_matrix(WORKLOADS, STRATEGIES, jobs=2)
        assert canonical(parallel) == serial_matrix


class TestDiskCacheParity:
    def test_cached_second_run_matches_serial(self, serial_matrix, tmp_path):
        cache_dir = str(tmp_path / "cache")
        warm = ExperimentRunner(settings(cache_dir=cache_dir))
        assert canonical(warm.full_matrix(WORKLOADS, STRATEGIES)) == (
            serial_matrix
        )
        cold = ExperimentRunner(settings(cache_dir=cache_dir))
        assert canonical(cold.full_matrix(WORKLOADS, STRATEGIES)) == (
            serial_matrix
        )
        # The cached run served every cell from disk: no pipeline was
        # ever built and no profiling phase was forced (satellite: cached
        # polm2 cells must not recompute their profile).
        assert not cold._pipelines
        assert not cold._profiles

    def test_profiling_phase_cached_on_disk(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        warm = ExperimentRunner(settings(cache_dir=cache_dir))
        profile = warm.profile(WORKLOADS[0])
        cold = ExperimentRunner(settings(cache_dir=cache_dir))
        assert not cold._pipelines
        assert cold.profile(WORKLOADS[0]).to_json() == profile.to_json()
        assert not cold._pipelines  # served from disk, never computed
        cell = cold._cache_load(WORKLOADS[0], PROFILING_KEY)
        assert cell is not None and cell.snapshots is not None

    def test_settings_change_invalidates_key(self, tmp_path):
        from repro.config import SimConfig

        cache_dir = str(tmp_path / "cache")
        from repro.experiments.runner import MatrixCache

        base = MatrixCache(cache_dir, SimConfig(), settings())
        other = MatrixCache(
            cache_dir, SimConfig(), settings(production_ms=PRODUCTION_MS + 1)
        )
        assert base.key != other.key
        # jobs/cache_dir are performance knobs, not result inputs.
        same = MatrixCache(cache_dir, SimConfig(), settings(jobs=8))
        assert base.key == same.key


class TestPauseSeries:
    def test_baseline_only_series_never_profiles(self):
        runner = ExperimentRunner(settings())
        series = runner.pause_series(WORKLOADS[0], strategies=("g1",))
        assert set(series) == {"G1"}
        assert not runner._profiles
        assert not runner._profiling_results
