"""Smoke tests for the experiment drivers at reduced durations.

These confirm that every table/figure module runs end-to-end and that the
paper's qualitative claims hold even at a fraction of the benchmark
durations.  The full-scale numbers live in ``benchmarks/``.
"""

import pytest

from repro.experiments import fig3_fig4, fig5, fig6, fig7, fig8, fig9, table1
from repro.experiments.runner import ExperimentRunner, ExperimentSettings

#: Workloads exercised in the smoke pass (one per platform, for speed).
SMOKE_WORKLOADS = ("cassandra-wi", "graphchi-pr")


@pytest.fixture(scope="module")
def runner() -> ExperimentRunner:
    return ExperimentRunner(
        ExperimentSettings(profiling_ms=6_000.0, production_ms=10_000.0)
    )


class TestTable1:
    def test_rows_for_smoke_workloads(self, runner):
        for workload in SMOKE_WORKLOADS:
            row = table1.build_row(runner, workload)
            assert row.polm2_sites > 0
            assert row.ng2c_sites > 0
            assert row.polm2_generations >= 2
            cells = row.cells()
            assert len(cells) == 3

    def test_render_includes_paper_reference(self, runner):
        rows = {w: table1.build_row(runner, w) for w in SMOKE_WORKLOADS}
        text = table1.render(rows)
        assert "Table 1" in text
        for workload in SMOKE_WORKLOADS:
            assert workload in text


class TestFig3Fig4:
    def test_snapshot_comparison_shape(self):
        comparison = fig3_fig4.run_workload(
            "cassandra-wi", duration_ms=8_000.0, max_snapshots=6
        )
        assert len(comparison.criu) == len(comparison.jmap)
        assert comparison.criu, "no snapshots taken"
        # The paper's headline: Dumper is far cheaper than jmap.
        assert comparison.mean_time_ratio() < 0.5
        assert comparison.mean_size_ratio() < 1.0

    def test_render(self):
        results = fig3_fig4.run(
            workloads=("cassandra-wi",), duration_ms=6_000.0
        )
        text = fig3_fig4.render(results)
        assert "jmap" in text


class TestPauseFigures:
    def test_fig5_polm2_beats_g1(self, runner):
        panels = {
            w: fig5.Fig5Panel(
                workload=w,
                series={
                    name: __import__(
                        "repro.metrics.percentiles", fromlist=["percentile_row"]
                    ).percentile_row(vals)
                    for name, vals in runner.pause_series(w).items()
                },
            )
            for w in SMOKE_WORKLOADS
        }
        for workload, panel in panels.items():
            assert panel.worst("POLM2") < panel.worst("G1")
            assert panel.worst_reduction_vs_g1() > 0.3

    def test_fig6_fewer_long_pauses(self, runner):
        from repro.metrics.histogram import PauseHistogram

        for workload in SMOKE_WORKLOADS:
            series = runner.pause_series(workload)
            g1 = PauseHistogram().add_all(series["G1"])
            polm2 = PauseHistogram().add_all(series["POLM2"])
            assert polm2.long_pause_count(32.0) < g1.long_pause_count(32.0)


class TestThroughputAndMemory:
    def test_fig7_shape(self, runner):
        from repro.metrics.throughput import normalized_throughput

        for workload in SMOKE_WORKLOADS:
            raw = {
                s: runner.result(workload, s).throughput_ops_s
                for s in ("g1", "ng2c", "polm2", "c4")
            }
            norm = normalized_throughput(raw)
            # POLM2 does not significantly degrade throughput...
            assert norm["polm2"] > 0.9
            # ...and C4 is the slowest collector.
            assert norm["c4"] == min(norm.values())

    def test_fig8_timelines_recorded(self, runner):
        result = runner.result("cassandra-wi", "polm2")
        assert len(result.throughput_timeline) > 3
        assert all(v >= 0 for v in result.throughput_timeline)

    def test_fig9_memory_not_increased(self, runner):
        from repro.metrics.memory import normalized_memory

        for workload in SMOKE_WORKLOADS:
            raw = {
                s: runner.result(workload, s).peak_memory_bytes
                for s in ("g1", "ng2c", "polm2")
            }
            norm = normalized_memory(raw)
            assert norm["polm2"] <= 1.15
            assert norm["ng2c"] <= 1.15


class TestRunnerCaching:
    def test_results_cached(self, runner):
        first = runner.result("cassandra-wi", "g1")
        second = runner.result("cassandra-wi", "g1")
        assert first is second

    def test_profile_cached(self, runner):
        assert runner.profile("cassandra-wi") is runner.profile("cassandra-wi")
