"""The fleet-scale sweep engine: sharded scheduling, DAG, streaming.

Every cell is deterministic in (workload, strategy, seed, heap-config,
durations), so all three scheduler modes — serial, sharded
work-stealing, and the legacy wave barrier — must produce byte-identical
cells, and the streaming API must account for every cell exactly once.
"""

import json

import pytest

from repro.errors import ReproError
from repro.experiments.matrix import (
    PROFILING_KEY,
    CellKey,
    DirCacheBackend,
    SweepSpec,
    heap_config,
    parse_seeds,
    pooled_pause_percentiles,
    run_sweep,
    sweep_cache_key,
)
from repro.config import SimConfig

PROFILE_MS = 1_200.0
PRODUCTION_MS = 2_000.0

SPEC = SweepSpec(
    workloads=("cassandra-wi",),
    strategies=("g1", "polm2"),
    seeds=(0, 1),
)


def collect(spec, **kwargs):
    """Run a sweep and return {cell_id: canonical json} per cell."""
    kwargs.setdefault("profiling_ms", PROFILE_MS)
    kwargs.setdefault("production_ms", PRODUCTION_MS)
    return {
        item.key.cell_id: json.dumps(item.result.to_dict(), sort_keys=True)
        for item in run_sweep(spec, **kwargs)
    }


@pytest.fixture(scope="module")
def serial_cells():
    return collect(SPEC, mode="serial")


class TestSchedulerParity:
    def test_sharded_matches_serial_byte_for_byte(self, serial_cells):
        sharded = collect(SPEC, jobs=2, mode="sharded")
        assert sharded == serial_cells

    def test_wave_matches_serial_byte_for_byte(self, serial_cells):
        wave = collect(SPEC, jobs=2, mode="wave")
        assert wave == serial_cells

    def test_unknown_mode_rejected(self):
        with pytest.raises(ReproError, match="mode"):
            next(run_sweep(SPEC, mode="chaotic"))


class TestStreaming:
    def test_progress_accounts_for_every_cell(self):
        items = list(
            run_sweep(
                SPEC,
                profiling_ms=PROFILE_MS,
                production_ms=PRODUCTION_MS,
                jobs=2,
            )
        )
        # 4 production cells + one profiling cell per (workload, seed).
        assert len(items) == SPEC.size + 2
        totals = {item.progress.total for item in items}
        assert totals == {len(items)}
        assert [item.progress.done for item in items] == list(
            range(1, len(items) + 1)
        )
        last = items[-1].progress
        assert last.eta_s == 0.0
        assert last.cells_per_sec > 0.0

    def test_production_unblocks_on_its_own_seed(self):
        """Per-cell DAG: a polm2 cell needs only *its* profiling cell."""
        landed = set()
        for item in run_sweep(
            SPEC, profiling_ms=PROFILE_MS, production_ms=PRODUCTION_MS, jobs=2
        ):
            if item.key.is_profiling:
                landed.add((item.key.seed, item.key.heap))
            elif item.key.strategy == "polm2":
                assert (item.key.seed, item.key.heap) in landed

    def test_profiling_computed_once_per_workload_seed_heap(self):
        items = list(
            run_sweep(
                SPEC, profiling_ms=PROFILE_MS, production_ms=PRODUCTION_MS,
                jobs=2,
            )
        )
        profiling = [item.key for item in items if item.key.is_profiling]
        assert len(profiling) == len(set(profiling)) == 2


class TestCachedSweep:
    def test_cached_polm2_cell_never_forces_profiling(self, tmp_path):
        backend = DirCacheBackend(
            str(tmp_path), sweep_cache_key(SimConfig(), PROFILE_MS, PRODUCTION_MS)
        )
        first = collect(SPEC, backend=backend, jobs=2)
        # Drop the profiling cells; every production cell stays cached.
        import os

        for key in list(first):
            if PROFILING_KEY in key:
                os.remove(os.path.join(backend.dir, f"{key}.json"))
        rerun = list(
            run_sweep(
                SPEC,
                profiling_ms=PROFILE_MS,
                production_ms=PRODUCTION_MS,
                backend=backend,
            )
        )
        assert all(item.cached for item in rerun)
        assert not any(item.key.is_profiling for item in rerun)


class TestHeapConfigs:
    def test_heap_variants_are_distinct_cells(self):
        spec = SweepSpec(
            workloads=("cassandra-wi",),
            strategies=("g1",),
            seeds=(0,),
            heap_configs=("default", "tight-young"),
        )
        cells = collect(spec)
        assert set(cells) == {
            "cassandra-wi__g1__s0__default",
            "cassandra-wi__g1__s0__tight-young",
        }
        # A 2x-smaller young generation collects more often: the two
        # heap configs must not alias to the same result.
        assert (
            cells["cassandra-wi__g1__s0__default"]
            != cells["cassandra-wi__g1__s0__tight-young"]
        )

    def test_unknown_heap_config_rejected(self):
        with pytest.raises(ReproError, match="unknown heap config"):
            SweepSpec(
                workloads=("cassandra-wi",),
                strategies=("g1",),
                heap_configs=("enormous",),
            )

    def test_heap_config_resolves_overrides(self):
        config = heap_config("tight-young", base=SimConfig(seed=7))
        assert config.young_bytes == 3 * 1024 * 1024
        assert config.seed == 7
        assert heap_config("default").young_bytes == SimConfig().young_bytes


class TestCellKey:
    def test_cell_id_round_trip(self):
        key = CellKey("cassandra-wi", "polm2", 17, "tight-young")
        assert CellKey.from_cell_id(key.cell_id) == key

    def test_malformed_cell_id_rejected(self):
        with pytest.raises(ReproError, match="malformed"):
            CellKey.from_cell_id("cassandra-wi__g1")

    def test_profiling_key_shares_coordinates(self):
        key = CellKey("lucene", "polm2", 3, "big-heap")
        prof = key.profiling_key()
        assert prof.strategy == PROFILING_KEY
        assert (prof.workload, prof.seed, prof.heap) == (
            "lucene",
            3,
            "big-heap",
        )


class TestParseSeeds:
    def test_single(self):
        assert parse_seeds("7") == (7,)

    def test_range_inclusive(self):
        assert parse_seeds("0-7") == tuple(range(8))

    def test_list(self):
        assert parse_seeds("1, 3,5") == (1, 3, 5)

    def test_duplicates_dropped_order_kept(self):
        assert parse_seeds("3,1,3") == (3, 1)

    @pytest.mark.parametrize("raw", ["", "a", "5-2", "1;2"])
    def test_bad_specs_raise_repro_error(self, raw):
        with pytest.raises(ReproError):
            parse_seeds(raw)


class TestPooledPercentiles:
    def test_support_counts(self):
        cells = {}
        results = {}
        for item in run_sweep(
            SPEC, profiling_ms=PROFILE_MS, production_ms=PRODUCTION_MS
        ):
            results[item.key] = item.result
            if not item.key.is_profiling:
                cells[item.key] = item.result
        pooled = pooled_pause_percentiles(results)
        assert set(pooled) == {"cassandra-wi"}
        series = pooled["cassandra-wi"]
        assert set(series) == {"G1", "POLM2"}
        for pooled_series in series.values():
            assert pooled_series.seeds == 2
            expected = sum(
                len(result.pause_durations_ms())
                for key, result in cells.items()
                if key.strategy == pooled_series.strategy
            )
            assert pooled_series.samples == expected
            assert len(pooled_series.row) == 7
            assert "2 seed(s)" in pooled_series.support
