"""Unit tests for the experiment renderers (no simulation involved)."""

from repro.experiments import fig3_fig4, fig5, fig6, fig7, fig8, fig9, table1
from repro.experiments.fig3_fig4 import SnapshotComparison
from repro.experiments.fig5 import Fig5Panel
from repro.experiments.fig6 import Fig6Panel
from repro.experiments.fig8 import Fig8Panel
from repro.experiments.table1 import Table1Row
from repro.metrics.histogram import PauseHistogram
from repro.snapshot.snapshot import Snapshot


def snap(seq, engine, size, duration):
    return Snapshot(
        seq=seq,
        time_ms=float(seq),
        engine=engine,
        pages_written=1,
        size_bytes=size,
        duration_us=duration,
        live_object_ids=frozenset(),
    )


class TestTable1Render:
    def test_render_with_paper_reference(self):
        rows = {
            "cassandra-wi": Table1Row("cassandra-wi", 10, 11, 4, "N", 2, 2)
        }
        text = table1.render(rows)
        assert "10/11" in text
        assert "4/N" in text
        assert "11/11" in text  # the paper's value, side by side

    def test_cells(self):
        row = Table1Row("lucene", 2, 8, 2, "2", 2, 0)
        assert row.cells() == ["2/8", "2/2", "2/0"]


class TestFig3Fig4:
    def test_ratios(self):
        comparison = SnapshotComparison(
            workload="w",
            criu=[snap(1, "criu", 100, 10.0), snap(2, "criu", 200, 20.0)],
            jmap=[snap(1, "jmap", 1000, 100.0), snap(2, "jmap", 1000, 100.0)],
        )
        assert comparison.time_ratio_series() == [0.1, 0.2]
        assert comparison.size_ratio_series() == [0.1, 0.2]
        assert comparison.mean_time_ratio() == 0.15000000000000002
        text = fig3_fig4.render({"w": comparison})
        assert "time ratio" in text

    def test_zero_division_guarded(self):
        comparison = SnapshotComparison(
            workload="w",
            criu=[snap(1, "criu", 0, 0.0)],
            jmap=[snap(1, "jmap", 0, 0.0)],
        )
        assert comparison.time_ratio_series() == []
        assert comparison.mean_size_ratio() == 0.0


class TestFig5Panel:
    def test_reduction(self):
        panel = Fig5Panel(
            workload="w",
            series={"G1": [1, 2, 100], "POLM2": [1, 2, 25], "NG2C": [1, 2, 30]},
        )
        assert panel.worst("G1") == 100
        assert panel.worst_reduction_vs_g1("POLM2") == 0.75
        text = fig5.render({"w": panel})
        assert "worst-pause reduction" in text

    def test_zero_g1(self):
        panel = Fig5Panel(workload="w", series={"G1": [0], "POLM2": [0]})
        assert panel.worst_reduction_vs_g1() == 0.0


class TestFig6Panel:
    def test_long_pauses(self):
        panel = Fig6Panel(
            workload="w",
            histograms={
                "G1": PauseHistogram().add_all([100.0, 200.0, 1.0]),
                "POLM2": PauseHistogram().add_all([1.0, 2.0]),
            },
        )
        assert panel.long_pauses("G1") == 2
        assert panel.long_pauses("POLM2") == 0
        assert "G1" in fig6.render({"w": panel})


class TestFig8Panel:
    def test_mean(self):
        panel = Fig8Panel(
            workload="w",
            timelines={"g1": [10.0, 20.0], "c4": [5.0, 5.0]},
        )
        assert panel.mean("g1") == 15.0
        text = fig8.render({"w": panel})
        assert "mean=" in text


class TestFig7Fig9Render:
    def test_fig7_render(self):
        text = fig7.render({"w": {"g1": 1.0, "polm2": 1.05}})
        assert "normalized to G1" in text

    def test_fig9_render(self):
        text = fig9.render({"w": {"g1": 1.0, "polm2": 0.9}})
        assert "memory" in text.lower()
