"""Every example script must at least parse and expose a main()."""

import ast
import os

import pytest

EXAMPLES_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "examples"
)

EXAMPLE_FILES = sorted(
    name for name in os.listdir(EXAMPLES_DIR) if name.endswith(".py")
)


class TestExamples:
    def test_expected_examples_present(self):
        assert "quickstart.py" in EXAMPLE_FILES
        assert "cassandra_profiling.py" in EXAMPLE_FILES
        assert "graphchi_pagerank.py" in EXAMPLE_FILES
        assert "lucene_indexing.py" in EXAMPLE_FILES
        assert len(EXAMPLE_FILES) >= 5

    @pytest.mark.parametrize("name", EXAMPLE_FILES)
    def test_parses_and_has_main(self, name):
        path = os.path.join(EXAMPLES_DIR, name)
        with open(path) as handle:
            tree = ast.parse(handle.read(), filename=name)
        functions = {
            node.name for node in ast.walk(tree)
            if isinstance(node, ast.FunctionDef)
        }
        assert "main" in functions, name

    @pytest.mark.parametrize("name", EXAMPLE_FILES)
    def test_has_module_docstring(self, name):
        path = os.path.join(EXAMPLES_DIR, name)
        with open(path) as handle:
            tree = ast.parse(handle.read(), filename=name)
        assert ast.get_docstring(tree), name
