"""Registry round-trip tests: every strategy runs; new ones plug in.

The acceptance bar for the registry refactor: a strategy registered by a
third party must run end-to-end — direct pipeline, experiment runner,
``full_matrix``, and the CLI — without editing ``core/pipeline.py`` or
``experiments/runner.py``.
"""

from __future__ import annotations

import pytest

from repro import POLM2Pipeline, make_workload
from repro.config import SimConfig
from repro.errors import ReproError
from repro.gc.g1 import G1Collector
from repro.strategies import (
    StrategySpec,
    TelemetryAgent,
    get_strategy,
    register_strategy,
    strategy_names,
    unregister_strategy,
)

BUILTINS = ("g1", "ng2c", "ng2c-unannotated", "c4", "polm2", "polm2-binary")

#: Workload with a manual NG2C strategy, so ``ng2c`` runs too.
WORKLOAD = "cassandra-wi"
SEED = 11
DURATION_MS = 1500.0


def _pipeline() -> POLM2Pipeline:
    return POLM2Pipeline(
        workload_factory=lambda: make_workload(WORKLOAD, seed=SEED),
        config=SimConfig(seed=SEED),
    )


class TestRegistry:
    def test_builtins_registered(self):
        names = strategy_names()
        for name in BUILTINS:
            assert name in names

    def test_unknown_strategy_raises_repro_error(self):
        with pytest.raises(ReproError, match="unknown strategy"):
            get_strategy("zgc")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ReproError, match="already registered"):
            register_strategy(
                StrategySpec(name="g1", collector_factory=G1Collector)
            )

    def test_unregister_unknown_rejected(self):
        with pytest.raises(ReproError):
            unregister_strategy("zgc")


class TestRoundTripSmoke:
    @pytest.mark.parametrize("name", BUILTINS)
    def test_every_registered_strategy_runs(self, name):
        spec = get_strategy(name)
        pipe = _pipeline()
        profile = None
        if spec.needs_profile:
            profile = pipe.run_profiling_phase(duration_ms=DURATION_MS)
        result = pipe.run(spec, duration_ms=DURATION_MS, profile=profile)
        # PhaseResult invariants shared by every strategy.
        assert result.strategy == name
        assert result.workload == WORKLOAD
        assert result.duration_ms >= DURATION_MS
        assert result.ops_completed > 0
        assert result.peak_memory_bytes > 0
        assert result.collector_name
        assert all(p.duration_ms >= 0 for p in result.pauses)
        assert result.telemetry is not None
        assert result.telemetry["classes_loaded"] > 0
        assert (result.profile is not None) == spec.needs_profile

    def test_needs_profile_enforced(self):
        with pytest.raises(ReproError, match="needs an allocation profile"):
            _pipeline().run("polm2", duration_ms=DURATION_MS)

    def test_manual_rotation_telemetry(self):
        result = _pipeline().run("ng2c", duration_ms=4000.0)
        # Cassandra's manual strategy rotates a generation per memtable
        # flush; the rotation agent reports through telemetry.
        assert "generations_rotated" in result.telemetry


class _NoisyTelemetry(TelemetryAgent):
    pass


@pytest.fixture
def custom_strategy():
    """A third-party strategy: G1 plus an extra agent, no core edits."""
    spec = register_strategy(
        StrategySpec(
            name="g1-observed",
            collector_factory=G1Collector,
            build_agents=lambda ctx: [_NoisyTelemetry()],
            description="G1 with a second telemetry observer",
        )
    )
    yield spec
    unregister_strategy("g1-observed")


class TestThirdPartyStrategy:
    def test_runs_via_pipeline(self, custom_strategy):
        result = _pipeline().run("g1-observed", duration_ms=DURATION_MS)
        assert result.strategy == "g1-observed"
        assert result.collector_name == "G1"
        assert result.ops_completed > 0

    def test_runs_via_runner_and_full_matrix(self, custom_strategy):
        from repro.experiments.runner import ExperimentRunner, ExperimentSettings

        runner = ExperimentRunner(
            ExperimentSettings(
                profiling_ms=DURATION_MS,
                production_ms=DURATION_MS,
                seed=SEED,
                jobs=1,
            )
        )
        cell = runner.result(WORKLOAD, "g1-observed")
        assert cell.strategy == "g1-observed"
        matrix = runner.full_matrix(
            workloads=[WORKLOAD], strategies=["g1", "g1-observed"]
        )
        assert (WORKLOAD, "g1-observed") in matrix

    def test_runs_via_cli(self, custom_strategy, capsys):
        from repro.__main__ import main

        code = main(
            [
                "run",
                WORKLOAD,
                "--strategy",
                "g1-observed",
                "--duration-ms",
                str(DURATION_MS),
                "--seed",
                str(SEED),
            ]
        )
        assert code == 0
        assert "throughput" in capsys.readouterr().out
