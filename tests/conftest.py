"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.config import SimConfig
from repro.experiments.runner import reset_default_runner
from repro.gc.g1 import G1Collector
from repro.gc.ng2c import NG2CCollector
from repro.runtime.code import ClassModel
from repro.runtime.vm import VM


@pytest.fixture(autouse=True)
def _fresh_default_runner():
    """Kill the process-wide runner singleton around every test.

    ``default_runner()`` caches :class:`ExperimentSettings` read from the
    environment at first use; without this reset, a test that
    monkeypatches ``REPRO_*`` env vars could be served a runner built
    under another test's settings.
    """
    reset_default_runner()
    yield
    reset_default_runner()


@pytest.fixture
def small_config() -> SimConfig:
    """8 MiB heap / 1 MiB young: big enough for real collections, small
    enough that unit tests finish instantly."""
    return SimConfig.small()


@pytest.fixture
def g1_vm(small_config) -> VM:
    return VM(small_config, collector=G1Collector())


@pytest.fixture
def ng2c_vm(small_config) -> VM:
    return VM(small_config, collector=NG2CCollector())


def build_simple_class(
    name: str = "app.Simple",
    alloc_lines=(10,),
    call_lines=(),
    size_hint: int = 128,
) -> ClassModel:
    """A one-method class model: method ``run`` with the given sites."""
    model = ClassModel(name)
    method = model.add_method("run")
    for line in alloc_lines:
        method.add_alloc_site(line, "Obj", size_hint)
    for line, callee_class, callee_method in call_lines:
        method.add_call_site(line, callee_class, callee_method)
    return model


@pytest.fixture
def simple_class() -> ClassModel:
    return build_simple_class()
