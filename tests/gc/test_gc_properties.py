"""Property-based tests: no collector ever loses a live object."""

from __future__ import annotations

from typing import List

from hypothesis import given, settings, strategies as st

from repro.config import SimConfig
from repro.gc.c4 import C4Collector
from repro.gc.g1 import G1Collector
from repro.gc.ng2c import NG2CCollector
from repro.runtime.vm import VM

#: Action stream: (size, pretenure index, keep?, drop-epoch?).
actions = st.lists(
    st.tuples(
        st.integers(min_value=16, max_value=4096),
        st.integers(min_value=0, max_value=3),
        st.booleans(),
        st.booleans(),
    ),
    min_size=5,
    max_size=120,
)


def run_mutator(vm: VM, specs, pretenuring: bool) -> List:
    """Allocate per the action stream; returns the objects kept live."""
    root = vm.allocate_anonymous(64)
    vm.roots.pin("root", root)
    kept = []
    for size, index, keep, drop in specs:
        gen_id = vm.collector.resolve_allocation_gen(index if pretenuring else 0)
        vm.collector.before_allocation(size)
        obj = vm.heap.allocate(size, gen_id=gen_id)
        vm.collector.after_allocation(size, gen_id)
        if keep:
            vm.heap.write_ref(root, obj)
            kept.append(obj)
        if drop and len(kept) > 6:
            # Drop the oldest half of the kept set (an epoch dying).
            survivors = kept[len(kept) // 2 :]
            vm.heap.replace_refs(root, survivors)
            kept = survivors
    return kept


class TestNoLiveObjectLost:
    @given(specs=actions)
    @settings(max_examples=25, deadline=None)
    def test_g1_preserves_live_set(self, specs):
        vm = VM(SimConfig.small(), collector=G1Collector())
        kept = run_mutator(vm, specs, pretenuring=False)
        vm.collector.full_collect()
        live = {o.object_id for o in vm.heap.trace_live(vm.iter_roots())}
        assert {o.object_id for o in kept} <= live

    @given(specs=actions)
    @settings(max_examples=25, deadline=None)
    def test_ng2c_preserves_live_set(self, specs):
        vm = VM(SimConfig.small(), collector=NG2CCollector())
        kept = run_mutator(vm, specs, pretenuring=True)
        vm.collector.collect_young()
        vm.collector.collect_generations()
        live = {o.object_id for o in vm.heap.trace_live(vm.iter_roots())}
        assert {o.object_id for o in kept} <= live

    @given(specs=actions)
    @settings(max_examples=25, deadline=None)
    def test_c4_preserves_live_set(self, specs):
        vm = VM(SimConfig.small(), collector=C4Collector())
        kept = run_mutator(vm, specs, pretenuring=False)
        vm.collector.concurrent_cycle()
        live = {o.object_id for o in vm.heap.trace_live(vm.iter_roots())}
        assert {o.object_id for o in kept} <= live


class TestIdentityStability:
    @given(specs=actions)
    @settings(max_examples=25, deadline=None)
    def test_ids_stable_across_collections(self, specs):
        """The §4.3 invariant: identity hashes survive any number of moves."""
        vm = VM(SimConfig.small(), collector=G1Collector())
        kept = run_mutator(vm, specs, pretenuring=False)
        ids_before = [o.object_id for o in kept]
        vm.collector.collect_young()
        vm.collector.full_collect()
        assert [o.object_id for o in kept] == ids_before


class TestHeapConsistencyAfterGC:
    @given(specs=actions)
    @settings(max_examples=25, deadline=None)
    def test_generation_accounting_consistent(self, specs):
        vm = VM(SimConfig.small(), collector=NG2CCollector())
        run_mutator(vm, specs, pretenuring=True)
        vm.collector.collect_young()
        vm.collector.collect_generations()
        vm.heap.verify()

    @given(specs=actions)
    @settings(max_examples=25, deadline=None)
    def test_heap_invariants_hold_under_g1(self, specs):
        vm = VM(SimConfig.small(), collector=G1Collector())
        run_mutator(vm, specs, pretenuring=False)
        vm.heap.verify()
        vm.collector.collect_young()
        vm.heap.verify()
        vm.collector.full_collect()
        vm.heap.verify()
