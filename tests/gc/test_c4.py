"""Unit tests for the C4 concurrent-collector model."""

from repro.config import SimConfig, YOUNG_GEN
from repro.gc.c4 import C4Collector
from repro.gc.events import CONCURRENT
from repro.runtime.vm import VM


def build_vm(**overrides) -> VM:
    return VM(SimConfig.small(**overrides), collector=C4Collector())


class TestPauses:
    def test_all_pauses_below_10ms(self):
        """Paper §5: 'the duration of all pauses fall below 10 ms'."""
        vm = build_vm()
        root = vm.allocate_anonymous(64)
        vm.roots.pin("root", root)
        for i in range(6000):
            obj = vm.allocate_anonymous(1024)
            if i % 3 == 0:
                vm.heap.write_ref(root, obj)
            if i % 600 == 0:
                vm.heap.clear_refs(root)
        assert vm.collector.pauses, "no concurrent cycles ran"
        assert all(p.duration_ms < 10.0 for p in vm.collector.pauses)
        assert all(p.kind == CONCURRENT for p in vm.collector.pauses)

    def test_pauses_deterministic_per_seed(self):
        def run(seed):
            vm = VM(SimConfig.small(seed=seed), collector=C4Collector())
            for _ in range(10_000):
                vm.allocate_anonymous(1024)
            assert vm.collector.pauses, "no concurrent cycles ran"
            return [p.duration_ms for p in vm.collector.pauses]

        assert run(1) == run(1)
        assert run(1) != run(2)


class TestMutatorTax:
    def test_barrier_overhead(self):
        vm = build_vm()
        assert vm.collector.mutator_overhead == vm.config.costs.c4_barrier_tax
        assert vm.collector.mutator_overhead > 1.0


class TestMemory:
    def test_pre_reserves_whole_heap(self):
        vm = build_vm()
        assert vm.collector.pre_reserves_memory
        assert vm.collector.reserved_bytes == vm.config.heap_bytes

    def test_reclaims_garbage(self):
        vm = build_vm()
        for _ in range(6000):
            vm.allocate_anonymous(1024)  # all garbage
        assert vm.heap.used_bytes < 6000 * 1024

    def test_single_space(self):
        vm = build_vm()
        assert vm.collector.resolve_allocation_gen(0) == YOUNG_GEN
        assert vm.collector.resolve_allocation_gen(7) == YOUNG_GEN
