"""Unit tests for the GC log emitter."""

import pytest

from repro.config import SimConfig
from repro.gc.gclog import GCLog
from repro.gc.ng2c import NG2CCollector
from repro.runtime.vm import VM


@pytest.fixture
def logged_vm():
    vm = VM(SimConfig.small(), collector=NG2CCollector())
    log = GCLog(vm)
    return vm, log


class TestGCLog:
    def test_requires_collector(self):
        vm = VM(SimConfig.small())
        with pytest.raises(ValueError):
            GCLog(vm)

    def test_line_per_pause(self, logged_vm):
        vm, log = logged_vm
        vm.collector.collect_young()
        vm.collector.collect_young()
        assert len(log) == 2
        assert log.lines[0].startswith("[")
        assert "GC(1) Pause Young (NG2C)" in log.lines[0]
        assert "GC(2)" in log.lines[1]

    def test_heap_transition_format(self, logged_vm):
        vm, log = logged_vm
        for _ in range(2000):
            vm.allocate_anonymous(1024)  # garbage; young GC will trigger
        line = log.lines[0]
        assert "M->" in line
        assert f"({vm.config.heap_bytes // (1 << 20)}M)" in line
        assert line.rstrip().endswith("ms") or "ms (" in line

    def test_wholesale_detail_for_gen_collections(self, logged_vm):
        vm, log = logged_vm
        root = vm.allocate_anonymous(64)
        vm.roots.pin("root", root)
        gid = vm.collector.ensure_generation(1)
        for _ in range(100):
            vm.heap.write_ref(root, vm.heap.allocate(2048, gen_id=gid))
        vm.heap.clear_refs(root)
        vm.collector.collect_generations()
        gen_lines = [l for l in log.lines if "Pause Gen" in l]
        assert gen_lines
        assert "regions wholesale" in gen_lines[-1]

    def test_tail_and_render(self, logged_vm):
        vm, log = logged_vm
        for _ in range(3):
            vm.collector.collect_young()
        assert len(log.tail(2)) == 2
        assert log.render().count("\n") == 2
