"""Unit tests for GC pause events and the pause log."""

import pytest

from repro.gc.events import GCPause, PauseLog


def pause(duration_ms: float, kind: str = "young", cycle: int = 1) -> GCPause:
    return GCPause(
        cycle=cycle,
        start_ms=0.0,
        duration_ms=duration_ms,
        kind=kind,
        collector="test",
    )


class TestGCPause:
    def test_end_time(self):
        event = GCPause(
            cycle=1, start_ms=10.0, duration_ms=5.0, kind="young", collector="g1"
        )
        assert event.end_ms == 15.0

    def test_immutable(self):
        event = pause(1.0)
        with pytest.raises(Exception):
            event.duration_ms = 2.0


class TestPauseLog:
    def test_empty_log(self):
        log = PauseLog()
        assert log.count == 0
        assert log.worst_ms == 0.0
        assert log.total_pause_ms == 0.0
        assert log.durations_ms() == []

    def test_aggregations(self):
        log = PauseLog()
        for duration in (5.0, 20.0, 1.0):
            log.append(pause(duration))
        assert log.count == 3
        assert log.worst_ms == 20.0
        assert log.total_pause_ms == 26.0
        assert len(log) == 3

    def test_by_kind(self):
        log = PauseLog()
        log.append(pause(1.0, kind="young"))
        log.append(pause(2.0, kind="mixed"))
        log.append(pause(3.0, kind="young"))
        assert [p.duration_ms for p in log.by_kind("young")] == [1.0, 3.0]

    def test_pauses_returns_copy(self):
        log = PauseLog()
        log.append(pause(1.0))
        snapshot = log.pauses
        snapshot.clear()
        assert log.count == 1
