"""Unit tests for the NG2C pretenuring collector."""

import pytest

from repro.config import SimConfig, YOUNG_GEN
from repro.errors import UnknownGenerationError
from repro.gc.events import GEN, YOUNG
from repro.gc.ng2c import NG2CCollector
from repro.runtime.vm import VM


def build_vm(**overrides) -> VM:
    return VM(SimConfig.small(**overrides), collector=NG2CCollector())


class TestPretenuringAPI:
    def test_supports_pretenuring(self):
        assert NG2CCollector().supports_pretenuring

    def test_index_zero_is_young(self):
        vm = build_vm()
        assert vm.collector.resolve_allocation_gen(0) == YOUNG_GEN

    def test_ensure_generation_creates_once(self):
        vm = build_vm()
        gid = vm.collector.ensure_generation(3)
        assert vm.collector.ensure_generation(3) == gid
        assert vm.collector.created_generation_count == 1

    def test_distinct_indexes_distinct_generations(self):
        vm = build_vm()
        assert vm.collector.ensure_generation(1) != vm.collector.ensure_generation(2)

    def test_rotate_generation(self):
        vm = build_vm()
        first = vm.collector.ensure_generation(1)
        second = vm.collector.rotate_generation(1)
        assert second != first
        assert vm.collector.resolve_allocation_gen(1) == second
        assert first in vm.collector.dynamic_generation_ids

    def test_cannot_rotate_young(self):
        vm = build_vm()
        with pytest.raises(UnknownGenerationError):
            vm.collector.rotate_generation(0)


class TestWholesaleReclamation:
    def test_dead_generation_regions_freed_without_copy(self):
        vm = build_vm()
        root = vm.allocate_anonymous(64)
        vm.roots.pin("root", root)
        gid = vm.collector.ensure_generation(1)
        cohort = [vm.heap.allocate(2048, gen_id=gid) for _ in range(200)]
        for obj in cohort:
            vm.heap.write_ref(root, obj)
        vm.heap.clear_refs(root)  # whole cohort dies together
        vm.collector.collect_generations()
        last = vm.collector.pauses[-1]
        assert last.kind == GEN
        assert last.stats["regions_freed_wholesale"] > 0
        assert last.stats["compacted_bytes"] == 0

    def test_live_pretenured_data_not_copied(self):
        vm = build_vm()
        root = vm.allocate_anonymous(64)
        vm.roots.pin("root", root)
        gid = vm.collector.ensure_generation(1)
        cohort = [vm.heap.allocate(2048, gen_id=gid) for _ in range(100)]
        for obj in cohort:
            vm.heap.write_ref(root, obj)
        addresses = [o.address for o in cohort]
        vm.collector.collect_generations()
        assert [o.address for o in cohort] == addresses

    def test_rotated_empty_generation_retired(self):
        vm = build_vm()
        gid = vm.collector.ensure_generation(1)
        vm.heap.allocate(1024, gen_id=gid)  # garbage in the old rotation
        vm.collector.rotate_generation(1)
        vm.collector.collect_generations()
        assert gid not in vm.heap.generations


class TestTriggers:
    def test_pretenured_budget_triggers_gen_collection(self):
        vm = build_vm()
        vm.collector.ensure_generation(1)
        # Pretenure more than young_bytes without touching young.
        from repro.runtime.code import ClassModel

        model = ClassModel("C")
        site = model.add_method("m").add_alloc_site(10, "Blk", 4096)
        site.gen_annotated = True
        site.pre_set_gen = 1
        vm.classloader.load(model)
        thread = vm.new_thread("t")
        budget = vm.config.young_bytes
        with thread.entry("C", "m"):
            for _ in range(budget // 4096 + 8):
                thread.alloc(10, keep=False)
        assert any(p.kind == GEN for p in vm.collector.pauses)

    def test_young_collection_on_occupancy(self):
        vm = build_vm()
        while not vm.collector.pauses:
            vm.allocate_anonymous(2048)
        assert vm.collector.pauses[0].kind == YOUNG

    def test_unannotated_ng2c_promotes_like_g1(self):
        vm = build_vm()
        root = vm.allocate_anonymous(64)
        vm.roots.pin("root", root)
        keeper = vm.allocate_anonymous(512)
        vm.heap.write_ref(root, keeper)
        for _ in range(vm.config.tenure_threshold + 1):
            start = vm.collector.cycles
            while vm.collector.cycles == start:
                vm.allocate_anonymous(2048)
        assert keeper.gen_id == vm.collector.old_gen_id


class TestFullCollection:
    def test_full_preserves_pretenured_placement(self):
        vm = build_vm()
        root = vm.allocate_anonymous(64)
        vm.roots.pin("root", root)
        gid = vm.collector.ensure_generation(2)
        obj = vm.heap.allocate(1024, gen_id=gid)
        vm.heap.write_ref(root, obj)
        vm.collector.full_collect()
        assert obj.gen_id == gid
        live = {o.object_id for o in vm.heap.trace_live(vm.iter_roots())}
        assert obj.object_id in live
