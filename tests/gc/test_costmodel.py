"""Unit tests for the pause cost model."""

from repro.config import CostModel
from repro.gc import costmodel


COSTS = CostModel()


class TestYoungPause:
    def test_floor_is_fixed_cost(self):
        assert costmodel.young_pause_us(COSTS, 0, 0, 0) == COSTS.pause_fixed_us

    def test_monotonic_in_survivors(self):
        a = costmodel.young_pause_us(COSTS, 100, 1024, 0)
        b = costmodel.young_pause_us(COSTS, 100, 2048, 0)
        assert b > a

    def test_promotion_costs_more_than_survival(self):
        survive = costmodel.young_pause_us(COSTS, 0, 10_240, 0)
        promote = costmodel.young_pause_us(COSTS, 0, 0, 10_240)
        assert promote > survive

    def test_card_scan_floor_scales_with_tenured(self):
        small = costmodel.young_pause_us(COSTS, 0, 0, 0, tenured_bytes=1 << 20)
        large = costmodel.young_pause_us(COSTS, 0, 0, 0, tenured_bytes=32 << 20)
        assert large > small


class TestOtherPauses:
    def test_mixed_scales_with_compaction(self):
        a = costmodel.mixed_pause_us(COSTS, 0, 1024)
        b = costmodel.mixed_pause_us(COSTS, 0, 1 << 20)
        assert b > a

    def test_gen_wholesale_free_is_cheap(self):
        wholesale = costmodel.gen_pause_us(COSTS, 0, 0, regions_freed_wholesale=100)
        compact = costmodel.gen_pause_us(COSTS, 0, 100 * 64 * 1024, 0)
        assert wholesale < compact / 10

    def test_full_collection_most_expensive_fixed(self):
        full = costmodel.full_pause_us(COSTS, 0, 0)
        young = costmodel.young_pause_us(COSTS, 0, 0, 0)
        assert full > young
