"""Unit tests for G1's adaptive pause-time goal (MaxGCPauseMillis)."""

import pytest

from repro.config import SimConfig
from repro.gc.g1 import G1Collector
from repro.runtime.vm import VM


class TestAdaptiveYoungSizing:
    def test_disabled_without_goal(self):
        vm = VM(SimConfig.small(), collector=G1Collector())
        target_before = vm.collector.young_target_bytes
        vm.collector._adapt_young_size(pause_ms=10_000.0)
        assert vm.collector.young_target_bytes == target_before

    def test_shrinks_when_over_goal(self):
        vm = VM(SimConfig.small(pause_goal_ms=10.0), collector=G1Collector())
        before = vm.collector.young_target_bytes
        vm.collector._adapt_young_size(pause_ms=50.0)
        assert vm.collector.young_target_bytes < before

    def test_grows_back_when_under_goal(self):
        vm = VM(SimConfig.small(pause_goal_ms=10.0), collector=G1Collector())
        vm.collector._adapt_young_size(pause_ms=50.0)
        shrunk = vm.collector.young_target_bytes
        vm.collector._adapt_young_size(pause_ms=1.0)
        assert vm.collector.young_target_bytes > shrunk

    def test_floor_respected(self):
        config = SimConfig.small(pause_goal_ms=0.001)
        vm = VM(config, collector=G1Collector())
        for _ in range(100):
            vm.collector._adapt_young_size(pause_ms=1000.0)
        floor = int(config.young_bytes * G1Collector.MIN_YOUNG_FRACTION)
        assert vm.collector.young_target_bytes == floor

    def test_ceiling_respected(self):
        config = SimConfig.small(pause_goal_ms=1_000_000.0)
        vm = VM(config, collector=G1Collector())
        for _ in range(100):
            vm.collector._adapt_young_size(pause_ms=0.001)
        ceiling = int(config.young_bytes * G1Collector.MAX_YOUNG_FRACTION)
        assert vm.collector.young_target_bytes == ceiling

    def test_goal_increases_collection_frequency(self):
        def run(goal):
            config = SimConfig.small(pause_goal_ms=goal)
            vm = VM(config, collector=G1Collector())
            root = vm.allocate_anonymous(64)
            vm.roots.pin("root", root)
            held = []
            for i in range(12_000):
                obj = vm.allocate_anonymous(512)
                vm.heap.write_ref(root, obj)
                held.append(obj)
                if len(held) > 3000:
                    vm.heap.replace_refs(root, held[1500:])
                    held = held[1500:]
            return vm.collector

        plain = run(goal=None)
        goal = run(goal=1.0)  # unreachably tight goal -> max shrinking
        assert len(goal.pauses) > len(plain.pauses)

    def test_invalid_goal_rejected(self):
        with pytest.raises(ValueError):
            SimConfig.small(pause_goal_ms=0.0)
