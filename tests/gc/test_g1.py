"""Unit tests for the G1-like collector."""

import pytest

from repro.config import SimConfig, YOUNG_GEN
from repro.gc.events import FULL, MIXED, YOUNG
from repro.gc.g1 import G1Collector
from repro.runtime.vm import VM


def build_vm(**overrides) -> VM:
    return VM(SimConfig.small(**overrides), collector=G1Collector())


def fill_young(vm, obj_size=1024, keep_root=None):
    """Allocate until a young collection has happened at least once."""
    collector = vm.collector
    start = collector.cycles
    guard = 0
    while collector.cycles == start:
        obj = vm.allocate_anonymous(obj_size)
        if keep_root is not None:
            vm.heap.write_ref(keep_root, obj)
        guard += 1
        assert guard < 100_000, "young collection never triggered"


class TestPolicy:
    def test_everything_allocates_young(self):
        vm = build_vm()
        assert vm.collector.resolve_allocation_gen(0) == YOUNG_GEN
        # G1 has no pretenuring: nonzero indexes are ignored.
        assert vm.collector.resolve_allocation_gen(5) == YOUNG_GEN

    def test_no_pretenuring_support(self):
        assert not G1Collector().supports_pretenuring

    def test_young_collection_triggered_by_occupancy(self):
        vm = build_vm()
        fill_young(vm)
        kinds = {p.kind for p in vm.collector.pauses}
        assert YOUNG in kinds

    def test_dead_young_objects_reclaimed_without_copy(self):
        vm = build_vm()
        fill_young(vm)  # all garbage
        young_pauses = [p for p in vm.collector.pauses if p.kind == YOUNG]
        assert young_pauses[0].stats["survivor_bytes"] == 0
        assert young_pauses[0].stats["promoted_bytes"] == 0


class TestAgingAndPromotion:
    def test_survivors_age_then_promote(self):
        vm = build_vm()
        root = vm.allocate_anonymous(64)
        vm.roots.pin("root", root)
        keeper = vm.allocate_anonymous(512)
        vm.heap.write_ref(root, keeper)
        threshold = vm.config.tenure_threshold
        for _ in range(threshold + 1):
            fill_young(vm)
        assert keeper.gen_id == vm.collector.old_gen_id
        assert keeper.age >= threshold

    def test_promotion_reported_in_stats(self):
        vm = build_vm()
        root = vm.allocate_anonymous(64)
        vm.roots.pin("root", root)
        for _ in range(200):
            vm.heap.write_ref(root, vm.allocate_anonymous(512))
        for _ in range(vm.config.tenure_threshold + 1):
            fill_young(vm)
        promoted = sum(
            p.stats.get("promoted_bytes", 0) for p in vm.collector.pauses
        )
        assert promoted > 0


class TestMixedCollections:
    def test_mixed_reclaims_old_garbage(self):
        vm = build_vm()
        root = vm.allocate_anonymous(64)
        vm.roots.pin("root", root)
        # Build old-generation data, then kill it and force pressure.
        for _ in range(4500):
            vm.heap.write_ref(root, vm.allocate_anonymous(1024))
        for _ in range(vm.config.tenure_threshold + 1):
            fill_young(vm)
        vm.heap.clear_refs(root)  # old data now garbage
        for _ in range(12):
            fill_young(vm)
        kinds = {p.kind for p in vm.collector.pauses}
        assert MIXED in kinds or FULL in kinds

    def test_old_occupancy_drops_after_mixed(self):
        vm = build_vm()
        root = vm.allocate_anonymous(64)
        vm.roots.pin("root", root)
        for _ in range(2000):
            vm.heap.write_ref(root, vm.allocate_anonymous(1024))
        for _ in range(vm.config.tenure_threshold + 1):
            fill_young(vm)
        vm.heap.clear_refs(root)
        before = vm.heap.generation(vm.collector.old_gen_id).used_bytes
        vm.collector.collect_young()
        vm.collector.collect_mixed()
        after = vm.heap.generation(vm.collector.old_gen_id).used_bytes
        assert after < before


class TestFullCollection:
    def test_handle_oom_runs_full(self):
        vm = build_vm()
        vm.collector.handle_oom()
        assert vm.collector.pauses[-1].kind == FULL

    def test_full_preserves_live_objects(self):
        vm = build_vm()
        root = vm.allocate_anonymous(64)
        vm.roots.pin("root", root)
        kids = [vm.allocate_anonymous(128) for _ in range(10)]
        for kid in kids:
            vm.heap.write_ref(root, kid)
        ids = {k.object_id for k in kids}
        vm.collector.full_collect()
        live = {o.object_id for o in vm.heap.trace_live(vm.iter_roots())}
        assert ids <= live


class TestPauseAccounting:
    def test_pauses_advance_clock(self):
        vm = build_vm()
        before = vm.clock.now_ms
        fill_young(vm)
        total = vm.collector.pause_log.total_pause_ms
        assert vm.clock.now_ms >= before + total

    def test_cycle_listener_invoked(self):
        vm = build_vm()
        events = []
        vm.collector.add_cycle_listener(events.append)
        fill_young(vm)
        assert len(events) == len(vm.collector.pauses)
