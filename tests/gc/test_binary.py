"""Unit tests for the binary (Memento-style) pretenuring collector."""

from repro.config import SimConfig, YOUNG_GEN
from repro.gc.binary import BinaryPretenuringCollector
from repro.runtime.vm import VM


def build_vm() -> VM:
    return VM(SimConfig.small(), collector=BinaryPretenuringCollector())


class TestBinaryPretenuring:
    def test_supports_pretenuring_api(self):
        assert BinaryPretenuringCollector().supports_pretenuring

    def test_all_indexes_map_to_single_old_space(self):
        vm = build_vm()
        collector = vm.collector
        assert collector.ensure_generation(0) == YOUNG_GEN
        old = collector.ensure_generation(1)
        assert collector.ensure_generation(2) == old
        assert collector.ensure_generation(9) == old
        assert old == collector.old_gen_id

    def test_pretenured_allocations_land_in_old(self):
        vm = build_vm()
        gen_id = vm.collector.resolve_allocation_gen(3)
        obj = vm.heap.allocate(256, gen_id=gen_id)
        assert obj.gen_id == vm.collector.old_gen_id

    def test_instrumenter_accepts_binary_collector(self):
        from repro.core.instrumenter import Instrumenter
        from repro.core.profile import (
            AllocationProfile,
            AllocDirective,
            CallDirective,
        )

        vm = build_vm()
        profile = AllocationProfile(
            workload="unit",
            alloc_directives=[AllocDirective("C", "m", 1)],
            call_directives=[CallDirective("C", "r", 2, target_generation=4)],
        )
        Instrumenter(profile).attach(vm)  # §4.5: GC-independent

    def test_colocated_cohorts_force_compaction(self):
        """Two different-lifetime cohorts in one space: when the short
        cohort dies, its regions are interleaved with the long cohort's
        data, so reclamation requires copying — unlike NG2C, where each
        cohort's generation dies wholesale."""
        vm = build_vm()
        root = vm.allocate_anonymous(64)
        vm.roots.pin("root", root)
        old = vm.collector.ensure_generation(1)
        short_cohort = []
        for i in range(400):
            # Interleave: even objects die, odd objects live.
            obj = vm.heap.allocate(1024, gen_id=old)
            if i % 2:
                vm.heap.write_ref(root, obj)
            else:
                short_cohort.append(obj)
        # Kill the short cohort and compact.
        vm.collector.collect_mixed()
        mixed = [p for p in vm.collector.pauses if p.kind == "mixed"]
        assert mixed
        assert mixed[-1].stats["compacted_bytes"] > 0
