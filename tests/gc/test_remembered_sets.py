"""Tests for remembered-set-based young collections."""

from typing import List

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import SimConfig
from repro.gc.g1 import G1Collector
from repro.gc.ng2c import NG2CCollector
from repro.runtime.vm import VM


def vm_with(remsets: bool, collector=None) -> VM:
    return VM(
        SimConfig.small(use_remembered_sets=remsets),
        collector=collector or G1Collector(),
    )


class TestWriteBarrierMaintenance:
    def test_old_to_young_edge_recorded(self):
        vm = vm_with(True)
        old = vm.heap.new_generation("extra")
        parent = vm.heap.allocate(64, gen_id=vm.collector.old_gen_id)
        child = vm.heap.allocate(64)  # young
        vm.heap.write_ref(parent, child)
        assert parent.object_id in vm.heap.old_to_young_remset

    def test_young_to_young_not_recorded(self):
        vm = vm_with(True)
        parent = vm.heap.allocate(64)
        child = vm.heap.allocate(64)
        vm.heap.write_ref(parent, child)
        assert parent.object_id not in vm.heap.old_to_young_remset

    def test_pretenured_birth_refs_recorded(self):
        vm = vm_with(True, NG2CCollector())
        gid = vm.collector.ensure_generation(1)
        child = vm.heap.allocate(64)  # young
        parent = vm.heap.allocate(64, gen_id=gid, refs=[child])
        assert parent.object_id in vm.heap.old_to_young_remset

    def test_promotion_with_young_children_recorded(self):
        vm = vm_with(True)
        root = vm.allocate_anonymous(64)
        vm.roots.pin("root", root)
        parent = vm.allocate_anonymous(256)
        vm.heap.write_ref(root, parent)
        # Age the parent past the threshold while giving it young children.
        for _ in range(vm.config.tenure_threshold):
            vm.collector.collect_young()
        child = vm.heap.allocate(64)
        vm.heap.write_ref(parent, child)
        assert parent.gen_id == vm.collector.old_gen_id
        assert parent.object_id in vm.heap.old_to_young_remset

    def test_stale_entries_pruned_at_collection(self):
        vm = vm_with(True)
        root = vm.allocate_anonymous(64)
        vm.roots.pin("root", root)
        parent = vm.allocate_anonymous(64)
        vm.heap.write_ref(root, parent)
        for _ in range(vm.config.tenure_threshold):
            vm.collector.collect_young()
        child = vm.heap.allocate(64)
        vm.heap.write_ref(parent, child)
        vm.heap.remove_ref(parent, child)  # no young refs remain
        vm.collector.collect_young()
        assert parent.object_id not in vm.heap.old_to_young_remset


class TestYoungCollectionSemantics:
    def test_remset_rooted_young_objects_survive(self):
        vm = vm_with(True)
        root = vm.allocate_anonymous(64)
        vm.roots.pin("root", root)
        parent = vm.allocate_anonymous(64)
        vm.heap.write_ref(root, parent)
        for _ in range(vm.config.tenure_threshold):
            vm.collector.collect_young()
        assert parent.gen_id == vm.collector.old_gen_id
        child = vm.heap.allocate(64)
        vm.heap.write_ref(parent, child)
        child_id = child.object_id
        vm.collector.collect_young()
        live = {o.object_id for o in vm.heap.trace_live(vm.iter_roots())}
        assert child_id in live

    def test_floating_garbage_from_dead_parents(self):
        """The conservatism the mechanism trades for cheap young GCs:
        a dead tenured parent still in the remset keeps its young child
        alive through a young collection."""
        vm = vm_with(True)
        root = vm.allocate_anonymous(64)
        vm.roots.pin("root", root)
        parent = vm.allocate_anonymous(64)
        vm.heap.write_ref(root, parent)
        for _ in range(vm.config.tenure_threshold):
            vm.collector.collect_young()
        child = vm.heap.allocate(64)
        vm.heap.write_ref(parent, child)
        vm.heap.remove_ref(root, parent)  # parent is now garbage
        child_id = child.object_id
        vm.collector.collect_young()
        # Conservatively kept: the child was copied, not reclaimed.
        surviving = {o.object_id for g in vm.heap.generations.values()
                     for o in g.iter_objects()}
        assert child_id in surviving

    def test_partial_flag_set(self):
        vm = vm_with(True)
        vm.collector.collect_young()
        assert vm.collector.last_trace_was_partial
        vm.collector.full_collect()
        assert not vm.collector.last_trace_was_partial


#: Mutator action stream shared with the equivalence property test.
actions = st.lists(
    st.tuples(
        st.integers(min_value=16, max_value=2048),
        st.booleans(),
        st.booleans(),
    ),
    min_size=5,
    max_size=100,
)


def run_mutator(vm: VM, specs) -> List:
    root = vm.allocate_anonymous(64)
    vm.roots.pin("root", root)
    kept = []
    for size, keep, drop in specs:
        obj = vm.allocate_anonymous(size)
        if keep:
            vm.heap.write_ref(root, obj)
            kept.append(obj)
        if drop and len(kept) > 4:
            survivors = kept[len(kept) // 2 :]
            vm.heap.replace_refs(root, survivors)
            kept = survivors
    return kept


class TestRemsetEquivalenceProperty:
    @given(specs=actions)
    @settings(max_examples=30, deadline=None)
    def test_no_live_object_lost_vs_precise_mode(self, specs):
        """Remembered sets may only ADD floating garbage, never lose a
        truly live object."""
        vm = vm_with(True)
        kept = run_mutator(vm, specs)
        vm.collector.collect_young()
        live_after = {
            o.object_id for o in vm.heap.trace_live(vm.iter_roots())
        }
        assert {o.object_id for o in kept} <= live_after
        vm.heap.verify()
