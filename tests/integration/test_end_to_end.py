"""End-to-end integration tests: the paper's headline claims, small scale.

Each test runs the complete POLM2 pipeline — profiling phase (Recorder +
Dumper + Analyzer) then production phase (Instrumenter + NG2C) — against
one of the evaluation platforms, and checks the paper's three claims:

1. pauses drop substantially vs G1 (Figure 5/6);
2. throughput is not degraded (Figure 7/8);
3. memory is not increased (Figure 9);

plus the Table 1 profiling-metrics shape and profile persistence (§3.5).
"""

import pytest

from repro.config import SimConfig
from repro.core.pipeline import POLM2Pipeline
from repro.core.profile import AllocationProfile
from repro.workloads import make_workload

PROFILING_MS = 8_000.0
PRODUCTION_MS = 12_000.0


@pytest.fixture(scope="module")
def cassandra_pipeline():
    return POLM2Pipeline(lambda: make_workload("cassandra-wi", seed=11))


@pytest.fixture(scope="module")
def cassandra_profile(cassandra_pipeline):
    return cassandra_pipeline.run_profiling_phase(duration_ms=PROFILING_MS)


class TestCassandraEndToEnd:
    def test_profile_shape_matches_table1(self, cassandra_profile):
        # Paper Table 1, Cassandra-WI row: 11 sites, 4 generations,
        # 2 conflicts.  Scale and profiling length move the numbers a
        # little; the shape must hold.
        assert 8 <= cassandra_profile.instrumented_site_count <= 12
        assert 3 <= cassandra_profile.generations_used <= 6
        assert cassandra_profile.conflicts_detected == 2

    def test_conflict_sites_are_the_shared_helpers(self, cassandra_profile):
        sites = {d.location for d in cassandra_profile.alloc_directives}
        assert ("org.apache.cassandra.utils.Util", "cloneRow", 80) in sites
        assert (
            "org.apache.cassandra.utils.ByteBufferUtil",
            "allocate",
            90,
        ) in sites

    def test_read_path_kept_young_by_directives(self, cassandra_profile):
        directives = {
            d.location: d.target_generation
            for d in cassandra_profile.call_directives
        }
        read_clone = ("org.apache.cassandra.service.ReadExecutor", "execute", 63)
        assert directives.get(read_clone) == 0

    def test_pause_reduction_vs_g1(self, cassandra_pipeline, cassandra_profile):
        polm2 = cassandra_pipeline.run_production_phase(
            cassandra_profile, duration_ms=PRODUCTION_MS
        )
        g1 = cassandra_pipeline.run_baseline("g1", duration_ms=PRODUCTION_MS)
        reduction = 1 - max(polm2.pause_durations_ms()) / max(
            g1.pause_durations_ms()
        )
        assert reduction > 0.4  # paper: 55%

    def test_throughput_and_memory_not_degraded(
        self, cassandra_pipeline, cassandra_profile
    ):
        polm2 = cassandra_pipeline.run_production_phase(
            cassandra_profile, duration_ms=PRODUCTION_MS
        )
        g1 = cassandra_pipeline.run_baseline("g1", duration_ms=PRODUCTION_MS)
        assert polm2.throughput_ops_s >= 0.95 * g1.throughput_ops_s
        assert polm2.peak_memory_bytes <= 1.15 * g1.peak_memory_bytes

    def test_profile_roundtrips_through_disk(self, cassandra_profile, tmp_path):
        # §3.5: profiles are files, selectable per expected workload.
        path = str(tmp_path / "cassandra-wi.json")
        cassandra_profile.save(path)
        restored = AllocationProfile.load(path)
        assert restored.alloc_directives == cassandra_profile.alloc_directives
        assert restored.call_directives == cassandra_profile.call_directives


class TestReadIntensiveBeatManual:
    """Paper §5.4.1: POLM2 outperforms manual NG2C on Cassandra-RI.

    The profile needs a full profiling window here (as in the paper's
    five-minute phase): with too few snapshots the estimates degrade and
    POLM2 loses its edge — the dependency §5.3 calls out explicitly.
    """

    def test_polm2_beats_misplaced_manual_annotations(self):
        pipeline = POLM2Pipeline(lambda: make_workload("cassandra-ri", seed=11))
        profile = pipeline.run_profiling_phase(duration_ms=20_000.0)
        polm2 = pipeline.run_production_phase(profile, duration_ms=15_000.0)
        manual = pipeline.run_baseline("ng2c", duration_ms=15_000.0)
        assert max(polm2.pause_durations_ms()) < max(manual.pause_durations_ms())


class TestGraphChiEndToEnd:
    def test_wholesale_batch_reclamation(self):
        pipeline = POLM2Pipeline(lambda: make_workload("graphchi-pr", seed=11))
        profile = pipeline.run_profiling_phase(duration_ms=PROFILING_MS)
        sites = {d.location[:2] for d in profile.alloc_directives}
        shard = "edu.cmu.graphchi.shards.MemoryShard"
        assert (shard, "loadBatch") in sites
        result = pipeline.run_production_phase(profile, duration_ms=PRODUCTION_MS)
        wholesale = sum(
            p.stats.get("regions_freed_wholesale", 0) for p in result.pauses
        )
        assert wholesale > 0

    def test_conflict_detected_on_shared_pool(self):
        pipeline = POLM2Pipeline(lambda: make_workload("graphchi-cc", seed=11))
        profile = pipeline.run_profiling_phase(duration_ms=PROFILING_MS)
        assert profile.conflicts_detected >= 1


class TestLuceneEndToEnd:
    def test_polm2_annotates_fewer_sites_than_manual(self):
        pipeline = POLM2Pipeline(lambda: make_workload("lucene", seed=11))
        profile = pipeline.run_profiling_phase(duration_ms=PROFILING_MS)
        manual = make_workload("lucene").manual_ng2c()
        # Paper Table 1: POLM2 2/8 — far fewer sites than the developer
        # annotated, because most of the hand-picked sites die young.
        assert profile.instrumented_site_count < len(manual.alloc_directives)

    def test_polm2_not_worse_than_manual(self):
        pipeline = POLM2Pipeline(lambda: make_workload("lucene", seed=11))
        profile = pipeline.run_profiling_phase(duration_ms=20_000.0)
        polm2 = pipeline.run_production_phase(profile, duration_ms=15_000.0)
        manual = pipeline.run_baseline("ng2c", duration_ms=15_000.0)
        assert sum(polm2.pause_durations_ms()) <= 1.2 * sum(
            manual.pause_durations_ms()
        )
