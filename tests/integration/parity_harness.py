"""Deterministic end-to-end runs digested for byte-for-byte parity checks.

The inner-loop fast paths (interned allocation traces, epoch-based mark
bits, incremental page liveness) must not change a single observable
result.  This harness runs fixed-seed workload/collector scenarios through
the full profiling stack (Recorder + Dumper + collector) and reduces each
run to a canonical digest covering

* the allocation profile (trace table + per-trace id streams),
* the GC pause series (cycle, kind, duration, stats, timestamp),
* every snapshot's physical and logical content (pages written, sizes,
  materialized live-id sets), and
* end-of-run accounting (virtual clock, allocation counters, op count).

``tests/integration/test_gc_loop_parity.py`` compares these digests
against goldens generated from the pre-optimization implementation; any
drift in results — however the hot paths are reworked — fails the test.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List, Optional

from repro.config import SimConfig, resolve_object_scale
from repro.core.analyzer import Analyzer
from repro.core.dumper import Dumper
from repro.core.recorder import Recorder
from repro.gc.c4 import C4Collector
from repro.gc.g1 import G1Collector
from repro.gc.ng2c import NG2CCollector
from repro.heap.objects import _reset_identity_hashes
from repro.runtime.vm import VM
from repro.workloads import make_workload

_COLLECTORS = {
    "g1": G1Collector,
    "ng2c": NG2CCollector,
    "c4": C4Collector,
}

#: The parity matrix: every hot path is exercised — full-heap tracing
#: (precise liveness), remembered-set partial tracing plus the Recorder's
#: full re-trace, allocation logging with deep/varied stacks, no-need page
#: marking, and delta snapshots — across all three collector families.
SCENARIOS = (
    ("cassandra-wi", "ng2c", False, 7, 1500.0),
    ("cassandra-wi", "g1", True, 11, 1500.0),
    ("graphchi-pr", "g1", False, 13, 900.0),
    ("lucene", "ng2c", True, 17, 900.0),
    ("cassandra-wr", "c4", False, 19, 4000.0),
)


def _sha(payload) -> str:
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def _record_scenario(
    workload_name: str,
    collector_name: str,
    use_remsets: bool,
    seed: int,
    duration_ms: float,
    object_scale: Optional[int] = None,
):
    """Run one scenario's profiling recording; returns (vm, recorder, dumper)."""
    _reset_identity_hashes()
    scale = resolve_object_scale(object_scale)
    duration_ms *= scale
    # A reduced heap keeps runs quick while forcing frequent collections,
    # so every trace/evacuate/no-need path gets exercised.
    config = SimConfig(
        heap_bytes=16 * 1024 * 1024 * scale,
        young_bytes=2 * 1024 * 1024 * scale,
        seed=seed,
        use_remembered_sets=use_remsets,
    )
    vm = VM(config, collector=_COLLECTORS[collector_name]())
    recorder = Recorder(snapshot_every=1)
    dumper = Dumper(vm)
    recorder.attach(vm, dumper)
    workload = make_workload(workload_name, seed=seed)
    for model in workload.class_models():
        vm.classloader.load(model)
    workload.setup(vm)
    while vm.clock.now_ms < duration_ms:
        workload.tick()
    workload.teardown()
    return vm, recorder, dumper


def scenario_sttree(*scenario, object_scale: Optional[int] = None):
    """The STTree one golden scenario's recording analyzes to.

    Used by the merge property tests: the five parity scenarios double
    as realistic, structurally diverse trees for checking that
    ``STTree.merge`` is associative and commutative on real profiles.
    """
    _vm, recorder, dumper = _record_scenario(
        *scenario, object_scale=object_scale
    )
    return Analyzer(recorder.records, list(dumper.store)).build_sttree()


def run_scenario(
    workload_name: str,
    collector_name: str,
    use_remsets: bool,
    seed: int,
    duration_ms: float,
    object_scale: Optional[int] = None,
) -> Dict:
    """Run one profiling-phase scenario and return its canonical digest."""
    vm, recorder, dumper = _record_scenario(
        workload_name,
        collector_name,
        use_remsets,
        seed,
        duration_ms,
        object_scale,
    )
    # The digest payload records the *scaled* duration, as run.
    duration_ms *= resolve_object_scale(object_scale)
    records = recorder.records
    traces_payload = {
        str(tid): [list(frame) for frame in trace]
        for tid, trace in records.traces.items()
    }
    streams_payload = {
        str(tid): list(stream) for tid, stream in records.streams.items()
    }
    pauses_payload: List = [
        [
            pause.cycle,
            pause.kind,
            pause.collector,
            round(pause.start_ms, 6),
            round(pause.duration_ms, 6),
            sorted(pause.stats.items()),
        ]
        for pause in vm.collector.pauses
    ]
    snapshots_payload = [
        {
            "seq": snap.seq,
            "pages_written": snap.pages_written,
            "size_bytes": snap.size_bytes,
            "duration_us": round(snap.duration_us, 6),
            "live_count": snap.live_count,
            "live_sha": _sha(sorted(snap.live_object_ids)),
        }
        for snap in dumper.store
    ]
    # The analysis stage must also be invariant: the STTree built from the
    # recording is reduced to its content hash (schema-versioned IR).
    sttree = Analyzer(records, list(dumper.store)).build_sttree()
    return {
        "scenario": {
            "workload": workload_name,
            "collector": collector_name,
            "use_remembered_sets": use_remsets,
            "seed": seed,
            "duration_ms": duration_ms,
        },
        "sttree": {"content_hash": sttree.digest()},
        "records": {
            "trace_count": records.trace_count,
            "total_allocations": records.total_allocations,
            "traces_sha": _sha(traces_payload),
            "streams_sha": _sha(streams_payload),
        },
        "pauses": {
            "count": len(pauses_payload),
            "sha": _sha(pauses_payload),
        },
        "snapshots": snapshots_payload,
        "end_state": {
            "clock_us": round(vm.clock.now_us, 6),
            "ops_completed": vm.ops_completed,
            "allocated_objects": vm.heap.total_allocated_objects,
            "allocated_bytes": vm.heap.total_allocated_bytes,
            "cycles": vm.collector.cycles,
        },
    }


def run_all() -> List[Dict]:
    return [run_scenario(*scenario) for scenario in SCENARIOS]
