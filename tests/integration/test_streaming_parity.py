"""IncrementalAnalyzer == batch Analyzer on the golden scenarios.

Each parity scenario is run once through the full profiling stack; the
captured recording (allocation streams + snapshot store) is then analyzed
twice — by the batch :class:`~repro.core.analyzer.Analyzer` and by the
streaming :class:`~repro.core.stages.IncrementalAnalyzer` — and the two
serialized STTree IRs must match byte for byte (same digest, same JSON).
"""

import pytest

from repro.config import SimConfig
from repro.core.analyzer import Analyzer
from repro.core.dumper import Dumper
from repro.core.recorder import Recorder
from repro.core.stages import IncrementalAnalyzer
from repro.heap.objects import _reset_identity_hashes
from repro.runtime.vm import VM
from repro.workloads import make_workload
from tests.integration.parity_harness import _COLLECTORS, SCENARIOS


def _record_scenario(workload_name, collector_name, use_remsets, seed, duration_ms):
    """One profiling run, returning the raw records and snapshot store."""
    _reset_identity_hashes()
    config = SimConfig(
        heap_bytes=16 * 1024 * 1024,
        young_bytes=2 * 1024 * 1024,
        seed=seed,
        use_remembered_sets=use_remsets,
    )
    vm = VM(config, collector=_COLLECTORS[collector_name]())
    recorder = Recorder(snapshot_every=1)
    dumper = Dumper(vm)
    recorder.attach(vm, dumper)
    workload = make_workload(workload_name, seed=seed)
    for model in workload.class_models():
        vm.classloader.load(model)
    workload.setup(vm)
    while vm.clock.now_ms < duration_ms:
        workload.tick()
    workload.teardown()
    return recorder.records, dumper.store


@pytest.mark.parametrize(
    "scenario", SCENARIOS, ids=lambda s: f"{s[0]}-{s[1]}-seed{s[3]}"
)
def test_streaming_tree_is_byte_identical(scenario):
    records, store = _record_scenario(*scenario)
    assert len(store) > 0
    assert records.total_allocations > 0

    batch_tree = Analyzer(records, list(store)).build_sttree()

    stage = IncrementalAnalyzer()
    for snapshot in store:
        stage.on_snapshot(snapshot)
    stage.on_trace_flush(records)
    streamed_tree = stage.finish()

    assert streamed_tree.digest() == batch_tree.digest()
    assert streamed_tree.to_json() == batch_tree.to_json()
