"""STTree content-hash parity for the columnar heap storage.

The golden hashes were generated from the per-object (pre-columnar) heap
implementation.  Every scenario's recording must analyze to a
byte-identical STTree IR under struct-of-arrays region storage — the
whole profiling pipeline (allocation streams, snapshots, survival
estimation, conflict resolution) reduced to one hash per scenario.

Regenerate (only when *intentionally* changing simulation semantics) with:

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest \
        tests/integration/test_sttree_parity.py -q
"""

import json
import os

import pytest

from tests.integration.parity_harness import SCENARIOS, run_scenario

GOLDEN_PATH = os.path.join(
    os.path.dirname(__file__), "golden_sttree_hashes.json"
)


def _load_golden():
    with open(GOLDEN_PATH) as handle:
        return json.load(handle)


@pytest.mark.parametrize(
    "scenario", SCENARIOS, ids=["-".join(map(str, s[:2])) for s in SCENARIOS]
)
def test_sttree_hash_matches_golden(scenario):
    if os.environ.get("REPRO_REGEN_GOLDEN"):
        pytest.skip("regenerating goldens in the writer test")
    golden = _load_golden()
    key = "-".join(map(str, scenario))
    assert key in golden, f"no golden STTree hash recorded for {key}"
    digest = run_scenario(*scenario)
    assert digest["sttree"]["content_hash"] == golden[key], (
        "STTree content drift"
    )


def test_regenerate_goldens():
    """Writer: only active under REPRO_REGEN_GOLDEN=1."""
    if not os.environ.get("REPRO_REGEN_GOLDEN"):
        pytest.skip("set REPRO_REGEN_GOLDEN=1 to rewrite the golden file")
    golden = {
        "-".join(map(str, scenario)): run_scenario(*scenario)["sttree"][
            "content_hash"
        ]
        for scenario in SCENARIOS
    }
    with open(GOLDEN_PATH, "w") as handle:
        json.dump(golden, handle, indent=2, sort_keys=True)
        handle.write("\n")
