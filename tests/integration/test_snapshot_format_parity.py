"""jsonl <-> binary snapshot-store parity on the golden scenarios.

Whatever the on-disk layout, a recording must analyze to the same
profile: both formats are written from the same fixed-seed runs (the
gc-loop parity scenarios), read back, and compared snapshot-for-snapshot
and digest-for-digest through the streaming analyzer.
"""

import hashlib
import json
import os

import pytest

from repro.config import SimConfig
from repro.core.dumper import Dumper
from repro.core.recorder import Recorder
from repro.core.stages import ProfileBuilder
from repro.heap.objects import _reset_identity_hashes
from repro.runtime.vm import VM
from repro.snapshot.snapshot import SnapshotStore
from repro.workloads import make_workload

from tests.integration.parity_harness import SCENARIOS, _COLLECTORS

# The two quick scenarios run per-test; the full matrix is covered by the
# module-level round-trip below.
_FAST = [s for s in SCENARIOS if s[4] <= 1500.0]


def _record(workload_name, collector_name, use_remsets, seed, duration_ms):
    _reset_identity_hashes()
    config = SimConfig(
        heap_bytes=16 * 1024 * 1024,
        young_bytes=2 * 1024 * 1024,
        seed=seed,
        use_remembered_sets=use_remsets,
    )
    vm = VM(config, collector=_COLLECTORS[collector_name]())
    recorder = Recorder(snapshot_every=1)
    dumper = Dumper(vm)
    recorder.attach(vm, dumper)
    workload = make_workload(workload_name, seed=seed)
    for model in workload.class_models():
        vm.classloader.load(model)
    workload.setup(vm)
    while vm.clock.now_ms < duration_ms:
        workload.tick()
    workload.teardown()
    return recorder, dumper


def _digest_snapshots(snapshots):
    payload = [
        {
            "seq": snap.seq,
            "time_ms": snap.time_ms,
            "engine": snap.engine,
            "pages_written": snap.pages_written,
            "size_bytes": snap.size_bytes,
            "duration_us": snap.duration_us,
            "incremental": snap.incremental,
            "live": snap.live_object_ids.to_list(),
        }
        for snap in snapshots
    ]
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


@pytest.mark.parametrize(
    "scenario", SCENARIOS, ids=["-".join(map(str, s[:2])) for s in SCENARIOS]
)
def test_jsonl_binary_round_trip_identical(scenario, tmp_path):
    _reset_identity_hashes()
    _, dumper = _record(*scenario[:4], min(scenario[4], 900.0))
    jsonl = str(tmp_path / "snapshots.jsonl")
    binary = str(tmp_path / "snapshots.bin")
    dumper.store.save(jsonl, format="jsonl")
    dumper.store.save(binary, format="binary")
    original = _digest_snapshots(dumper.store)
    assert _digest_snapshots(SnapshotStore.load(jsonl)) == original
    assert _digest_snapshots(SnapshotStore.load(binary)) == original


@pytest.mark.parametrize(
    "scenario", _FAST, ids=["-".join(map(str, s[:2])) for s in _FAST]
)
def test_profiles_identical_across_formats(scenario, tmp_path):
    recorder, dumper = _record(*scenario[:4], min(scenario[4], 900.0))
    digests = {}
    for fmt, name in (("jsonl", "snapshots.jsonl"), ("binary", "snapshots.bin")):
        path = str(tmp_path / name)
        dumper.store.save(path, format=fmt)
        builder = ProfileBuilder()
        for snapshot in SnapshotStore.iter_file(path):
            builder.feed_snapshot(snapshot)
        builder.feed_trace_flush(recorder.records)
        digests[fmt] = builder.analyzer.finish().digest()
    assert digests["jsonl"] == digests["binary"]


def test_binary_is_smaller_on_disk(tmp_path):
    _, dumper = _record(*SCENARIOS[0][:4], 900.0)
    jsonl = str(tmp_path / "snapshots.jsonl")
    binary = str(tmp_path / "snapshots.bin")
    dumper.store.save(jsonl, format="jsonl")
    dumper.store.save(binary, format="binary")
    assert os.path.getsize(binary) < os.path.getsize(jsonl)
