"""Byte-for-byte parity of the fast-pathed inner loop against the seed.

The golden file was generated from the pre-optimization implementation
(tuple-hashing allocation logging, per-cycle liveness sets, per-page
no-need rescans).  Every scenario digest — allocation profiles, GC pause
series, snapshot contents — must match exactly.

Regenerate (only when *intentionally* changing simulation semantics) with:

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest \
        tests/integration/test_gc_loop_parity.py -q
"""

import json
import os

import pytest

from tests.integration.parity_harness import SCENARIOS, run_scenario

GOLDEN_PATH = os.path.join(
    os.path.dirname(__file__), "golden_gc_loop_parity.json"
)


def _load_golden():
    with open(GOLDEN_PATH) as handle:
        return json.load(handle)


@pytest.mark.parametrize(
    "scenario", SCENARIOS, ids=["-".join(map(str, s[:2])) for s in SCENARIOS]
)
def test_scenario_matches_golden(scenario):
    if os.environ.get("REPRO_REGEN_GOLDEN"):
        pytest.skip("regenerating goldens in the session-scoped writer")
    golden = _load_golden()
    key = "-".join(map(str, scenario))
    assert key in golden, f"no golden recorded for {key}"
    digest = run_scenario(*scenario)
    expected = golden[key]
    # Compare section by section so a failure names the divergent layer.
    assert digest["records"] == expected["records"], "allocation profile drift"
    assert digest["pauses"] == expected["pauses"], "GC pause series drift"
    assert digest["snapshots"] == expected["snapshots"], "snapshot content drift"
    assert digest["end_state"] == expected["end_state"], "accounting drift"


def test_regenerate_goldens():
    """Writer: only active under REPRO_REGEN_GOLDEN=1."""
    if not os.environ.get("REPRO_REGEN_GOLDEN"):
        pytest.skip("set REPRO_REGEN_GOLDEN=1 to rewrite the golden file")
    golden = {
        "-".join(map(str, scenario)): run_scenario(*scenario)
        for scenario in SCENARIOS
    }
    with open(GOLDEN_PATH, "w") as handle:
        json.dump(golden, handle, indent=2, sort_keys=True)
        handle.write("\n")
